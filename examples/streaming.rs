//! Streaming runtime demo: two concurrent frame streams sharing one
//! kernel cache and one worker pool.
//!
//! A 3-stage operator chain (Gaussian smooth → Sobel gradient →
//! Laplacian sharpen) processes a 12-frame sequence three ways:
//!
//! 1. **sequential baseline** — frames one at a time, fresh compile on
//!    every launch (the pre-streaming cost model);
//! 2. **streamed** — the pipelined runtime with a bounded in-flight
//!    window, where steady-state frames are served from the shared
//!    kernel cache;
//! 3. **streamed with a fault** — a transient hang injected into one
//!    frame, recovered by the launch supervisor without stalling any
//!    other frame.
//!
//! Then two streams run *concurrently* on a shared cache + pool, each
//! on its own trace lane. The example self-validates: every streamed
//! frame must be bit-identical to its sequential twin, frame counts
//! must balance, the steady-state cache hit rate must be high, and the
//! merged Chrome trace must validate with one `tid` per stream.
//!
//! ```text
//! cargo run --release --example streaming [TRACE_PATH] [REPORT_PATH]
//! ```
//!
//! Defaults: `target/streaming_trace.json`, `target/streaming_report.json`.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use hipacc_core::{Engine, FaultPlan, KernelCache, Target};
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::laplacian::laplacian_operator;
use hipacc_filters::sobel::sobel_operator;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_runtime::{Stream, StreamConfig, StreamRun};
use hipacc_sim::pool::WorkerPool;

const FRAMES: usize = 12;
const SIZE: u32 = 48;

/// The drifting input sequence: one vessel phantom per frame with a
/// small deterministic per-frame perturbation.
fn frame_sequence() -> Vec<Image<f32>> {
    (0..FRAMES)
        .map(|i| {
            let mut img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
            for (j, px) in img.raw_mut().iter_mut().enumerate() {
                *px += ((i * 7 + j) % 13) as f32 * 1e-3;
            }
            img
        })
        .collect()
}

/// The demo chain: smooth → edge → sharpen.
fn chain(name: &str, config: StreamConfig) -> Stream {
    let m = BoundaryMode::Clamp;
    Stream::new(name, Target::cuda(hipacc_hwmodel::device::tesla_c2050()))
        .stage("gauss5", gaussian_operator(5, 1.1, m))
        .stage("sobel", sobel_operator(true, m))
        .stage("laplace", laplacian_operator(m))
        .with_config(config)
}

fn assert_bit_identical(streamed: &StreamRun, reference: &StreamRun, what: &str) {
    assert_eq!(streamed.outputs.len(), reference.outputs.len(), "{what}");
    for (s, r) in streamed.outputs.iter().zip(&reference.outputs) {
        assert_eq!(
            s.image.max_abs_diff(&r.image),
            0.0,
            "{what}: frame {} diverged from the sequential baseline",
            s.seq
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_path = args
        .next()
        .unwrap_or_else(|| "target/streaming_trace.json".to_string());
    let report_path = args
        .next()
        .unwrap_or_else(|| "target/streaming_report.json".to_string());

    let frames = frame_sequence();
    let config = StreamConfig {
        workers: Some(3),
        queue_capacity: Some(4),
        engine: Some(Engine::Bytecode),
        ..StreamConfig::default()
    };

    // 1. Sequential baseline: fresh compile on every launch.
    let sequential = chain(
        "baseline",
        StreamConfig {
            share_cache: false,
            ..config.clone()
        },
    )
    .run_sequential(frames.clone())
    .expect("sequential baseline");
    assert_eq!(sequential.report.frames_out, FRAMES);

    // 2. Streamed: pipelined, steady state served from the cache.
    let streamed = chain("video", config.clone())
        .run(frames.clone())
        .expect("streaming run");
    assert_eq!(streamed.report.frames_in, FRAMES);
    assert_eq!(streamed.report.frames_out, FRAMES);
    assert_bit_identical(&streamed, &sequential, "streamed run");
    assert!(
        streamed.report.cache_hit_rate > 0.8,
        "steady-state frames must be served from the shared cache, got {}",
        streamed.report.cache_hit_rate
    );
    print!("{}", streamed.report.render_text());
    println!("ok: streamed outputs bit-identical to the sequential baseline");
    println!();

    // 3. Streamed with a transient hang on frame 4: the supervisor
    // retries that frame; its neighbours never notice.
    let faulty = chain(
        "video-faulty",
        StreamConfig {
            faults: HashMap::from([(4, FaultPlan::hang_block(44, (0, 1), 10_000))]),
            ..config.clone()
        },
    )
    .run(frames.clone())
    .expect("faulty streaming run");
    assert_eq!(faulty.report.frames_out, FRAMES);
    assert!(
        faulty.report.failed.is_empty(),
        "the hang must be recovered"
    );
    assert!(faulty.report.recovered_frames >= 1);
    assert_bit_identical(&faulty, &sequential, "recovered run");
    print!("{}", faulty.report.render_text());
    println!("ok: transient fault on frame 4 recovered; no frame stalled or diverged");
    println!();

    // 4. Two concurrent streams on one shared cache + worker pool, each
    // on its own trace lane.
    let cache = Arc::new(KernelCache::new(16));
    let pool = Arc::new(WorkerPool::new(3));
    let (left, right) = thread::scope(|scope| {
        let l = scope.spawn(|| {
            chain(
                "cine-a",
                StreamConfig {
                    lane: 2,
                    ..config.clone()
                },
            )
            .with_shared(Arc::clone(&cache), Arc::clone(&pool))
            .run(frame_sequence())
            .expect("stream cine-a")
        });
        let r = scope.spawn(|| {
            chain(
                "cine-b",
                StreamConfig {
                    lane: 3,
                    ..config.clone()
                },
            )
            .with_shared(Arc::clone(&cache), Arc::clone(&pool))
            .run(frame_sequence())
            .expect("stream cine-b")
        });
        (l.join().expect("cine-a"), r.join().expect("cine-b"))
    });
    assert_bit_identical(&left, &sequential, "concurrent stream cine-a");
    assert_bit_identical(&right, &sequential, "concurrent stream cine-b");
    assert_eq!(cache.len(), 3, "both streams share one entry per stage");
    print!("{}", left.report.render_text());
    print!("{}", right.report.render_text());
    println!("ok: concurrent streams share the cache and stay bit-identical");
    println!();

    // Merge all spans into one trace: one lane (`tid`) per stream.
    let mut spans = streamed.report.spans.clone();
    spans.extend(faulty.report.spans.iter().cloned());
    spans.extend(left.report.spans.iter().cloned());
    spans.extend(right.report.spans.iter().cloned());
    spans.sort_by_key(|s| s.start_us);
    let trace = hipacc_profile::chrome::trace_json(&spans);
    let n_events = hipacc_profile::chrome::validate(&trace).expect("emitted trace must validate");
    assert!(trace.contains("\"tid\":2") && trace.contains("\"tid\":3"));
    std::fs::write(&trace_path, &trace).expect("write trace file");
    println!("wrote {n_events} trace events to {trace_path}");

    // Machine-readable report for the CI gate: the plain streamed run.
    std::fs::write(&report_path, streamed.report.to_json()).expect("write report file");
    println!("wrote stream report to {report_path}");
    println!("ok: streaming demo finished");
}
