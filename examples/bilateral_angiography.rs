//! The paper's motivating application: edge-preserving denoising of an
//! angiography image with the bilateral filter, comparing boundary modes
//! and implementation variants.
//!
//! ```text
//! cargo run --release --example bilateral_angiography
//! ```

use hipacc::prelude::*;
use hipacc_core::PipelineOptions;
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_image::phantom;

/// Mean squared difference inside the vessel-free background region.
fn background_noise(img: &Image<f32>, reference: &Image<f32>) -> f32 {
    let mut acc = 0.0f64;
    let mut n = 0u32;
    for y in 4..(img.height() as i32 - 4) {
        for x in 4..(img.width() as i32 - 4) {
            // Background = bright areas of the clean image.
            if reference.get(x, y) > 0.8 {
                let d = img.get(x, y) - reference.get(x, y);
                acc += (d * d) as f64;
                n += 1;
            }
        }
    }
    (acc / n.max(1) as f64) as f32
}

fn main() {
    // A clean phantom and its noisy acquisition.
    let clean = phantom::vessel_tree(
        192,
        192,
        &phantom::VesselParams {
            noise_sigma: 0.0,
            ..phantom::VesselParams::default()
        },
    );
    let mut noisy = clean.clone();
    phantom::add_gaussian_noise(&mut noisy, 0.05, 7);

    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    println!("bilateral denoising on {}", target.label());
    println!(
        "noise power before filtering: {:.6}",
        background_noise(&noisy, &clean)
    );

    // Boundary modes: the paper argues Mirror avoids border artifacts.
    println!("\nper-mode results (sigma_d = 1, sigma_r = 5):");
    println!(
        "  {:<10} {:>12} {:>12} {:>10}",
        "mode", "noise power", "border err", "time ms"
    );
    for mode in [
        BoundaryMode::Clamp,
        BoundaryMode::Repeat,
        BoundaryMode::Mirror,
        BoundaryMode::Constant(0.0),
    ] {
        let op = bilateral_operator(1, 5, true, mode);
        let result = op.execute(&[("Input", &noisy)], &target).unwrap();
        // Border artifact metric: worst deviation from the clean image on
        // the outer ring.
        let border = hipacc_filters::pyramid::border_error(&clean, &result.output);
        println!(
            "  {:<10} {:>12.6} {:>12.4} {:>10.3}",
            mode.name(),
            background_noise(&result.output, &clean),
            border,
            result.time.total_ms
        );
    }

    // Implementation variants at the paper's evaluation scale (4096²,
    // 13×13): modelled times only — this is Table II's generated section.
    println!("\nmodelled times at the paper's scale (4096^2, 13x13 window):");
    println!("  {:<22} {:>10}", "variant", "time ms");
    let variants: [(&str, MemVariant, bool); 4] = [
        ("global", MemVariant::Global, false),
        ("texture", MemVariant::Texture, false),
        ("global + mask", MemVariant::Global, true),
        ("texture + mask", MemVariant::Texture, true),
    ];
    for (label, variant, mask) in variants {
        let op =
            bilateral_operator(3, 5, mask, BoundaryMode::Clamp).with_options(PipelineOptions {
                variant,
                force_config: Some((128, 1)),
                ..PipelineOptions::default()
            });
        let compiled = op.compile(&target, 4096, 4096).unwrap();
        let t = op.estimate(&compiled, &target);
        println!("  {:<22} {:>10.2}", label, t.total_ms);
    }

    println!("\nok: bilateral_angiography finished");
}
