//! The multiresolution filter pipeline of the paper's medical motivation
//! (Kunz et al., "Nonlinear Multiresolution Gradient Adaptive Filter for
//! Medical Images"): repeated down/upsampling makes border handling
//! visible, and Mirror is the mode that keeps borders natural.
//!
//! ```text
//! cargo run --release --example multiresolution
//! ```

use hipacc::prelude::*;
use hipacc_filters::pyramid::{border_error, pyramid_roundtrip};
use hipacc_image::phantom;

fn main() {
    let image = phantom::vessel_tree(128, 128, &phantom::VesselParams::default());
    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());

    println!("multiresolution pyramid on {}", target.label());
    println!("input: {}x{}", image.width(), image.height());

    for levels in [1u32, 2, 3] {
        println!("\n{levels}-level round trip:");
        println!(
            "  {:<10} {:>14} {:>12}",
            "mode", "border error", "kernel ms"
        );
        for mode in [
            BoundaryMode::Clamp,
            BoundaryMode::Repeat,
            BoundaryMode::Mirror,
        ] {
            let res = pyramid_roundtrip(&image, levels, mode, &target).unwrap();
            println!(
                "  {:<10} {:>14.4} {:>12.3}",
                mode.name(),
                border_error(&image, &res.reconstructed),
                res.total_time_ms
            );
        }
    }

    // Show the pyramid geometry.
    let res = pyramid_roundtrip(&image, 3, BoundaryMode::Mirror, &target).unwrap();
    println!("\npyramid levels (Mirror):");
    for (i, lvl) in res.levels.iter().enumerate() {
        println!(
            "  level {i}: {}x{} (range {:?})",
            lvl.width(),
            lvl.height(),
            lvl.min_max()
        );
    }

    println!(
        "\nthe Mirror row should show the smallest border error at every depth —\n\
         the paper's argument for supporting mirroring in the framework\n\
         (RapidMind, for comparison, had no mirror mode at all)."
    );

    // The full gradient-adaptive denoising pipeline (Kunz et al.): device
    // Gaussians for the pyramid, a DSL *point operator* for the nonlinear
    // detail attenuation.
    let mut noisy = image.clone();
    hipacc_image::phantom::add_gaussian_noise(&mut noisy, 0.05, 3);
    let (denoised, kernel_ms) = hipacc_filters::pyramid::multiresolution_denoise(
        &noisy,
        3,
        0.08,
        BoundaryMode::Mirror,
        &target,
    )
    .unwrap();
    let mse = |a: &Image<f32>, b: &Image<f32>| {
        let mut acc = 0.0f64;
        for y in 0..a.height() as i32 {
            for x in 0..a.width() as i32 {
                let d = a.get(x, y) - b.get(x, y);
                acc += (d * d) as f64;
            }
        }
        acc / (a.width() * a.height()) as f64
    };
    println!("\ngradient-adaptive multiresolution denoising (3 levels):");
    println!("  mse vs clean before: {:.6}", mse(&noisy, &image));
    println!("  mse vs clean after:  {:.6}", mse(&denoised, &image));
    println!("  device kernel time:  {kernel_ms:.3} ms");

    println!("\nok: multiresolution finished");
}
