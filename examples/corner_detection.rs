//! Harris corner detection — a multi-kernel pipeline with a
//! multi-accessor kernel (three input images in one DSL kernel).
//!
//! ```text
//! cargo run --release --example corner_detection
//! ```

use hipacc::prelude::*;
use hipacc_filters::harris::{harris, strongest_corners};

fn main() {
    // A synthetic scene with known corners: two bright rectangles.
    let image = Image::from_fn(96, 96, |x, y| {
        let in_a = (16..40).contains(&x) && (16..40).contains(&y);
        let in_b = (56..84).contains(&x) && (48..80).contains(&y);
        if in_a || in_b {
            1.0
        } else {
            0.1
        }
    });

    println!("Harris corner detection on two rectangles (8 true corners)\n");
    for target in [
        Target::cuda(hipacc_hwmodel::device::tesla_c2050()),
        Target::opencl(hipacc_hwmodel::device::radeon_hd_6970()),
    ] {
        let result = harris(&image, 5, 0.05, BoundaryMode::Clamp, &target).unwrap();
        let corners = strongest_corners(&result.response, 8);
        println!(
            "{} — {:.3} ms over 3 kernels:",
            target.label(),
            result.total_time_ms
        );
        for (x, y, v) in &corners {
            println!("    corner at ({x:>2}, {y:>2})  response {v:>10.1}");
        }
        println!();
    }

    // ASCII view of the response map (downsampled).
    let t = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    let result = harris(&image, 5, 0.05, BoundaryMode::Clamp, &t).unwrap();
    let (_, hi) = result.response.min_max();
    println!("response map (one char per 3x3 block; # = strong corner):");
    for by in 0..32 {
        let mut row = String::new();
        for bx in 0..32 {
            let mut best = f32::MIN;
            for dy in 0..3 {
                for dx in 0..3 {
                    best = best.max(result.response.get(bx * 3 + dx, by * 3 + dy));
                }
            }
            row.push(if best > hi * 0.5 {
                '#'
            } else if best > hi * 0.05 {
                '+'
            } else {
                '.'
            });
        }
        println!("    {row}");
    }
    println!("\nok: corner_detection finished");
}
