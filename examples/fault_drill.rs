//! Fault drill: inject one fault of each class into a 5x5 Gaussian blur
//! and watch the launch supervisor recover, deterministically.
//!
//! Five scenarios, one per fault class:
//!
//! 1. a **dropped block result** — repaired by re-executing the block;
//! 2. a **bit flip** in a committed store — detected by the block
//!    checksum ledger, repaired selectively;
//! 3. **poisoned boundary reads** (NaN outputs of a rim block) — same
//!    detection and repair path;
//! 4. a **hung worker** — cancelled by the virtual launch deadline,
//!    classified transient, cured by a retry with backoff (all on the
//!    virtual clock: this drill never sleeps);
//! 5. a **corrupted constant bank** — caught by the post-launch scrub of
//!    the uploaded mask coefficients, cured by a full retry (run against
//!    a dynamic-mask convolution, the only kernel kind with runtime
//!    constant banks).
//!
//! Every recovered output is asserted bit-identical to a fault-free
//! reference, the recovery log is printed, and all profile spans
//! (including the `"recovery"`-category fault/retry spans) are exported
//! as one Chrome trace that the example validates before exiting.
//!
//! ```text
//! cargo run --release --example fault_drill [TRACE_PATH]
//! ```
//!
//! `TRACE_PATH` defaults to `target/fault_drill_trace.json`.

use hipacc::prelude::*;
use hipacc_core::supervisor::RecoveryAction;
use hipacc_core::{Engine, FaultPlan, Operator, SupervisorConfig};
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_image::phantom;
use hipacc_ir::{Expr, KernelBuilder, ScalarType};
use hipacc_profile::Span;

/// A 3x1 convolution with a dynamically uploaded mask, so the constant
/// corruption scenario has a runtime bank to flip.
fn dyn_mask_operator() -> Operator {
    let mut b = KernelBuilder::new("dynconv", ScalarType::F32);
    let input = b.accessor("Input", ScalarType::F32);
    let m = b.mask_dynamic("M", 3, 1);
    let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
    b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
        b.add_assign(
            &acc,
            b.mask_at(&m, xf.get(), Expr::int(0)) * b.read_at(&input, xf.get(), Expr::int(0)),
        );
    });
    b.output(acc.get());
    Operator::new(b.finish())
        .boundary("Input", BoundaryMode::Clamp, 3, 1)
        .upload_mask("M", vec![0.25, 0.5, 0.25])
}

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fault_drill_trace.json".to_string());

    let image = phantom::vessel_tree(96, 80, &phantom::VesselParams::default());
    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    let engine = Engine::default();
    let cfg = SupervisorConfig::default();
    let gaussian = gaussian_operator(5, 1.1, BoundaryMode::Clamp);
    let dynconv = dyn_mask_operator();

    // The drill's scenarios: (name, operator, plan, expected action).
    let scenarios: Vec<(&str, &Operator, FaultPlan, RecoveryAction)> = vec![
        (
            "dropped block result",
            &gaussian,
            FaultPlan::drop_block(11, (0, 1)),
            RecoveryAction::Repaired,
        ),
        (
            "bit flip in a committed store",
            &gaussian,
            FaultPlan::flip_block(22, (0, 2), 1 << 22),
            RecoveryAction::Repaired,
        ),
        (
            "poisoned boundary reads",
            &gaussian,
            FaultPlan::poison_block(33, (0, 0)),
            RecoveryAction::Repaired,
        ),
        (
            "hung worker",
            &gaussian,
            FaultPlan::hang_block(44, (0, 3), 10_000),
            RecoveryAction::Retried,
        ),
        (
            "corrupted constant bank",
            &dynconv,
            FaultPlan::corrupt_constants(55, 1),
            RecoveryAction::Retried,
        ),
    ];

    let mut spans: Vec<Span> = Vec::new();
    for (name, op, plan, expected) in scenarios {
        let reference = op
            .execute_with(&[("Input", &image)], &target, engine)
            .expect("fault-free reference run");
        let sup = op
            .execute_supervised(&[("Input", &image)], &target, engine, &plan, &cfg)
            .expect("the supervisor must recover this drill");

        // Self-validation: recovery must be bit-exact and take the
        // expected path.
        assert_eq!(
            reference.output.max_abs_diff(&sup.execution.output),
            0.0,
            "{name}: recovered output diverged from the reference"
        );
        assert!(
            sup.recovery.events.iter().any(|e| e.action == expected),
            "{name}: expected a `{expected}` event, got:\n{}",
            sup.recovery.render_text()
        );
        assert_eq!(
            sup.recovery.events.last().map(|e| e.action),
            Some(RecoveryAction::Completed)
                .filter(|_| expected == RecoveryAction::Retried)
                .or(Some(expected)),
            "{name}: drill must end validated"
        );

        println!("== drill: {name} ==");
        println!("   plan: {plan}");
        print!("{}", sup.recovery.render_text());
        println!("   recovered: output bit-identical to fault-free reference");
        println!();
        spans.extend(sup.profile.spans.iter().cloned());
    }

    // Export and self-validate the combined trace, recovery spans included.
    let recovery_spans = spans.iter().filter(|s| s.cat == "recovery").count();
    assert!(recovery_spans >= 5, "each drill must leave recovery spans");
    let trace = hipacc_profile::chrome::trace_json(&spans);
    let n_events = hipacc_profile::chrome::validate(&trace).expect("emitted trace must validate");
    std::fs::write(&trace_path, &trace).expect("write trace file");
    println!(
        "wrote {n_events} trace events ({} spans, {recovery_spans} recovery spans) to {trace_path}",
        spans.len()
    );
    println!("ok: fault drill finished");
}
