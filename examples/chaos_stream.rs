//! Chaos battery for the stream-level resilience governor.
//!
//! A 3-stage chain (Gaussian smooth → Sobel gradient → Laplacian
//! sharpen) is driven through three adversarial scenarios, each
//! self-validating:
//!
//! 1. **fault storm** — a 12-frame sequence where one frame hangs
//!    permanently (surfaced `R0301`), one frame's worker panics
//!    (contained as `R0601`), and one frame stalls its way through the
//!    per-frame watchdog budget. Every failed frame leaves a
//!    [`ReplayBundle`]; each bundle is replayed in-process and must
//!    reproduce exactly the diagnostic code it recorded. The streamed
//!    run must stay bit-identical to the sequential reference, and
//!    `frames_in == frames_out + failed + shed` must hold.
//! 2. **circuit breaker** — the first three frames only succeed via the
//!    degradation ladder; the breaker opens (`R0606`), pins the proven
//!    rung, half-opens after four pinned frames, and closes after two
//!    clean probes — identically in the pipelined and sequential runs.
//! 3. **load shedding** — a slow stage behind a capacity-1 queue with a
//!    zero shed budget: stale frames are dropped as typed `R0604`
//!    events, never silently.
//!
//! ```text
//! cargo run --release --example chaos_stream [REPORT_PATH] [TRACE_PATH]
//! ```
//!
//! Defaults: `target/chaos_report.json`, `target/chaos_trace.json`.
//! The report carries the replay bundles; `reproduce --replay
//! target/chaos_report.json` re-executes them from the file.

use std::collections::HashMap;

use hipacc_core::{Engine, FaultPlan, SupervisorConfig, Target};
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::laplacian::laplacian_operator;
use hipacc_filters::sobel::sobel_operator;
use hipacc_image::{BoundaryMode, Image};
use hipacc_runtime::{drifting_frame, replay, Stream, StreamConfig, StreamRun};

const FRAMES: usize = 12;
const SIZE: u32 = 48;

/// The canonical drifting input sequence — the same generator replay
/// bundles reconstruct frames from, so every recorded failure is
/// bit-faithfully reproducible.
fn frame_sequence(n: usize) -> Vec<Image<f32>> {
    (0..n)
        .map(|i| drifting_frame(SIZE, SIZE, i as u64))
        .collect()
}

/// The demo chain: smooth → edge → sharpen (identical to the canonical
/// chain `reproduce --replay` rebuilds).
fn chain(name: &str, config: StreamConfig) -> Stream {
    let m = BoundaryMode::Clamp;
    Stream::new(name, Target::cuda(hipacc_hwmodel::device::tesla_c2050()))
        .stage("gauss5", gaussian_operator(5, 1.1, m))
        .stage("sobel", sobel_operator(true, m))
        .stage("laplace", laplacian_operator(m))
        .with_config(config)
}

fn assert_bit_identical(streamed: &StreamRun, reference: &StreamRun, what: &str) {
    assert_eq!(streamed.outputs.len(), reference.outputs.len(), "{what}");
    for (s, r) in streamed.outputs.iter().zip(&reference.outputs) {
        assert_eq!(
            s.image.max_abs_diff(&r.image),
            0.0,
            "{what}: frame {} diverged from the sequential reference",
            s.seq
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args
        .next()
        .unwrap_or_else(|| "target/chaos_report.json".to_string());
    let trace_path = args
        .next()
        .unwrap_or_else(|| "target/chaos_trace.json".to_string());

    // ------------------------------------------------------------------
    // 1. The fault storm: hang, panic, and stall against the watchdog.
    // ------------------------------------------------------------------
    let storm_faults = HashMap::from([
        // Frame 3: a permanent hang — every attempt on every rung blows
        // the launch deadline; the supervisor surfaces R0301.
        (
            3,
            FaultPlan {
                seed: 31,
                hang_rate: 1.0,
                deadline_us: Some(1_500),
                faulty_attempts: u32::MAX,
                ..FaultPlan::default()
            },
        ),
        // Frame 6: the worker executing block (0,1) panics; the stream's
        // panic shield contains it as R0601 and the pool survives.
        (6, FaultPlan::panic_block(61, (0, 1))),
        // Frame 9: every block stalls 20ms of virtual time on every
        // attempt — the watchdog folds the remaining frame budget into
        // the launch deadline and cancels the hung launch.
        (
            9,
            FaultPlan {
                seed: 91,
                stall_rate: 1.0,
                stall_us: 20_000,
                faulty_attempts: u32::MAX,
                ..FaultPlan::default()
            },
        ),
    ]);
    let storm_config = StreamConfig {
        workers: Some(3),
        queue_capacity: Some(4),
        engine: Some(Engine::Bytecode),
        faults: storm_faults,
        frame_deadline_us: Some(100_000),
        ..StreamConfig::default()
    };
    let streamed = chain("chaos-storm", storm_config.clone())
        .run(frame_sequence(FRAMES))
        .expect("storm streamed run");
    let sequential = chain("chaos-storm-seq", storm_config.clone())
        .run_sequential(frame_sequence(FRAMES))
        .expect("storm sequential run");
    print!("{}", streamed.report.render_text());

    assert!(streamed.report.accounted(), "storm accounting identity");
    assert!(
        sequential.report.accounted(),
        "sequential accounting identity"
    );
    println!("ok: chaos storm accounted for every frame (in = out + failed + shed)");

    assert_bit_identical(&streamed, &sequential, "chaos storm");
    let streamed_failed: Vec<(u64, &str)> = streamed
        .report
        .failed
        .iter()
        .map(|f| (f.seq, f.code.as_str()))
        .collect();
    let sequential_failed: Vec<(u64, &str)> = sequential
        .report
        .failed
        .iter()
        .map(|f| (f.seq, f.code.as_str()))
        .collect();
    assert_eq!(
        streamed_failed, sequential_failed,
        "failure sets must agree"
    );
    assert_eq!(
        streamed_failed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![3, 6, 9],
        "exactly the three storm frames fail"
    );
    assert_eq!(
        streamed_failed[0].1, "R0301",
        "permanent hang surfaces R0301"
    );
    assert_eq!(
        streamed_failed[1].1, "R0601",
        "worker panic is contained as R0601"
    );
    assert_eq!(
        streamed_failed[2].1, "R0301",
        "the stall storm is cancelled against the watchdog-capped deadline"
    );
    println!("ok: storm outputs bit-identical to the sequential reference");

    // Replay every bundle in-process: same chain, same code, bit for bit.
    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    let replay_chain = chain("replay", StreamConfig::default());
    assert_eq!(streamed.report.replay.len(), streamed.report.failed.len());
    for bundle in &streamed.report.replay {
        let round_trip = hipacc_runtime::ReplayBundle::from_json(&bundle.to_json())
            .expect("bundle JSON round trip");
        assert_eq!(&round_trip, bundle, "bundle must survive serialization");
        let code = replay(&round_trip, replay_chain.stages(), &target)
            .unwrap_or_else(|e| panic!("replay of frame {}: {e}", bundle.seq));
        assert_eq!(
            code, bundle.expected_code,
            "frame {} at `{}` must reproduce its code",
            bundle.seq, bundle.stage
        );
        println!(
            "replayed frame {} at `{}`: reproduced {code}",
            bundle.seq, bundle.stage
        );
    }
    println!(
        "ok: {} replay bundles reproduced their diagnostic codes in-process",
        streamed.report.replay.len()
    );
    println!();

    // ------------------------------------------------------------------
    // 2. The circuit breaker: open -> half-open -> closed.
    // ------------------------------------------------------------------
    // Frames 0..2 hang on exactly the supervisor's three attempts, so
    // each one only succeeds on the degradation ladder's next rung —
    // three degraded successes in a row trip the breaker.
    let breaker_faults: HashMap<u64, FaultPlan> = (0..3)
        .map(|seq| {
            (
                seq,
                FaultPlan {
                    seed: 100 + seq,
                    hang_rate: 1.0,
                    deadline_us: Some(2_000),
                    faulty_attempts: 3,
                    ..FaultPlan::default()
                },
            )
        })
        .collect();
    let breaker_config = StreamConfig {
        workers: Some(3),
        queue_capacity: Some(4),
        engine: Some(Engine::Bytecode),
        supervisor: SupervisorConfig {
            max_attempts: 3,
            ..SupervisorConfig::default()
        },
        faults: breaker_faults,
        breaker_threshold: Some(3),
        probe_after: 4,
        close_after: 2,
        ..StreamConfig::default()
    };
    let governed = chain("chaos-breaker", breaker_config.clone())
        .run(frame_sequence(FRAMES))
        .expect("breaker streamed run");
    let governed_seq = chain("chaos-breaker-seq", breaker_config)
        .run_sequential(frame_sequence(FRAMES))
        .expect("breaker sequential run");
    print!("{}", governed.report.render_text());

    assert!(governed.report.failed.is_empty(), "every frame recovers");
    assert_eq!(governed.report.frames_out, FRAMES);
    assert_bit_identical(&governed, &governed_seq, "breaker run");
    assert_eq!(
        governed.report.breaker_transitions, governed_seq.report.breaker_transitions,
        "governor decisions must be identical in both modes"
    );
    // Every stage walks the full cycle: open at frame 2 (three strikes),
    // half-open at frame 6 (four pinned frames), closed at frame 8 (two
    // clean probes).
    for (idx, stage) in ["gauss5", "sobel", "laplace"].iter().enumerate() {
        let walk: Vec<(u64, String)> = governed
            .report
            .breaker_transitions
            .iter()
            .filter(|t| t.stage_index == idx)
            .map(|t| (t.seq, format!("{} -> {}", t.from, t.to)))
            .collect();
        assert_eq!(
            walk,
            vec![
                (2, "closed -> open".to_string()),
                (6, "open -> half-open".to_string()),
                (8, "half-open -> closed".to_string()),
            ],
            "stage `{stage}` breaker walk"
        );
    }
    assert!(
        governed.report.actions.degraded >= 9,
        "three frames degrade at three stages each"
    );
    println!("ok: breaker walked closed -> open -> half-open -> closed identically in both modes");
    println!();

    // ------------------------------------------------------------------
    // 3. Load shedding: a slow stage behind a tiny queue.
    // ------------------------------------------------------------------
    // Every frame hangs block (0,1) for 5ms of wall time before its
    // retry succeeds, so the producer outruns the pipeline immediately.
    let shed_faults: HashMap<u64, FaultPlan> = (0..FRAMES as u64)
        .map(|seq| (seq, FaultPlan::hang_block(7 + seq, (0, 1), 5_000)))
        .collect();
    let shed_run = chain(
        "chaos-shed",
        StreamConfig {
            workers: Some(3),
            queue_capacity: Some(1),
            engine: Some(Engine::Bytecode),
            faults: shed_faults,
            shed_after_us: Some(0),
            ..StreamConfig::default()
        },
    )
    .run(frame_sequence(FRAMES))
    .expect("shedding run");
    print!("{}", shed_run.report.render_text());
    assert!(shed_run.report.accounted(), "shed accounting identity");
    assert!(
        !shed_run.report.shed.is_empty(),
        "a capacity-1 queue with a zero budget must shed"
    );
    assert!(
        shed_run.report.shed.iter().all(|s| s.code == "R0604"),
        "every shed is a typed R0604 event"
    );
    println!(
        "ok: load shedding dropped {} stale frames as typed events",
        shed_run.report.shed.len()
    );
    println!();

    // The storm report (with its replay bundles) is the CI artifact:
    // `reproduce --replay` re-executes the bundles from this file.
    std::fs::write(&report_path, streamed.report.to_json()).expect("write report");
    println!("wrote chaos report (with replay bundles) to {report_path}");
    let mut spans = streamed.report.spans.clone();
    spans.extend(governed.report.spans.iter().cloned());
    spans.sort_by_key(|s| s.start_us);
    let trace = hipacc_profile::chrome::trace_json(&spans);
    let n_events = hipacc_profile::chrome::validate(&trace).expect("trace must validate");
    std::fs::write(&trace_path, &trace).expect("write trace");
    println!("wrote {n_events} trace events to {trace_path}");
    println!("ok: chaos stream demo finished");
}
