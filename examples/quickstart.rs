//! Quickstart: write a local operator in the DSL, compile it for a
//! simulated GPU, run it, and look at everything the framework gives back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hipacc::prelude::*;
use hipacc_core::Operator;
use hipacc_image::phantom;

fn main() {
    // 1. An input image: a synthetic angiogram (dark vessels on a bright
    //    background), standing in for the paper's clinical data.
    let image = phantom::vessel_tree(256, 256, &phantom::VesselParams::default());
    println!(
        "input: {}x{} pixels, range {:?}",
        image.width(),
        image.height(),
        image.min_max()
    );

    // 2. A kernel in the DSL — a 3x3 Gaussian written out by hand, the
    //    way Listing 1 of the paper writes the bilateral filter.
    let mut b = KernelBuilder::new("Smooth3x3", ScalarType::F32);
    let input = b.accessor("Input", ScalarType::F32);
    let mask = b.mask_const(
        "G",
        3,
        3,
        vec![
            1.0 / 16.0,
            2.0 / 16.0,
            1.0 / 16.0,
            2.0 / 16.0,
            4.0 / 16.0,
            2.0 / 16.0,
            1.0 / 16.0,
            2.0 / 16.0,
            1.0 / 16.0,
        ],
    );
    let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
    b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            b.add_assign(
                &acc,
                b.mask_at(&mask, xf.get(), yf.get()) * b.read_at(&input, xf.get(), yf.get()),
            );
        });
    });
    b.output(acc.get());
    let kernel = b.finish();

    // 3. Attach access metadata: mirror boundary handling (the mode the
    //    paper recommends for medical imaging) over the 3x3 window.
    let op = Operator::new(kernel).boundary("Input", BoundaryMode::Mirror, 3, 3);

    // 4. Pick a target from the device database and run the full
    //    pipeline: source-to-source compilation, configuration selection,
    //    simulated execution, and analytical timing.
    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    let result = op.execute(&[("Input", &image)], &target).unwrap();

    println!("\n--- compilation ---");
    println!("target:          {}", target.label());
    println!("launch config:   {} (heuristic)", result.compiled.config);
    println!("grid:            {:?}", result.compiled.grid);
    println!(
        "occupancy:       {:.1} %",
        result.compiled.occupancy.unwrap().occupancy * 100.0
    );
    println!(
        "registers/smem:  {} regs, {} bytes",
        result.compiled.resources.registers_per_thread, result.compiled.resources.shared_bytes
    );
    println!("generated LoC:   {}", result.compiled.generated_loc());

    println!("\n--- first lines of the generated CUDA ---");
    for line in result.compiled.source.lines().take(14) {
        println!("    {line}");
    }

    println!("\n--- simulated execution ---");
    println!(
        "output range:    {:?} (input was {:?})",
        result.output.min_max(),
        image.min_max()
    );
    println!(
        "memory ops:      {} global loads, {} texture fetches, {} stores, {} constant reads",
        result.stats.global_loads,
        result.stats.tex_fetches,
        result.stats.global_stores,
        result.stats.const_loads
    );
    println!(
        "out-of-bounds:   {} (0 = boundary handling correct)",
        result.stats.oob_reads
    );

    println!("\n--- modelled time on a real Tesla C2050 ---");
    println!("compute:         {:.3} ms", result.time.compute_ms);
    println!("memory:          {:.3} ms", result.time.memory_ms);
    println!("launch:          {:.3} ms", result.time.launch_ms);
    println!("total:           {:.3} ms", result.time.total_ms);

    // 5. Cross-check against the CPU reference.
    let expected = hipacc_image::reference::convolve2d(
        &image,
        &hipacc_image::reference::MaskCoeffs::gaussian(3, 3, 0.85),
        BoundaryMode::Mirror,
    );
    let _ = expected; // (sigma differs from the hand mask; see filters crate for exact tests)
    println!("\nok: quickstart finished");
}
