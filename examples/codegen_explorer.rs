//! Inspect what the source-to-source compiler produces: the full generated
//! CUDA and OpenCL for the bilateral filter, the nine-region structure,
//! and the configuration-space exploration of Figure 4.
//!
//! ```text
//! cargo run --release --example codegen_explorer           # summary
//! cargo run --release --example codegen_explorer -- cuda   # dump CUDA
//! cargo run --release --example codegen_explorer -- opencl # dump OpenCL
//! cargo run --release --example codegen_explorer -- host   # dump host code
//! cargo run --release --example codegen_explorer -- sweep  # Figure 4 sweep
//! ```

use hipacc::prelude::*;
use hipacc_core::PipelineOptions;
use hipacc_filters::bilateral::bilateral_operator;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "summary".into());
    let op = bilateral_operator(3, 5, true, BoundaryMode::Clamp).with_options(PipelineOptions {
        force_config: Some((128, 1)),
        ..PipelineOptions::default()
    });

    match mode.as_str() {
        "cuda" => {
            let c = op
                .compile(
                    &Target::cuda(hipacc_hwmodel::device::tesla_c2050()),
                    4096,
                    4096,
                )
                .unwrap();
            println!("{}", c.source);
        }
        "opencl" => {
            let c = op
                .compile(
                    &Target::opencl(hipacc_hwmodel::device::radeon_hd_6970()),
                    4096,
                    4096,
                )
                .unwrap();
            println!("{}", c.source);
        }
        "host" => {
            let c = op
                .compile(
                    &Target::cuda(hipacc_hwmodel::device::tesla_c2050()),
                    4096,
                    4096,
                )
                .unwrap();
            println!("{}", c.host_source);
        }
        "sweep" => {
            let e = hipacc_bench::figures::figure4();
            println!("configuration sweep (bilateral 13x13, 4096^2, Tesla C2050):");
            println!(
                "{:>8} {:>8} {:>10} {:>10}",
                "config", "threads", "occ", "ms"
            );
            let mut pts = e.points.clone();
            pts.sort_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap());
            for p in pts.iter().take(10) {
                println!(
                    "{:>5}x{:<3} {:>7} {:>10.3} {:>10.2}",
                    p.bx, p.by, p.threads, p.occupancy, p.time_ms
                );
            }
            println!("... ({} configurations total)", e.points.len());
            println!(
                "heuristic: {} -> {:.2} ms; optimum {}x{} -> {:.2} ms",
                e.heuristic_choice,
                e.heuristic_time_ms,
                e.optimum.bx,
                e.optimum.by,
                e.optimum.time_ms
            );
        }
        _ => {
            let tesla = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
            let c = op.compile(&tesla, 4096, 4096).unwrap();
            println!("bilateral filter, 13x13 window, {}:", tesla.label());
            println!("  DSL lines:        {}", op.def.dsl_loc());
            println!("  generated lines:  {}", c.generated_loc());
            println!("  launch config:    {} (forced to the paper's)", c.config);
            println!("  grid:             {:?}", c.grid);
            let g = c.region_grid.unwrap();
            println!(
                "  region grid:      left {} right {} top {} bottom {} block rows/cols",
                g.left_blocks, g.right_blocks, g.top_blocks, g.bottom_blocks
            );
            println!(
                "  occupancy:        {:.1} %",
                c.occupancy.unwrap().occupancy * 100.0
            );
            println!("\nregion map for a small 256x96 image (32x6 blocks):");
            for row in hipacc_bench::figures::figure3(256, 96, (32, 6)) {
                println!("    {row}");
            }
            println!("\nrun with `cuda`, `opencl`, `host` or `sweep` for full dumps.");
        }
    }
}
