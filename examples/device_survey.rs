//! Run the same DSL kernels across every modelled device — the paper's
//! portability claim ("the mapping to different target hardware platforms
//! from the same algorithm description").
//!
//! ```text
//! cargo run --release --example device_survey
//! ```

use hipacc::prelude::*;
use hipacc_core::reduce::{reduce_image, ReduceOp};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::median::median3_operator;
use hipacc_image::phantom;

fn main() {
    let image = phantom::vessel_tree(96, 96, &phantom::VesselParams::default());
    let targets = Target::evaluation_targets();

    println!("running three local operators and one global operator on every target\n");
    println!(
        "{:<28} {:>11} {:>11} {:>11} {:>12}",
        "target", "gauss ms*", "bilat ms*", "median ms*", "sum(pixels)"
    );
    println!("{}", "-".repeat(78));
    for target in &targets {
        let g = gaussian_operator(5, 1.1, BoundaryMode::Mirror)
            .execute(&[("Input", &image)], target)
            .unwrap();
        let b = bilateral_operator(1, 5, true, BoundaryMode::Mirror)
            .execute(&[("Input", &image)], target)
            .unwrap();
        let m = median3_operator(BoundaryMode::Mirror)
            .execute(&[("Input", &image)], target)
            .unwrap();
        let (sum, _) = reduce_image(&image, ReduceOp::Sum, target).unwrap();
        println!(
            "{:<28} {:>11.4} {:>11.4} {:>11.4} {:>12.1}",
            target.label(),
            g.time.total_ms,
            b.time.total_ms,
            m.time.total_ms,
            sum
        );
        // Functional results are identical across targets.
        assert_eq!(g.stats.oob_reads, 0);
    }
    println!("(* modelled execution time at this 96x96 size, including launch overhead)");

    // Cross-target agreement: every device computes the same image.
    println!("\ncross-target agreement (max abs diff vs Tesla C2050):");
    let reference = gaussian_operator(5, 1.1, BoundaryMode::Mirror)
        .execute(&[("Input", &image)], &targets[0])
        .unwrap()
        .output;
    for target in &targets[1..] {
        let out = gaussian_operator(5, 1.1, BoundaryMode::Mirror)
            .execute(&[("Input", &image)], target)
            .unwrap()
            .output;
        println!(
            "  {:<28} {:.2e}",
            target.label(),
            reference.max_abs_diff(&out)
        );
    }

    // Configurations the heuristic picks per device for the big bilateral.
    println!("\nAlgorithm-2 configuration choices (bilateral 13x13, 4096^2):");
    for target in &targets {
        let op = bilateral_operator(3, 5, true, BoundaryMode::Clamp);
        let c = op.compile(target, 4096, 4096).unwrap();
        println!(
            "  {:<28} {:>8}   occupancy {:>5.1} %",
            target.label(),
            c.config.to_string(),
            c.occupancy.unwrap().occupancy * 100.0
        );
    }

    println!("\nok: device_survey finished");
}
