//! End-to-end profiling: compile-phase tracing plus per-region execution
//! profiles, exported as one Chrome `trace_event` file.
//!
//! Profiles a Gaussian blur and the three kernels of the Harris corner
//! pipeline on the simulated Tesla C2050, prints the text report for
//! each launch, and writes all recorded spans to a trace viewable in
//! `about:tracing` or <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example profile [TRACE_PATH]
//! ```
//!
//! `TRACE_PATH` defaults to `target/profile_trace.json`. The example
//! validates its own output with the bundled JSON parser before exiting,
//! so a zero exit status means the trace file is well-formed.

use hipacc::prelude::*;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::harris::harris_response_kernel;
use hipacc_filters::sobel::sobel_operator;
use hipacc_image::phantom;
use hipacc_profile::Span;

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/profile_trace.json".to_string());

    let image = phantom::vessel_tree(128, 128, &phantom::VesselParams::default());
    let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
    let engine = hipacc_core::Engine::default();
    let mut spans: Vec<Span> = Vec::new();

    // --- Gaussian blur: one boundary-specialized kernel. ---------------
    let gaussian = gaussian_operator(5, 1.1, BoundaryMode::Clamp);
    let (_, profile) = gaussian
        .execute_profiled(&[("Input", &image)], &target, engine)
        .expect("gaussian profiling run");
    profile.cross_check().expect("gaussian region cross-check");
    println!("{}", profile.render_text());
    spans.extend(profile.spans.iter().cloned());

    // --- Harris pipeline: two Sobel passes feed the response kernel. ---
    let gx = sobel_operator(true, BoundaryMode::Clamp);
    let (gx_run, gx_profile) = gx
        .execute_profiled(&[("Input", &image)], &target, engine)
        .expect("sobel-x profiling run");
    let gy = sobel_operator(false, BoundaryMode::Clamp);
    let (gy_run, gy_profile) = gy
        .execute_profiled(&[("Input", &image)], &target, engine)
        .expect("sobel-y profiling run");
    for p in [&gx_profile, &gy_profile] {
        p.cross_check().expect("sobel region cross-check");
        println!("{}", p.render_text());
        spans.extend(p.spans.iter().cloned());
    }

    let ixx = Image::from_fn(image.width(), image.height(), |x, y| {
        gx_run.output.get(x, y) * gx_run.output.get(x, y)
    });
    let iyy = Image::from_fn(image.width(), image.height(), |x, y| {
        gy_run.output.get(x, y) * gy_run.output.get(x, y)
    });
    let ixy = Image::from_fn(image.width(), image.height(), |x, y| {
        gx_run.output.get(x, y) * gy_run.output.get(x, y)
    });
    let response = hipacc_core::Operator::new(harris_response_kernel(3, 0.04))
        .boundary("Ixx", BoundaryMode::Clamp, 3, 3)
        .boundary("Iyy", BoundaryMode::Clamp, 3, 3)
        .boundary("Ixy", BoundaryMode::Clamp, 3, 3);
    let (_, response_profile) = response
        .execute_profiled(
            &[("Ixx", &ixx), ("Iyy", &iyy), ("Ixy", &ixy)],
            &target,
            engine,
        )
        .expect("harris-response profiling run");
    response_profile
        .cross_check()
        .expect("harris region cross-check");
    println!("{}", response_profile.render_text());
    spans.extend(response_profile.spans.iter().cloned());

    // --- Export and self-validate the combined trace. ------------------
    let trace = hipacc_profile::chrome::trace_json(&spans);
    let n_events = hipacc_profile::chrome::validate(&trace).expect("emitted trace must validate");
    std::fs::write(&trace_path, &trace).expect("write trace file");
    println!(
        "wrote {n_events} trace events ({} spans from 4 launches) to {trace_path}",
        spans.len()
    );
    println!("ok: profile finished");
}
