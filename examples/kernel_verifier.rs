//! The kernel verifier at work: compile a correct filter and watch its
//! diagnostics ride along, then seed three classic GPU kernel bugs and
//! watch the static analyses reject each one before anything runs.
//!
//! ```text
//! cargo run --release --example kernel_verifier
//! ```

use hipacc::prelude::*;
use hipacc_analysis::{verify, VerifyInput};
use hipacc_codegen::{verify_compiled, CompileError, Compiler};
use hipacc_core::Target;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device;
use hipacc_ir::kernel::{DeviceKernelDef, SharedDecl};
use hipacc_ir::{Builtin, Expr, ScalarType, Stmt};

fn main() {
    let target = Target::cuda(device::tesla_c2050());

    // ------------------------------------------------------------------
    // 1. A correct kernel: the verifier proves every access in bounds,
    //    every barrier uniform, every resource within the device budget.
    // ------------------------------------------------------------------
    println!("== Gaussian 5x5 on {} ==", target.label());
    let op = gaussian_operator(5, 1.1, BoundaryMode::Clamp);
    let compiled = op
        .compile(&target, 512, 512)
        .expect("clean filter compiles");
    println!(
        "compiled `{}`: {} warning(s), 0 errors",
        compiled.device_kernel.name,
        compiled.diagnostics.len()
    );
    for d in &compiled.diagnostics {
        println!("  {d}");
    }
    let spec = op.compile_spec(&target, 512, 512);
    let diags = verify_compiled(&compiled, &spec);
    println!(
        "re-running the verifier standalone reproduces {} finding(s)\n",
        diags.len()
    );

    // ------------------------------------------------------------------
    // 2. Seeded bug #1: a filter mask too large for constant memory.
    //    The compiler refuses with a structured diagnostic (A0403).
    // ------------------------------------------------------------------
    println!("== Seeded bug: 129x129 mask in constant memory ==");
    let big = gaussian_operator(129, 20.0, BoundaryMode::Clamp).with_options(
        hipacc_core::PipelineOptions {
            variant: hipacc_core::prelude::MemVariant::Global,
            ..Default::default()
        },
    );
    let spec = big.compile_spec(&target, 512, 512);
    match Compiler::new().compile(&big.def, &spec) {
        Err(CompileError::Verification(diags)) => {
            for d in &diags {
                println!("  {d}");
            }
        }
        other => panic!("expected a verification failure, got {other:?}"),
    }

    // ------------------------------------------------------------------
    // 3. Seeded bugs #2 and #3 at the device-IR level: a barrier inside
    //    a thread-dependent branch, and a staging store running past the
    //    padded shared-memory tile.
    // ------------------------------------------------------------------
    println!("\n== Seeded bug: divergent barrier ==");
    let divergent = bare_kernel(
        vec![Stmt::If {
            cond: Expr::Builtin(Builtin::ThreadIdxX).lt(Expr::int(8)),
            then: vec![Stmt::Barrier],
            els: vec![],
        }],
        vec![],
    );
    report(&divergent, &target);

    println!("\n== Seeded bug: store past the padded tile ==");
    let overrun = bare_kernel(
        vec![Stmt::SharedStore {
            buf: "tile".into(),
            y: Expr::int(0),
            x: Expr::Builtin(Builtin::ThreadIdxX) * Expr::int(2),
            value: Expr::float(0.0),
        }],
        vec![SharedDecl {
            name: "tile".into(),
            ty: ScalarType::F32,
            rows: 1,
            cols: 17,
        }],
    );
    report(&overrun, &target);
}

fn bare_kernel(body: Vec<Stmt>, shared: Vec<SharedDecl>) -> DeviceKernelDef {
    DeviceKernelDef {
        name: "seeded".into(),
        buffers: vec![],
        scalars: vec![],
        const_buffers: vec![],
        shared,
        body,
    }
}

fn report(k: &DeviceKernelDef, target: &Target) {
    let input = VerifyInput::new(k, &target.device, (16, 1), (4, 4));
    for d in verify(&input) {
        println!("  {d}");
    }
}
