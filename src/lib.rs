//! # hipacc
//!
//! Facade crate for the Rust reproduction of *"Generating Device-specific
//! GPU Code for Local Operators in Medical Imaging"* (Membarth, Hannig,
//! Teich, Körner, Eckert — IPDPS 2012).
//!
//! The workspace implements the paper's HIPAcc framework end to end on a
//! simulated GPU substrate:
//!
//! * [`image`] — pixel containers, boundary handling, CPU references.
//! * [`ir`] — the kernel IR the source-to-source compiler consumes.
//! * [`hwmodel`] — abstract GPU hardware model, occupancy, the
//!   configuration-selection heuristic.
//! * [`codegen`] — CUDA/OpenCL source emission with device-specific memory
//!   mapping and boundary-handling specialization.
//! * [`sim`] — a SIMT functional interpreter plus analytical timing model.
//! * [`profile`] — spans, profile sinks and Chrome-trace export: the
//!   observability layer behind `Operator::execute_profiled`.
//! * [`core`] — the DSL front-end (`Image`, `IterationSpace`, `Accessor`,
//!   `BoundaryCondition`, `Mask`, `Kernel`) and the compile/execute
//!   pipeline.
//! * [`filters`] — medical-imaging filters expressed in the DSL.
//! * [`baselines`] — the comparators from the paper's evaluation
//!   (hand-written variants, RapidMind-style, OpenCV-style).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and the per-experiment index.

pub use hipacc_baselines as baselines;
pub use hipacc_codegen as codegen;
pub use hipacc_core as core;
pub use hipacc_filters as filters;
pub use hipacc_hwmodel as hwmodel;
pub use hipacc_image as image;
pub use hipacc_ir as ir;
pub use hipacc_profile as profile;
pub use hipacc_sim as sim;

/// Convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use hipacc_core::prelude::*;
    pub use hipacc_image::{BoundaryMode, Image, Rect};
}
