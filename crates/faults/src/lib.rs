//! Deterministic, seedable fault-injection plans for the SIMT simulator.
//!
//! The paper's pipeline compiles one filter into device-specific kernels
//! and trusts the device to execute them; this crate models the ways a
//! real accelerator breaks that trust — flipped bits in constant and
//! global memory, stalled or hung compute units, lost block results,
//! poisoned boundary reads — so the launch supervisor in `hipacc-core`
//! can be exercised against every failure class it claims to survive.
//!
//! Everything is **reproducible**: a [`FaultPlan`] is a value (seed +
//! per-class rates), and a [`FaultSession`] derives every decision as a
//! pure function of `(seed, attempt, block)` through the workspace PCG32.
//! There is no interior mutability and no wall clock: running the same
//! plan twice — or asking [`FaultSession::census`] what *would* happen —
//! always yields the same faults. Retries rotate the `attempt` counter,
//! which both reshuffles the streams and, once `attempt` reaches
//! [`FaultPlan::faulty_attempts`], disables the hook entirely: the
//! standard model of a *transient* fault that a retry cures.
//!
//! The crate deliberately depends only on `hipacc-sim` (for the
//! [`FaultHook`] seam) and `hipacc-image` (for the PCG32); the
//! supervisor, recovery policy, and reporting live in `hipacc-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hipacc_image::rng::Pcg32;
use hipacc_sim::inject::{is_border_block, BlockFault, FaultHook};
use hipacc_sim::memory::DeviceMemory;

/// Stream-separation tags mixed into the per-decision PRNG seeds so the
/// store-fault, latency, and constant-flip draws are independent.
const TAG_STORE: u64 = 0x53544f52; // "STOR"
const TAG_LATENCY: u64 = 0x4c415459; // "LATY"
const TAG_CONST: u64 = 0x434f4e53; // "CONS"
const TAG_PANIC: u64 = 0x50414e43; // "PANC"

/// A declarative, seedable description of the faults to inject into one
/// launch (or a retry sequence of launches).
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// block from the plan's seed. A plan is inert when every rate is zero
/// and `const_flips` is zero — [`FaultPlan::none`] — in which case the
/// faulted execution paths are bit-identical to the plain ones.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed; every injected fault is a deterministic function of it.
    pub seed: u64,
    /// Per-block probability of a bit flip in a store destined for
    /// global memory (applied to an interior or border block alike).
    pub global_flip_rate: f32,
    /// Per-block probability of a bit flip modeling shared-memory
    /// (scratchpad staging) corruption. Drawn before the global flip;
    /// first match wins.
    pub shared_flip_rate: f32,
    /// XOR mask for flip faults; its population count is the number of
    /// bits flipped (`1 << 22` models a single-event upset, `0x0018_0000`
    /// a multi-bit burst).
    pub flip_bits: u32,
    /// Number of single-bit flips to apply to the uploaded constant
    /// banks (mask coefficients) before the launch.
    pub const_flips: u32,
    /// Per-block probability that the block's result is dropped
    /// wholesale (a lost writeback).
    pub drop_rate: f32,
    /// Per-**border**-block probability that every output of the block
    /// is poisoned with NaN (corrupted boundary-region reads).
    pub poison_boundary_rate: f32,
    /// Per-block probability of a latency spike of `stall_us`.
    pub stall_rate: f32,
    /// Extra virtual microseconds a stalled block costs.
    pub stall_us: u64,
    /// Per-block probability of a hang (infinite virtual latency; only a
    /// launch deadline can recover from it).
    pub hang_rate: f32,
    /// Per-block probability that the worker executing the block
    /// **panics** (models a driver abort / firmware assert — the failure
    /// escapes the launch result channel entirely and must be contained
    /// by the caller's panic isolation, not by the supervisor).
    pub panic_rate: f32,
    /// Baseline virtual cost per block in microseconds.
    pub base_block_us: u64,
    /// Virtual launch deadline; a worker whose accumulated virtual time
    /// exceeds it cancels the launch.
    pub deadline_us: Option<u64>,
    /// How many attempts the faults persist for. The default `1` models
    /// transient faults: attempt 0 is faulted, every retry runs clean.
    /// `u32::MAX` models a permanent fault no retry can outlast.
    pub faulty_attempts: u32,
    /// Restrict store and latency faults to a single block, for
    /// targeted drills and repair tests. Constant flips are unaffected.
    pub target_block: Option<(u32, u32)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            global_flip_rate: 0.0,
            shared_flip_rate: 0.0,
            flip_bits: 1 << 22,
            const_flips: 0,
            drop_rate: 0.0,
            poison_boundary_rate: 0.0,
            stall_rate: 0.0,
            stall_us: 0,
            hang_rate: 0.0,
            panic_rate: 0.0,
            base_block_us: 1,
            deadline_us: None,
            faulty_attempts: 1,
            target_block: None,
        }
    }
}

impl FaultPlan {
    /// The inert plan: no faults can fire, the faulted paths behave
    /// bit-identically to the plain ones.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault class is armed (independent of the attempt).
    pub fn any_armed(&self) -> bool {
        self.const_flips > 0
            || [
                self.global_flip_rate,
                self.shared_flip_rate,
                self.drop_rate,
                self.poison_boundary_rate,
                self.stall_rate,
                self.hang_rate,
                self.panic_rate,
            ]
            .iter()
            .any(|r| *r > 0.0)
    }

    /// Drop the result of exactly one block.
    pub fn drop_block(seed: u64, block: (u32, u32)) -> Self {
        Self {
            seed,
            drop_rate: 1.0,
            target_block: Some(block),
            ..Self::default()
        }
    }

    /// Flip bits (per `mask`) in one store of exactly one block.
    pub fn flip_block(seed: u64, block: (u32, u32), mask: u32) -> Self {
        Self {
            seed,
            global_flip_rate: 1.0,
            flip_bits: mask,
            target_block: Some(block),
            ..Self::default()
        }
    }

    /// Poison the outputs of one border block with NaN.
    pub fn poison_block(seed: u64, block: (u32, u32)) -> Self {
        Self {
            seed,
            poison_boundary_rate: 1.0,
            target_block: Some(block),
            ..Self::default()
        }
    }

    /// Hang exactly one block against a launch deadline.
    pub fn hang_block(seed: u64, block: (u32, u32), deadline_us: u64) -> Self {
        Self {
            seed,
            hang_rate: 1.0,
            target_block: Some(block),
            deadline_us: Some(deadline_us),
            ..Self::default()
        }
    }

    /// Panic the worker executing exactly one block.
    pub fn panic_block(seed: u64, block: (u32, u32)) -> Self {
        Self {
            seed,
            panic_rate: 1.0,
            target_block: Some(block),
            ..Self::default()
        }
    }

    /// Flip `n` bits in the uploaded constant banks.
    pub fn corrupt_constants(seed: u64, n: u32) -> Self {
        Self {
            seed,
            const_flips: n,
            ..Self::default()
        }
    }

    /// A compact, stable summary string recorded into launch profiles.
    pub fn summary(&self) -> String {
        format!("{self}")
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any_armed() {
            return write!(f, "fault-plan none");
        }
        write!(f, "fault-plan seed={}", self.seed)?;
        let mut rate = |name: &str, r: f32| -> std::fmt::Result {
            if r > 0.0 {
                write!(f, " {name}={r}")?;
            }
            Ok(())
        };
        rate("gflip", self.global_flip_rate)?;
        rate("sflip", self.shared_flip_rate)?;
        rate("drop", self.drop_rate)?;
        rate("poison", self.poison_boundary_rate)?;
        rate("stall", self.stall_rate)?;
        rate("hang", self.hang_rate)?;
        rate("panic", self.panic_rate)?;
        if self.const_flips > 0 {
            write!(f, " cflips={}", self.const_flips)?;
        }
        if let Some(d) = self.deadline_us {
            write!(f, " deadline={d}us")?;
        }
        if let Some((bx, by)) = self.target_block {
            write!(f, " target=({bx},{by})")?;
        }
        if self.faulty_attempts != 1 {
            write!(f, " attempts={}", self.faulty_attempts)?;
        }
        Ok(())
    }
}

/// The class of an injected (or planned) fault, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Block result discarded before commit.
    Drop,
    /// Bit flip in a committed store.
    Flip,
    /// Block outputs replaced with NaN.
    Poison,
    /// Latency spike on the block.
    Stall,
    /// Block never finishes (virtual hang).
    Hang,
    /// Worker thread panics while executing the block.
    Panic,
    /// Bit flip in an uploaded constant bank.
    ConstFlip,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Drop => "drop",
            FaultKind::Flip => "flip",
            FaultKind::Poison => "poison",
            FaultKind::Stall => "stall",
            FaultKind::Hang => "hang",
            FaultKind::Panic => "panic",
            FaultKind::ConstFlip => "const-flip",
        };
        f.write_str(s)
    }
}

/// One fault a session will inject, as enumerated by
/// [`FaultSession::census`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// Fault class.
    pub kind: FaultKind,
    /// Target block, when the fault is block-scoped (`None` for
    /// constant-bank flips, which precede the launch).
    pub block: Option<(u32, u32)>,
}

/// One bit flip applied to an uploaded constant bank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstFlip {
    /// Constant bank (mask) name.
    pub bank: String,
    /// Element index within the bank.
    pub idx: usize,
    /// Which bit of the IEEE-754 representation is flipped.
    pub bit: u32,
}

/// One attempt's worth of fault decisions for a [`FaultPlan`].
///
/// Implements the simulator's [`FaultHook`] seam. Stateless and pure:
/// every decision is recomputed on demand from `(plan.seed, attempt,
/// block)`, so the engines (which query from worker threads in arbitrary
/// order) and the census (which enumerates in block order) always agree.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    attempt: u32,
}

impl FaultSession {
    /// Session for `attempt` (0-based) of `plan`.
    pub fn new(plan: FaultPlan, attempt: u32) -> Self {
        Self { plan, attempt }
    }

    /// The plan this session draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The attempt index this session injects for.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    fn rng_for(&self, tag: u64, bx: u32, by: u32) -> Pcg32 {
        let block = ((bx as u64) << 32) | by as u64;
        let mix = self.plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (self.attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
            ^ tag.wrapping_mul(0x94d0_49bb_1331_11eb)
            ^ block.wrapping_mul(0x2545_f491_4f6c_dd1d);
        Pcg32::seed_from_u64(mix)
    }

    fn targets(&self, bx: u32, by: u32) -> bool {
        match self.plan.target_block {
            Some(t) => t == (bx, by),
            None => true,
        }
    }

    /// The store fault this session injects into block `(bx, by)`.
    /// Identical to what the engines apply; usable for post-hoc
    /// reporting without rerunning the launch.
    pub fn store_fault(&self, bx: u32, by: u32, border: bool) -> BlockFault {
        if !self.enabled() || !self.targets(bx, by) {
            return BlockFault::None;
        }
        // Fixed draw order; first match wins. Each class consumes its
        // draws unconditionally so one class's rate never perturbs
        // another's stream.
        let mut rng = self.rng_for(TAG_STORE, bx, by);
        let p_drop = rng.gen_f32();
        let p_poison = rng.gen_f32();
        let p_shared = rng.gen_f32();
        let p_global = rng.gen_f32();
        let nth = rng.next_u32();
        if p_drop < self.plan.drop_rate {
            BlockFault::Drop
        } else if border && p_poison < self.plan.poison_boundary_rate {
            BlockFault::Poison
        } else if p_shared < self.plan.shared_flip_rate || p_global < self.plan.global_flip_rate {
            BlockFault::FlipBits {
                nth,
                mask: self.plan.flip_bits,
            }
        } else {
            BlockFault::None
        }
    }

    /// The virtual latency this session charges block `(bx, by)`.
    pub fn latency(&self, bx: u32, by: u32) -> u64 {
        if !self.enabled() || !self.targets(bx, by) {
            return self.plan.base_block_us;
        }
        let mut rng = self.rng_for(TAG_LATENCY, bx, by);
        let p_hang = rng.gen_f32();
        let p_stall = rng.gen_f32();
        if p_hang < self.plan.hang_rate {
            u64::MAX
        } else if p_stall < self.plan.stall_rate {
            self.plan.base_block_us.saturating_add(self.plan.stall_us)
        } else {
            self.plan.base_block_us
        }
    }

    /// Whether this session panics the worker executing block
    /// `(bx, by)`. Drawn from its own stream so arming panics never
    /// perturbs the latency or store-fault decisions.
    pub fn panics(&self, bx: u32, by: u32) -> bool {
        if !self.enabled() || !self.targets(bx, by) || self.plan.panic_rate <= 0.0 {
            return false;
        }
        let mut rng = self.rng_for(TAG_PANIC, bx, by);
        rng.gen_f32() < self.plan.panic_rate
    }

    /// The constant-bank bit flips this session applies, given the
    /// sorted `(bank, len)` table of uploaded banks. Mirrors
    /// [`FaultHook::corrupt_memory`] exactly.
    pub fn const_flip_plan(&self, banks: &[(String, usize)]) -> Vec<ConstFlip> {
        if !self.enabled() || self.plan.const_flips == 0 || banks.is_empty() {
            return Vec::new();
        }
        let total: usize = banks.iter().map(|(_, len)| len).sum();
        if total == 0 {
            return Vec::new();
        }
        let mut flips = Vec::new();
        for k in 0..self.plan.const_flips {
            let mut rng = self.rng_for(TAG_CONST, k, 0);
            let mut slot = rng.gen_below(total as u32) as usize;
            let bit = rng.gen_below(32);
            for (bank, len) in banks {
                if slot < *len {
                    flips.push(ConstFlip {
                        bank: bank.clone(),
                        idx: slot,
                        bit,
                    });
                    break;
                }
                slot -= len;
            }
        }
        flips
    }

    /// Every fault this session will inject into a `grid`-sized launch,
    /// in deterministic order: constant flips first, then block faults
    /// in linear block order (latency faults before store faults per
    /// block). `banks` is the sorted `(name, len)` constant-bank table.
    pub fn census(&self, grid: (u32, u32), banks: &[(String, usize)]) -> Vec<PlannedFault> {
        let mut out = Vec::new();
        for _ in self.const_flip_plan(banks) {
            out.push(PlannedFault {
                kind: FaultKind::ConstFlip,
                block: None,
            });
        }
        for by in 0..grid.1 {
            for bx in 0..grid.0 {
                if self.panics(bx, by) {
                    out.push(PlannedFault {
                        kind: FaultKind::Panic,
                        block: Some((bx, by)),
                    });
                }
                match self.latency(bx, by) {
                    u64::MAX => out.push(PlannedFault {
                        kind: FaultKind::Hang,
                        block: Some((bx, by)),
                    }),
                    l if l > self.plan.base_block_us => out.push(PlannedFault {
                        kind: FaultKind::Stall,
                        block: Some((bx, by)),
                    }),
                    _ => {}
                }
                let kind = match self.store_fault(bx, by, is_border_block(bx, by, grid)) {
                    BlockFault::Drop => Some(FaultKind::Drop),
                    BlockFault::FlipBits { .. } => Some(FaultKind::Flip),
                    BlockFault::Poison => Some(FaultKind::Poison),
                    BlockFault::None => None,
                };
                if let Some(kind) = kind {
                    out.push(PlannedFault {
                        kind,
                        block: Some((bx, by)),
                    });
                }
            }
        }
        out
    }

    /// The sorted `(name, len)` table of constant banks bound in `mem`:
    /// the dynamically uploaded banks plus their `_gmask*` global
    /// fallbacks. This is the domain [`FaultHook::corrupt_memory`] flips
    /// bits in.
    pub fn const_banks(mem: &DeviceMemory) -> Vec<(String, usize)> {
        let mut banks: Vec<(String, usize)> = mem
            .dynamic_const
            .iter()
            .map(|(name, data)| (name.clone(), data.len()))
            .collect();
        for name in mem.buffer_names() {
            if name.starts_with("_gmask") {
                if let Some(buf) = mem.buffer(&name) {
                    banks.push((name, buf.data.len()));
                }
            }
        }
        banks.sort();
        banks
    }
}

impl FaultHook for FaultSession {
    fn enabled(&self) -> bool {
        self.plan.any_armed() && self.attempt < self.plan.faulty_attempts
    }

    fn corrupt_memory(&self, mem: &mut DeviceMemory) {
        let banks = Self::const_banks(mem);
        for flip in self.const_flip_plan(&banks) {
            let cell = match mem.dynamic_const.get_mut(&flip.bank) {
                Some(data) => data.get_mut(flip.idx),
                None => mem
                    .buffer_mut(&flip.bank)
                    .and_then(|b| b.data.get_mut(flip.idx)),
            };
            if let Some(v) = cell {
                *v = f32::from_bits(v.to_bits() ^ (1 << flip.bit));
            }
        }
    }

    fn block_fault(&self, bx: u32, by: u32, border: bool) -> BlockFault {
        self.store_fault(bx, by, border)
    }

    fn block_latency_us(&self, bx: u32, by: u32) -> u64 {
        self.latency(bx, by)
    }

    fn block_panic(&self, bx: u32, by: u32) -> bool {
        self.panics(bx, by)
    }

    fn deadline_us(&self) -> Option<u64> {
        if self.enabled() {
            self.plan.deadline_us
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_disabled() {
        let s = FaultSession::new(FaultPlan::none(), 0);
        assert!(!s.enabled());
        assert_eq!(s.store_fault(0, 0, true), BlockFault::None);
        assert_eq!(s.latency(3, 1), FaultPlan::none().base_block_us);
        assert_eq!(s.deadline_us(), None);
        assert_eq!(FaultPlan::none().summary(), "fault-plan none");
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan {
            seed: 7,
            drop_rate: 0.5,
            stall_rate: 0.5,
            stall_us: 100,
            faulty_attempts: u32::MAX,
            ..FaultPlan::default()
        };
        let a = FaultSession::new(plan.clone(), 0);
        let b = FaultSession::new(plan.clone(), 0);
        let c = FaultSession::new(plan, 1);
        let mut differs = false;
        for by in 0..8 {
            for bx in 0..8 {
                assert_eq!(a.store_fault(bx, by, false), b.store_fault(bx, by, false));
                assert_eq!(a.latency(bx, by), b.latency(bx, by));
                differs |= a.store_fault(bx, by, false) != c.store_fault(bx, by, false);
            }
        }
        assert!(differs, "attempt rotation must reshuffle the fault stream");
    }

    #[test]
    fn transient_faults_clear_after_faulty_attempts() {
        let plan = FaultPlan {
            seed: 3,
            drop_rate: 1.0,
            faulty_attempts: 2,
            ..FaultPlan::default()
        };
        assert!(FaultSession::new(plan.clone(), 0).enabled());
        assert!(FaultSession::new(plan.clone(), 1).enabled());
        let cured = FaultSession::new(plan, 2);
        assert!(!cured.enabled());
        assert_eq!(cured.store_fault(0, 0, false), BlockFault::None);
    }

    #[test]
    fn targeting_restricts_block_faults() {
        let plan = FaultPlan::drop_block(11, (2, 3));
        let s = FaultSession::new(plan, 0);
        assert_eq!(s.store_fault(2, 3, false), BlockFault::Drop);
        assert_eq!(s.store_fault(2, 2, false), BlockFault::None);
        assert_eq!(s.store_fault(0, 0, true), BlockFault::None);
    }

    #[test]
    fn poison_fires_only_on_border_blocks() {
        let plan = FaultPlan {
            seed: 5,
            poison_boundary_rate: 1.0,
            ..FaultPlan::default()
        };
        let s = FaultSession::new(plan, 0);
        assert_eq!(s.store_fault(0, 0, true), BlockFault::Poison);
        assert_eq!(s.store_fault(1, 1, false), BlockFault::None);
    }

    #[test]
    fn census_matches_hook_decisions() {
        let plan = FaultPlan {
            seed: 42,
            drop_rate: 0.3,
            hang_rate: 0.2,
            poison_boundary_rate: 0.4,
            faulty_attempts: u32::MAX,
            ..FaultPlan::default()
        };
        let s = FaultSession::new(plan, 0);
        let grid = (6, 4);
        let census = s.census(grid, &[]);
        assert!(!census.is_empty(), "rates this high must plan something");
        for f in &census {
            let (bx, by) = f.block.expect("block-scoped fault");
            match f.kind {
                FaultKind::Drop => {
                    assert_eq!(
                        s.store_fault(bx, by, is_border_block(bx, by, grid)),
                        BlockFault::Drop
                    );
                }
                FaultKind::Poison => {
                    assert!(is_border_block(bx, by, grid));
                }
                FaultKind::Hang => assert_eq!(s.latency(bx, by), u64::MAX),
                _ => {}
            }
        }
    }

    #[test]
    fn const_flip_plan_is_stable_and_bounded() {
        let banks = vec![("_cmask".to_string(), 9), ("_gmask0".to_string(), 25)];
        let plan = FaultPlan::corrupt_constants(9, 3);
        let s = FaultSession::new(plan, 0);
        let flips = s.const_flip_plan(&banks);
        assert_eq!(flips.len(), 3);
        for f in &flips {
            let len = banks.iter().find(|(n, _)| *n == f.bank).unwrap().1;
            assert!(f.idx < len);
            assert!(f.bit < 32);
        }
        assert_eq!(flips, s.const_flip_plan(&banks), "plan must be pure");
        assert!(s.const_flip_plan(&[]).is_empty());
    }

    #[test]
    fn plan_summary_mentions_armed_classes() {
        let plan = FaultPlan {
            seed: 1,
            drop_rate: 0.25,
            deadline_us: Some(500),
            target_block: Some((1, 2)),
            ..FaultPlan::default()
        };
        let s = plan.summary();
        assert!(s.contains("seed=1"), "{s}");
        assert!(s.contains("drop=0.25"), "{s}");
        assert!(s.contains("deadline=500us"), "{s}");
        assert!(s.contains("target=(1,2)"), "{s}");
    }
}
