//! Kernel-configuration selection — Algorithm 2 of the paper.
//!
//! Given a kernel's resource usage, the device model, and the boundary-
//! handling metadata (window size plus image size), the heuristic:
//!
//! 1. keeps configurations that are a multiple of the SIMD width and fit
//!    the device's resource limits,
//! 2. sorts by descending occupancy and ascending thread count,
//! 3. without border handling: picks the top configuration, tiling
//!    x-major (`128×1`-style — "such configurations are typically selected
//!    by expert programmers"),
//! 4. with border handling: prefers the y-dimension for tiling and, among
//!    the highest-occupancy candidates, minimizes the number of threads
//!    that live in blocks executing boundary-handling conditionals.

use crate::device::DeviceModel;
use crate::occupancy::{occupancy, Occupancy};
use crate::resources::KernelResources;

/// A kernel launch configuration (threads per block in x and y).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Threads per block, x.
    pub bx: u32,
    /// Threads per block, y.
    pub by: u32,
}

impl LaunchConfig {
    /// Total threads per block.
    pub fn threads(&self) -> u32 {
        self.bx * self.by
    }

    /// Grid dimensions covering a `width × height` iteration space.
    pub fn grid_for(&self, width: u32, height: u32) -> (u32, u32) {
        (width.div_ceil(self.bx), height.div_ceil(self.by))
    }

    /// The next step of graceful tile degradation: halve the y-tiling
    /// first (it is the optional dimension Algorithm 2 added for border
    /// handling), then the block width, never shrinking below
    /// `min_threads` total threads. Returns `None` once the tile cannot
    /// shrink further — the degradation chain is exhausted.
    pub fn halved(&self, min_threads: u32) -> Option<LaunchConfig> {
        let next = if self.by > 1 {
            LaunchConfig {
                bx: self.bx,
                by: self.by / 2,
            }
        } else if self.bx > 1 {
            LaunchConfig {
                bx: self.bx / 2,
                by: 1,
            }
        } else {
            return None;
        };
        (next.threads() >= min_threads.max(1)).then_some(next)
    }
}

impl std::fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.bx, self.by)
    }
}

/// Boundary-handling metadata consumed by the heuristic: the half-window
/// of the largest accessor and the image geometry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BorderInfo {
    /// Half-window in x (`m` of a `(2m+1)` wide operator).
    pub half_x: u32,
    /// Half-window in y.
    pub half_y: u32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl BorderInfo {
    /// Number of threads residing in blocks that execute boundary-handling
    /// conditionals for a given configuration — the quantity Algorithm 2
    /// minimizes (`threads_bh`).
    ///
    /// A block executes a specialized border body when its tile is within
    /// the window's reach of an image edge, so whole border block rows and
    /// columns count even if only part of their threads touch the border.
    pub fn threads_bh(&self, cfg: LaunchConfig) -> u64 {
        let (gx, gy) = cfg.grid_for(self.width, self.height);
        let bh_cols_left = self.half_x.div_ceil(cfg.bx).min(gx);
        let bh_cols_right = self.half_x.div_ceil(cfg.bx).min(gx - bh_cols_left);
        let bh_rows_top = self.half_y.div_ceil(cfg.by).min(gy);
        let bh_rows_bottom = self.half_y.div_ceil(cfg.by).min(gy - bh_rows_top);
        let interior_x = gx - bh_cols_left - bh_cols_right;
        let interior_y = gy - bh_rows_top - bh_rows_bottom;
        let total_blocks = gx as u64 * gy as u64;
        let interior_blocks = interior_x as u64 * interior_y as u64;
        (total_blocks - interior_blocks) * cfg.threads() as u64
    }
}

/// Result of the selection heuristic.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionResult {
    /// The chosen configuration.
    pub config: LaunchConfig,
    /// Its occupancy on the device.
    pub occupancy: Occupancy,
    /// `threads_bh` for the chosen configuration (0 without border
    /// handling).
    pub threads_bh: u64,
    /// All valid candidates with their occupancy, sorted as the heuristic
    /// saw them (descending occupancy, ascending threads) — exposed for
    /// the configuration-exploration mode of Section V-D / Figure 4.
    pub candidates: Vec<(LaunchConfig, Occupancy)>,
}

/// Enumerate candidate configurations for a device: block widths that are
/// multiples of the SIMD width (for coalesced accesses), crossed with
/// y-tilings, bounded by the maximum block size.
pub fn enumerate_configs(dev: &DeviceModel) -> Vec<LaunchConfig> {
    let mut out = Vec::new();
    let max = dev.max_threads_per_block;
    let mut bx = dev.simd_width;
    while bx <= max.min(1024) {
        let mut by = 1;
        while bx * by <= max {
            out.push(LaunchConfig { bx, by });
            by += 1;
        }
        bx += dev.simd_width;
    }
    out
}

/// Run Algorithm 2.
///
/// `border` carries the boundary-handling metadata when the compiler
/// generated border-specialized code; `None` reproduces the "no border
/// handling" branch.
pub fn select_configuration(
    dev: &DeviceModel,
    res: &KernelResources,
    border: Option<BorderInfo>,
) -> Option<SelectionResult> {
    // Line 1–2: multiples of SIMD width within resource limits.
    let mut candidates: Vec<(LaunchConfig, Occupancy)> = enumerate_configs(dev)
        .into_iter()
        .filter(|c| c.threads() % dev.simd_width == 0)
        .filter_map(|c| occupancy(dev, res, c.bx, c.by).map(|o| (c, o)))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // Line 3: sort by descending occupancy, ascending thread count. To
    // make the result fully deterministic we also order by x-major tiling
    // preference within ties (larger bx first for the no-BH branch).
    candidates.sort_by(|(ca, oa), (cb, ob)| {
        ob.occupancy
            .partial_cmp(&oa.occupancy)
            .unwrap()
            .then(ca.threads().cmp(&cb.threads()))
            .then(cb.bx.cmp(&ca.bx))
    });

    match border {
        None => {
            // Lines 18–20: highest occupancy, fewest threads, x-major
            // tiling (prefer x over y). Within the same thread count the
            // sort already placed the widest-x variant first.
            let (config, occ) = candidates[0];
            Some(SelectionResult {
                config,
                occupancy: occ,
                threads_bh: 0,
                candidates,
            })
        }
        Some(info) => {
            // Lines 4–17: start from the top candidate, then scan the
            // highest-occupancy group for the configuration minimizing
            // threads_bh, preferring y over x for tiling (the sort's
            // ascending-threads order means narrow-x/tall-y configs with
            // the same product are reached; prefer-y is realized by
            // comparing threads_bh which tall tiles minimize for
            // symmetric windows).
            let top_occ = candidates[0].1.occupancy;
            let group: Vec<&(LaunchConfig, Occupancy)> = candidates
                .iter()
                .filter(|(_, o)| (o.occupancy - top_occ).abs() < 1e-12)
                .collect();
            let mut best = group[0];
            let mut best_bh = info.threads_bh(best.0);
            for cand in &group[1..] {
                let bh = info.threads_bh(cand.0);
                let better = bh < best_bh
                    || (bh == best_bh && cand.0.threads() < best.0.threads())
                    || (bh == best_bh
                        && cand.0.threads() == best.0.threads()
                        && cand.0.by > best.0.by);
                if better {
                    best = cand;
                    best_bh = bh;
                }
            }
            Some(SelectionResult {
                config: best.0,
                occupancy: best.1,
                threads_bh: best_bh,
                candidates: candidates.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{radeon_hd_5870, tesla_c2050};

    fn bilateral_like() -> KernelResources {
        // Typical register footprint of the generated bilateral kernel.
        KernelResources {
            registers_per_thread: 22,
            shared_bytes: 0,
            instruction_estimate: 400,
        }
    }

    fn border_13x13() -> BorderInfo {
        BorderInfo {
            half_x: 6,
            half_y: 6,
            width: 4096,
            height: 4096,
        }
    }

    #[test]
    fn no_border_prefers_x_major_tiling() {
        let sel = select_configuration(&tesla_c2050(), &bilateral_like(), None).unwrap();
        // "we get 1D-configurations like 128x1 or 256x1".
        assert_eq!(sel.config.by, 1, "selected {}", sel.config);
        assert!(sel.config.bx >= 128, "selected {}", sel.config);
        assert!(sel.occupancy.occupancy > 0.9);
    }

    #[test]
    fn border_prefers_tall_tiles_paper_example() {
        // "we prefer a configuration of 32x6 over 32x4 for a window size
        // of 13x13; a configuration of 32x3, however, would be preferred
        // to the two aforementioned."
        let info = border_13x13();
        let c = |bx, by| LaunchConfig { bx, by };
        assert!(info.threads_bh(c(32, 6)) < info.threads_bh(c(32, 4)));
        assert!(info.threads_bh(c(32, 3)) <= info.threads_bh(c(32, 6)));
        // 32x3 has fewer threads, so it wins the tie.
        assert_eq!(info.threads_bh(c(32, 3)), info.threads_bh(c(32, 6)));
        assert!(c(32, 3).threads() < c(32, 6).threads());
    }

    #[test]
    fn border_selection_minimizes_threads_bh() {
        let sel =
            select_configuration(&tesla_c2050(), &bilateral_like(), Some(border_13x13())).unwrap();
        // The winner must not be beaten by any same-occupancy candidate.
        let top = sel.occupancy.occupancy;
        for (c, o) in &sel.candidates {
            if (o.occupancy - top).abs() < 1e-12 {
                assert!(
                    border_13x13().threads_bh(*c) >= sel.threads_bh,
                    "{c} beats selected {}",
                    sel.config
                );
            }
        }
        // And it is a tall-ish tile, not 1D.
        assert!(sel.config.by > 1, "selected {}", sel.config);
    }

    #[test]
    fn candidates_are_simd_multiples_and_valid() {
        let dev = radeon_hd_5870();
        let sel = select_configuration(&dev, &bilateral_like(), None).unwrap();
        for (c, _) in &sel.candidates {
            assert_eq!(c.threads() % dev.simd_width, 0);
            assert!(c.threads() <= dev.max_threads_per_block);
        }
        // AMD cap is 256 threads.
        assert!(sel.config.threads() <= 256);
    }

    #[test]
    fn selection_is_pareto_optimal_in_occupancy() {
        let dev = tesla_c2050();
        let res = bilateral_like();
        let sel = select_configuration(&dev, &res, None).unwrap();
        for (c, o) in &sel.candidates {
            assert!(
                o.occupancy <= sel.occupancy.occupancy + 1e-12,
                "{c} has higher occupancy than the selection"
            );
        }
    }

    #[test]
    fn smem_heavy_kernel_still_selects_valid_config() {
        let res = KernelResources {
            registers_per_thread: 32,
            shared_bytes: 20_000,
            instruction_estimate: 500,
        };
        let sel = select_configuration(&tesla_c2050(), &res, None).unwrap();
        assert!(sel.occupancy.blocks_per_sm >= 1);
    }

    #[test]
    fn impossible_kernel_returns_none() {
        let res = KernelResources {
            registers_per_thread: 32,
            shared_bytes: 1 << 20, // 1 MiB never fits
            instruction_estimate: 0,
        };
        assert!(select_configuration(&tesla_c2050(), &res, None).is_none());
    }

    #[test]
    fn grid_covers_image() {
        let c = LaunchConfig { bx: 128, by: 1 };
        assert_eq!(c.grid_for(4096, 4096), (32, 4096));
        let c = LaunchConfig { bx: 32, by: 6 };
        assert_eq!(c.grid_for(4096, 4096), (128, 683));
    }

    #[test]
    fn halved_degrades_y_then_x_down_to_the_floor() {
        let mut cfg = LaunchConfig { bx: 128, by: 4 };
        let mut chain = Vec::new();
        while let Some(next) = cfg.halved(32) {
            chain.push(next);
            cfg = next;
        }
        assert_eq!(
            chain,
            vec![
                LaunchConfig { bx: 128, by: 2 },
                LaunchConfig { bx: 128, by: 1 },
                LaunchConfig { bx: 64, by: 1 },
                LaunchConfig { bx: 32, by: 1 },
            ]
        );
        assert_eq!(cfg.halved(32), None, "at the floor");
        assert_eq!(LaunchConfig { bx: 1, by: 1 }.halved(1), None);
    }

    #[test]
    fn threads_bh_zero_for_windowless_kernel() {
        let info = BorderInfo {
            half_x: 0,
            half_y: 0,
            width: 4096,
            height: 4096,
        };
        assert_eq!(info.threads_bh(LaunchConfig { bx: 128, by: 1 }), 0);
    }

    #[test]
    fn threads_bh_counts_whole_border_blocks() {
        // 128-wide image, 32x4 blocks, halo 6: 4 block columns, 32 rows.
        let info = BorderInfo {
            half_x: 6,
            half_y: 6,
            width: 128,
            height: 128,
        };
        let c = LaunchConfig { bx: 32, by: 4 };
        // gx=4, gy=32; left/right 1 col each; top/bottom 2 rows each.
        // interior = 2 * 28 = 56; total = 128; border = 72 blocks.
        assert_eq!(info.threads_bh(c), 72 * 128);
    }
}
