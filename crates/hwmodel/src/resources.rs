//! Kernel resource estimation — the stand-in for `nvcc`'s PTXAS report.
//!
//! The paper passes generated CUDA/OpenCL to `nvcc` / the OpenCL runtime
//! and reads back per-kernel register and shared-memory usage, which feeds
//! the occupancy calculation. We do not have those toolchains, so this
//! module derives the same numbers from the device-level IR with a simple,
//! deterministic, monotone cost model:
//!
//! * **Registers** — a fixed base (index arithmetic, parameters) plus one
//!   register per live scalar declaration, plus extras for texture paths
//!   and loop state, clamped to the device maximum at launch time.
//! * **Shared memory** — exact, from the staged-tile declarations.
//! * **Instructions** — the static statement/expression count (used by the
//!   timing model's instruction-fetch component).
//!
//! The absolute numbers do not need to match PTXAS; what matters is that
//! heavier kernels report more pressure, so the heuristic exercises the
//! same occupancy-limit decisions as the original.

use hipacc_ir::kernel::DeviceKernelDef;
use hipacc_ir::{Expr, Stmt};

/// Resource usage of one compiled kernel.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KernelResources {
    /// Estimated 32-bit registers per thread.
    pub registers_per_thread: u32,
    /// Scratchpad bytes per block.
    pub shared_bytes: u32,
    /// Static instruction estimate (expression nodes).
    pub instruction_estimate: u32,
}

/// Estimate resources for a device-level kernel.
pub fn estimate_resources(kernel: &DeviceKernelDef) -> KernelResources {
    // Distinct declared scalars, at any nesting depth. The nine region
    // bodies of a boundary-specialized kernel redeclare the same names, so
    // distinct-name counting naturally models register reuse across the
    // mutually exclusive branches (a register allocator would assign them
    // the same registers).
    let mut decls: Vec<String> = Vec::new();
    let mut uses_texture = false;
    let mut expr_nodes = 0u32;
    Stmt::visit_all(&kernel.body, &mut |s| {
        if let Stmt::Decl { name, .. } = s {
            if !decls.contains(name) {
                decls.push(name.clone());
            }
        }
    });
    Stmt::visit_exprs(&kernel.body, &mut |e| {
        expr_nodes += 1;
        if matches!(e, Expr::TexFetch { .. }) {
            uses_texture = true;
        }
    });

    // Loop induction registers: only simultaneously-live loops count, so
    // take the maximum For-nesting depth rather than the total loop count
    // (sequential and branch-exclusive loops reuse registers).
    fn loop_depth(stmts: &[Stmt]) -> u32 {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::For { body, .. } => 1 + loop_depth(body),
                Stmt::If { then, els, .. } => loop_depth(then).max(loop_depth(els)),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
    let depth = loop_depth(&kernel.body);

    // Base cost: thread-index computation, stride arithmetic, parameter
    // registers. One register per live declaration is generous but
    // monotone; nested loops carry induction state; the texture path pins
    // a few registers for the fetch setup.
    let base = 10u32;
    let registers = base
        + decls.len() as u32
        + depth
        + if uses_texture { 2 } else { 0 }
        + (kernel.buffers.len() as u32);

    KernelResources {
        registers_per_thread: registers,
        shared_bytes: kernel.shared_bytes(),
        instruction_estimate: expr_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::kernel::*;
    use hipacc_ir::ty::ScalarType;
    use hipacc_ir::{Expr, Stmt};

    fn minimal_kernel(body: Vec<Stmt>, shared: Vec<SharedDecl>) -> DeviceKernelDef {
        DeviceKernelDef {
            name: "k".into(),
            buffers: vec![
                BufferParam {
                    name: "IN".into(),
                    ty: ScalarType::F32,
                    access: BufferAccess::ReadOnly,
                    space: MemorySpace::Global,
                    address_mode: AddressMode::None,
                },
                BufferParam {
                    name: "OUT".into(),
                    ty: ScalarType::F32,
                    access: BufferAccess::WriteOnly,
                    space: MemorySpace::Global,
                    address_mode: AddressMode::None,
                },
            ],
            scalars: vec![],
            const_buffers: vec![],
            shared,
            body,
        }
    }

    #[test]
    fn more_declarations_mean_more_registers() {
        let small = minimal_kernel(
            vec![Stmt::Decl {
                name: "a".into(),
                ty: ScalarType::F32,
                init: Some(Expr::float(0.0)),
            }],
            vec![],
        );
        let big_body: Vec<Stmt> = (0..12)
            .map(|i| Stmt::Decl {
                name: format!("v{i}"),
                ty: ScalarType::F32,
                init: Some(Expr::float(0.0)),
            })
            .collect();
        let big = minimal_kernel(big_body, vec![]);
        let rs = estimate_resources(&small);
        let rb = estimate_resources(&big);
        assert!(rb.registers_per_thread > rs.registers_per_thread);
    }

    #[test]
    fn shared_bytes_are_exact() {
        let k = minimal_kernel(
            vec![],
            vec![SharedDecl {
                name: "_smem".into(),
                ty: ScalarType::F32,
                rows: 13,
                cols: 141,
            }],
        );
        assert_eq!(estimate_resources(&k).shared_bytes, 13 * 141 * 4);
    }

    #[test]
    fn texture_path_costs_extra_registers() {
        let plain = minimal_kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::GlobalLoad {
                    buf: "IN".into(),
                    idx: Box::new(Expr::int(0)),
                },
            }],
            vec![],
        );
        let tex = minimal_kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::TexFetch {
                    buf: "IN".into(),
                    coords: hipacc_ir::TexCoords::Linear(Box::new(Expr::int(0))),
                },
            }],
            vec![],
        );
        assert!(
            estimate_resources(&tex).registers_per_thread
                > estimate_resources(&plain).registers_per_thread
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let k = minimal_kernel(vec![Stmt::Barrier], vec![]);
        assert_eq!(estimate_resources(&k), estimate_resources(&k));
    }
}
