//! The micro-benchmark-derived optimization database (Section V-B).
//!
//! "The knowledge we get from our micro-benchmarks is stored in a
//! database that is utilized by the source-to-source compiler to decide
//! what optimization should be applied for which a) target hardware and
//! b) backend. This includes the amount of padding required for optimal
//! memory bandwidth utilization, whether texture memory is beneficial, or
//! whether constant memory should be initialized statically or
//! dynamically."
//!
//! The entries below encode the conclusions visible in the paper's own
//! result tables:
//!
//! * CUDA on NVIDIA: linear texture memory is beneficial for local
//!   operators (Tables II/IV: `+Tex` rows beat plain rows).
//! * OpenCL on NVIDIA: image objects are *not* beneficial ("the benefit of
//!   texturing hardware in OpenCL is not present anymore since no linear
//!   memory can be used").
//! * AMD: texture impact is marginal and unpredictable for scalar code;
//!   default to plain global loads.
//! * Scratchpad staging rarely pays off for small windows ("staging to
//!   scratchpad memory makes only sense in case the benefit of data reuse
//!   exceeds the multithreading benefit. For local operators with small
//!   window sizes, this is rarely the case").
//! * Masks always go to constant memory; statically when the coefficients
//!   are compile-time constants.

use crate::device::{Backend, DeviceModel, Vendor};

/// Optimization decisions for one (device, backend) pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OptimizationFlags {
    /// Read inputs through the texture path.
    pub use_texture: bool,
    /// Stage input tiles into scratchpad memory.
    pub use_scratchpad: bool,
    /// Place masks in statically initialized constant memory when the
    /// coefficients are known at compile time.
    pub static_const_mem: bool,
    /// Global-memory row padding (bytes) for coalescing.
    pub padding_bytes: u32,
    /// Map math functions to fast hardware intrinsics (`__expf`). The
    /// paper supports this but disables it for the evaluation; we default
    /// to off for the same reason.
    pub fast_intrinsics: bool,
}

/// The database: a total function over (device, backend).
#[derive(Clone, Debug, Default)]
pub struct OptimizationDb;

impl OptimizationDb {
    /// Create the built-in database.
    pub fn new() -> Self {
        OptimizationDb
    }

    /// Decide optimization flags for a device/backend pair, optionally
    /// overridden by the local-operator window size (scratchpad staging
    /// only pays off for large windows).
    pub fn flags(
        &self,
        dev: &DeviceModel,
        backend: Backend,
        window: (u32, u32),
    ) -> OptimizationFlags {
        let window_area = window.0 as u64 * window.1 as u64;
        // Threshold where data reuse beats the lost multithreading:
        // micro-benchmarks in the paper put 13x13 below it on all targets
        // (the +Smem rows lose in Tables VIII/IX even at 5x5); we keep
        // staging off until very large windows.
        let scratchpad_pays = window_area > 441; // > 21x21
        match (dev.vendor, backend) {
            (Vendor::Nvidia, Backend::Cuda) => OptimizationFlags {
                use_texture: true,
                use_scratchpad: scratchpad_pays,
                static_const_mem: true,
                padding_bytes: 256,
                fast_intrinsics: false,
            },
            (Vendor::Nvidia, Backend::OpenCl) => OptimizationFlags {
                use_texture: false,
                use_scratchpad: scratchpad_pays,
                static_const_mem: true,
                padding_bytes: 256,
                fast_intrinsics: false,
            },
            (Vendor::Amd, Backend::OpenCl) => OptimizationFlags {
                use_texture: false,
                use_scratchpad: scratchpad_pays,
                static_const_mem: true,
                padding_bytes: 256,
                fast_intrinsics: false,
            },
            (Vendor::Amd, Backend::Cuda) => {
                // CUDA cannot target AMD; fall back to conservative flags
                // (callers validate this combination separately).
                OptimizationFlags {
                    use_texture: false,
                    use_scratchpad: false,
                    static_const_mem: true,
                    padding_bytes: 256,
                    fast_intrinsics: false,
                }
            }
        }
    }

    /// Whether the backend can target the device at all.
    pub fn backend_supported(&self, dev: &DeviceModel, backend: Backend) -> bool {
        !(dev.vendor == Vendor::Amd && backend == Backend::Cuda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{quadro_fx_5800, radeon_hd_5870, tesla_c2050};

    #[test]
    fn cuda_on_nvidia_uses_texture() {
        let db = OptimizationDb::new();
        let f = db.flags(&tesla_c2050(), Backend::Cuda, (13, 13));
        assert!(f.use_texture);
        assert!(f.static_const_mem);
        let f = db.flags(&quadro_fx_5800(), Backend::Cuda, (13, 13));
        assert!(f.use_texture);
    }

    #[test]
    fn opencl_avoids_image_objects() {
        let db = OptimizationDb::new();
        assert!(
            !db.flags(&tesla_c2050(), Backend::OpenCl, (13, 13))
                .use_texture
        );
        assert!(
            !db.flags(&radeon_hd_5870(), Backend::OpenCl, (13, 13))
                .use_texture
        );
    }

    #[test]
    fn scratchpad_off_for_small_windows() {
        let db = OptimizationDb::new();
        for dev in [tesla_c2050(), radeon_hd_5870()] {
            assert!(!db.flags(&dev, Backend::OpenCl, (3, 3)).use_scratchpad);
            assert!(!db.flags(&dev, Backend::OpenCl, (13, 13)).use_scratchpad);
            assert!(db.flags(&dev, Backend::OpenCl, (25, 25)).use_scratchpad);
        }
    }

    #[test]
    fn cuda_cannot_target_amd() {
        let db = OptimizationDb::new();
        assert!(!db.backend_supported(&radeon_hd_5870(), Backend::Cuda));
        assert!(db.backend_supported(&radeon_hd_5870(), Backend::OpenCl));
        assert!(db.backend_supported(&tesla_c2050(), Backend::Cuda));
        assert!(db.backend_supported(&tesla_c2050(), Backend::OpenCl));
    }

    #[test]
    fn padding_matches_row_alignment() {
        let db = OptimizationDb::new();
        let f = db.flags(&tesla_c2050(), Backend::Cuda, (13, 13));
        assert_eq!(f.padding_bytes, 256);
    }
}
