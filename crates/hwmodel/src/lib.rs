//! # hipacc-hwmodel
//!
//! The abstract GPU hardware model of Section V of the paper.
//!
//! The paper's compiler keeps "an abstract architecture model of the target
//! graphics card hardware" describing SIMD width, thread-configuration
//! limits, register file and shared memory (with allocation granularity),
//! and uses it to (a) reject invalid kernel configurations, (b) compute
//! *occupancy*, and (c) select a configuration and 2-D tiling via the
//! heuristic of Algorithm 2. This crate reproduces all three, plus the
//! micro-benchmark-derived optimization database of Section V-B and the
//! resource estimator that stands in for `nvcc --ptxas-options=-v`.
//!
//! The device database covers the four cards of the evaluation — Tesla
//! C2050 and Quadro FX 5800 (NVIDIA), Radeon HD 5870 and HD 6970 (AMD) —
//! plus the other CUDA compute capabilities the paper says its database
//! contains.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod heuristic;
pub mod occupancy;
pub mod optdb;
pub mod resources;

pub use device::{Architecture, Backend, DeviceModel, Vendor};
pub use heuristic::{select_configuration, BorderInfo, LaunchConfig, SelectionResult};
pub use occupancy::{occupancy, ConfigValidity, Occupancy};
pub use optdb::{OptimizationDb, OptimizationFlags};
pub use resources::{estimate_resources, KernelResources};
