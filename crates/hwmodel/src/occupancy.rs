//! The occupancy calculator.
//!
//! Occupancy — resident warps divided by the hardware maximum — is the
//! quantity the paper's heuristic maximizes "in order to hide instruction
//! and global memory latency". The calculation follows NVIDIA's occupancy
//! spreadsheet: resident blocks per SIMD unit are limited by (a) the warp
//! budget, (b) the register file under the device's allocation
//! granularity, (c) shared memory under its granularity, and (d) the
//! hardware block cap; occupancy follows from the minimum.

use crate::device::{Architecture, DeviceModel};
use crate::resources::KernelResources;

/// Why a configuration is invalid on a device, mirroring the "kernel
/// launch error at run-time" the paper warns about when "a configuration …
/// allocates more resources than available".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigValidity {
    /// Valid configuration.
    Valid,
    /// More threads per block than the device allows.
    TooManyThreads,
    /// Register demand exceeds the register file for even one block.
    RegistersExhausted,
    /// Scratchpad demand exceeds the per-SM scratchpad.
    SharedMemoryExhausted,
    /// A block dimension is zero.
    ZeroDimension,
}

/// The result of an occupancy calculation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SIMD unit.
    pub blocks_per_sm: u32,
    /// Resident warps per SIMD unit.
    pub active_warps: u32,
    /// `active_warps / max_warps`, in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource limits the block count (for diagnostics).
    pub limiter: Limiter,
}

/// The resource that bounds residency.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Warp budget (max threads per SM).
    Warps,
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// Hardware cap on resident blocks.
    BlockCap,
}

fn div_round_up(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

fn round_up_to(v: u32, granularity: u32) -> u32 {
    if granularity == 0 {
        v
    } else {
        div_round_up(v, granularity) * granularity
    }
}

/// Check whether a `(bx, by)` configuration can launch at all.
pub fn validate(dev: &DeviceModel, res: &KernelResources, bx: u32, by: u32) -> ConfigValidity {
    if bx == 0 || by == 0 {
        return ConfigValidity::ZeroDimension;
    }
    let threads = bx * by;
    if threads > dev.max_threads_per_block {
        return ConfigValidity::TooManyThreads;
    }
    if registers_per_block(dev, res, threads) > dev.registers_per_sm {
        return ConfigValidity::RegistersExhausted;
    }
    if round_up_to(res.shared_bytes, dev.shared_granularity) > dev.shared_mem_per_sm {
        return ConfigValidity::SharedMemoryExhausted;
    }
    ConfigValidity::Valid
}

/// Register allocation for one block under the device's strategy.
fn registers_per_block(dev: &DeviceModel, res: &KernelResources, threads: u32) -> u32 {
    let regs = res.registers_per_thread.min(dev.max_registers_per_thread);
    match dev.arch {
        // Fermi allocates per warp, rounded to the warp granularity.
        Architecture::Fermi => {
            let warps = div_round_up(threads, dev.simd_width);
            warps * round_up_to(regs * dev.simd_width, dev.register_granularity)
        }
        // Pre-Fermi NVIDIA (and our AMD approximation) allocate per block,
        // rounded to the block granularity.
        _ => round_up_to(
            round_up_to(threads, dev.simd_width) * regs,
            dev.register_granularity,
        ),
    }
}

/// Compute occupancy of a valid `(bx, by)` configuration.
///
/// Returns `None` for invalid configurations.
pub fn occupancy(dev: &DeviceModel, res: &KernelResources, bx: u32, by: u32) -> Option<Occupancy> {
    if validate(dev, res, bx, by) != ConfigValidity::Valid {
        return None;
    }
    let threads = bx * by;
    let warps_per_block = div_round_up(threads, dev.simd_width);
    let max_warps = dev.max_warps_per_sm();

    // `limit_warps` etc. are the per-resource residency bounds.
    let limit_warps = max_warps / warps_per_block;
    let regs_block = registers_per_block(dev, res, threads);
    let limit_regs = dev
        .registers_per_sm
        .checked_div(regs_block)
        .unwrap_or(u32::MAX);
    let smem_block = round_up_to(res.shared_bytes.max(1), dev.shared_granularity);
    let limit_smem = dev.shared_mem_per_sm / smem_block;
    let limit_cap = dev.max_blocks_per_sm;

    let blocks = limit_warps.min(limit_regs).min(limit_smem).min(limit_cap);
    if blocks == 0 {
        return None;
    }
    let limiter = if blocks == limit_warps {
        Limiter::Warps
    } else if blocks == limit_regs {
        Limiter::Registers
    } else if blocks == limit_smem {
        Limiter::SharedMemory
    } else {
        Limiter::BlockCap
    };
    let active_warps = blocks * warps_per_block;
    Some(Occupancy {
        blocks_per_sm: blocks,
        active_warps,
        occupancy: active_warps as f64 / max_warps as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{quadro_fx_5800, radeon_hd_5870, tesla_c2050};

    fn light() -> KernelResources {
        KernelResources {
            registers_per_thread: 16,
            shared_bytes: 0,
            instruction_estimate: 100,
        }
    }

    #[test]
    fn full_occupancy_with_light_kernel() {
        // 16 regs, no smem, 192 threads: Fermi fits 8 blocks (block cap)
        // = 48 warps = 100%.
        let o = occupancy(&tesla_c2050(), &light(), 32, 6).unwrap();
        assert_eq!(o.active_warps, 48);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_never_exceeds_one() {
        let dev = tesla_c2050();
        let res = light();
        for bx in [32, 64, 128, 256, 512, 1024] {
            for by in 1..=8 {
                if let Some(o) = occupancy(&dev, &res, bx, by) {
                    assert!(o.occupancy <= 1.0 + 1e-12, "{bx}x{by}: {}", o.occupancy);
                    assert!(o.occupancy > 0.0);
                }
            }
        }
    }

    #[test]
    fn register_pressure_reduces_occupancy() {
        let dev = tesla_c2050();
        let heavy = KernelResources {
            registers_per_thread: 63,
            shared_bytes: 0,
            instruction_estimate: 100,
        };
        let o_light = occupancy(&dev, &light(), 256, 1).unwrap();
        let o_heavy = occupancy(&dev, &heavy, 256, 1).unwrap();
        assert!(o_heavy.occupancy < o_light.occupancy);
        assert_eq!(o_heavy.limiter, Limiter::Registers);
    }

    #[test]
    fn shared_memory_limits_blocks() {
        let dev = tesla_c2050();
        let smem_hog = KernelResources {
            registers_per_thread: 16,
            shared_bytes: 24 * 1024, // two blocks fit in 48 KiB
            instruction_estimate: 100,
        };
        let o = occupancy(&dev, &smem_hog, 128, 1).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn invalid_configurations_rejected() {
        let dev = radeon_hd_5870(); // 256-thread block cap
        assert_eq!(
            validate(&dev, &light(), 512, 1),
            ConfigValidity::TooManyThreads
        );
        assert_eq!(
            validate(&dev, &light(), 0, 4),
            ConfigValidity::ZeroDimension
        );
        let smem_over = KernelResources {
            shared_bytes: 64 * 1024,
            ..light()
        };
        assert_eq!(
            validate(&dev, &smem_over, 64, 1),
            ConfigValidity::SharedMemoryExhausted
        );
        assert!(occupancy(&dev, &smem_over, 64, 1).is_none());
    }

    #[test]
    fn gt200_block_granularity_rounds_registers() {
        // On GT200 registers allocate per block rounded to 512: a 33-thread
        // block (2 warps = 64 lanes) with 16 regs consumes
        // round_up(64*16, 512) = 1024 regs.
        let dev = quadro_fx_5800();
        let o_33 = occupancy(&dev, &light(), 33, 1).unwrap();
        let o_64 = occupancy(&dev, &light(), 64, 1).unwrap();
        // Both allocate two warps' worth; same block count limit by warps.
        assert_eq!(o_33.active_warps, o_64.active_warps);
    }

    #[test]
    fn occupancy_monotone_in_register_use() {
        let dev = tesla_c2050();
        let mut last = f64::INFINITY;
        for regs in [8u32, 16, 24, 32, 40, 48, 56, 63] {
            let res = KernelResources {
                registers_per_thread: regs,
                shared_bytes: 0,
                instruction_estimate: 0,
            };
            let o = occupancy(&dev, &res, 128, 1).unwrap().occupancy;
            assert!(o <= last + 1e-12, "occupancy increased with more regs");
            last = o;
        }
    }

    #[test]
    fn paper_example_128x1_is_valid_everywhere() {
        // The tables all use a 128x1 configuration on NVIDIA; AMD's cap is
        // 256 so 128x1 is valid there too.
        for dev in crate::device::all_devices() {
            assert_eq!(
                validate(&dev, &light(), 128, 1),
                ConfigValidity::Valid,
                "{}",
                dev.name
            );
        }
    }
}
