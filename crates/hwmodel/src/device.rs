//! The device database.
//!
//! Each [`DeviceModel`] captures the architectural facts the paper's
//! compiler consults — the "hardware model of the target GPU, describing
//! a) the SIMD width, b) the maximal thread configuration …, c) the
//! maximal threads that can be mapped to a SIMD unit, and d) the maximal
//! available registers and shared memory as well as their allocation
//! strategy" — plus the throughput parameters the analytical timing model
//! needs (clock, SMs, bandwidth, latency, SFU ratio, VLIW width).
//!
//! All numbers are public-specification values for the real cards; they
//! are *frozen* here and never tuned per experiment.

/// GPU vendor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA (CUDA and OpenCL backends).
    Nvidia,
    /// AMD (OpenCL backend only, as in the paper).
    Amd,
}

/// Microarchitecture family, which decides coalescing rules, default
/// caching and register allocation granularity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// NVIDIA Tesla G80/G92 (compute capability 1.0/1.1).
    G80,
    /// NVIDIA GT200 (compute capability 1.2/1.3) — Quadro FX 5800.
    GT200,
    /// NVIDIA Fermi (compute capability 2.x) — Tesla C2050.
    Fermi,
    /// AMD VLIW5 (Evergreen) — Radeon HD 5870.
    Vliw5,
    /// AMD VLIW4 (Northern Islands) — Radeon HD 6970.
    Vliw4,
}

impl Architecture {
    /// Scalar lanes ganged per VLIW instruction slot (1 on NVIDIA).
    pub fn vliw_width(self) -> u32 {
        match self {
            Architecture::Vliw5 => 5,
            Architecture::Vliw4 => 4,
            _ => 1,
        }
    }

    /// Whether ordinary global loads go through a hardware cache by
    /// default (true from Fermi on; the paper: "by default (on newer Fermi
    /// GPUs from NVIDIA)").
    pub fn default_cached_loads(self) -> bool {
        matches!(self, Architecture::Fermi)
    }
}

/// Code-generation backend.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// NVIDIA CUDA.
    Cuda,
    /// OpenCL (NVIDIA or AMD).
    OpenCl,
}

impl Backend {
    /// Display name used in table headers.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Cuda => "CUDA",
            Backend::OpenCl => "OpenCL",
        }
    }
}

/// An abstract model of one GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Marketing name ("Tesla C2050").
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Microarchitecture.
    pub arch: Architecture,
    /// CUDA compute capability, when applicable ("2.0").
    pub compute_capability: Option<String>,

    // ---- Execution model ----
    /// SIMD width: warp size (32, NVIDIA) or wavefront size (64, AMD).
    pub simd_width: u32,
    /// Number of SIMD units (SMs / compute units).
    pub num_sms: u32,
    /// Scalar ALU lanes per SIMD unit (VLIW lanes count individually).
    pub cores_per_sm: u32,
    /// Shader clock in GHz.
    pub clock_ghz: f64,
    /// Maximum threads in one block (the "maximal thread configuration").
    pub max_threads_per_block: u32,
    /// Maximum resident threads on one SIMD unit (512/768/1024 on NVIDIA
    /// depending on generation, 256·waves on AMD).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks on one SIMD unit.
    pub max_blocks_per_sm: u32,

    // ---- Register file / scratchpad, with allocation strategy ----
    /// 32-bit registers per SIMD unit.
    pub registers_per_sm: u32,
    /// Register allocation granularity in registers (per warp on Fermi,
    /// per block rounded to this on GT200).
    pub register_granularity: u32,
    /// Maximum registers one thread may use.
    pub max_registers_per_thread: u32,
    /// Scratchpad bytes per SIMD unit (shared memory / LDS).
    pub shared_mem_per_sm: u32,
    /// Scratchpad allocation granularity in bytes.
    pub shared_granularity: u32,
    /// Number of scratchpad banks (conflict modelling).
    pub shared_banks: u32,
    /// Constant-memory bytes available to one kernel (64 KiB on every
    /// CUDA generation; AMD exposes the same budget per kernel through
    /// OpenCL's `__constant` limit). Filter masks placed in constant
    /// memory are checked against this by the kernel verifier.
    pub const_mem_bytes: u32,

    // ---- Memory system (timing model inputs) ----
    /// Peak global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Global-memory latency in cycles.
    pub mem_latency_cycles: f64,
    /// Memory transaction segment size in bytes (coalescing unit).
    pub mem_segment_bytes: u32,
    /// Texture cache per SIMD unit in KiB.
    pub tex_cache_kib: u32,
    /// Cycles per special-function op relative to one fused ALU op.
    pub sfu_cost: f64,
    /// Cycles per (float) division relative to one fused ALU op.
    pub div_cost: f64,
    /// Issue cost of one texture/image fetch relative to an ALU op
    /// (fetch-clause switching makes this expensive on VLIW AMD parts).
    pub tex_issue_cost: f64,
    /// Fixed per-thread scheduling/setup cost in cycles (block dispatch,
    /// register initialization). Dominates tiny kernels — the reason
    /// OpenCV maps eight pixels per thread.
    pub thread_overhead: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak bandwidth achievable by streaming stencil loads
    /// (row-activation and partial-line effects).
    pub bw_efficiency: f64,
    /// Throughput penalty of the vendor's OpenCL stack relative to the
    /// native path (CUDA on NVIDIA; 1.0 on AMD where OpenCL is native).
    /// Calibrated once from the paper's CUDA-vs-OpenCL deltas.
    pub opencl_penalty: f64,
    /// Cycles one data-dependent branch around a memory access costs
    /// (pipeline disruption of guarded loads). Cheap on AMD's clause-based
    /// control flow, expensive on pre-Fermi NVIDIA. Calibrated once per
    /// device from a Constant-boundary manual cell.
    pub divergence_cost: f64,
}

impl DeviceModel {
    /// Maximum resident warps/wavefronts per SIMD unit.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.simd_width
    }

    /// Peak scalar throughput in Gops/s.
    pub fn peak_gops(&self) -> f64 {
        self.num_sms as f64 * self.cores_per_sm as f64 * self.clock_ghz
    }

    /// Effective scalar throughput for purely scalar (non-vectorized)
    /// code: VLIW machines only fill one lane per slot, which is exactly
    /// the paper's explanation for the AMD results ("the current
    /// implementations … are scalar and do not utilize the VLIW4 or VLIW5
    /// hardware architecture").
    pub fn scalar_gops(&self) -> f64 {
        self.peak_gops() / self.arch.vliw_width() as f64
    }
}

/// Tesla C2050: Fermi GF100, compute capability 2.0.
pub fn tesla_c2050() -> DeviceModel {
    DeviceModel {
        name: "Tesla C2050".into(),
        vendor: Vendor::Nvidia,
        arch: Architecture::Fermi,
        compute_capability: Some("2.0".into()),
        simd_width: 32,
        num_sms: 14,
        cores_per_sm: 32,
        clock_ghz: 1.15,
        max_threads_per_block: 1024,
        max_threads_per_sm: 1536,
        max_blocks_per_sm: 8,
        registers_per_sm: 32768,
        register_granularity: 64,
        max_registers_per_thread: 63,
        shared_mem_per_sm: 49152,
        shared_granularity: 128,
        shared_banks: 32,
        const_mem_bytes: 65536,
        mem_bandwidth_gbs: 144.0,
        mem_latency_cycles: 600.0,
        mem_segment_bytes: 128,
        tex_cache_kib: 12,
        sfu_cost: 14.0,
        div_cost: 8.0,
        tex_issue_cost: 2.0,
        thread_overhead: 100.0,
        launch_overhead_us: 7.0,
        bw_efficiency: 0.30,
        opencl_penalty: 1.2,
        divergence_cost: 22.0,
    }
}

/// Quadro FX 5800: GT200, compute capability 1.3.
pub fn quadro_fx_5800() -> DeviceModel {
    DeviceModel {
        name: "Quadro FX 5800".into(),
        vendor: Vendor::Nvidia,
        arch: Architecture::GT200,
        compute_capability: Some("1.3".into()),
        simd_width: 32,
        num_sms: 30,
        cores_per_sm: 8,
        clock_ghz: 1.30,
        max_threads_per_block: 512,
        max_threads_per_sm: 1024,
        max_blocks_per_sm: 8,
        registers_per_sm: 16384,
        register_granularity: 512, // block-level rounding on GT200
        max_registers_per_thread: 124,
        shared_mem_per_sm: 16384,
        shared_granularity: 512,
        shared_banks: 16,
        const_mem_bytes: 65536,
        mem_bandwidth_gbs: 102.0,
        mem_latency_cycles: 500.0,
        mem_segment_bytes: 64,
        tex_cache_kib: 8,
        sfu_cost: 7.0,
        div_cost: 10.0,
        tex_issue_cost: 2.0,
        thread_overhead: 100.0,
        launch_overhead_us: 10.0,
        bw_efficiency: 0.75,
        opencl_penalty: 1.55,
        divergence_cost: 45.0,
    }
}

/// Radeon HD 5870: Cypress, VLIW5 (Evergreen).
pub fn radeon_hd_5870() -> DeviceModel {
    DeviceModel {
        name: "Radeon HD 5870".into(),
        vendor: Vendor::Amd,
        arch: Architecture::Vliw5,
        compute_capability: None,
        simd_width: 64,
        num_sms: 20,
        cores_per_sm: 80, // 16 stream cores x 5 VLIW lanes
        clock_ghz: 0.85,
        max_threads_per_block: 256,
        max_threads_per_sm: 1280, // ~20 wavefronts x 64 (resource dependent)
        max_blocks_per_sm: 8,
        registers_per_sm: 16384,
        register_granularity: 64,
        max_registers_per_thread: 124,
        shared_mem_per_sm: 32768,
        shared_granularity: 256,
        shared_banks: 32,
        const_mem_bytes: 65536,
        mem_bandwidth_gbs: 153.6,
        mem_latency_cycles: 500.0,
        mem_segment_bytes: 64,
        tex_cache_kib: 8,
        sfu_cost: 1.0,
        div_cost: 10.0,
        tex_issue_cost: 4.0,
        thread_overhead: 100.0,
        launch_overhead_us: 12.0,
        bw_efficiency: 0.35,
        opencl_penalty: 1.0,
        divergence_cost: 2.0,
    }
}

/// Radeon HD 6970: Cayman, VLIW4 (Northern Islands).
pub fn radeon_hd_6970() -> DeviceModel {
    DeviceModel {
        name: "Radeon HD 6970".into(),
        vendor: Vendor::Amd,
        arch: Architecture::Vliw4,
        compute_capability: None,
        simd_width: 64,
        num_sms: 24,
        cores_per_sm: 64, // 16 stream cores x 4 VLIW lanes
        clock_ghz: 0.88,
        max_threads_per_block: 256,
        max_threads_per_sm: 1280,
        max_blocks_per_sm: 8,
        registers_per_sm: 16384,
        register_granularity: 64,
        max_registers_per_thread: 124,
        shared_mem_per_sm: 32768,
        shared_granularity: 256,
        shared_banks: 32,
        const_mem_bytes: 65536,
        mem_bandwidth_gbs: 176.0,
        mem_latency_cycles: 500.0,
        mem_segment_bytes: 64,
        tex_cache_kib: 8,
        sfu_cost: 1.0,
        div_cost: 10.0,
        tex_issue_cost: 4.0,
        thread_overhead: 100.0,
        launch_overhead_us: 12.0,
        bw_efficiency: 0.35,
        opencl_penalty: 1.0,
        divergence_cost: 2.0,
    }
}

/// GeForce 8800 GTX: G80, compute capability 1.0 (database breadth; the
/// paper's compiler "contains information about all available CUDA-capable
/// graphics cards as specified by the compute capability").
pub fn geforce_8800_gtx() -> DeviceModel {
    DeviceModel {
        name: "GeForce 8800 GTX".into(),
        vendor: Vendor::Nvidia,
        arch: Architecture::G80,
        compute_capability: Some("1.0".into()),
        simd_width: 32,
        num_sms: 16,
        cores_per_sm: 8,
        clock_ghz: 1.35,
        max_threads_per_block: 512,
        max_threads_per_sm: 768,
        max_blocks_per_sm: 8,
        registers_per_sm: 8192,
        register_granularity: 256,
        max_registers_per_thread: 124,
        shared_mem_per_sm: 16384,
        shared_granularity: 512,
        shared_banks: 16,
        const_mem_bytes: 65536,
        mem_bandwidth_gbs: 86.4,
        mem_latency_cycles: 500.0,
        mem_segment_bytes: 64,
        tex_cache_kib: 8,
        sfu_cost: 6.0,
        div_cost: 10.0,
        tex_issue_cost: 2.0,
        thread_overhead: 100.0,
        launch_overhead_us: 10.0,
        bw_efficiency: 0.50,
        opencl_penalty: 1.6,
        divergence_cost: 45.0,
    }
}

/// GeForce GTX 580: Fermi GF110, compute capability 2.0 (database breadth).
pub fn geforce_gtx_580() -> DeviceModel {
    DeviceModel {
        name: "GeForce GTX 580".into(),
        num_sms: 16,
        clock_ghz: 1.544,
        mem_bandwidth_gbs: 192.4,
        ..tesla_c2050()
    }
}

/// Tesla C1060: GT200, compute capability 1.3 (database breadth — the
/// compute sibling of the Quadro FX 5800 with slower memory).
pub fn tesla_c1060() -> DeviceModel {
    DeviceModel {
        name: "Tesla C1060".into(),
        mem_bandwidth_gbs: 102.0,
        clock_ghz: 1.296,
        ..quadro_fx_5800()
    }
}

/// GeForce GTX 480: Fermi GF100, compute capability 2.0 (database
/// breadth — the consumer GF100 with 15 SMs).
pub fn geforce_gtx_480() -> DeviceModel {
    DeviceModel {
        name: "GeForce GTX 480".into(),
        num_sms: 15,
        clock_ghz: 1.401,
        mem_bandwidth_gbs: 177.4,
        ..tesla_c2050()
    }
}

/// All devices in the database, evaluation cards first.
pub fn all_devices() -> Vec<DeviceModel> {
    vec![
        tesla_c2050(),
        quadro_fx_5800(),
        radeon_hd_5870(),
        radeon_hd_6970(),
        geforce_8800_gtx(),
        geforce_gtx_580(),
        geforce_gtx_480(),
        tesla_c1060(),
    ]
}

/// Look up a device by (case-insensitive) name substring.
pub fn find_device(name: &str) -> Option<DeviceModel> {
    let needle = name.to_lowercase();
    all_devices()
        .into_iter()
        .find(|d| d.name.to_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_devices_present() {
        for name in [
            "Tesla C2050",
            "Quadro FX 5800",
            "Radeon HD 5870",
            "Radeon HD 6970",
        ] {
            assert!(find_device(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn lookup_is_case_insensitive_substring() {
        assert_eq!(find_device("tesla").unwrap().name, "Tesla C2050");
        assert_eq!(find_device("6970").unwrap().name, "Radeon HD 6970");
        assert!(find_device("voodoo").is_none());
    }

    #[test]
    fn amd_limits_match_paper() {
        // "on graphics cards from AMD, the maximal number of threads that
        // can be mapped to one SIMD unit is 256" (per block), "while this
        // limit is either 512, 768, or 1024 on graphics cards from NVIDIA".
        assert_eq!(radeon_hd_5870().max_threads_per_block, 256);
        assert_eq!(radeon_hd_6970().max_threads_per_block, 256);
        assert_eq!(quadro_fx_5800().max_threads_per_block, 512);
        assert_eq!(geforce_8800_gtx().max_threads_per_sm, 768);
        assert_eq!(tesla_c2050().max_threads_per_block, 1024);
    }

    #[test]
    fn vliw_width_reduces_scalar_throughput() {
        let hd5870 = radeon_hd_5870();
        assert_eq!(hd5870.arch.vliw_width(), 5);
        assert!((hd5870.scalar_gops() - hd5870.peak_gops() / 5.0).abs() < 1e-9);
        let fermi = tesla_c2050();
        assert_eq!(fermi.arch.vliw_width(), 1);
        assert_eq!(fermi.scalar_gops(), fermi.peak_gops());
    }

    #[test]
    fn fermi_has_default_cached_loads() {
        assert!(Architecture::Fermi.default_cached_loads());
        assert!(!Architecture::GT200.default_cached_loads());
        assert!(!Architecture::Vliw5.default_cached_loads());
    }

    #[test]
    fn warp_counts() {
        assert_eq!(tesla_c2050().max_warps_per_sm(), 48);
        assert_eq!(quadro_fx_5800().max_warps_per_sm(), 32);
        assert_eq!(radeon_hd_5870().max_warps_per_sm(), 20);
    }

    #[test]
    fn device_database_is_deterministic() {
        assert_eq!(tesla_c2050(), tesla_c2050());
        assert_eq!(all_devices().len(), 8);
        // Evaluation devices come first, in table order.
        let names: Vec<String> = all_devices().into_iter().take(4).map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "Tesla C2050",
                "Quadro FX 5800",
                "Radeon HD 5870",
                "Radeon HD 6970"
            ]
        );
    }

    #[test]
    fn peak_gops_are_plausible() {
        // Tesla C2050: 14 SMs x 32 cores x 1.15 GHz = 515 Gops (1.03 TFLOP
        // with FMA counting 2).
        assert!((tesla_c2050().peak_gops() - 515.2).abs() < 0.1);
        // HD 5870: 20 x 80 x 0.85 = 1360 Gops.
        assert!((radeon_hd_5870().peak_gops() - 1360.0).abs() < 0.1);
    }
}
