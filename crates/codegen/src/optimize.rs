//! The analysis-driven device-IR optimizer driver.
//!
//! Runs the `ir::opt` pass pipeline over the lowered device kernel,
//! feeding each pass a fresh value-range oracle
//! ([`RangeState`](hipacc_analysis::range::RangeState)) seeded with the
//! launch geometry and the compile-time scalar bindings — the same facts
//! the verifier's bounds pass uses, which is what makes the rewrites
//! safe: anything the optimizer elides, the re-run verifier could have
//! proven redundant.
//!
//! Pass order (each independently vetoable via `HIPACC_OPT_DISABLE`):
//!
//! 1. `elide-clamps` — drop `min`/`max` border clamps whose operand
//!    range already satisfies the bound, and collapse region-dispatch
//!    branches the block-rectangle facts decide.
//! 2. `strength-reduce` — fold decidable comparisons/selects and
//!    range-provable `%`/`/` identities.
//! 3. `flatten` — rewrite thread-*varying* two-sided assignments into
//!    `Select`, keeping SIMD warps on the converged fast path.
//! 4. `hoist` — loop-invariant code motion out of (provably entered)
//!    convolution loops.
//! 5. `dead-barrier` — delete barriers whose adjacent race phases have
//!    provably disjoint cross-thread footprints
//!    ([`removable_barriers`]).
//! 6. `fold` — final literal sweep and dead-declaration cleanup.
//!
//! Per-pass wall-clock spans are recorded as `opt:<pass>` in the
//! `compile` category, next to the numbered phases. The optimizer runs
//! *between* resource estimation and emission, so the emitted source,
//! the execution engines and the re-run verifier all see the optimized
//! kernel, while the analytical performance model — occupancy, register
//! estimate, and the region timing bodies
//! ([`CompiledKernel::region_bodies`](crate::CompiledKernel::region_bodies))
//! — deliberately reflects the paper's unoptimized per-region costs
//! (its op-count model is already LICM-aware).

use crate::options::CompileSpec;
use hipacc_analysis::races::removable_barriers;
use hipacc_analysis::range::RangeState;
use hipacc_analysis::uniformity::Uniformity;
use hipacc_analysis::VerifyInput;
use hipacc_hwmodel::LaunchConfig;
use hipacc_ir::kernel::DeviceKernelDef;
use hipacc_ir::opt::{self, OptReport};
use std::collections::{BTreeSet, HashMap};

/// The set of pass names vetoed by the `HIPACC_OPT_DISABLE` env var
/// (comma-separated, case-insensitive). Unknown names are ignored.
/// Deterministically ordered so it can participate in cache keys.
pub fn disabled_passes() -> BTreeSet<String> {
    std::env::var("HIPACC_OPT_DISABLE")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

/// Run the optimization pipeline over `k` in place. At `opt_level = 0`
/// this is a no-op returning an empty report.
pub(crate) fn optimize_device_kernel(
    k: &mut DeviceKernelDef,
    spec: &CompileSpec,
    config: LaunchConfig,
    grid: (u32, u32),
    scalars: &HashMap<String, i64>,
    sink: &mut dyn hipacc_profile::ProfileSink,
) -> OptReport {
    let mut report = OptReport {
        level: spec.opt_level,
        passes: Vec::new(),
    };
    if spec.opt_level == 0 {
        return report;
    }
    let disabled = disabled_passes();
    let block = (config.bx, config.by);

    // The iteration-space scalars can be rebound at launch time (the
    // simulator's `LaunchSpec` lets a caller shrink the ROI without
    // recompiling), so the optimizer must not bake their compile-time
    // values into the code: a specialized-away ROI guard would write
    // outside a runtime-shrunk region. Geometry (`width`/`height`/
    // `stride`) and constant-propagated parameter bindings are part of
    // the compile contract — the verifier and the cache key already
    // assume them — and stay point-valued.
    let mut scalars = scalars.clone();
    for key in ["is_offset_x", "is_offset_y", "is_width", "is_height"] {
        scalars.remove(key);
    }
    let scalars = &scalars;

    // The uniformity fixpoint every oracle embeds, timed once visibly.
    hipacc_profile::timed(sink, "opt:uniformity", "compile", || {
        Uniformity::of_body(&k.body)
    });

    for pass in opt::PASSES {
        if disabled.contains(*pass) {
            continue;
        }
        let span = format!("opt:{pass}");
        let fires = hipacc_profile::timed(sink, &span, "compile", || match *pass {
            opt::PASS_ELIDE_CLAMPS => {
                let mut o = RangeState::new(k, block, grid, scalars);
                opt::elide_clamps(k, &mut o)
            }
            opt::PASS_STRENGTH => {
                let mut o = RangeState::new(k, block, grid, scalars);
                opt::strength_reduce(k, &mut o)
            }
            opt::PASS_FLATTEN => {
                let mut o = RangeState::new(k, block, grid, scalars);
                opt::flatten_branches(k, &mut o)
            }
            opt::PASS_HOIST => opt::hoist_invariants(k),
            opt::PASS_DEAD_BARRIER => {
                let mut input = VerifyInput::new(k, &spec.device, block, grid);
                input.scalars = scalars.clone();
                let dead = removable_barriers(&input);
                opt::remove_barriers(k, &dead)
            }
            opt::PASS_FOLD => opt::cleanup(k),
            _ => 0,
        });
        report.passes.push((pass.to_string(), fires));
    }
    report
}
