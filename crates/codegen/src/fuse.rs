//! Fused-chain compilation: one device kernel for a producer–consumer
//! operator chain.
//!
//! The unfused pipeline launches every operator separately and
//! round-trips each intermediate image through global memory. This
//! module lowers a validated [`FusionChain`] into a *single* kernel
//! that stages every intermediate in scratchpad memory instead:
//!
//! * stage `i < N-1` computes its output into a shared-memory tile that
//!   covers the block extent plus the *cumulative* stencil reach of all
//!   downstream stages (`cum_i = Σ_{j>i} halo_j`), exactly the widened
//!   halo the legality analysis (`hipacc_analysis::fusion`) reasons
//!   about;
//! * a block-wide barrier separates each stage from its consumer;
//! * the final stage reads the last tile at the thread's own pixel and
//!   writes `OUT`, like any unfused kernel.
//!
//! Boundary handling composes bit-identically with the unfused chain:
//! every staging slot is evaluated at its coordinate clamped into the
//! image (out-of-image slots are never read back — `Clamp`, `Mirror`
//! and guarded `Constant` handoffs always resolve to in-image
//! coordinates, which is why `Repeat`/`Undefined` handoffs are
//! rejected), and reads apply the stage's own boundary mode with
//! both-sides index adjustment, the same [`adjust_coord`] forms the
//! unfused lowering emits. Tile reads carry a belt-and-braces clamp to
//! the tile extent; the containment argument makes it a value identity,
//! and it lets the bounds verifier prove every shared access in range.
//!
//! [`Compiler::compile_fused`] drives the same phase pipeline as
//! [`Compiler::compile`] — specialize/unroll per stage, access
//! analysis, resource probe, Algorithm-2 configuration selection,
//! device typecheck, the analysis-driven optimizer, emission — and runs
//! the full kernel verifier over the result. Because a fused kernel's
//! scratchpad demand grows with the block size, the chosen
//! configuration is re-validated against the *real* fused resources and
//! degraded through the device's configuration ladder when it does not
//! fit; [`CompileError::NoValidConfiguration`] (a resource-limit error)
//! tells the runtime to fall back to per-stage launches.

use crate::compile::{
    launch_scalars, verify_compiled_with_sink, CompileError, CompiledKernel, Compiler, PhaseTimer,
};
use crate::cuda::emit_cuda;
use crate::host::{emit_cuda_host, emit_opencl_host};
use crate::index::{adjust_coord, clamp_expr, in_bounds_expr, Sides};
use crate::lower::MemPath;
use crate::opencl::emit_opencl;
use crate::options::CompileSpec;
use crate::regions::Region;
use hipacc_analysis::has_errors;
use hipacc_hwmodel::{
    estimate_resources, heuristic, occupancy, select_configuration, Backend, BorderInfo,
    LaunchConfig,
};
use hipacc_image::BoundaryMode;
use hipacc_ir::access::analyze;
use hipacc_ir::fold::specialize_kernel;
use hipacc_ir::fuse::FusionChain;
use hipacc_ir::kernel::{
    AddressMode, BufferAccess, BufferParam, ConstBufferDecl, DeviceKernelDef, MemorySpace,
    SharedDecl,
};
use hipacc_ir::stmt::LValue;
use hipacc_ir::typecheck::check_device;
use hipacc_ir::unroll::unroll_kernel;
use hipacc_ir::{Builtin, Expr, KernelDef, ParamDecl, ScalarType, Stmt};
use std::collections::{HashMap, HashSet};

/// One stage of the chain, ready to lower: the specialized kernel plus
/// the halo facts the tiling is derived from.
struct StagePlan {
    /// Specialized/unrolled, alpha-renamed stage kernel.
    def: KernelDef,
    /// The (renamed) accessor this stage reads.
    input: String,
    /// Boundary mode of the stage's reads.
    mode: BoundaryMode,
    /// This stage's stencil half-window on its input, widened with the
    /// declared boundary window (same rule as the unfused compile).
    halo: (u32, u32),
    /// Halo the stage's *output tile* must carry: the summed stencil
    /// reach of every downstream stage.
    cum: (u32, u32),
}

impl Compiler {
    /// Compile a fused operator chain into a single device kernel.
    ///
    /// The chain must already be structurally composed
    /// ([`hipacc_ir::fuse::compose`]) and boundary-legal
    /// (`hipacc_analysis::fusion::check_fusion`); illegal handoff modes
    /// are re-checked here and fail with
    /// [`CompileError::UnsupportedCombination`]. `spec` describes the
    /// chain's shared geometry; per-stage boundary modes are looked up
    /// under the renamed accessor names, parameter bindings under the
    /// renamed parameter names.
    pub fn compile_fused(
        &self,
        chain: &FusionChain,
        spec: &CompileSpec,
    ) -> Result<CompiledKernel, CompileError> {
        self.compile_fused_with_sink(chain, spec, &mut hipacc_profile::NullSink)
    }

    /// [`Self::compile_fused`] with one timed span per compile phase
    /// recorded into `sink`, mirroring [`Self::compile_with_sink`].
    pub fn compile_fused_with_sink(
        &self,
        chain: &FusionChain,
        spec: &CompileSpec,
        sink: &mut dyn hipacc_profile::ProfileSink,
    ) -> Result<CompiledKernel, CompileError> {
        if !self.db.backend_supported(&spec.device, spec.backend) {
            return Err(CompileError::UnsupportedBackend(format!(
                "{} cannot target {}",
                spec.backend.name(),
                spec.device.name
            )));
        }
        if spec.vectorize > 1 {
            return Err(CompileError::UnsupportedCombination(
                "fused kernels are scalar; vectorization is not supported".into(),
            ));
        }
        if chain.stages.len() < 2 {
            return Err(CompileError::Internal(
                "fusion chain has fewer than two stages".into(),
            ));
        }
        // Handoff legality: interior stages read a staged tile, which
        // Repeat wraps out of and Undefined leaves unspecified. The
        // planner rejects these with F0102 before compiling; this is the
        // compiler's own backstop. Point consumers (no inferred or
        // declared half-window) only ever read their own pixel, so the
        // handoff mode is never exercised and any mode is legal.
        for s in &chain.stages[1..] {
            let declared = spec
                .boundaries
                .get(&s.input)
                .map(|b| (b.half_x(), b.half_y()))
                .unwrap_or((0, 0));
            if s.halo == (0, 0) && declared == (0, 0) {
                continue;
            }
            match spec.boundary_mode(&s.input) {
                BoundaryMode::Repeat => {
                    return Err(CompileError::UnsupportedCombination(format!(
                        "stage `{}`: Repeat handoff boundary handling cannot be fused",
                        s.def.name
                    )))
                }
                BoundaryMode::Undefined => {
                    return Err(CompileError::UnsupportedCombination(format!(
                        "stage `{}`: Undefined handoff boundary handling cannot be fused",
                        s.def.name
                    )))
                }
                _ => {}
            }
        }

        let mut ph = PhaseTimer {
            sink,
            times: Vec::new(),
        };

        // 1. Per-stage optimization passes, same order as the unfused
        // compile (bindings and locals are alpha-renamed, so the shared
        // binding map applies cleanly per stage).
        let works: Vec<KernelDef> = ph.run("specialize", || {
            chain
                .stages
                .iter()
                .map(|s| {
                    let mut w = s.def.clone();
                    if spec.constant_propagation && !spec.param_bindings.is_empty() {
                        w = specialize_kernel(&w, &spec.param_bindings);
                    }
                    if spec.unroll_limit > 0 {
                        let (unrolled, _stats) = unroll_kernel(&w, spec.unroll_limit);
                        w = unrolled;
                    }
                    w
                })
                .collect()
        });

        // 2. Access analysis: per-stage stencils, then the cumulative
        // trailing halo each staging tile must carry.
        let plans = ph.run(
            "access-analysis",
            || -> Result<Vec<StagePlan>, CompileError> {
                let mut plans = Vec::with_capacity(works.len());
                for (s, work) in chain.stages.iter().zip(works) {
                    let info = analyze(&work, &spec.param_bindings);
                    let inferred = match info.inputs.get(&s.input) {
                        None => (0, 0),
                        Some(p) => match p.window() {
                            Some((w, h)) if !p.unbounded => (w / 2, h / 2),
                            _ => {
                                return Err(CompileError::UnsupportedCombination(format!(
                                    "fused stage `{}` reads its input with an unbounded window",
                                    work.name
                                )))
                            }
                        },
                    };
                    let declared = spec
                        .boundaries
                        .get(&s.input)
                        .map(|b| (b.half_x(), b.half_y()))
                        .unwrap_or((0, 0));
                    plans.push(StagePlan {
                        mode: spec.boundary_mode(&s.input),
                        input: s.input.clone(),
                        def: work,
                        halo: (inferred.0.max(declared.0), inferred.1.max(declared.1)),
                        cum: (0, 0),
                    });
                }
                let (mut cx, mut cy) = (0u32, 0u32);
                for p in plans.iter_mut().rev() {
                    p.cum = (cx, cy);
                    cx += p.halo.0;
                    cy += p.halo.1;
                }
                Ok(plans)
            },
        )?;
        // Total stencil reach of the whole chain on the real input.
        let total = plans
            .iter()
            .fold((0u32, 0u32), |a, p| (a.0 + p.halo.0, a.1 + p.halo.1));
        let union = specialized_union(&plans, &chain.union.name);

        // 3. Resource probe at the default configuration.
        let (roi_x, roi_y, roi_w, roi_h) = spec.iteration_space();
        let probe_res = ph.run("resource-probe", || {
            let probe_cfg = LaunchConfig {
                bx: spec
                    .device
                    .simd_width
                    .min(spec.device.max_threads_per_block),
                by: 1,
            };
            estimate_resources(&fused_device_kernel(&plans, &union, spec, probe_cfg))
        });

        // 4. Configuration selection (Algorithm 2) or forced config,
        // with the chain's total halo as the border information.
        let border = (total.0 > 0 || total.1 > 0).then_some(BorderInfo {
            half_x: total.0,
            half_y: total.1,
            width: roi_w,
            height: roi_h,
        });
        let selected = ph.run("config-select", || match spec.force_config {
            Some((bx, by)) => Ok(LaunchConfig { bx, by }),
            None => select_configuration(&spec.device, &probe_res, border)
                .map(|s| s.config)
                .ok_or(CompileError::NoValidConfiguration),
        })?;

        // 5. Final lowering. Scratchpad demand grows with the block
        // extent, and the probe ran at `by = 1`, so the selection is
        // re-validated against the real fused kernel and degraded
        // deterministically when it does not fit. Unlike single-stage
        // selection, occupancy is the wrong primary objective for a
        // fused chain: every block re-computes its staging tiles
        // including the cumulative halo, so the dominant cost is the
        // *redundant work* `blocks × Σ tile areas`, which shrinks as
        // blocks grow toward the iteration space. Candidates are
        // therefore ranked by that estimate (Algorithm 2's pick merely
        // joins the pool), and the first one the device's real fused
        // resources admit wins. A forced configuration (the
        // supervisor's breaker pinning) is never reranked or degraded —
        // it fails instead.
        let staged_work = |c: &LaunchConfig| -> u64 {
            // Staging slots outside the image are pruned by the step
            // guard, so count each block's tile clipped to the image —
            // the axes are separable.
            let clipped = |blocks: u32, bs: u32, cum: u32, off: u32, extent: u32| -> u64 {
                (0..blocks)
                    .map(|b| {
                        let base = i64::from(off) + i64::from(b * bs) - i64::from(cum);
                        let end = base + i64::from(bs + 2 * cum);
                        (end.min(i64::from(extent)) - base.max(0)).max(0) as u64
                    })
                    .sum()
            };
            let (gx, gy) = (roi_w.div_ceil(c.bx), roi_h.div_ceil(c.by));
            // Final stage: every launched thread at least runs the guard.
            let mut work = u64::from(gx * c.bx) * u64::from(gy * c.by);
            for p in &plans[..plans.len() - 1] {
                work += clipped(gx, c.bx, p.cum.0, roi_x, spec.width)
                    * clipped(gy, c.by, p.cum.1, roi_y, spec.height);
            }
            work
        };
        let (config, device_kernel, resources, occ) =
            ph.run("lowering", || -> Result<_, CompileError> {
                let mut candidates = vec![selected];
                if spec.force_config.is_none() {
                    let alts: Vec<LaunchConfig> = heuristic::enumerate_configs(&spec.device)
                        .into_iter()
                        .filter(|c| *c != selected)
                        .collect();
                    candidates.extend(alts);
                    candidates
                        .sort_by_key(|c| (staged_work(c), std::cmp::Reverse(c.threads()), c.by));
                }
                for cand in candidates {
                    let dk = fused_device_kernel(&plans, &union, spec, cand);
                    let res = estimate_resources(&dk);
                    if let Some(o) = occupancy(&spec.device, &res, cand.bx, cand.by) {
                        return Ok((cand, dk, res, Some(o)));
                    }
                    if spec.force_config.is_some() {
                        return Err(CompileError::InvalidForcedConfiguration(format!(
                            "{cand} on {} (fused chain)",
                            spec.device.name
                        )));
                    }
                }
                Err(CompileError::NoValidConfiguration)
            })?;
        let mut device_kernel = device_kernel;
        check_device(&device_kernel)
            .map_err(|e| CompileError::Internal(format!("fused device typecheck failed: {e}")))?;

        // The timing model weighs the unoptimized body, like the unfused
        // region bodies.
        let region_bodies = vec![(Region::Interior, device_kernel.body.clone())];

        // 6. Analysis-driven optimization of the fused device IR.
        let grid = config.grid_for(roi_w, roi_h);
        let opt_report = ph.run_with_sink("optimize", |sink| {
            let scalars = launch_scalars(spec, (roi_x, roi_y, roi_w, roi_h));
            crate::optimize::optimize_device_kernel(
                &mut device_kernel,
                spec,
                config,
                grid,
                &scalars,
                sink,
            )
        });
        if opt_report.total() > 0 {
            check_device(&device_kernel).map_err(|e| {
                CompileError::Internal(format!("optimized fused kernel typecheck failed: {e}"))
            })?;
        }

        // 7. Source emission.
        let (source, host_source) = ph.run("emission", || match spec.backend {
            Backend::Cuda => (
                emit_cuda(&device_kernel, false),
                emit_cuda_host(
                    &device_kernel,
                    config,
                    grid,
                    spec.width,
                    spec.height,
                    spec.stride,
                ),
            ),
            Backend::OpenCl => (
                emit_opencl(&device_kernel),
                emit_opencl_host(
                    &device_kernel,
                    config,
                    grid,
                    spec.width,
                    spec.height,
                    spec.stride,
                ),
            ),
        });

        let mut halves = HashMap::new();
        halves.insert(plans[0].input.clone(), total);
        let mut out = CompiledKernel {
            device_kernel,
            config,
            grid,
            region_grid: None,
            region_bodies,
            resources,
            occupancy: occ,
            source,
            host_source,
            backend: spec.backend,
            mem_path: MemPath::Scratchpad,
            kernel: union,
            halves,
            max_half: total,
            iteration_space: (roi_x, roi_y, roi_w, roi_h),
            vector_width: 1,
            diagnostics: Vec::new(),
            phase_times: Vec::new(),
            opt: opt_report,
        };

        // 8. Full kernel verification, same obligations as any compile.
        let out_ref = &out;
        let diags = ph.run_with_sink("verify", |sink| {
            verify_compiled_with_sink(out_ref, spec, sink)
        });
        if has_errors(&diags) {
            return Err(CompileError::Verification(diags));
        }
        out.diagnostics = diags;
        out.phase_times = ph.times;
        Ok(out)
    }
}

/// Merge the *specialized* stage kernels into one declaration namespace
/// (the runtime fingerprints against the unspecialized union from the
/// composer; this one backs the compiled artifact, so the verifier's
/// mask lookups see exactly the masks the device kernel declares).
fn specialized_union(plans: &[StagePlan], name: &str) -> KernelDef {
    let mut body = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        body.push(Stmt::Comment(format!("fused stage {i}: {}", p.def.name)));
        body.extend(p.def.body.iter().cloned());
    }
    KernelDef {
        name: name.to_string(),
        pixel: plans.last().expect("chain has stages").def.pixel,
        params: plans.iter().flat_map(|p| p.def.params.clone()).collect(),
        accessors: plans[0].def.accessors.clone(),
        masks: plans.iter().flat_map(|p| p.def.masks.clone()).collect(),
        body,
    }
}

/// Where a stage's `Input(dx, dy)` reads resolve.
enum ReadSrc {
    /// Stage 0: the real input image in global memory.
    Global(String),
    /// Later stages: the producer's scratchpad tile.
    Tile {
        /// Tile buffer name.
        buf: String,
        /// Name of the tile's base-x coordinate variable.
        base_x: String,
        /// Name of the tile's base-y coordinate variable.
        base_y: String,
        /// Tile width in slots (without the pad column).
        tw: u32,
        /// Tile height in slots.
        th: u32,
    },
}

/// Everything needed to lower one stage body at one evaluation point.
struct StageCtx<'a> {
    mode: BoundaryMode,
    /// The pixel coordinate the stage is being evaluated at (a clamped
    /// staging-slot coordinate, or `gid_x`/`gid_y` for the final stage).
    cx: Expr,
    cy: Expr,
    src: &'a ReadSrc,
    union: &'a KernelDef,
    use_const_masks: bool,
}

fn width() -> Expr {
    Expr::var("width")
}

fn height() -> Expr {
    Expr::var("height")
}

fn stride() -> Expr {
    Expr::var("stride")
}

fn tile_name(i: usize) -> String {
    format!("_ftile{i}")
}

/// Lower `Input(dx, dy)` for a fused stage: boundary-adjusted global
/// load for stage 0, tile read with a belt-and-braces clamp for later
/// stages. The index adjustment always checks both sides of each axis —
/// the staged tile must be valid for every block, like the unfused
/// scratchpad staging.
fn read_expr(ctx: &StageCtx<'_>, dx: &Expr, dy: &Expr) -> Expr {
    let ix = ctx.cx.clone() + dx.clone();
    let iy = ctx.cy.clone() + dy.clone();
    match ctx.src {
        ReadSrc::Global(buf) => {
            let load = |ax: Expr, ay: Expr| Expr::GlobalLoad {
                buf: buf.clone(),
                idx: Box::new(ax + ay * stride()),
            };
            match ctx.mode {
                BoundaryMode::Undefined => load(ix, iy),
                BoundaryMode::Clamp | BoundaryMode::Repeat | BoundaryMode::Mirror => {
                    let ax = adjust_coord(ctx.mode, ix, width(), Sides::both());
                    let ay = adjust_coord(ctx.mode, iy, height(), Sides::both());
                    load(ax, ay)
                }
                BoundaryMode::Constant(c) => {
                    let pred =
                        in_bounds_expr(&ix, &iy, &width(), &height(), Sides::both(), Sides::both())
                            .expect("both sides checked");
                    Expr::select(pred, load(ix, iy), Expr::float(c))
                }
            }
        }
        ReadSrc::Tile {
            buf,
            base_x,
            base_y,
            tw,
            th,
        } => {
            let slot = |a: Expr, base: &str, n: u32| {
                clamp_expr(a - Expr::var(base), Expr::int(n as i64), Sides::both())
            };
            let load = |ax: Expr, ay: Expr| Expr::SharedLoad {
                buf: buf.clone(),
                y: Box::new(slot(ay, base_y, *th)),
                x: Box::new(slot(ax, base_x, *tw)),
            };
            match ctx.mode {
                BoundaryMode::Clamp | BoundaryMode::Mirror => {
                    let ax = adjust_coord(ctx.mode, ix, width(), Sides::both());
                    let ay = adjust_coord(ctx.mode, iy, height(), Sides::both());
                    load(ax, ay)
                }
                BoundaryMode::Constant(c) => {
                    let pred =
                        in_bounds_expr(&ix, &iy, &width(), &height(), Sides::both(), Sides::both())
                            .expect("both sides checked");
                    Expr::select(pred, load(ix, iy), Expr::float(c))
                }
                // Only legal for point consumers (halo 0): every read is
                // the evaluation point itself, already inside the image,
                // so no coordinate adjustment is needed.
                BoundaryMode::Undefined => load(ix, iy),
                BoundaryMode::Repeat => {
                    unreachable!("illegal handoff modes are rejected before lowering")
                }
            }
        }
    }
}

/// Lower `Mask(dx, dy)`, mirroring the unfused lowering's mask access
/// (mask declarations are looked up in the union kernel, which carries
/// every stage's renamed masks).
fn mask_expr(ctx: &StageCtx<'_>, mask: &str, dx: &Expr, dy: &Expr) -> Expr {
    let decl = ctx
        .union
        .mask(mask)
        .unwrap_or_else(|| panic!("unknown mask {mask}"));
    let idx = (dy.clone() + Expr::int(decl.half_h() as i64)) * Expr::int(decl.width as i64)
        + dx.clone()
        + Expr::int(decl.half_w() as i64);
    if ctx.use_const_masks {
        Expr::ConstLoad {
            buf: format!("_const{mask}"),
            idx: Box::new(idx),
        }
    } else {
        Expr::GlobalLoad {
            buf: format!("_gmask{mask}"),
            idx: Box::new(idx),
        }
    }
}

fn lower_expr(ctx: &StageCtx<'_>, e: Expr) -> Expr {
    e.rewrite(&mut |n| match n {
        Expr::InputAt { dx, dy, .. } => read_expr(ctx, &dx, &dy),
        Expr::MaskAt { mask, dx, dy } => mask_expr(ctx, &mask, &dx, &dy),
        Expr::OutputX => ctx.cx.clone(),
        Expr::OutputY => ctx.cy.clone(),
        other => other,
    })
}

/// Lower one stage body at one evaluation point; `store` decides where
/// `output(...)` goes (a tile slot, or `OUT` for the final stage).
fn lower_stage_stmts(
    stmts: &[Stmt],
    ctx: &StageCtx<'_>,
    store: &dyn Fn(Expr) -> Stmt,
) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Decl { name, ty, init } => Stmt::Decl {
                name: name.clone(),
                ty: *ty,
                init: init.clone().map(|e| lower_expr(ctx, e)),
            },
            Stmt::Assign { target, value } => Stmt::Assign {
                target: target.clone(),
                value: lower_expr(ctx, value.clone()),
            },
            Stmt::Output(e) => store(lower_expr(ctx, e.clone())),
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var: var.clone(),
                from: lower_expr(ctx, from.clone()),
                to: lower_expr(ctx, to.clone()),
                body: lower_stage_stmts(body, ctx, store),
            },
            Stmt::If { cond, then, els } => Stmt::If {
                cond: lower_expr(ctx, cond.clone()),
                then: lower_stage_stmts(then, ctx, store),
                els: lower_stage_stmts(els, ctx, store),
            },
            other => other.clone(),
        })
        .collect()
}

/// Build the fused device kernel for one launch configuration.
/// Suffix every local the stage body declares (`Decl` names, `For`
/// loop variables) and every use of them. Staging replays the body once
/// per tile step; the optimizer may prove a step's guard always-true
/// and collapse the branch scope away, so each replay needs its own
/// local names.
fn suffix_locals(stmts: &[Stmt], suffix: &str) -> Vec<Stmt> {
    let mut vars: HashSet<String> = HashSet::new();
    Stmt::visit_all(stmts, &mut |s| match s {
        Stmt::Decl { name, .. } => {
            vars.insert(name.clone());
        }
        Stmt::For { var, .. } => {
            vars.insert(var.clone());
        }
        _ => {}
    });
    let renamed = suffix_decl_sites(stmts.to_vec(), &vars, suffix);
    Stmt::rewrite_exprs(renamed, &mut |e| match e {
        Expr::Var(name) if vars.contains(&name) => Expr::Var(format!("{name}{suffix}")),
        other => other,
    })
}

/// The declaration-site half of [`suffix_locals`].
fn suffix_decl_sites(stmts: Vec<Stmt>, vars: &HashSet<String>, suffix: &str) -> Vec<Stmt> {
    let rename = |name: String| {
        if vars.contains(&name) {
            format!("{name}{suffix}")
        } else {
            name
        }
    };
    stmts
        .into_iter()
        .map(|s| match s {
            Stmt::Decl { name, ty, init } => Stmt::Decl {
                name: rename(name),
                ty,
                init,
            },
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } => Stmt::Assign {
                target: LValue::Var(rename(name)),
                value,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var: rename(var),
                from,
                to,
                body: suffix_decl_sites(body, vars, suffix),
            },
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: suffix_decl_sites(then, vars, suffix),
                els: suffix_decl_sites(els, vars, suffix),
            },
            other => other,
        })
        .collect()
}

fn fused_device_kernel(
    plans: &[StagePlan],
    union: &KernelDef,
    spec: &CompileSpec,
    cfg: LaunchConfig,
) -> DeviceKernelDef {
    let bsx = cfg.bx;
    let bsy = cfg.by;
    let n = plans.len();
    let mut shared = Vec::new();
    let mut body: Vec<Stmt> = Vec::new();

    // Global ids in image coordinates, as in the unfused lowering.
    body.push(Stmt::Decl {
        name: "gid_x".into(),
        ty: ScalarType::I32,
        init: Some(
            Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)
                + Expr::Builtin(Builtin::ThreadIdxX)
                + Expr::var("is_offset_x"),
        ),
    });
    body.push(Stmt::Decl {
        name: "gid_y".into(),
        ty: ScalarType::I32,
        init: Some(
            Expr::Builtin(Builtin::BlockIdxY) * Expr::Builtin(Builtin::BlockDimY)
                + Expr::Builtin(Builtin::ThreadIdxY)
                + Expr::var("is_offset_y"),
        ),
    });

    // Staging phases: every stage but the last fills a tile.
    let mut prev_src = ReadSrc::Global(plans[0].input.clone());
    for (i, p) in plans.iter().enumerate().take(n - 1) {
        let tile_w = bsx + 2 * p.cum.0;
        let tile_h = bsy + 2 * p.cum.1;
        let tile = tile_name(i);
        shared.push(SharedDecl {
            name: tile.clone(),
            ty: ScalarType::F32,
            rows: tile_h,
            // +1 column pad against bank conflicts, like unfused staging.
            cols: tile_w + 1,
        });
        body.push(Stmt::Comment(format!(
            "fused stage {i} ({}) into a {}x{} tile (+1 pad)",
            p.def.name, tile_h, tile_w
        )));
        let base_x = format!("_fbase_x{i}");
        let base_y = format!("_fbase_y{i}");
        body.push(Stmt::Decl {
            name: base_x.clone(),
            ty: ScalarType::I32,
            init: Some(
                Expr::Builtin(Builtin::BlockIdxX) * Expr::int(bsx as i64)
                    + Expr::var("is_offset_x")
                    - Expr::int(p.cum.0 as i64),
            ),
        });
        body.push(Stmt::Decl {
            name: base_y.clone(),
            ty: ScalarType::I32,
            init: Some(
                Expr::Builtin(Builtin::BlockIdxY) * Expr::int(bsy as i64)
                    + Expr::var("is_offset_y")
                    - Expr::int(p.cum.1 as i64),
            ),
        });

        let steps_x = tile_w.div_ceil(bsx);
        let steps_y = tile_h.div_ceil(bsy);
        for step_y in 0..steps_y {
            for step_x in 0..steps_x {
                // Slot locals are named per step: the optimizer may
                // prove a step's guard always-true and collapse the
                // branch scope away, so same-named locals across steps
                // would collide.
                let s = step_y * steps_x + step_x;
                let (lxn, lyn) = (format!("_flx{i}_{s}"), format!("_fly{i}_{s}"));
                let (exn, eyn) = (format!("_fex{i}_{s}"), format!("_fey{i}_{s}"));
                let (cxn, cyn) = (format!("_fcx{i}_{s}"), format!("_fcy{i}_{s}"));
                let ctx = StageCtx {
                    mode: p.mode,
                    cx: Expr::var(&cxn),
                    cy: Expr::var(&cyn),
                    src: &prev_src,
                    union,
                    use_const_masks: spec.use_const_masks,
                };
                let lx = Expr::Builtin(Builtin::ThreadIdxX) + Expr::int((step_x * bsx) as i64);
                let ly = Expr::Builtin(Builtin::ThreadIdxY) + Expr::int((step_y * bsy) as i64);
                // Slot coordinates: the tile position, its image-space
                // coordinate, and that coordinate clamped into the image
                // (out-of-image slots evaluate the stage at the nearest
                // edge pixel; no downstream read ever targets them).
                let mut slot = vec![
                    Stmt::Decl {
                        name: lxn.clone(),
                        ty: ScalarType::I32,
                        init: Some(lx.clone()),
                    },
                    Stmt::Decl {
                        name: lyn.clone(),
                        ty: ScalarType::I32,
                        init: Some(ly.clone()),
                    },
                    Stmt::Decl {
                        name: exn.clone(),
                        ty: ScalarType::I32,
                        init: Some(Expr::var(&base_x) + Expr::var(&lxn)),
                    },
                    Stmt::Decl {
                        name: eyn.clone(),
                        ty: ScalarType::I32,
                        init: Some(Expr::var(&base_y) + Expr::var(&lyn)),
                    },
                    Stmt::Decl {
                        name: cxn.clone(),
                        ty: ScalarType::I32,
                        init: Some(clamp_expr(Expr::var(&exn), width(), Sides::both())),
                    },
                    Stmt::Decl {
                        name: cyn.clone(),
                        ty: ScalarType::I32,
                        init: Some(clamp_expr(Expr::var(&eyn), height(), Sides::both())),
                    },
                ];
                let tile_store = {
                    let (tile, lxn, lyn) = (tile.clone(), lxn.clone(), lyn.clone());
                    move |v: Expr| Stmt::SharedStore {
                        buf: tile.clone(),
                        y: Expr::var(&lyn),
                        x: Expr::var(&lxn),
                        value: v,
                    }
                };
                let step_body = suffix_locals(&p.def.body, &format!("_t{s}"));
                slot.extend(lower_stage_stmts(&step_body, &ctx, &tile_store));
                // Every step is guarded: the branch skips slots past the
                // tile extent, skips slots whose image coordinate falls
                // outside the image (tile reads always adjust their
                // coordinate into the image first, so such slots are
                // never read — for edge blocks this prunes the whole
                // out-of-image halo), and gives the redeclared slot
                // locals their own scope in the emitted C.
                let ex = Expr::var(&base_x) + lx.clone();
                let ey = Expr::var(&base_y) + ly.clone();
                body.push(Stmt::If {
                    cond: lx
                        .lt(Expr::int(tile_w as i64))
                        .and(ly.lt(Expr::int(tile_h as i64)))
                        .and(ex.clone().ge(Expr::int(0)))
                        .and(ex.lt(width()))
                        .and(ey.clone().ge(Expr::int(0)))
                        .and(ey.lt(height())),
                    then: slot,
                    els: vec![],
                });
            }
        }
        body.push(Stmt::Barrier);
        prev_src = ReadSrc::Tile {
            buf: tile,
            base_x,
            base_y,
            tw: tile_w,
            th: tile_h,
        };
    }

    // Staging must complete block-wide before any thread may return, so
    // the iteration-space guard follows the last barrier.
    body.push(Stmt::If {
        cond: Expr::var("gid_x")
            .ge(Expr::var("is_offset_x") + Expr::var("is_width"))
            .or(Expr::var("gid_y").ge(Expr::var("is_offset_y") + Expr::var("is_height"))),
        then: vec![Stmt::Return],
        els: vec![],
    });

    // Final stage: evaluated at the thread's own pixel, writing OUT.
    let last = &plans[n - 1];
    body.push(Stmt::Comment(format!(
        "fused stage {} ({}): final, writes OUT",
        n - 1,
        last.def.name
    )));
    let ctx = StageCtx {
        mode: last.mode,
        cx: Expr::var("gid_x"),
        cy: Expr::var("gid_y"),
        src: &prev_src,
        union,
        use_const_masks: spec.use_const_masks,
    };
    let out_store = |v: Expr| Stmt::GlobalStore {
        buf: "OUT".into(),
        idx: Expr::var("gid_x") + Expr::var("gid_y") * stride(),
        value: v,
    };
    body.extend(lower_stage_stmts(&last.def.body, &ctx, &out_store));

    // Parameters: the geometry scalars every launch binds, then the
    // merged (renamed) stage parameters.
    let mut scalars = vec![
        ParamDecl {
            name: "width".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "height".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "stride".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "is_width".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "is_height".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "is_offset_x".into(),
            ty: ScalarType::I32,
        },
        ParamDecl {
            name: "is_offset_y".into(),
            ty: ScalarType::I32,
        },
    ];
    for p in &union.params {
        scalars.push(p.clone());
    }

    let mut buffers = Vec::new();
    for acc in &union.accessors {
        buffers.push(BufferParam {
            name: acc.name.clone(),
            ty: acc.ty,
            access: BufferAccess::ReadOnly,
            space: MemorySpace::Global,
            address_mode: AddressMode::None,
        });
    }
    buffers.push(BufferParam {
        name: "OUT".into(),
        ty: union.pixel,
        access: BufferAccess::WriteOnly,
        space: MemorySpace::Global,
        address_mode: AddressMode::None,
    });

    let mut const_buffers = Vec::new();
    for m in &union.masks {
        if spec.use_const_masks {
            const_buffers.push(ConstBufferDecl {
                name: format!("_const{}", m.name),
                width: m.width,
                height: m.height,
                data: m.coeffs.clone(),
            });
        } else {
            buffers.push(BufferParam {
                name: format!("_gmask{}", m.name),
                ty: ScalarType::F32,
                access: BufferAccess::ReadOnly,
                space: MemorySpace::Global,
                address_mode: AddressMode::None,
            });
        }
    }

    DeviceKernelDef {
        name: format!("{}_kernel", union.name),
        buffers,
        scalars,
        const_buffers,
        shared,
        body,
    }
}
