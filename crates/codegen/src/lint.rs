//! A miniature syntactic sanity checker for generated C sources.
//!
//! We cannot run `nvcc` or an OpenCL driver here, so the emitters'
//! well-formedness is enforced by construction (the device type check on
//! the IR) plus this token-level linter over the final text: balanced
//! delimiters, no empty statements from botched substitutions, statements
//! terminated, and every identifier the body uses declared somewhere in
//! the translation unit (parameters, declarations, globals, builtins).
//! Every golden test runs it, and the `Compiler` runs it on every compile,
//! surfacing findings as `A0501`/`A0502` diagnostics through the verifier
//! pipeline ([`lint_diagnostics`]).
//!
//! Comments (`//` and `/* */`, including multi-line) and string literals
//! are stripped — with line structure preserved — before any token or
//! delimiter scanning, so a brace or stray word inside either never
//! produces a finding.

use hipacc_analysis::Diagnostic;
use std::collections::HashSet;

/// A lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

/// Words that are part of C/CUDA/OpenCL rather than program identifiers.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "for",
    "while",
    "return",
    "goto",
    "int",
    "float",
    "bool",
    "void",
    "unsigned",
    "const",
    "true",
    "false",
    "struct",
    "sizeof",
    "char",
    "uchar",
    "ushort",
    "size_t",
    // CUDA
    "__global__",
    "__device__",
    "__constant__",
    "__shared__",
    "__syncthreads",
    "texture",
    "cudaTextureType1D",
    "cudaTextureType2D",
    "cudaReadModeElementType",
    "tex1Dfetch",
    "tex2D",
    "threadIdx",
    "blockIdx",
    "blockDim",
    "gridDim",
    "dim3",
    "cudaMemcpyToSymbol",
    // OpenCL
    "__kernel",
    "__local",
    "__private",
    "__global",
    "__constant",
    "read_only",
    "write_only",
    "read_write",
    "image2d_t",
    "sampler_t",
    "barrier",
    "CLK_LOCAL_MEM_FENCE",
    "CLK_NORMALIZED_COORDS_FALSE",
    "CLK_ADDRESS_NONE",
    "CLK_ADDRESS_CLAMP_TO_EDGE",
    "CLK_ADDRESS_CLAMP",
    "CLK_ADDRESS_REPEAT",
    "CLK_FILTER_NEAREST",
    "get_local_id",
    "get_group_id",
    "get_local_size",
    "get_num_groups",
    "read_imagef",
    "write_imagef",
    "int2",
    "float4",
    // Math library
    "expf",
    "exp",
    "logf",
    "log",
    "sqrtf",
    "sqrt",
    "rsqrtf",
    "rsqrt",
    "fabsf",
    "fabs",
    "sinf",
    "sin",
    "cosf",
    "cos",
    "powf",
    "pow",
    "min",
    "max",
    "floorf",
    "floor",
    "roundf",
    "round",
    "__expf",
    "__logf",
    "__sinf",
    "__cosf",
    "__powf",
    "__fsqrt_rn",
    "__frsqrt_rn",
];

/// Replace comments (`//`, `/* */` — possibly spanning lines) and string
/// literals with spaces, preserving every newline so line numbers in
/// findings still refer to the original source.
fn strip_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment,
        Str,
    }
    let mut out = String::with_capacity(source.len());
    let mut st = St::Code;
    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        match st {
            St::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    out.push_str("  ");
                    st = St::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    out.push_str("  ");
                    st = St::BlockComment;
                }
                '"' => {
                    out.push(' ');
                    st = St::Str;
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    out.push('\n');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment => {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    out.push_str("  ");
                    st = St::Code;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Str => {
                if c == '\\' {
                    // Skip the escaped character (handles \" and \\).
                    if let Some(e) = chars.next() {
                        out.push(' ');
                        if e == '\n' {
                            out.push('\n');
                        }
                    }
                    out.push(' ');
                } else if c == '"' {
                    out.push(' ');
                    st = St::Code;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
        }
    }
    out
}

/// Check balanced `()`, `{}`, `[]` over comment-stripped source and
/// collect per-line errors.
fn check_delimiters(stripped: &str, errors: &mut Vec<LintError>) {
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (lineno, code) in stripped.lines().enumerate() {
        for c in code.chars() {
            match c {
                '(' | '{' | '[' => stack.push((c, lineno + 1)),
                ')' | '}' | ']' => {
                    let expected = match c {
                        ')' => '(',
                        '}' => '{',
                        _ => '[',
                    };
                    match stack.pop() {
                        Some((open, _)) if open == expected => {}
                        Some((open, at)) => errors.push(LintError {
                            line: lineno + 1,
                            message: format!("`{c}` closes `{open}` opened on line {at}"),
                        }),
                        None => errors.push(LintError {
                            line: lineno + 1,
                            message: format!("unmatched `{c}`"),
                        }),
                    }
                }
                _ => {}
            }
        }
    }
    for (open, at) in stack {
        errors.push(LintError {
            line: at,
            message: format!("`{open}` never closed"),
        });
    }
}

/// Collect identifiers *introduced* by a line (declarations, parameters,
/// array declarations, texture references).
fn declared_on_line(code: &str, declared: &mut HashSet<String>) {
    // Function definitions: the identifier right before the parameter
    // list after `void` / `__global__ void` / `__kernel void`.
    if let Some(paren) = code.find('(') {
        let head = &code[..paren];
        if head.contains("void") {
            if let Some(name) = tokenize(head).into_iter().rev().find(|t| is_identifier(t)) {
                declared.insert(name);
            }
        }
    }
    // Parameter lists and declarations share the shape `<type tokens> name`
    // where name is the identifier before `=`, `[`, `,`, `)` or `;`.
    let tokens = tokenize(code);
    // A crude declaration scan: after a type keyword, the next identifier
    // is declared.
    let type_words = [
        "int",
        "float",
        "bool",
        "char",
        "unsigned",
        "uchar",
        "ushort",
        "image2d_t",
        "sampler_t",
        "dim3",
        "size_t",
        "cl_mem",
        "cl_kernel",
        "cl_image_format",
        "texture",
    ];
    let mut i = 0;
    while i < tokens.len() {
        if type_words.contains(&tokens[i].as_str()) {
            // Skip further type tokens and pointer stars.
            let mut j = i + 1;
            while j < tokens.len()
                && (type_words.contains(&tokens[j].as_str())
                    || tokens[j] == "*"
                    || tokens[j] == "const")
            {
                j += 1;
            }
            if j < tokens.len() && is_identifier(&tokens[j]) {
                declared.insert(tokens[j].clone());
            }
            i = j;
        }
        i += 1;
    }
    // Texture declarations: `texture<float, ...> _texIN;`
    if code.trim_start().starts_with("texture<") {
        if let Some(name) = tokenize(code).into_iter().rev().find(|t| is_identifier(t)) {
            declared.insert(name);
        }
    }
}

fn is_identifier(t: &str) -> bool {
    let mut chars = t.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn tokenize(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if c == '*' {
                out.push("*".into());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The identifier-discipline scan over comment-stripped source.
fn check_identifiers(stripped: &str, errors: &mut Vec<LintError>) {
    // Every used identifier must be declared somewhere in the unit
    // (order-insensitive — globals may follow uses in host snippets) or
    // be a known keyword/builtin.
    let mut declared: HashSet<String> = HashSet::new();
    for line in stripped.lines() {
        if line.trim_start().starts_with('#') {
            continue; // preprocessor
        }
        declared_on_line(line, &mut declared);
    }
    let keywords: HashSet<&str> = KEYWORDS.iter().copied().collect();
    for (lineno, code) in stripped.lines().enumerate() {
        if code.trim_start().starts_with('#') {
            continue; // preprocessor
        }
        for tok in tokenize(code) {
            if !is_identifier(&tok) || tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue;
            }
            // Member accesses like threadIdx.x tokenize as two identifiers;
            // `x`/`y`/`z` after a builtin are fine.
            if matches!(tok.as_str(), "x" | "y" | "z" | "f" | "NULL") {
                continue;
            }
            if keywords.contains(tok.as_str()) || declared.contains(&tok) {
                continue;
            }
            errors.push(LintError {
                line: lineno + 1,
                message: format!("use of undeclared identifier `{tok}`"),
            });
        }
    }
}

/// Lint a generated translation unit. Returns all findings (empty = clean).
pub fn lint_source(source: &str) -> Vec<LintError> {
    let stripped = strip_comments_and_strings(source);
    let mut errors = Vec::new();
    check_delimiters(&stripped, &mut errors);
    check_identifiers(&stripped, &mut errors);
    errors
}

/// Lint a generated translation unit and report findings as structured
/// diagnostics: delimiter problems as `A0501`, undeclared identifiers as
/// `A0502`, both error severity (malformed generated code must never
/// reach a vendor toolchain).
pub fn lint_diagnostics(source: &str, kernel: &str) -> Vec<Diagnostic> {
    let stripped = strip_comments_and_strings(source);
    let mut delims = Vec::new();
    check_delimiters(&stripped, &mut delims);
    let mut idents = Vec::new();
    check_identifiers(&stripped, &mut idents);
    delims
        .into_iter()
        .map(|e| ("A0501", e))
        .chain(idents.into_iter().map(|e| ("A0502", e)))
        .map(|(code, e)| {
            Diagnostic::error(code, kernel, e.message).with_lines(e.line as u32, e.line as u32)
        })
        .collect()
}

/// Lines of source context shown around each finding by [`assert_clean`].
const CONTEXT_LINES: usize = 3;
/// Cap on findings rendered by [`assert_clean`].
const MAX_FINDINGS: usize = 10;

/// Convenience assertion used by tests: lint and panic with a readable
/// report on any finding.
///
/// Findings are reported through the structured [`Diagnostic`] pipeline
/// (the same `A0501`/`A0502` records `Compiler::compile` attaches), each
/// followed by a few lines of source context around the finding — not
/// the whole translation unit, which for a nine-region kernel runs to
/// hundreds of lines and buried the actual findings.
pub fn assert_clean(source: &str) {
    let diags = lint_diagnostics(source, "generated source");
    if diags.is_empty() {
        return;
    }
    let lines: Vec<&str> = source.lines().collect();
    let mut msg = format!(
        "generated source failed lint ({} finding(s)):\n",
        diags.len()
    );
    for d in diags.iter().take(MAX_FINDINGS) {
        msg.push_str(&format!("  {d}\n"));
        if let Some((first, _)) = d.lines {
            let at = (first as usize).saturating_sub(1);
            let lo = at.saturating_sub(CONTEXT_LINES);
            let hi = (at + CONTEXT_LINES + 1).min(lines.len());
            for (i, line) in lines.iter().enumerate().take(hi).skip(lo) {
                let marker = if i == at { ">" } else { " " };
                msg.push_str(&format!("  {marker} {:>4} | {line}\n", i + 1));
            }
        }
    }
    if diags.len() > MAX_FINDINGS {
        msg.push_str(&format!(
            "  ... and {} more finding(s)\n",
            diags.len() - MAX_FINDINGS
        ));
    }
    msg.push_str(&format!(
        "(source is {} lines; rerun lint_diagnostics() for the full record)",
        lines.len()
    ));
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_code_passes() {
        let src = "float add(float a, float b) {\n    return a + b;\n}\n";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn unbalanced_braces_detected() {
        let errors = lint_source("void f() {\n    if (1) {\n}\n");
        assert!(errors.iter().any(|e| e.message.contains("never closed")));
    }

    #[test]
    fn mismatched_delimiters_detected() {
        let errors = lint_source("int x = (1 + 2];");
        assert!(!errors.is_empty());
    }

    #[test]
    fn undeclared_identifier_detected() {
        let errors = lint_source("void f() {\n    float a = ghost + 1.0f;\n}\n");
        assert!(
            errors.iter().any(|e| e.message.contains("ghost")),
            "{errors:?}"
        );
    }

    #[test]
    fn comments_are_ignored() {
        let src = "void f() { // an ( unbalanced comment with ghost\n}\n";
        assert!(lint_source(src).is_empty());
    }

    #[test]
    fn block_comments_are_ignored() {
        // An unbalanced `{`, a stray `]` and an undeclared word, all
        // inside /* */ — including across lines.
        let src = "void f() { /* { ] ghost */\n/* spans\n   lines } phantom */\n}\n";
        assert!(lint_source(src).is_empty(), "{:?}", lint_source(src));
    }

    #[test]
    fn string_literals_are_ignored() {
        let src = "void f(char *s) {\n    s = \"){ ghost \\\" ]\";\n}\n";
        assert!(lint_source(src).is_empty(), "{:?}", lint_source(src));
    }

    #[test]
    fn stripping_preserves_line_numbers() {
        let src = "void f() {\n/* a\n   b */ ghost;\n}\n";
        let errors = lint_source(src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 3, "{errors:?}");
    }

    #[test]
    fn diagnostics_carry_codes_and_lines() {
        let d = lint_diagnostics("void f() {\n    ghost;\n", "k");
        let codes: Vec<&str> = d.iter().map(|x| x.code).collect();
        assert!(codes.contains(&"A0501"), "{d:?}");
        assert!(codes.contains(&"A0502"), "{d:?}");
        assert!(d.iter().all(|x| x.is_error() && x.lines.is_some()));
        let ident = d.iter().find(|x| x.code == "A0502").unwrap();
        assert_eq!(ident.lines, Some((2, 2)));
    }

    #[test]
    fn generated_kernels_pass_lint() {
        use crate::{BoundarySpec, CompileSpec, Compiler};
        use hipacc_hwmodel::device::tesla_c2050;
        use hipacc_hwmodel::Backend;
        use hipacc_image::BoundaryMode;
        use hipacc_ir::{Expr, KernelBuilder, ScalarType};

        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        let kernel = b.finish();
        for backend in [Backend::Cuda, Backend::OpenCl] {
            let spec = CompileSpec::new(tesla_c2050(), backend, 512, 512)
                .with_boundary("IN", BoundarySpec::new(BoundaryMode::Mirror, 3, 3));
            let out = Compiler::new().compile(&kernel, &spec).unwrap();
            assert_clean(&out.source);
        }
    }
}
