//! Host-side runtime code generation.
//!
//! The paper's compiler emits not only device kernels but also
//! "corresponding code to talk to the GPU accelerator": allocation with
//! padding, transfers, texture binding / sampler setup, constant-memory
//! upload, and the kernel launch with the selected configuration.

use hipacc_hwmodel::LaunchConfig;
use hipacc_ir::kernel::{BufferAccess, DeviceKernelDef, MemorySpace};

/// Emit the CUDA host launcher for a kernel.
pub fn emit_cuda_host(
    kernel: &DeviceKernelDef,
    cfg: LaunchConfig,
    grid: (u32, u32),
    width: u32,
    height: u32,
    stride: u32,
) -> String {
    let mut out = String::new();
    out.push_str("// Generated host code (CUDA backend).\n");
    out.push_str(&format!(
        "void launch_{}(float *host_in, float *host_out) {{\n",
        kernel.name
    ));
    out.push_str(&format!(
        "    const int width = {width}, height = {height}, stride = {stride};\n"
    ));
    for buf in &kernel.buffers {
        out.push_str(&format!(
            "    float *d_{0};\n    cudaMalloc(&d_{0}, stride * height * sizeof(float));\n",
            buf.name
        ));
        if buf.access != BufferAccess::WriteOnly {
            out.push_str(&format!(
                "    cudaMemcpy2D(d_{0}, stride * sizeof(float), host_in, width * sizeof(float),\n                 width * sizeof(float), height, cudaMemcpyHostToDevice);\n",
                buf.name
            ));
        }
        if buf.space == MemorySpace::Texture {
            out.push_str(&format!(
                "    cudaBindTexture(NULL, _tex{0}, d_{0}, stride * height * sizeof(float));\n",
                buf.name
            ));
        }
    }
    for cb in &kernel.const_buffers {
        if cb.data.is_none() {
            out.push_str(&format!(
                "    cudaMemcpyToSymbol({0}, host_{0}, {1} * sizeof(float));\n",
                cb.name,
                cb.width * cb.height
            ));
        }
    }
    out.push_str(&format!(
        "    dim3 block({}, {});\n    dim3 grid({}, {});\n",
        cfg.bx, cfg.by, grid.0, grid.1
    ));
    let mut args: Vec<String> = kernel
        .buffers
        .iter()
        .filter(|b| b.space == MemorySpace::Global)
        .map(|b| format!("d_{}", b.name))
        .collect();
    for s in &kernel.scalars {
        args.push(s.name.clone());
    }
    out.push_str(&format!(
        "    {}<<<grid, block>>>({});\n",
        kernel.name,
        args.join(", ")
    ));
    out.push_str(
        "    cudaMemcpy2D(host_out, width * sizeof(float), d_OUT, stride * sizeof(float),\n                 width * sizeof(float), height, cudaMemcpyDeviceToHost);\n",
    );
    for buf in &kernel.buffers {
        out.push_str(&format!("    cudaFree(d_{});\n", buf.name));
    }
    out.push_str("}\n");
    out
}

/// Emit the OpenCL host launcher for a kernel (just-in-time compilation
/// path, as the paper's run-time uses for configuration exploration).
pub fn emit_opencl_host(
    kernel: &DeviceKernelDef,
    cfg: LaunchConfig,
    grid: (u32, u32),
    width: u32,
    height: u32,
    stride: u32,
) -> String {
    let mut out = String::new();
    out.push_str("// Generated host code (OpenCL backend).\n");
    out.push_str(&format!(
        "void launch_{}(cl_context ctx, cl_command_queue q, cl_program prog,\n                float *host_in, float *host_out) {{\n",
        kernel.name
    ));
    out.push_str(&format!(
        "    const int width = {width}, height = {height}, stride = {stride};\n"
    ));
    out.push_str(&format!(
        "    cl_kernel k = clCreateKernel(prog, \"{}\", NULL);\n",
        kernel.name
    ));
    let mut arg_idx = 0;
    for buf in &kernel.buffers {
        match buf.space {
            MemorySpace::Texture => {
                out.push_str(&format!(
                    "    cl_image_format fmt = {{CL_R, CL_FLOAT}};\n    cl_mem img_{0} = clCreateImage2D(ctx, CL_MEM_READ_ONLY, &fmt, width, height, 0, NULL, NULL);\n",
                    buf.name
                ));
                out.push_str(&format!(
                    "    clSetKernelArg(k, {arg_idx}, sizeof(cl_mem), &img_{});\n",
                    buf.name
                ));
            }
            MemorySpace::Global => {
                out.push_str(&format!(
                    "    cl_mem d_{0} = clCreateBuffer(ctx, CL_MEM_READ_WRITE, stride * height * sizeof(float), NULL, NULL);\n",
                    buf.name
                ));
                out.push_str(&format!(
                    "    clSetKernelArg(k, {arg_idx}, sizeof(cl_mem), &d_{});\n",
                    buf.name
                ));
            }
            MemorySpace::Constant => {}
        }
        arg_idx += 1;
    }
    for cb in &kernel.const_buffers {
        if cb.data.is_none() {
            out.push_str(&format!(
                "    cl_mem c_{0} = clCreateBuffer(ctx, CL_MEM_READ_ONLY, {1} * sizeof(float), NULL, NULL);\n    clSetKernelArg(k, {arg_idx}, sizeof(cl_mem), &c_{0});\n",
                cb.name,
                cb.width * cb.height
            ));
            arg_idx += 1;
        }
    }
    for s in &kernel.scalars {
        out.push_str(&format!(
            "    clSetKernelArg(k, {arg_idx}, sizeof({}), &{});\n",
            s.ty.c_name(),
            s.name
        ));
        arg_idx += 1;
    }
    out.push_str(&format!(
        "    size_t local[2] = {{{}, {}}};\n    size_t global[2] = {{{}, {}}};\n",
        cfg.bx,
        cfg.by,
        grid.0 as u64 * cfg.bx as u64,
        grid.1 as u64 * cfg.by as u64
    ));
    out.push_str("    clEnqueueNDRangeKernel(q, k, 2, NULL, global, local, 0, NULL, NULL);\n");
    out.push_str("    clFinish(q);\n");
    out.push_str("    (void)host_in; (void)host_out; // transfers elided for brevity\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::kernel::*;
    use hipacc_ir::ScalarType;

    fn kernel() -> DeviceKernelDef {
        DeviceKernelDef {
            name: "blur_kernel".into(),
            buffers: vec![
                BufferParam {
                    name: "IN".into(),
                    ty: ScalarType::F32,
                    access: BufferAccess::ReadOnly,
                    space: MemorySpace::Texture,
                    address_mode: AddressMode::None,
                },
                BufferParam {
                    name: "OUT".into(),
                    ty: ScalarType::F32,
                    access: BufferAccess::WriteOnly,
                    space: MemorySpace::Global,
                    address_mode: AddressMode::None,
                },
            ],
            scalars: vec![ParamDecl {
                name: "width".into(),
                ty: ScalarType::I32,
            }],
            const_buffers: vec![],
            shared: vec![],
            body: vec![],
        }
    }

    #[test]
    fn cuda_host_binds_texture_and_launches() {
        let src = emit_cuda_host(
            &kernel(),
            LaunchConfig { bx: 128, by: 1 },
            (32, 4096),
            4096,
            4096,
            4096,
        );
        assert!(src.contains("cudaBindTexture(NULL, _texIN"));
        assert!(src.contains("dim3 block(128, 1);"));
        assert!(src.contains("dim3 grid(32, 4096);"));
        assert!(src.contains("blur_kernel<<<grid, block>>>"));
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn opencl_host_sets_global_size() {
        let src = emit_opencl_host(
            &kernel(),
            LaunchConfig { bx: 128, by: 1 },
            (32, 4096),
            4096,
            4096,
            4096,
        );
        assert!(src.contains("size_t local[2] = {128, 1};"));
        assert!(src.contains("size_t global[2] = {4096, 4096};"));
        assert!(src.contains("clCreateImage2D"));
        assert!(src.contains("clEnqueueNDRangeKernel"));
    }
}
