//! The compile specification.

use hipacc_hwmodel::{Backend, DeviceModel};
use hipacc_image::BoundaryMode;
use hipacc_ir::ty::Const;
use std::collections::HashMap;

/// Boundary condition attached to one accessor — the compiled form of the
/// paper's `BoundaryCondition` object: a mode plus the operator window it
/// was declared for.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundarySpec {
    /// The handling mode.
    pub mode: BoundaryMode,
    /// Declared window width (odd). The compiler takes the max of this
    /// and the inferred access window.
    pub width: u32,
    /// Declared window height (odd).
    pub height: u32,
}

impl BoundarySpec {
    /// A spec with the given mode and window.
    pub fn new(mode: BoundaryMode, width: u32, height: u32) -> Self {
        assert!(
            width % 2 == 1 && height % 2 == 1,
            "boundary windows must be odd"
        );
        Self {
            mode,
            width,
            height,
        }
    }

    /// Half-window in x.
    pub fn half_x(&self) -> u32 {
        self.width / 2
    }

    /// Half-window in y.
    pub fn half_y(&self) -> u32 {
        self.height / 2
    }
}

/// Which memory path input reads take — the `Manual` / `+Tex` / `+2DTex` /
/// `+Smem` axes of Tables II–IX. `Auto` consults the optimization
/// database.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemVariant {
    /// Let the optimization database decide.
    Auto,
    /// Plain global-memory loads.
    Global,
    /// Texture path with software boundary handling (CUDA linear texture /
    /// OpenCL image object).
    Texture,
    /// 2-D texture with *hardware* boundary handling (only Clamp/Repeat —
    /// and Constant on OpenCL — exist in hardware; the driver rejects
    /// other modes, which is why those table cells read "n/a").
    TextureHwBoundary,
    /// Scratchpad staging (shared/local memory tiles).
    Scratchpad,
}

/// Full specification for one compilation.
#[derive(Clone, Debug)]
pub struct CompileSpec {
    /// Target device model.
    pub device: DeviceModel,
    /// CUDA or OpenCL.
    pub backend: Backend,
    /// Image width (also the iteration-space width; ROIs smaller than the
    /// image are expressed through `is_*` scalars at launch).
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Row stride in elements (padded).
    pub stride: u32,
    /// Per-accessor boundary conditions. Accessors without an entry get
    /// `Undefined` handling, as in the framework.
    pub boundaries: HashMap<String, BoundarySpec>,
    /// Scalar parameter bindings known at compile time (enables window
    /// inference through `2*sigma_d`-style loop bounds, constant
    /// propagation and unrolling).
    pub param_bindings: HashMap<String, Const>,
    /// Memory-path override.
    pub variant: MemVariant,
    /// Store masks in constant memory (`false` forces the "no Mask" rows
    /// of the tables: coefficients are recomputed or read from global
    /// memory).
    pub use_const_masks: bool,
    /// Apply constant propagation with `param_bindings` before lowering.
    pub constant_propagation: bool,
    /// Fully unroll convolution loops up to this trip count (0 disables).
    pub unroll_limit: u32,
    /// Override the launch configuration instead of running Algorithm 2
    /// (the tables pin 128×1; exploration sweeps it).
    pub force_config: Option<(u32, u32)>,
    /// Iteration space: `(offset_x, offset_y, width, height)` within the
    /// image. `None` covers the whole image — the common case of Listing 2
    /// ("the region of interest contains the whole image").
    pub roi: Option<(u32, u32, u32, u32)>,
    /// Vectorization width (Section VIII outlook): each work-item computes
    /// this many horizontally adjacent pixels, letting AMD's VLIW lanes
    /// fill. 1 = scalar (the paper's evaluated configuration).
    pub vectorize: u32,
    /// Emit naive boundary handling: every read of every thread checks all
    /// four sides and no region specialization is generated — how a
    /// straightforward hand-written kernel (or RapidMind's generic
    /// handling) behaves. Used by the "Manual" baseline rows.
    pub generic_boundary: bool,
    /// Analysis-driven optimization level for the device IR: `0` lowers
    /// only (the pre-optimizer pipeline, bit-for-bit), `1` (default) runs
    /// the uniformity/value-range pass pipeline (`ir::opt`). Individual
    /// passes can be vetoed with the `HIPACC_OPT_DISABLE` env var.
    pub opt_level: u8,
}

impl CompileSpec {
    /// A specification with the defaults the generated code uses: auto
    /// memory variant, constant-memory masks, no unrolling, heuristic
    /// configuration.
    pub fn new(device: DeviceModel, backend: Backend, width: u32, height: u32) -> Self {
        let stride = hipacc_image::image::padded_stride(width, 4);
        Self {
            device,
            backend,
            width,
            height,
            stride,
            boundaries: HashMap::new(),
            param_bindings: HashMap::new(),
            variant: MemVariant::Auto,
            use_const_masks: true,
            constant_propagation: true,
            unroll_limit: 0,
            force_config: None,
            vectorize: 1,
            roi: None,
            generic_boundary: false,
            opt_level: 1,
        }
    }

    /// Attach a boundary condition to an accessor.
    pub fn with_boundary(mut self, accessor: &str, spec: BoundarySpec) -> Self {
        self.boundaries.insert(accessor.to_string(), spec);
        self
    }

    /// Bind a scalar parameter to a compile-time constant.
    pub fn with_param(mut self, name: &str, value: Const) -> Self {
        self.param_bindings.insert(name.to_string(), value);
        self
    }

    /// Set the memory variant.
    pub fn with_variant(mut self, v: MemVariant) -> Self {
        self.variant = v;
        self
    }

    /// Pin the launch configuration.
    pub fn with_config(mut self, bx: u32, by: u32) -> Self {
        self.force_config = Some((bx, by));
        self
    }

    /// Set the device-IR optimization level (0 = off, 1 = default).
    pub fn with_opt_level(mut self, level: u8) -> Self {
        self.opt_level = level;
        self
    }

    /// Set the vectorization width (pixels per work-item).
    pub fn with_vectorize(mut self, v: u32) -> Self {
        assert!((1..=16).contains(&v), "vector width out of range");
        self.vectorize = v;
        self
    }

    /// Restrict the iteration space to a sub-rectangle of the image.
    pub fn with_roi(mut self, x: u32, y: u32, w: u32, h: u32) -> Self {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "ROI outside image"
        );
        self.roi = Some((x, y, w, h));
        self
    }

    /// The effective iteration space `(x, y, w, h)`.
    pub fn iteration_space(&self) -> (u32, u32, u32, u32) {
        self.roi.unwrap_or((0, 0, self.width, self.height))
    }

    /// The boundary mode of an accessor (`Undefined` when unspecified).
    pub fn boundary_mode(&self, accessor: &str) -> BoundaryMode {
        self.boundaries
            .get(accessor)
            .map(|b| b.mode)
            .unwrap_or(BoundaryMode::Undefined)
    }

    /// Whether any accessor requests real (non-Undefined) handling.
    pub fn needs_boundary_handling(&self) -> bool {
        self.boundaries
            .values()
            .any(|b| b.mode != BoundaryMode::Undefined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::tesla_c2050;

    #[test]
    fn default_spec_has_padded_stride() {
        let s = CompileSpec::new(tesla_c2050(), Backend::Cuda, 100, 50);
        assert_eq!(s.stride, 128); // 100 floats pad to 512 bytes
        assert!(!s.needs_boundary_handling());
    }

    #[test]
    fn boundary_spec_halves() {
        let b = BoundarySpec::new(BoundaryMode::Clamp, 13, 13);
        assert_eq!(b.half_x(), 6);
        assert_eq!(b.half_y(), 6);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_boundary_window_rejected() {
        let _ = BoundarySpec::new(BoundaryMode::Clamp, 4, 3);
    }

    #[test]
    fn builder_methods_chain() {
        let s = CompileSpec::new(tesla_c2050(), Backend::Cuda, 64, 64)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Mirror, 5, 5))
            .with_param("sigma_d", Const::Int(3))
            .with_variant(MemVariant::Texture)
            .with_config(128, 1);
        assert_eq!(s.boundary_mode("IN"), BoundaryMode::Mirror);
        assert_eq!(s.boundary_mode("OTHER"), BoundaryMode::Undefined);
        assert!(s.needs_boundary_handling());
        assert_eq!(s.force_config, Some((128, 1)));
        assert_eq!(s.variant, MemVariant::Texture);
    }
}
