//! # hipacc-codegen
//!
//! The source-to-source compiler of Section IV: it consumes DSL-level
//! kernel IR plus access/execute metadata and produces device-level IR
//! together with CUDA and OpenCL source text.
//!
//! Pipeline (mirroring the paper):
//!
//! 1. [`options`] — the compile specification: target device, backend,
//!    boundary conditions per accessor, image geometry, variant overrides
//!    (the `+Tex` / `+Mask` / `+Smem` axes of the evaluation tables).
//! 2. Read/write analysis (from `hipacc-ir::access`) infers the window
//!    each accessor reads.
//! 3. [`lower`] — memory-space mapping (texture / scratchpad / constant
//!    memory) and boundary-handling index adjustment per image region.
//! 4. [`regions`] — the nine-region "one big kernel" of Section IV-B.
//! 5. Resource estimation + the Algorithm-2 heuristic (from
//!    `hipacc-hwmodel`) pick the launch configuration; the final kernel is
//!    re-generated with the region thresholds for that tiling, exactly as
//!    the paper describes ("the final kernel code is generated after the
//!    kernel configuration and tiling are determined").
//! 6. [`cuda`] / [`opencl`] — text emission; [`host`] — the host-side
//!    runtime code "to talk to the GPU accelerator"; [`lint`] — a
//!    token-level sanity checker over the emitted text.
//!
//! The [`compile::Compiler`] driver ties the steps together and returns a
//! [`compile::CompiledKernel`] that the simulator can execute and the
//! emitters have rendered.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod cuda;
pub mod fallback;
pub mod funcmap;
pub mod fuse;
pub mod host;
pub mod index;
pub mod lint;
pub mod lower;
pub mod opencl;
pub mod optimize;
pub mod options;
pub mod regions;

pub use compile::{verify_compiled, CompileError, CompiledKernel, Compiler};
pub use fallback::{fallback_chain, FallbackStep};
pub use optimize::disabled_passes;
pub use options::{BoundarySpec, CompileSpec, MemVariant};
pub use regions::Region;
