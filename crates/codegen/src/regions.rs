//! The nine image regions of Section IV-B (Figure 3).
//!
//! "Special boundary handling mode is added for each border — resulting in
//! nine different kernel implementations … Instead [of nine launches], the
//! source-to-source compiler creates one big kernel that hosts all nine
//! implementations, but executes only the required one depending on the
//! currently processed image region."

use hipacc_hwmodel::LaunchConfig;

/// One of the nine border regions. `Interior` is the paper's `NO_BH`
/// region, which the tiling heuristic maximizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Top-left corner.
    TopLeft,
    /// Top edge.
    Top,
    /// Top-right corner.
    TopRight,
    /// Left edge.
    Left,
    /// Interior (no boundary handling).
    Interior,
    /// Right edge.
    Right,
    /// Bottom-left corner.
    BottomLeft,
    /// Bottom edge.
    Bottom,
    /// Bottom-right corner.
    BottomRight,
}

impl Region {
    /// All nine regions, corners first (dispatch order of Listing 8).
    pub fn all() -> [Region; 9] {
        [
            Region::TopLeft,
            Region::TopRight,
            Region::BottomLeft,
            Region::BottomRight,
            Region::Top,
            Region::Bottom,
            Region::Left,
            Region::Right,
            Region::Interior,
        ]
    }

    /// Whether reads in this region may fall off the left image edge.
    pub fn checks_left(self) -> bool {
        matches!(self, Region::TopLeft | Region::Left | Region::BottomLeft)
    }

    /// Whether reads may fall off the right edge.
    pub fn checks_right(self) -> bool {
        matches!(self, Region::TopRight | Region::Right | Region::BottomRight)
    }

    /// Whether reads may fall off the top edge.
    pub fn checks_top(self) -> bool {
        matches!(self, Region::TopLeft | Region::Top | Region::TopRight)
    }

    /// Whether reads may fall off the bottom edge.
    pub fn checks_bottom(self) -> bool {
        matches!(
            self,
            Region::BottomLeft | Region::Bottom | Region::BottomRight
        )
    }

    /// Label used in generated code (`TL_BH`, `NO_BH`, …).
    pub fn label(self) -> &'static str {
        match self {
            Region::TopLeft => "TL_BH",
            Region::Top => "T_BH",
            Region::TopRight => "TR_BH",
            Region::Left => "L_BH",
            Region::Interior => "NO_BH",
            Region::Right => "R_BH",
            Region::BottomLeft => "BL_BH",
            Region::Bottom => "B_BH",
            Region::BottomRight => "BR_BH",
        }
    }

    /// Number of boundary checks per access (sides checked).
    pub fn sides(self) -> u32 {
        self.checks_left() as u32
            + self.checks_right() as u32
            + self.checks_top() as u32
            + self.checks_bottom() as u32
    }
}

/// Block-index thresholds that assign regions to thread blocks for a given
/// tiling — the constants of Listing 8 ("Whether boundary handling is
/// required for that regions depends on the size of the block processed by
/// one SIMD unit … as well as on the size of the filter mask").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegionGrid {
    /// Block columns on the left that need left handling.
    pub left_blocks: u32,
    /// Block columns on the right that need right handling.
    pub right_blocks: u32,
    /// Block rows on the top that need top handling.
    pub top_blocks: u32,
    /// Block rows on the bottom that need bottom handling.
    pub bottom_blocks: u32,
    /// Grid dimensions.
    pub grid_x: u32,
    /// Grid dimensions.
    pub grid_y: u32,
    /// Whether left and right border block columns overlap (narrow grid):
    /// every x-border block must then handle *both* horizontal sides.
    pub x_overlap: bool,
    /// Whether top and bottom border block rows overlap.
    pub y_overlap: bool,
}

impl RegionGrid {
    /// Compute thresholds for an image, half-window and tiling.
    pub fn compute(
        width: u32,
        height: u32,
        half_x: u32,
        half_y: u32,
        cfg: LaunchConfig,
    ) -> RegionGrid {
        RegionGrid::compute_roi(width, height, 0, 0, width, height, half_x, half_y, cfg)
    }

    /// Like [`RegionGrid::compute`], but for an iteration space that is a
    /// sub-rectangle of the image: blocks tile the ROI, and a block needs
    /// handling only when its reads (ROI coordinates plus the halo) leave
    /// the *image*. An interior ROI therefore needs no handling at all.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_roi(
        img_w: u32,
        img_h: u32,
        off_x: u32,
        off_y: u32,
        roi_w: u32,
        roi_h: u32,
        half_x: u32,
        half_y: u32,
        cfg: LaunchConfig,
    ) -> RegionGrid {
        let (grid_x, grid_y) = cfg.grid_for(roi_w, roi_h);
        // Blocks on the left that can reach past the image's left edge:
        // block b starts at off_x + b*bx; handling needed while
        // off_x + b*bx < half_x.
        let left_blocks = if half_x > off_x {
            (half_x - off_x).div_ceil(cfg.bx).min(grid_x)
        } else {
            0
        };
        let top_blocks = if half_y > off_y {
            (half_y - off_y).div_ceil(cfg.by).min(grid_y)
        } else {
            0
        };
        let width = img_w;
        let height = img_h;
        // Re-anchor the right/bottom computation at the ROI offset: block
        // b needs right handling when off_x + (b+1)*bx > img_w - half_x.
        // A block needs right handling when its tile reaches past
        // `width - half_x`, i.e. block index b with (b+1)·bx > width - half.
        let first_bh_block = |extent: u32, half: u32, b: u32| -> u32 {
            if extent <= half {
                0
            } else {
                (extent - half + 1).div_ceil(b).saturating_sub(1)
            }
        };
        // If even the ROI's last pixel plus the halo stays inside the
        // image, no block needs right handling at all (interior ROI).
        let raw_right = if off_x + roi_w + half_x <= width {
            0
        } else {
            let right_start = first_bh_block(width.saturating_sub(off_x), half_x, cfg.bx);
            grid_x - right_start.min(grid_x)
        };
        let right_blocks = raw_right.min(grid_x - left_blocks.min(grid_x));
        let raw_bottom = if off_y + roi_h + half_y <= height {
            0
        } else {
            let bottom_start = first_bh_block(height.saturating_sub(off_y), half_y, cfg.by);
            grid_y - bottom_start.min(grid_y)
        };
        let bottom_blocks = raw_bottom.min(grid_y - top_blocks.min(grid_y));
        RegionGrid {
            left_blocks,
            right_blocks,
            top_blocks,
            bottom_blocks,
            grid_x,
            grid_y,
            x_overlap: half_x > 0 && left_blocks + raw_right > grid_x,
            y_overlap: half_y > 0 && top_blocks + raw_bottom > grid_y,
        }
    }

    /// Compute just the overlap flags (used by the lowering, which widens
    /// boundary checks to both sides of an axis when the border block
    /// bands overlap).
    pub fn overlaps(
        width: u32,
        height: u32,
        half_x: u32,
        half_y: u32,
        cfg: LaunchConfig,
    ) -> (bool, bool) {
        let g = RegionGrid::compute(width, height, half_x, half_y, cfg);
        (g.x_overlap, g.y_overlap)
    }

    /// Which region a block `(bx_idx, by_idx)` executes.
    pub fn region_of(&self, bx_idx: u32, by_idx: u32) -> Region {
        let left = bx_idx < self.left_blocks;
        let right = bx_idx >= self.grid_x - self.right_blocks;
        let top = by_idx < self.top_blocks;
        let bottom = by_idx >= self.grid_y - self.bottom_blocks;
        match (left, right, top, bottom) {
            (true, _, true, _) => Region::TopLeft,
            (_, true, true, _) => Region::TopRight,
            (true, _, _, true) => Region::BottomLeft,
            (_, true, _, true) => Region::BottomRight,
            (_, _, true, _) => Region::Top,
            (_, _, _, true) => Region::Bottom,
            (true, _, _, _) => Region::Left,
            (_, true, _, _) => Region::Right,
            _ => Region::Interior,
        }
    }

    /// Number of blocks executing each region, for the timing model's
    /// region weighting.
    pub fn block_counts(&self) -> Vec<(Region, u64)> {
        let mut counts: Vec<(Region, u64)> = Region::all().iter().map(|r| (*r, 0u64)).collect();
        for by in 0..self.grid_y {
            for bx in 0..self.grid_x {
                let r = self.region_of(bx, by);
                let slot = counts.iter_mut().find(|(reg, _)| *reg == r).unwrap();
                slot.1 += 1;
            }
        }
        counts
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid_x as u64 * self.grid_y as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_side_checks() {
        assert!(Region::TopLeft.checks_left() && Region::TopLeft.checks_top());
        assert!(!Region::TopLeft.checks_right() && !Region::TopLeft.checks_bottom());
        assert_eq!(Region::TopLeft.sides(), 2);
        assert_eq!(Region::Top.sides(), 1);
        assert_eq!(Region::Interior.sides(), 0);
        assert_eq!(Region::all().len(), 9);
    }

    #[test]
    fn paper_example_13x13_on_128x1() {
        // 4096x4096 image, 13x13 window (half 6), 128x1 blocks:
        // left border: 1 block column; top: 6 block rows (by = 1).
        let grid = RegionGrid::compute(4096, 4096, 6, 6, LaunchConfig { bx: 128, by: 1 });
        assert_eq!(grid.grid_x, 32);
        assert_eq!(grid.grid_y, 4096);
        assert_eq!(grid.left_blocks, 1);
        assert_eq!(grid.right_blocks, 1);
        assert_eq!(grid.top_blocks, 6);
        assert_eq!(grid.bottom_blocks, 6);
        // Listing 8's dispatch: blockIdx.x < 1 && blockIdx.y < 6 -> TL_BH.
        assert_eq!(grid.region_of(0, 0), Region::TopLeft);
        assert_eq!(grid.region_of(0, 5), Region::TopLeft);
        assert_eq!(grid.region_of(0, 6), Region::Left);
        assert_eq!(grid.region_of(1, 0), Region::Top);
        assert_eq!(grid.region_of(31, 0), Region::TopRight);
        assert_eq!(grid.region_of(16, 2048), Region::Interior);
        assert_eq!(grid.region_of(31, 4095), Region::BottomRight);
    }

    #[test]
    fn region_partition_is_total_and_disjoint() {
        let grid = RegionGrid::compute(512, 384, 6, 6, LaunchConfig { bx: 32, by: 6 });
        let counts = grid.block_counts();
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, grid.total_blocks());
        // The interior dominates for a large image.
        let interior = counts
            .iter()
            .find(|(r, _)| *r == Region::Interior)
            .unwrap()
            .1;
        assert!(
            interior * 2 > total,
            "interior should dominate: {interior}/{total}"
        );
    }

    #[test]
    fn tall_tiles_shrink_border_rows() {
        // by = 6 needs 1 top block row for half_y = 6; by = 4 needs 2.
        let g6 = RegionGrid::compute(4096, 4096, 6, 6, LaunchConfig { bx: 32, by: 6 });
        let g4 = RegionGrid::compute(4096, 4096, 6, 6, LaunchConfig { bx: 32, by: 4 });
        assert_eq!(g6.top_blocks, 1);
        assert_eq!(g4.top_blocks, 2);
    }

    #[test]
    fn tiny_image_is_all_border() {
        // 8x8 image with half-window 6: every block handles borders.
        let grid = RegionGrid::compute(8, 8, 6, 6, LaunchConfig { bx: 32, by: 1 });
        let counts = grid.block_counts();
        let interior = counts
            .iter()
            .find(|(r, _)| *r == Region::Interior)
            .unwrap()
            .1;
        assert_eq!(interior, 0);
    }

    #[test]
    fn zero_halo_is_all_interior() {
        let grid = RegionGrid::compute(256, 256, 0, 0, LaunchConfig { bx: 32, by: 4 });
        assert_eq!(grid.left_blocks, 0);
        assert_eq!(grid.top_blocks, 0);
        for by in 0..grid.grid_y {
            for bx in 0..grid.grid_x {
                assert_eq!(grid.region_of(bx, by), Region::Interior);
            }
        }
    }
}
