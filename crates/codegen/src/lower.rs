//! DSL-to-device lowering.
//!
//! This pass performs the memory-space mapping of Section IV-A — accessor
//! reads become texture fetches, scratchpad loads or plain global loads;
//! mask reads become constant-memory loads; `output()` becomes a global
//! store — and weaves in the boundary-handling index adjustment for the
//! image region the generated body serves.

use crate::index::{adjust_coord, in_bounds_expr, Sides};
use crate::options::{CompileSpec, MemVariant};
use crate::regions::{Region, RegionGrid};
use hipacc_hwmodel::{Backend, LaunchConfig, OptimizationDb};
use hipacc_image::BoundaryMode;
use hipacc_ir::kernel::{
    AddressMode, BufferAccess, BufferParam, ConstBufferDecl, DeviceKernelDef, MemorySpace,
    ParamDecl, SharedDecl,
};
use hipacc_ir::{Builtin, Expr, KernelDef, LValue, ScalarType, Stmt, TexCoords};
use std::collections::HashMap;

/// The resolved memory path input reads take.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemPath {
    /// Plain global loads.
    Global,
    /// CUDA linear texture (`tex1Dfetch` on a linear index).
    TexLinear,
    /// OpenCL image object (`read_imagef` with (x, y)).
    TexXy,
    /// 2-D texture with hardware boundary handling.
    TexHw,
    /// Shared/local-memory staging.
    Scratchpad,
}

/// Resolve the memory variant against the backend and the optimization
/// database.
pub fn resolve_mem(spec: &CompileSpec, window: (u32, u32)) -> MemPath {
    let db = OptimizationDb::new();
    let flags = db.flags(&spec.device, spec.backend, window);
    match spec.variant {
        MemVariant::Global => MemPath::Global,
        MemVariant::Texture => match spec.backend {
            Backend::Cuda => MemPath::TexLinear,
            Backend::OpenCl => MemPath::TexXy,
        },
        MemVariant::TextureHwBoundary => MemPath::TexHw,
        MemVariant::Scratchpad => MemPath::Scratchpad,
        MemVariant::Auto => {
            if flags.use_scratchpad {
                MemPath::Scratchpad
            } else if flags.use_texture {
                match spec.backend {
                    Backend::Cuda => MemPath::TexLinear,
                    Backend::OpenCl => MemPath::TexXy,
                }
            } else {
                MemPath::Global
            }
        }
    }
}

/// Hardware address mode for the `TexHw` path, or an error string when the
/// mode has no hardware support — the "n/a" cells of Tables II–VII.
pub fn hw_address_mode(mode: BoundaryMode, backend: Backend) -> Result<AddressMode, String> {
    match (mode, backend) {
        (BoundaryMode::Clamp, _) => Ok(AddressMode::Clamp),
        (BoundaryMode::Repeat, _) => Ok(AddressMode::Repeat),
        // OpenCL CLK_ADDRESS_CLAMP returns the border color, which is only
        // 0.0 or 1.0 for CL_R images — the paper: "the constants can be
        // only floating point values of either 0.0 or 1.0".
        (BoundaryMode::Constant(c), Backend::OpenCl) if c == 0.0 || c == 1.0 => {
            Ok(AddressMode::BorderConstant(c))
        }
        (BoundaryMode::Undefined, _) => Ok(AddressMode::None),
        (m, b) => Err(format!(
            "{} boundary handling is not supported by {} texture hardware",
            m.name(),
            b.name()
        )),
    }
}

/// The lowering context for one kernel compilation.
pub struct Lowering<'a> {
    kernel: &'a KernelDef,
    spec: &'a CompileSpec,
    mem: MemPath,
    /// Per-accessor half-windows (max of declared and inferred).
    halves: HashMap<String, (u32, u32)>,
    cfg: LaunchConfig,
    /// Whether border block bands overlap on each axis (narrow grids):
    /// boundary checks are then widened to both sides of the axis.
    x_overlap: bool,
    y_overlap: bool,
}

impl<'a> Lowering<'a> {
    /// Create a lowering context.
    pub fn new(
        kernel: &'a KernelDef,
        spec: &'a CompileSpec,
        mem: MemPath,
        halves: HashMap<String, (u32, u32)>,
        cfg: LaunchConfig,
    ) -> Self {
        let max_half = halves
            .values()
            .fold((0u32, 0u32), |a, h| (a.0.max(h.0), a.1.max(h.1)));
        let (ox, oy, rw, rh) = spec.iteration_space();
        // Overlap must be judged on the *effective* tile width — a
        // vectorized block covers `bx * vectorize` pixels, and the region
        // dispatch thresholds are computed against that tile. Using the
        // raw launch shape here can miss an overlap on narrow grids and
        // emit single-sided checks for a block that touches both edges.
        let eff = LaunchConfig {
            bx: cfg.bx * spec.vectorize.max(1),
            by: cfg.by,
        };
        let g = RegionGrid::compute_roi(
            spec.width,
            spec.height,
            ox,
            oy,
            rw,
            rh,
            max_half.0,
            max_half.1,
            eff,
        );
        let (x_overlap, y_overlap) = (g.x_overlap, g.y_overlap);
        Self {
            kernel,
            spec,
            mem,
            halves,
            cfg,
            x_overlap,
            y_overlap,
        }
    }

    fn half_of(&self, acc: &str) -> (u32, u32) {
        self.halves.get(acc).copied().unwrap_or((0, 0))
    }

    fn mode_of(&self, acc: &str) -> BoundaryMode {
        self.spec.boundary_mode(acc)
    }

    fn gid_x() -> Expr {
        Expr::var("gid_x")
    }

    fn gid_y() -> Expr {
        Expr::var("gid_y")
    }

    fn width() -> Expr {
        Expr::var("width")
    }

    fn height() -> Expr {
        Expr::var("height")
    }

    fn stride() -> Expr {
        Expr::var("stride")
    }

    /// Name of the shared-memory tile for an accessor.
    fn smem_name(acc: &str) -> String {
        format!("_smem{acc}")
    }

    /// Name of the constant buffer for a mask.
    fn cmem_name(mask: &str) -> String {
        format!("_const{mask}")
    }

    /// Name of the global fallback buffer for a mask (when constant memory
    /// is disabled).
    fn gmask_name(mask: &str) -> String {
        format!("_gmask{mask}")
    }

    /// The raw load of accessor `acc` at adjusted coordinates.
    fn load_at(&self, acc: &str, ax: Expr, ay: Expr) -> Expr {
        match self.mem {
            MemPath::Global | MemPath::Scratchpad => Expr::GlobalLoad {
                buf: acc.to_string(),
                idx: Box::new(ax + ay * Self::stride()),
            },
            MemPath::TexLinear => Expr::TexFetch {
                buf: acc.to_string(),
                coords: TexCoords::Linear(Box::new(ax + ay * Self::stride())),
            },
            MemPath::TexXy | MemPath::TexHw => Expr::TexFetch {
                buf: acc.to_string(),
                coords: TexCoords::Xy(Box::new(ax), Box::new(ay)),
            },
        }
    }

    /// Lower `Input(dx, dy)` for a region.
    fn read_expr(&self, acc: &str, dx: &Expr, dy: &Expr, region: Region) -> Expr {
        let ix = Self::gid_x() + dx.clone();
        let iy = Self::gid_y() + dy.clone();
        let mode = self.mode_of(acc);

        // Scratchpad: the tile was staged with boundary handling applied,
        // so reads index the tile directly.
        if self.mem == MemPath::Scratchpad {
            let (hx, hy) = self.half_of(acc);
            return Expr::SharedLoad {
                buf: Self::smem_name(acc),
                y: Box::new(Expr::Builtin(Builtin::ThreadIdxY) + Expr::int(hy as i64) + dy.clone()),
                x: Box::new(Expr::Builtin(Builtin::ThreadIdxX) + Expr::int(hx as i64) + dx.clone()),
            };
        }

        // Hardware boundary handling: raw coordinates, the sampler does
        // the rest.
        if self.mem == MemPath::TexHw {
            return self.load_at(acc, ix, iy);
        }

        // A border band that overlaps its opposite band (narrow grid)
        // widens the check to both sides of the axis; naive lowering
        // checks everything everywhere.
        let x_border = region.checks_left() || region.checks_right();
        let y_border = region.checks_top() || region.checks_bottom();
        let generic = self.spec.generic_boundary && mode != BoundaryMode::Undefined;
        let x_sides = Sides {
            low: generic || region.checks_left() || (self.x_overlap && x_border),
            high: generic || region.checks_right() || (self.x_overlap && x_border),
        };
        let y_sides = Sides {
            low: generic || region.checks_top() || (self.y_overlap && y_border),
            high: generic || region.checks_bottom() || (self.y_overlap && y_border),
        };
        match mode {
            BoundaryMode::Undefined => self.load_at(acc, ix, iy),
            BoundaryMode::Clamp | BoundaryMode::Repeat | BoundaryMode::Mirror => {
                let ax = adjust_coord(mode, ix, Self::width(), x_sides);
                let ay = adjust_coord(mode, iy, Self::height(), y_sides);
                self.load_at(acc, ax, ay)
            }
            BoundaryMode::Constant(c) => {
                match in_bounds_expr(&ix, &iy, &Self::width(), &Self::height(), x_sides, y_sides) {
                    None => self.load_at(acc, ix, iy),
                    Some(pred) => Expr::select(pred, self.load_at(acc, ix, iy), Expr::float(c)),
                }
            }
        }
    }

    /// Lower `Mask(dx, dy)`.
    fn mask_expr(&self, mask: &str, dx: &Expr, dy: &Expr) -> Expr {
        let decl = self
            .kernel
            .mask(mask)
            .unwrap_or_else(|| panic!("unknown mask {mask}"));
        let idx = (dy.clone() + Expr::int(decl.half_h() as i64)) * Expr::int(decl.width as i64)
            + dx.clone()
            + Expr::int(decl.half_w() as i64);
        if self.spec.use_const_masks {
            Expr::ConstLoad {
                buf: Self::cmem_name(mask),
                idx: Box::new(idx),
            }
        } else {
            Expr::GlobalLoad {
                buf: Self::gmask_name(mask),
                idx: Box::new(idx),
            }
        }
    }

    fn lower_expr(&self, e: Expr, region: Region) -> Expr {
        e.rewrite(&mut |n| match n {
            Expr::InputAt { acc, dx, dy } => self.read_expr(&acc, &dx, &dy, region),
            Expr::MaskAt { mask, dx, dy } => self.mask_expr(&mask, &dx, &dy),
            Expr::OutputX => Self::gid_x(),
            Expr::OutputY => Self::gid_y(),
            other => other,
        })
    }

    fn lower_stmts(&self, stmts: &[Stmt], region: Region) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Decl { name, ty, init } => Stmt::Decl {
                    name: name.clone(),
                    ty: *ty,
                    init: init.clone().map(|e| self.lower_expr(e, region)),
                },
                Stmt::Assign { target, value } => Stmt::Assign {
                    target: target.clone(),
                    value: self.lower_expr(value.clone(), region),
                },
                Stmt::Output(e) => Stmt::GlobalStore {
                    buf: "OUT".into(),
                    idx: Self::gid_x() + Self::gid_y() * Self::stride(),
                    value: self.lower_expr(e.clone(), region),
                },
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => Stmt::For {
                    var: var.clone(),
                    from: self.lower_expr(from.clone(), region),
                    to: self.lower_expr(to.clone(), region),
                    body: self.lower_stmts(body, region),
                },
                Stmt::If { cond, then, els } => Stmt::If {
                    cond: self.lower_expr(cond.clone(), region),
                    then: self.lower_stmts(then, region),
                    els: self.lower_stmts(els, region),
                },
                other => other.clone(),
            })
            .collect()
    }

    /// Generate the scratchpad staging prologue (Listing 7) for every
    /// accessor, with boundary handling applied during staging. Returns
    /// the shared declarations and staging statements.
    fn staging(&self) -> (Vec<SharedDecl>, Vec<Stmt>) {
        let mut decls = Vec::new();
        let mut stmts = Vec::new();
        let bsx = self.cfg.bx;
        let bsy = self.cfg.by;
        for acc in &self.kernel.accessors {
            let (hx, hy) = self.half_of(&acc.name);
            let sx = 2 * hx; // halo columns
            let sy = 2 * hy; // halo rows
            let tile_w = bsx + sx;
            let tile_h = bsy + sy;
            decls.push(SharedDecl {
                name: Self::smem_name(&acc.name),
                ty: ScalarType::F32,
                rows: tile_h,
                // +1 column pad: "A constant of 1 is added to BSX so that
                // different banks … are accessed … to avoid bank
                // conflicts".
                cols: tile_w + 1,
            });
            stmts.push(Stmt::Comment(format!(
                "stage {} into scratchpad memory ({}x{} tile, +1 pad)",
                acc.name, tile_h, tile_w
            )));
            // base coordinates of the tile in image space.
            let base_x = format!("_base_x_{}", acc.name);
            let base_y = format!("_base_y_{}", acc.name);
            stmts.push(Stmt::Decl {
                name: base_x.clone(),
                ty: ScalarType::I32,
                init: Some(
                    Expr::Builtin(Builtin::BlockIdxX) * Expr::int(bsx as i64)
                        + Expr::var("is_offset_x")
                        - Expr::int(hx as i64),
                ),
            });
            stmts.push(Stmt::Decl {
                name: base_y.clone(),
                ty: ScalarType::I32,
                init: Some(
                    Expr::Builtin(Builtin::BlockIdxY) * Expr::int(bsy as i64)
                        + Expr::var("is_offset_y")
                        - Expr::int(hy as i64),
                ),
            });
            let steps_x = tile_w.div_ceil(bsx);
            let steps_y = tile_h.div_ceil(bsy);
            let mode = self.mode_of(&acc.name);
            for step_y in 0..steps_y {
                for step_x in 0..steps_x {
                    let lx = Expr::Builtin(Builtin::ThreadIdxX) + Expr::int((step_x * bsx) as i64);
                    let ly = Expr::Builtin(Builtin::ThreadIdxY) + Expr::int((step_y * bsy) as i64);
                    // Image coordinates with full boundary handling: the
                    // staged tile must be valid for every region.
                    let ix = Expr::var(&base_x) + lx.clone();
                    let iy = Expr::var(&base_y) + ly.clone();
                    let value = match mode {
                        BoundaryMode::Undefined => self.load_at(&acc.name, ix, iy),
                        BoundaryMode::Clamp | BoundaryMode::Repeat | BoundaryMode::Mirror => {
                            let ax = adjust_coord(mode, ix, Self::width(), Sides::both());
                            let ay = adjust_coord(mode, iy, Self::height(), Sides::both());
                            self.load_at(&acc.name, ax, ay)
                        }
                        BoundaryMode::Constant(c) => {
                            let pred = in_bounds_expr(
                                &ix,
                                &iy,
                                &Self::width(),
                                &Self::height(),
                                Sides::both(),
                                Sides::both(),
                            )
                            .expect("both sides checked");
                            Expr::select(pred, self.load_at(&acc.name, ix, iy), Expr::float(c))
                        }
                    };
                    let store = Stmt::SharedStore {
                        buf: Self::smem_name(&acc.name),
                        y: ly.clone(),
                        x: lx.clone(),
                        value,
                    };
                    // Guard partial staging steps.
                    let needs_guard = (step_x + 1) * bsx > tile_w || (step_y + 1) * bsy > tile_h;
                    if needs_guard {
                        stmts.push(Stmt::If {
                            cond: lx
                                .lt(Expr::int(tile_w as i64))
                                .and(ly.lt(Expr::int(tile_h as i64))),
                            then: vec![store],
                            els: vec![],
                        });
                    } else {
                        stmts.push(store);
                    }
                }
            }
        }
        stmts.push(Stmt::Barrier);
        (decls, stmts)
    }

    /// Build the full device kernel. `grid` provides the region thresholds
    /// when border-specialized code is requested; `None` produces a single
    /// interior body (used for `Undefined` handling and for the resource
    /// probe before the launch configuration is known).
    pub fn device_kernel(&self, grid: Option<&RegionGrid>) -> DeviceKernelDef {
        let vec_w = self.spec.vectorize.max(1) as i64;
        let mut body: Vec<Stmt> = Vec::new();
        // Global ids are *image* coordinates: the iteration-space offset is
        // added so a sub-image ROI tiles from its own origin. With
        // vectorization each work-item owns `vec_w` adjacent pixels.
        let thread_x = Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)
            + Expr::Builtin(Builtin::ThreadIdxX);
        body.push(Stmt::Decl {
            name: "gid_x".into(),
            ty: ScalarType::I32,
            init: Some(if vec_w > 1 {
                thread_x * Expr::int(vec_w) + Expr::var("is_offset_x")
            } else {
                thread_x + Expr::var("is_offset_x")
            }),
        });
        body.push(Stmt::Decl {
            name: "gid_y".into(),
            ty: ScalarType::I32,
            init: Some(
                Expr::Builtin(Builtin::BlockIdxY) * Expr::Builtin(Builtin::BlockDimY)
                    + Expr::Builtin(Builtin::ThreadIdxY)
                    + Expr::var("is_offset_y"),
            ),
        });

        let guard = Stmt::If {
            cond: Self::gid_x()
                .ge(Expr::var("is_offset_x") + Expr::var("is_width"))
                .or(Self::gid_y().ge(Expr::var("is_offset_y") + Expr::var("is_height"))),
            then: vec![Stmt::Return],
            els: vec![],
        };

        let mut shared = Vec::new();
        if self.mem == MemPath::Scratchpad {
            // Staging must run for the whole block before any thread can
            // return, so the guard comes after the barrier.
            let (decls, staging) = self.staging();
            shared = decls;
            body.extend(staging);
            body.push(guard);
        } else {
            body.push(guard);
        }

        let pixel_body = match grid {
            None => self.lower_stmts(&self.kernel.body, Region::Interior),
            Some(g) => {
                let mut b = vec![Stmt::Comment(
                    "region dispatch: 9 specialized boundary-handling bodies".into(),
                )];
                b.extend(self.region_dispatch(g));
                b
            }
        };
        if vec_w > 1 {
            // Vectorized pixel loop (Section VIII): rebase gid_x per lane.
            // The emitted loop is trivially unrolled/packed by the backend.
            body.push(Stmt::Comment(format!(
                "vectorized: {vec_w} pixels per work-item"
            )));
            let rebased = Stmt::rewrite_exprs(pixel_body, &mut |e| {
                if matches!(&e, Expr::Var(v) if v == "gid_x") {
                    Expr::var("_vgid_x")
                } else {
                    e
                }
            });
            let mut lane_body = vec![Stmt::Decl {
                name: "_vgid_x".into(),
                ty: ScalarType::I32,
                init: Some(Self::gid_x() + Expr::var("_vlane")),
            }];
            lane_body.push(Stmt::If {
                cond: Expr::var("_vgid_x").lt(Expr::var("is_offset_x") + Expr::var("is_width")),
                then: rebased,
                els: vec![],
            });
            body.push(Stmt::For {
                var: "_vlane".into(),
                from: Expr::int(0),
                to: Expr::int(vec_w - 1),
                body: lane_body,
            });
        } else {
            body.extend(pixel_body);
        }

        // Parameters.
        let mut scalars = vec![
            ParamDecl {
                name: "width".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "height".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "stride".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "is_width".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "is_height".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "is_offset_x".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "is_offset_y".into(),
                ty: ScalarType::I32,
            },
        ];
        for p in &self.kernel.params {
            scalars.push(p.clone());
        }

        let mut buffers = Vec::new();
        for acc in &self.kernel.accessors {
            let space = match self.mem {
                MemPath::Global | MemPath::Scratchpad => MemorySpace::Global,
                _ => MemorySpace::Texture,
            };
            let address_mode = if self.mem == MemPath::TexHw {
                hw_address_mode(self.mode_of(&acc.name), self.spec.backend)
                    .unwrap_or(AddressMode::None)
            } else {
                AddressMode::None
            };
            buffers.push(BufferParam {
                name: acc.name.clone(),
                ty: acc.ty,
                access: BufferAccess::ReadOnly,
                space,
                address_mode,
            });
        }
        buffers.push(BufferParam {
            name: "OUT".into(),
            ty: self.kernel.pixel,
            access: BufferAccess::WriteOnly,
            space: MemorySpace::Global,
            address_mode: AddressMode::None,
        });

        let mut const_buffers = Vec::new();
        for m in &self.kernel.masks {
            if self.spec.use_const_masks {
                const_buffers.push(ConstBufferDecl {
                    name: Self::cmem_name(&m.name),
                    width: m.width,
                    height: m.height,
                    data: m.coeffs.clone(),
                });
            } else {
                buffers.push(BufferParam {
                    name: Self::gmask_name(&m.name),
                    ty: ScalarType::F32,
                    access: BufferAccess::ReadOnly,
                    space: MemorySpace::Global,
                    address_mode: AddressMode::None,
                });
            }
        }

        DeviceKernelDef {
            name: format!("{}_kernel", self.kernel.name),
            buffers,
            scalars,
            const_buffers,
            shared,
            body,
        }
    }

    /// Lower the kernel body for a single region (used by the timing
    /// model to weight region costs by their block counts).
    pub fn region_body(&self, region: Region) -> Vec<Stmt> {
        self.lower_stmts(&self.kernel.body, region)
    }

    /// The if/else-if chain dispatching blocks to their region body
    /// (structured form of Listing 8's goto chain).
    fn region_dispatch(&self, g: &RegionGrid) -> Vec<Stmt> {
        let bx = Expr::Builtin(Builtin::BlockIdxX);
        let by = Expr::Builtin(Builtin::BlockIdxY);
        let left = |e: Expr| e.lt(Expr::int(g.left_blocks as i64));
        let right = |e: Expr| e.ge(Expr::int((g.grid_x - g.right_blocks) as i64));
        let top = |e: Expr| e.lt(Expr::int(g.top_blocks as i64));
        let bottom = |e: Expr| e.ge(Expr::int((g.grid_y - g.bottom_blocks) as i64));

        // Build nested if/else-if: corners, edges, interior.
        let cases: Vec<(Expr, Region)> = vec![
            (left(bx.clone()).and(top(by.clone())), Region::TopLeft),
            (right(bx.clone()).and(top(by.clone())), Region::TopRight),
            (left(bx.clone()).and(bottom(by.clone())), Region::BottomLeft),
            (
                right(bx.clone()).and(bottom(by.clone())),
                Region::BottomRight,
            ),
            (top(by.clone()), Region::Top),
            (bottom(by.clone()), Region::Bottom),
            (left(bx.clone()), Region::Left),
            (right(bx.clone()), Region::Right),
        ];
        let mut chain: Vec<Stmt> = vec![Stmt::Comment(Region::Interior.label().into())];
        chain.extend(self.lower_stmts(&self.kernel.body, Region::Interior));
        for (cond, region) in cases.into_iter().rev() {
            let mut then = vec![Stmt::Comment(region.label().into())];
            then.extend(self.lower_stmts(&self.kernel.body, region));
            chain = vec![Stmt::If {
                cond,
                then,
                els: chain,
            }];
        }
        chain
    }
}

/// Assignment helper used by baseline generators: `name = value;`.
pub fn assign(name: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        target: LValue::Var(name.into()),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::tesla_c2050;
    use hipacc_ir::typecheck::check_device;
    use hipacc_ir::KernelBuilder;

    fn blur3() -> KernelDef {
        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        b.finish()
    }

    fn spec(mode: BoundaryMode, variant: MemVariant) -> CompileSpec {
        CompileSpec::new(tesla_c2050(), Backend::Cuda, 256, 256)
            .with_boundary("IN", crate::options::BoundarySpec::new(mode, 3, 3))
            .with_variant(variant)
    }

    fn halves() -> HashMap<String, (u32, u32)> {
        let mut h = HashMap::new();
        h.insert("IN".to_string(), (1, 1));
        h
    }

    fn cfg() -> LaunchConfig {
        LaunchConfig { bx: 32, by: 4 }
    }

    #[test]
    fn lowered_kernel_passes_device_typecheck_all_modes_and_paths() {
        let kernel = blur3();
        for mode in BoundaryMode::all() {
            for variant in [
                MemVariant::Global,
                MemVariant::Texture,
                MemVariant::Scratchpad,
            ] {
                let spec = spec(mode, variant);
                let mem = resolve_mem(&spec, (3, 3));
                let lo = Lowering::new(&kernel, &spec, mem, halves(), cfg());
                let grid = RegionGrid::compute(256, 256, 1, 1, cfg());
                let dk = lo.device_kernel(Some(&grid));
                check_device(&dk).unwrap_or_else(|e| panic!("{mode:?}/{variant:?}: {e}"));
            }
        }
    }

    #[test]
    fn interior_region_has_no_boundary_conditionals() {
        let kernel = blur3();
        let spec = spec(BoundaryMode::Clamp, MemVariant::Global);
        let lo = Lowering::new(&kernel, &spec, MemPath::Global, halves(), cfg());
        let dk = lo.device_kernel(None);
        // No min/max adjustment anywhere: interior body reads raw.
        let mut minmax = 0;
        Stmt::visit_exprs(&dk.body, &mut |e| {
            if let Expr::Call(f, _) = e {
                if matches!(f, hipacc_ir::MathFn::Min | hipacc_ir::MathFn::Max) {
                    minmax += 1;
                }
            }
        });
        assert_eq!(minmax, 0);
    }

    #[test]
    fn nine_region_kernel_contains_all_labels() {
        let kernel = blur3();
        let spec = spec(BoundaryMode::Clamp, MemVariant::Global);
        let lo = Lowering::new(&kernel, &spec, MemPath::Global, halves(), cfg());
        let grid = RegionGrid::compute(256, 256, 1, 1, cfg());
        let dk = lo.device_kernel(Some(&grid));
        let mut labels = Vec::new();
        Stmt::visit_all(&dk.body, &mut |s| {
            if let Stmt::Comment(c) = s {
                if c.ends_with("_BH") {
                    labels.push(c.clone());
                }
            }
        });
        for r in Region::all() {
            assert!(
                labels.contains(&r.label().to_string()),
                "missing region {}",
                r.label()
            );
        }
    }

    #[test]
    fn texture_path_emits_tex_fetches() {
        let kernel = blur3();
        let spec = spec(BoundaryMode::Clamp, MemVariant::Texture);
        let lo = Lowering::new(&kernel, &spec, MemPath::TexLinear, halves(), cfg());
        let dk = lo.device_kernel(None);
        let mut tex = 0;
        let mut glob = 0;
        Stmt::visit_exprs(&dk.body, &mut |e| match e {
            Expr::TexFetch { .. } => tex += 1,
            Expr::GlobalLoad { .. } => glob += 1,
            _ => {}
        });
        assert!(tex > 0, "texture path must fetch via textures");
        assert_eq!(glob, 0, "no global loads on the texture path");
        assert_eq!(dk.buffer("IN").unwrap().space, MemorySpace::Texture);
        // Output still goes to global memory.
        assert_eq!(dk.buffer("OUT").unwrap().space, MemorySpace::Global);
        assert_eq!(dk.buffer("OUT").unwrap().access, BufferAccess::WriteOnly);
    }

    #[test]
    fn scratchpad_path_stages_and_barriers() {
        let kernel = blur3();
        let spec = spec(BoundaryMode::Mirror, MemVariant::Scratchpad);
        let lo = Lowering::new(&kernel, &spec, MemPath::Scratchpad, halves(), cfg());
        let dk = lo.device_kernel(None);
        assert!(dk.has_barrier());
        assert_eq!(dk.shared.len(), 1);
        // Tile: (4 + 2)x(32 + 2 + 1) floats.
        assert_eq!(dk.shared[0].rows, 6);
        assert_eq!(dk.shared[0].cols, 35);
        let mut sloads = 0;
        let mut sstores = 0;
        Stmt::visit_exprs(&dk.body, &mut |e| {
            if matches!(e, Expr::SharedLoad { .. }) {
                sloads += 1;
            }
        });
        Stmt::visit_all(&dk.body, &mut |s| {
            if matches!(s, Stmt::SharedStore { .. }) {
                sstores += 1;
            }
        });
        assert!(sloads > 0 && sstores > 0);
    }

    #[test]
    fn constant_mode_uses_value_select() {
        let kernel = blur3();
        let spec = spec(BoundaryMode::Constant(7.5), MemVariant::Global);
        let lo = Lowering::new(&kernel, &spec, MemPath::Global, halves(), cfg());
        let grid = RegionGrid::compute(256, 256, 1, 1, cfg());
        let dk = lo.device_kernel(Some(&grid));
        let mut found_const = false;
        Stmt::visit_exprs(&dk.body, &mut |e| {
            if let Expr::Select(_, _, b) = e {
                if matches!(**b, Expr::ImmFloat(v) if v == 7.5) {
                    found_const = true;
                }
            }
        });
        assert!(found_const, "constant fallback must appear in selects");
    }

    #[test]
    fn masks_lower_to_constant_memory() {
        let mut b = KernelBuilder::new("conv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let m = b.mask_const("M", 3, 3, vec![1.0 / 9.0; 9]);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(
                    &acc,
                    b.mask_at(&m, xf.get(), yf.get()) * b.read_at(&input, xf.get(), yf.get()),
                );
            });
        });
        b.output(acc.get());
        let kernel = b.finish();
        let spec = spec(BoundaryMode::Clamp, MemVariant::Global);
        let lo = Lowering::new(&kernel, &spec, MemPath::Global, halves(), cfg());
        let dk = lo.device_kernel(None);
        assert_eq!(dk.const_buffers.len(), 1);
        assert_eq!(dk.const_buffers[0].name, "_constM");
        assert!(dk.const_buffers[0].data.is_some(), "static initialization");
        let mut cloads = 0;
        Stmt::visit_exprs(&dk.body, &mut |e| {
            if matches!(e, Expr::ConstLoad { .. }) {
                cloads += 1;
            }
        });
        assert!(cloads > 0);
        check_device(&dk).unwrap();
    }

    #[test]
    fn disabled_const_masks_fall_back_to_global() {
        let mut b = KernelBuilder::new("conv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let m = b.mask_dynamic("M", 3, 3);
        b.output(b.mask_at(&m, Expr::int(0), Expr::int(0)) * b.read_center(&input));
        let kernel = b.finish();
        let mut spec = spec(BoundaryMode::Clamp, MemVariant::Global);
        spec.use_const_masks = false;
        let lo = Lowering::new(&kernel, &spec, MemPath::Global, halves(), cfg());
        let dk = lo.device_kernel(None);
        assert!(dk.const_buffers.is_empty());
        assert!(dk.buffer("_gmaskM").is_some());
        check_device(&dk).unwrap();
    }

    #[test]
    fn hw_address_mode_rejects_mirror() {
        assert!(hw_address_mode(BoundaryMode::Mirror, Backend::Cuda).is_err());
        assert!(hw_address_mode(BoundaryMode::Clamp, Backend::Cuda).is_ok());
        assert!(hw_address_mode(BoundaryMode::Repeat, Backend::OpenCl).is_ok());
        // CUDA has no constant border on linear textures.
        assert!(hw_address_mode(BoundaryMode::Constant(0.0), Backend::Cuda).is_err());
        // OpenCL supports only 0.0/1.0 border constants.
        assert!(hw_address_mode(BoundaryMode::Constant(0.0), Backend::OpenCl).is_ok());
        assert!(hw_address_mode(BoundaryMode::Constant(0.5), Backend::OpenCl).is_err());
    }
}
