//! The compilation driver.
//!
//! Reproduces the paper's two-phase flow: lower once with default
//! constants to probe resource usage, run the Algorithm-2 heuristic to
//! pick the launch configuration and tiling, then generate the *final*
//! kernel whose region-dispatch constants depend on that tiling
//! ("the final kernel code is generated after the kernel configuration
//! and tiling are determined").

use crate::cuda::emit_cuda;
use crate::host::{emit_cuda_host, emit_opencl_host};
use crate::lower::{hw_address_mode, resolve_mem, Lowering, MemPath};
use crate::opencl::emit_opencl;
use crate::options::CompileSpec;
use crate::regions::{Region, RegionGrid};
use hipacc_analysis::{has_errors, Diagnostic, RegionSeed, VerifyInput};
use hipacc_hwmodel::{
    estimate_resources, occupancy, select_configuration, Backend, BorderInfo, KernelResources,
    LaunchConfig, Occupancy, OptimizationDb,
};
use hipacc_image::BoundaryMode;
use hipacc_ir::access::analyze;
use hipacc_ir::fold::specialize_kernel;
use hipacc_ir::kernel::{AddressMode, DeviceKernelDef};
use hipacc_ir::typecheck::check_device;
use hipacc_ir::unroll::unroll_kernel;
use hipacc_ir::{Const, KernelDef, Stmt};
use std::collections::HashMap;
use std::fmt;

/// Compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The backend cannot target the device (CUDA on AMD).
    UnsupportedBackend(String),
    /// The requested hardware boundary handling does not exist — the
    /// "n/a" cells of the evaluation tables.
    UnsupportedHwBoundary(String),
    /// No launch configuration fits the device's resource limits.
    NoValidConfiguration,
    /// The forced configuration is invalid on the device.
    InvalidForcedConfiguration(String),
    /// Lowering produced an ill-formed kernel (internal error).
    Internal(String),
    /// A feature combination the compiler does not support.
    UnsupportedCombination(String),
    /// The kernel verifier found error-severity defects in the generated
    /// kernel (barrier divergence, shared-memory race, out-of-bounds
    /// access, resource overflow, or a lint failure).
    Verification(Vec<Diagnostic>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedBackend(m) => write!(f, "unsupported backend: {m}"),
            CompileError::UnsupportedHwBoundary(m) => write!(f, "{m}"),
            CompileError::NoValidConfiguration => {
                write!(f, "no launch configuration fits the device")
            }
            CompileError::InvalidForcedConfiguration(m) => {
                write!(f, "forced configuration invalid: {m}")
            }
            CompileError::Internal(m) => write!(f, "internal codegen error: {m}"),
            CompileError::UnsupportedCombination(m) => {
                write!(f, "unsupported combination: {m}")
            }
            CompileError::Verification(diags) => {
                write!(f, "kernel verification failed:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl CompileError {
    /// Whether the failure is a *resource-limit* failure — the kernel (or
    /// its forced configuration) does not fit the device — as opposed to a
    /// structural one (unsupported backend, ill-formed kernel). Resource
    /// failures are the ones the launch supervisor's config-degradation
    /// fallback can work around by recompiling with a cheaper memory
    /// variant or a smaller tile; structural failures are final.
    pub fn is_resource_limit(&self) -> bool {
        match self {
            CompileError::NoValidConfiguration | CompileError::InvalidForcedConfiguration(_) => {
                true
            }
            // A04xx is the verifier's resource-limit band (shared memory,
            // registers, constant bytes, block shape).
            CompileError::Verification(diags) => diags.iter().any(|d| d.code.starts_with("A04")),
            _ => false,
        }
    }
}

/// The product of one compilation, ready for the simulator and for
/// inspection.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// The device-level kernel (what the simulator executes).
    pub device_kernel: DeviceKernelDef,
    /// The selected (or forced) launch configuration.
    pub config: LaunchConfig,
    /// Grid dimensions covering the iteration space.
    pub grid: (u32, u32),
    /// Region thresholds, when border-specialized code was generated.
    pub region_grid: Option<RegionGrid>,
    /// Per-region lowered bodies, for the timing model's region weighting.
    /// Contains a single `(Interior, body)` entry when no specialization
    /// was generated.
    pub region_bodies: Vec<(Region, Vec<Stmt>)>,
    /// Estimated resource usage (the PTXAS stand-in).
    pub resources: KernelResources,
    /// Occupancy at the chosen configuration.
    pub occupancy: Option<Occupancy>,
    /// Generated device source (CUDA or OpenCL text).
    pub source: String,
    /// Generated host-side launcher.
    pub host_source: String,
    /// The backend the source targets.
    pub backend: Backend,
    /// The memory path the inputs use.
    pub mem_path: MemPath,
    /// The (possibly specialized/unrolled) DSL kernel that was lowered.
    pub kernel: KernelDef,
    /// Per-accessor half-windows used for boundary regions.
    pub halves: HashMap<String, (u32, u32)>,
    /// The maximum half-window, i.e. the boundary metadata.
    pub max_half: (u32, u32),
    /// The iteration space `(offset_x, offset_y, width, height)`.
    pub iteration_space: (u32, u32, u32, u32),
    /// Pixels per work-item (1 = scalar; >1 = the Section-VIII
    /// vectorization extension).
    pub vector_width: u32,
    /// Warning-severity verifier findings. Error-severity findings never
    /// reach here — they fail the compile with
    /// [`CompileError::Verification`] instead.
    pub diagnostics: Vec<Diagnostic>,
    /// Wall-clock time of each compile phase, `(name, milliseconds)` in
    /// execution order — the compile half of the observability layer.
    /// Always populated (the measurement is two clock reads per phase);
    /// pass a sink to [`Compiler::compile_with_sink`] for full spans.
    pub phase_times: Vec<(String, f64)>,
    /// What the device-IR optimizer did: the level it ran at and the
    /// rewrite count of every executed pass, in pipeline order. Empty
    /// pass list at `opt_level = 0`.
    pub opt: hipacc_ir::opt::OptReport,
}

impl CompiledKernel {
    /// Lines of generated device code (§VI-C metric).
    pub fn generated_loc(&self) -> usize {
        crate::cuda::line_count(&self.source)
    }
}

/// The source-to-source compiler.
#[derive(Default)]
pub struct Compiler {
    pub(crate) db: OptimizationDb,
}

impl Compiler {
    /// Create a compiler with the built-in optimization database.
    pub fn new() -> Self {
        Self {
            db: OptimizationDb::new(),
        }
    }

    /// Compile a DSL kernel against a specification.
    pub fn compile(
        &self,
        kernel: &KernelDef,
        spec: &CompileSpec,
    ) -> Result<CompiledKernel, CompileError> {
        self.compile_with_sink(kernel, spec, &mut hipacc_profile::NullSink)
    }

    /// [`Self::compile`] with one timed span per compile phase recorded
    /// into `sink` (category `"compile"`), plus one span per verifier
    /// pass (category `"verify"`, via
    /// [`hipacc_analysis::verify_with_sink`]). The phase-time breakdown
    /// is also stored on the result as
    /// [`CompiledKernel::phase_times`] regardless of the sink.
    pub fn compile_with_sink(
        &self,
        kernel: &KernelDef,
        spec: &CompileSpec,
        sink: &mut dyn hipacc_profile::ProfileSink,
    ) -> Result<CompiledKernel, CompileError> {
        if !self.db.backend_supported(&spec.device, spec.backend) {
            return Err(CompileError::UnsupportedBackend(format!(
                "{} cannot target {}",
                spec.backend.name(),
                spec.device.name
            )));
        }
        let mut ph = PhaseTimer {
            sink,
            times: Vec::new(),
        };

        // 1. Optional optimization passes (Section VIII).
        let work = ph.run("specialize", || {
            let mut work = kernel.clone();
            if spec.constant_propagation && !spec.param_bindings.is_empty() {
                work = specialize_kernel(&work, &spec.param_bindings);
            }
            if spec.unroll_limit > 0 {
                let (unrolled, _stats) = unroll_kernel(&work, spec.unroll_limit);
                work = unrolled;
            }
            work
        });

        // 2. Access analysis: infer per-accessor windows.
        let (halves, max_half) = ph.run("access-analysis", || {
            let info = analyze(&work, &spec.param_bindings);
            let mut halves: HashMap<String, (u32, u32)> = HashMap::new();
            for acc in &work.accessors {
                let inferred = info
                    .inputs
                    .get(&acc.name)
                    .and_then(|p| p.window())
                    .map(|(w, h)| (w / 2, h / 2))
                    .unwrap_or((0, 0));
                let declared = spec
                    .boundaries
                    .get(&acc.name)
                    .map(|b| (b.half_x(), b.half_y()))
                    .unwrap_or((0, 0));
                halves.insert(
                    acc.name.clone(),
                    (inferred.0.max(declared.0), inferred.1.max(declared.1)),
                );
            }
            let max_half = halves
                .values()
                .fold((0u32, 0u32), |acc, h| (acc.0.max(h.0), acc.1.max(h.1)));
            (halves, max_half)
        });
        let window = (2 * max_half.0 + 1, 2 * max_half.1 + 1);

        // 3. Memory path + hardware-boundary validation.
        let mem = ph.run("mem-path", || -> Result<MemPath, CompileError> {
            let mem = resolve_mem(spec, window);
            if mem == MemPath::TexHw {
                for acc in &work.accessors {
                    let mode = spec.boundary_mode(&acc.name);
                    if mode != BoundaryMode::Undefined {
                        hw_address_mode(mode, spec.backend)
                            .map_err(CompileError::UnsupportedHwBoundary)?;
                    }
                }
            }
            if spec.vectorize > 1 && mem == MemPath::Scratchpad {
                return Err(CompileError::UnsupportedCombination(
                    "vectorization is not implemented for scratchpad staging".into(),
                ));
            }
            Ok(mem)
        })?;

        // Boundary-specialized code is generated when any accessor needs
        // software handling of a real window; the TexHw path delegates to
        // the sampler instead.
        let needs_bh = mem != MemPath::TexHw
            && !spec.generic_boundary
            && spec.needs_boundary_handling()
            && (max_half.0 > 0 || max_half.1 > 0);

        // 4. Resource probe with a default configuration. The probe kernel
        // already contains all nine region bodies ("the initial kernel code
        // that is used to determine the resource usage uses default
        // constants"), so its register pressure matches the final kernel.
        let probe_res = ph.run("resource-probe", || {
            let probe_cfg = LaunchConfig {
                bx: spec
                    .device
                    .simd_width
                    .min(spec.device.max_threads_per_block),
                by: 1,
            };
            let probe = Lowering::new(&work, spec, mem, halves.clone(), probe_cfg);
            let probe_grid = needs_bh.then(|| {
                let (ox, oy, rw, rh) = spec.iteration_space();
                RegionGrid::compute_roi(
                    spec.width,
                    spec.height,
                    ox,
                    oy,
                    rw,
                    rh,
                    max_half.0,
                    max_half.1,
                    probe_cfg,
                )
            });
            let probe_kernel = probe.device_kernel(probe_grid.as_ref());
            estimate_resources(&probe_kernel)
        });

        // 5. Configuration selection (Algorithm 2) or forced config.
        let (roi_x, roi_y, roi_w, roi_h) = spec.iteration_space();
        let border = needs_bh.then_some(BorderInfo {
            half_x: max_half.0,
            half_y: max_half.1,
            width: roi_w,
            height: roi_h,
        });
        let config = ph.run("config-select", || -> Result<LaunchConfig, CompileError> {
            match spec.force_config {
                Some((bx, by)) => {
                    let cfg = LaunchConfig { bx, by };
                    if occupancy(&spec.device, &probe_res, bx, by).is_none() {
                        return Err(CompileError::InvalidForcedConfiguration(format!(
                            "{cfg} on {}",
                            spec.device.name
                        )));
                    }
                    Ok(cfg)
                }
                None => Ok(select_configuration(&spec.device, &probe_res, border)
                    .ok_or(CompileError::NoValidConfiguration)?
                    .config),
            }
        })?;

        // 6. Final lowering with the tiling-dependent region constants.
        let (region_grid, device_kernel, region_bodies) = ph.run("lowering", || {
            let region_grid = needs_bh.then(|| {
                // With vectorization a block tile spans `bx * vectorize` pixels.
                let eff = LaunchConfig {
                    bx: config.bx * spec.vectorize.max(1),
                    by: config.by,
                };
                RegionGrid::compute_roi(
                    spec.width,
                    spec.height,
                    roi_x,
                    roi_y,
                    roi_w,
                    roi_h,
                    max_half.0,
                    max_half.1,
                    eff,
                )
            });
            let lowering = Lowering::new(&work, spec, mem, halves.clone(), config);
            let device_kernel = lowering.device_kernel(region_grid.as_ref());

            // Per-region bodies for the timing model.
            let region_bodies: Vec<(Region, Vec<Stmt>)> = if needs_bh {
                Region::all()
                    .iter()
                    .map(|r| (*r, lowering_region_body(&lowering, *r)))
                    .collect()
            } else {
                vec![(
                    Region::Interior,
                    lowering_region_body(&lowering, Region::Interior),
                )]
            };
            (region_grid, device_kernel, region_bodies)
        });
        let mut device_kernel = device_kernel;
        check_device(&device_kernel)
            .map_err(|e| CompileError::Internal(format!("device typecheck failed: {e}")))?;

        // 7. Resources and occupancy. Estimated on the *unoptimized*
        // kernel, like the region timing bodies: the analytical model
        // reflects the paper's per-region costs, and counting the
        // optimizer's named temporaries as registers would skew the
        // occupancy the timing model feeds on (the op-count model is
        // already LICM-aware).
        let (resources, occ) = ph.run("resources", || {
            let resources = estimate_resources(&device_kernel);
            let occ = occupancy(&spec.device, &resources, config.bx, config.by);
            (resources, occ)
        });

        // 7b. Analysis-driven optimization of the device IR (`ir::opt`),
        // oracle-fed by the same launch facts the verifier uses. The
        // optimized kernel is what emission and the execution engines
        // see; phase 9 then re-runs the full verifier over it.
        let vec_w = spec.vectorize.max(1);
        let grid = config.grid_for(roi_w.div_ceil(vec_w), roi_h);
        let opt_report = ph.run_with_sink("optimize", |sink| {
            let scalars = launch_scalars(spec, (roi_x, roi_y, roi_w, roi_h));
            crate::optimize::optimize_device_kernel(
                &mut device_kernel,
                spec,
                config,
                grid,
                &scalars,
                sink,
            )
        });
        if opt_report.total() > 0 {
            check_device(&device_kernel).map_err(|e| {
                CompileError::Internal(format!("optimized kernel typecheck failed: {e}"))
            })?;
        }

        // 8. Source emission. The grid covers the iteration space, with
        // vectorized work-items owning `vectorize` pixels each.
        let (source, host_source) = ph.run("emission", || match spec.backend {
            Backend::Cuda => (
                emit_cuda(&device_kernel, false),
                emit_cuda_host(
                    &device_kernel,
                    config,
                    grid,
                    spec.width,
                    spec.height,
                    spec.stride,
                ),
            ),
            Backend::OpenCl => (
                emit_opencl(&device_kernel),
                emit_opencl_host(
                    &device_kernel,
                    config,
                    grid,
                    spec.width,
                    spec.height,
                    spec.stride,
                ),
            ),
        });

        let mut out = CompiledKernel {
            device_kernel,
            config,
            grid,
            region_grid,
            region_bodies,
            resources,
            occupancy: occ,
            source,
            host_source,
            backend: spec.backend,
            mem_path: mem,
            kernel: work,
            halves,
            max_half,
            iteration_space: (roi_x, roi_y, roi_w, roi_h),
            vector_width: vec_w,
            diagnostics: Vec::new(),
            phase_times: Vec::new(),
            opt: opt_report,
        };

        // 9. Kernel verification: the four static analyses plus the source
        // lint run on every compile. Errors abort; warnings ride along.
        let out_ref = &out;
        let diags = ph.run_with_sink("verify", |sink| {
            verify_compiled_with_sink(out_ref, spec, sink)
        });
        if has_errors(&diags) {
            return Err(CompileError::Verification(diags));
        }
        out.diagnostics = diags;
        out.phase_times = ph.times;
        Ok(out)
    }

    /// Enumerate all valid configurations with their occupancy for the
    /// configuration-exploration mode (Section V-D / Figure 4). The
    /// caller times each configuration on the simulator.
    pub fn explore_configurations(
        &self,
        kernel: &KernelDef,
        spec: &CompileSpec,
    ) -> Result<Vec<LaunchConfig>, CompileError> {
        let base = self.compile(kernel, spec)?;
        let mut configs: Vec<LaunchConfig> =
            hipacc_hwmodel::heuristic::enumerate_configs(&spec.device)
                .into_iter()
                .filter(|c| occupancy(&spec.device, &base.resources, c.bx, c.by).is_some())
                .collect();
        configs.sort_by_key(|c| (c.threads(), c.by));
        Ok(configs)
    }
}

/// Times the numbered phases of one compilation: every phase duration is
/// kept for [`CompiledKernel::phase_times`] (two clock reads per phase),
/// and forwarded to the sink as a span when one is attached.
pub(crate) struct PhaseTimer<'s> {
    pub(crate) sink: &'s mut dyn hipacc_profile::ProfileSink,
    pub(crate) times: Vec<(String, f64)>,
}

impl PhaseTimer<'_> {
    pub(crate) fn run<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.run_with_sink(name, |_| f())
    }

    /// Like [`Self::run`] for phases that record sub-spans of their own
    /// (the verifier's per-pass spans nest inside the `verify` phase).
    pub(crate) fn run_with_sink<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut dyn hipacc_profile::ProfileSink) -> R,
    ) -> R {
        let start = hipacc_profile::now_us();
        let out = f(self.sink);
        let dur = hipacc_profile::now_us().saturating_sub(start);
        self.times.push((name.to_string(), dur as f64 / 1000.0));
        if self.sink.enabled() {
            self.sink
                .record(hipacc_profile::Span::new(name, "compile", start, dur));
        }
        out
    }
}

fn lowering_region_body(lowering: &Lowering<'_>, region: Region) -> Vec<Stmt> {
    lowering.region_body(region)
}

/// The integer scalar bindings every launch provides: the geometry
/// scalars the host launcher always passes plus the compile-time-bound
/// integer parameters. Shared between the optimizer's oracle seeding and
/// the verifier's [`VerifyInput`], so both reason from the same facts.
pub(crate) fn launch_scalars(
    spec: &CompileSpec,
    iteration_space: (u32, u32, u32, u32),
) -> HashMap<String, i64> {
    let (ox, oy, rw, rh) = iteration_space;
    let mut scalars = HashMap::new();
    for (name, v) in [
        ("width", spec.width as i64),
        ("height", spec.height as i64),
        ("stride", spec.stride as i64),
        ("is_offset_x", ox as i64),
        ("is_offset_y", oy as i64),
        ("is_width", rw as i64),
        ("is_height", rh as i64),
    ] {
        scalars.insert(name.to_string(), v);
    }
    for (name, c) in &spec.param_bindings {
        if let Const::Int(v) = c {
            scalars.insert(name.clone(), *v);
        }
    }
    scalars
}

/// Build the verifier's view of a compiled kernel and run every analysis
/// pass over it — barrier divergence, shared-memory races, bounds,
/// resource limits — plus the generated-source lint. `compile` calls this
/// on every kernel; it is public so the verifier can be rerun (and timed)
/// in isolation.
pub fn verify_compiled(out: &CompiledKernel, spec: &CompileSpec) -> Vec<Diagnostic> {
    verify_compiled_with_sink(out, spec, &mut hipacc_profile::NullSink)
}

/// [`verify_compiled`] with one timed span per analysis pass (plus the
/// source lint) recorded into `sink`.
pub fn verify_compiled_with_sink(
    out: &CompiledKernel,
    spec: &CompileSpec,
    sink: &mut dyn hipacc_profile::ProfileSink,
) -> Vec<Diagnostic> {
    let k = &out.device_kernel;
    let mut input = VerifyInput::new(k, &spec.device, (out.config.bx, out.config.by), out.grid);

    // Geometry scalars and bound integer parameters: the launcher always
    // binds these (same seeding the optimizer's oracle uses).
    input.scalars = launch_scalars(spec, out.iteration_space);

    // Buffer geometry. Image buffers hold `stride * height` elements;
    // `_gmask*` fallback buffers hold the mask coefficients row-major.
    for b in &k.buffers {
        if let Some(mask) = b.name.strip_prefix("_gmask") {
            if let Some(m) = out.kernel.masks.iter().find(|m| m.name == mask) {
                input
                    .buffer_len
                    .insert(b.name.clone(), m.width as i64 * m.height as i64);
            }
            continue;
        }
        input
            .buffer_len
            .insert(b.name.clone(), spec.stride as i64 * spec.height as i64);
        input
            .buffer_dims
            .insert(b.name.clone(), (spec.width as i64, spec.height as i64));
        if b.address_mode != AddressMode::None {
            input.hw_bounded.insert(b.name.clone());
        }
    }
    for acc in &out.kernel.accessors {
        if spec.boundary_mode(&acc.name) == BoundaryMode::Undefined {
            input.oob_allowed.insert(acc.name.clone());
        }
    }

    // One block-rectangle seed per generated boundary region, so each
    // specialized body is checked exactly for the blocks that reach it.
    if let Some(g) = &out.region_grid {
        let (gx, gy) = (g.grid_x as i64, g.grid_y as i64);
        let (lb, rb) = (g.left_blocks as i64, g.right_blocks as i64);
        let (tb, bb) = (g.top_blocks as i64, g.bottom_blocks as i64);
        for r in Region::all() {
            let bx = if r.checks_left() {
                (0, lb - 1)
            } else if r.checks_right() {
                (gx - rb, gx - 1)
            } else {
                (lb, gx - rb - 1)
            };
            let by = if r.checks_top() {
                (0, tb - 1)
            } else if r.checks_bottom() {
                (gy - bb, gy - 1)
            } else {
                (tb, gy - bb - 1)
            };
            if bx.0 > bx.1 || by.0 > by.1 {
                continue;
            }
            input.regions.push(RegionSeed {
                label: Some(r.label().to_string()),
                bx,
                by,
            });
        }
    }

    input.registers_per_thread = out.resources.registers_per_thread;

    let mut diags = hipacc_analysis::verify_with_sink(&input, sink);
    diags.extend(hipacc_profile::timed(sink, "verify:lint", "verify", || {
        crate::lint::lint_diagnostics(&out.source, &k.name)
    }));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{BoundarySpec, MemVariant};
    use hipacc_hwmodel::device::{radeon_hd_5870, tesla_c2050};
    use hipacc_ir::{Expr, KernelBuilder, ScalarType};

    fn blur3() -> KernelDef {
        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        b.finish()
    }

    #[test]
    fn compiles_and_emits_cuda() {
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 512, 512)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Clamp, 3, 3));
        let out = Compiler::new().compile(&blur3(), &spec).unwrap();
        assert!(out.source.contains("__global__ void blur_kernel"));
        assert!(out.region_grid.is_some());
        assert_eq!(out.region_bodies.len(), 9);
        assert!(out.occupancy.unwrap().occupancy > 0.0);
        assert_eq!(out.max_half, (1, 1));
    }

    #[test]
    fn compiles_and_emits_opencl() {
        let spec = CompileSpec::new(radeon_hd_5870(), Backend::OpenCl, 512, 512)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Mirror, 3, 3));
        let out = Compiler::new().compile(&blur3(), &spec).unwrap();
        assert!(out.source.contains("__kernel void blur_kernel"));
        assert!(out.config.threads() <= 256, "AMD block cap");
    }

    #[test]
    fn cuda_on_amd_rejected() {
        let spec = CompileSpec::new(radeon_hd_5870(), Backend::Cuda, 64, 64);
        let err = Compiler::new().compile(&blur3(), &spec).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedBackend(_)));
    }

    #[test]
    fn undefined_mode_generates_single_body() {
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 512, 512);
        let out = Compiler::new().compile(&blur3(), &spec).unwrap();
        assert!(out.region_grid.is_none());
        assert_eq!(out.region_bodies.len(), 1);
    }

    #[test]
    fn hw_boundary_mirror_is_na() {
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 512, 512)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Mirror, 3, 3))
            .with_variant(MemVariant::TextureHwBoundary);
        let err = Compiler::new().compile(&blur3(), &spec).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedHwBoundary(_)));
    }

    #[test]
    fn forced_config_is_respected() {
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 4096, 4096)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Clamp, 3, 3))
            .with_config(128, 1);
        let out = Compiler::new().compile(&blur3(), &spec).unwrap();
        assert_eq!(out.config, LaunchConfig { bx: 128, by: 1 });
        assert_eq!(out.grid, (32, 4096));
    }

    #[test]
    fn invalid_forced_config_rejected() {
        let spec = CompileSpec::new(radeon_hd_5870(), Backend::OpenCl, 64, 64).with_config(512, 1); // above the 256 cap
        let err = Compiler::new().compile(&blur3(), &spec).unwrap_err();
        assert!(matches!(err, CompileError::InvalidForcedConfiguration(_)));
    }

    #[test]
    fn generated_loc_amplification() {
        // The 9-region bilateral-style kernel must be far larger than the
        // DSL description (paper: 16 -> 317 lines).
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 4096, 4096)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Clamp, 3, 3));
        let out = Compiler::new().compile(&blur3(), &spec).unwrap();
        let dsl_loc = blur3().dsl_loc();
        let gen_loc = out.generated_loc();
        assert!(
            gen_loc > dsl_loc * 5,
            "expected big amplification, got {dsl_loc} -> {gen_loc}"
        );
    }

    #[test]
    fn exploration_lists_multiple_tilings() {
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 512, 512);
        let configs = Compiler::new()
            .explore_configurations(&blur3(), &spec)
            .unwrap();
        assert!(configs.len() > 20);
        // Contains both 1D and 2D tilings of the same size.
        assert!(configs.contains(&LaunchConfig { bx: 128, by: 1 }));
        assert!(configs.contains(&LaunchConfig { bx: 32, by: 4 }));
    }
}
