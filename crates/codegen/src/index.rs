//! Boundary-handling index adjustment.
//!
//! The framework "adjusts the index of the accessed pixel to a pixel
//! that resides within the image" (Section III-A). These builders produce
//! the adjustment *expressions* for each mode, restricted to the sides a
//! region actually needs — the source of the paper's conditional-count
//! savings: interior blocks get the raw index, a top-edge block gets only
//! the `y < 0` adjustment, and so on.
//!
//! All builders are pure `Expr -> Expr` functions, so they are reused by
//! the generated kernels, the manual baselines and the RapidMind layer.

use hipacc_image::BoundaryMode;
use hipacc_ir::Expr;

/// Sides of the image a coordinate may fall off.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Sides {
    /// Coordinate may be `< 0`.
    pub low: bool,
    /// Coordinate may be `>= n`.
    pub high: bool,
}

impl Sides {
    /// Both sides (generic handling, as RapidMind-style code must emit).
    pub fn both() -> Sides {
        Sides {
            low: true,
            high: true,
        }
    }

    /// No handling required.
    pub fn none() -> Sides {
        Sides::default()
    }
}

/// Adjust coordinate `i` into `[0, n)` by clamping, only on the required
/// sides. `n` is an expression (usually a scalar parameter like `width`).
pub fn clamp_expr(i: Expr, n: Expr, sides: Sides) -> Expr {
    let mut e = i;
    if sides.low {
        e = Expr::max(e, Expr::int(0));
    }
    if sides.high {
        e = Expr::min(e, n - Expr::int(1));
    }
    e
}

/// Adjust coordinate `i` into `[0, n)` by repetition. Valid for
/// excursions of less than one period (|i| < n), which holds because
/// operator windows are smaller than the image.
pub fn repeat_expr(i: Expr, n: Expr, sides: Sides) -> Expr {
    let mut e = i;
    if sides.low {
        // i < 0 ? i + n : i
        e = Expr::select(e.clone().lt(Expr::int(0)), e.clone() + n.clone(), e);
    }
    if sides.high {
        // i >= n ? i - n : i
        e = Expr::select(e.clone().ge(n.clone()), e.clone() - n, e);
    }
    e
}

/// Adjust coordinate `i` into `[0, n)` by mirroring at the border
/// (border pixel included): `-1 -> 0`, `n -> n-1`.
pub fn mirror_expr(i: Expr, n: Expr, sides: Sides) -> Expr {
    let mut e = i;
    if sides.low {
        // i < 0 ? -i - 1 : i
        e = Expr::select(e.clone().lt(Expr::int(0)), -e.clone() - Expr::int(1), e);
    }
    if sides.high {
        // i >= n ? 2n - 1 - i : i
        e = Expr::select(
            e.clone().ge(n.clone()),
            Expr::int(2) * n - Expr::int(1) - e.clone(),
            e,
        );
    }
    e
}

/// Adjust one coordinate for an index-remapping mode. `Constant` and
/// `Undefined` do not remap (Constant substitutes at value level, handled
/// by [`in_bounds_expr`] + a select in the caller).
pub fn adjust_coord(mode: BoundaryMode, i: Expr, n: Expr, sides: Sides) -> Expr {
    if !sides.low && !sides.high {
        return i;
    }
    match mode {
        BoundaryMode::Clamp => clamp_expr(i, n, sides),
        BoundaryMode::Repeat => repeat_expr(i, n, sides),
        BoundaryMode::Mirror => mirror_expr(i, n, sides),
        BoundaryMode::Undefined | BoundaryMode::Constant(_) => i,
    }
}

/// Predicate "coordinate pair is inside the image", restricted to the
/// checked sides. Returns `None` when no side needs checking (always in
/// bounds).
pub fn in_bounds_expr(
    x: &Expr,
    y: &Expr,
    width: &Expr,
    height: &Expr,
    x_sides: Sides,
    y_sides: Sides,
) -> Option<Expr> {
    let mut preds: Vec<Expr> = Vec::new();
    if x_sides.low {
        preds.push(x.clone().ge(Expr::int(0)));
    }
    if x_sides.high {
        preds.push(x.clone().lt(width.clone()));
    }
    if y_sides.low {
        preds.push(y.clone().ge(Expr::int(0)));
    }
    if y_sides.high {
        preds.push(y.clone().lt(height.clone()));
    }
    preds.into_iter().reduce(|a, b| a.and(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::display::{expr_to_string, NeutralRenderer};

    fn render(e: &Expr) -> String {
        expr_to_string(e, &NeutralRenderer)
    }

    #[test]
    fn no_sides_is_identity() {
        let i = Expr::var("ix");
        let out = adjust_coord(
            BoundaryMode::Clamp,
            i.clone(),
            Expr::var("w"),
            Sides::none(),
        );
        assert_eq!(out, i);
    }

    #[test]
    fn clamp_low_only_emits_single_max() {
        let out = clamp_expr(
            Expr::var("ix"),
            Expr::var("w"),
            Sides {
                low: true,
                high: false,
            },
        );
        assert_eq!(render(&out), "max(ix, 0)");
    }

    #[test]
    fn clamp_both_nests_min_max() {
        let out = clamp_expr(Expr::var("ix"), Expr::var("w"), Sides::both());
        assert_eq!(render(&out), "min(max(ix, 0), w - 1)");
    }

    #[test]
    fn repeat_low_uses_select() {
        let out = repeat_expr(
            Expr::var("ix"),
            Expr::var("w"),
            Sides {
                low: true,
                high: false,
            },
        );
        assert_eq!(render(&out), "ix < 0 ? ix + w : ix");
    }

    #[test]
    fn mirror_reflects_including_edge() {
        let out = mirror_expr(
            Expr::var("ix"),
            Expr::var("w"),
            Sides {
                low: true,
                high: false,
            },
        );
        assert_eq!(render(&out), "ix < 0 ? -ix - 1 : ix");
        let out = mirror_expr(
            Expr::var("ix"),
            Expr::var("w"),
            Sides {
                low: false,
                high: true,
            },
        );
        assert_eq!(render(&out), "ix >= w ? 2 * w - 1 - ix : ix");
    }

    #[test]
    fn constant_mode_does_not_remap() {
        let i = Expr::var("ix");
        let out = adjust_coord(
            BoundaryMode::Constant(0.5),
            i.clone(),
            Expr::var("w"),
            Sides::both(),
        );
        assert_eq!(out, i);
    }

    #[test]
    fn in_bounds_predicate_composes_only_needed_sides() {
        let x = Expr::var("ix");
        let y = Expr::var("iy");
        let w = Expr::var("w");
        let h = Expr::var("h");
        // Top-left region: x.low and y.low only.
        let p = in_bounds_expr(
            &x,
            &y,
            &w,
            &h,
            Sides {
                low: true,
                high: false,
            },
            Sides {
                low: true,
                high: false,
            },
        )
        .unwrap();
        assert_eq!(render(&p), "ix >= 0 && iy >= 0");
        // Interior: no predicate at all.
        assert!(in_bounds_expr(&x, &y, &w, &h, Sides::none(), Sides::none()).is_none());
        // Generic: all four.
        let p = in_bounds_expr(&x, &y, &w, &h, Sides::both(), Sides::both()).unwrap();
        assert_eq!(render(&p), "ix >= 0 && ix < w && iy >= 0 && iy < h");
    }

    /// Evaluate an index expression numerically to cross-check against the
    /// reference maps in `hipacc-image`.
    fn eval_ix(e: &Expr, ix: i64, w: i64) -> i64 {
        use hipacc_ir::fold::eval_const;
        use std::collections::HashMap;
        let mut env = HashMap::new();
        env.insert("ix".to_string(), hipacc_ir::Const::Int(ix));
        env.insert("w".to_string(), hipacc_ir::Const::Int(w));
        eval_const(e, &env).expect("constant").as_i64()
    }

    #[test]
    fn expressions_match_reference_index_maps() {
        use hipacc_image::boundary::{clamp_index, mirror_index, repeat_index};
        let w = 7i64;
        for ix in -6..13 {
            let clamp = clamp_expr(Expr::var("ix"), Expr::var("w"), Sides::both());
            assert_eq!(
                eval_ix(&clamp, ix, w),
                clamp_index(ix as i32, w as u32) as i64,
                "clamp({ix})"
            );
            let repeat = repeat_expr(Expr::var("ix"), Expr::var("w"), Sides::both());
            assert_eq!(
                eval_ix(&repeat, ix, w),
                repeat_index(ix as i32, w as u32) as i64,
                "repeat({ix})"
            );
            let mirror = mirror_expr(Expr::var("ix"), Expr::var("w"), Sides::both());
            assert_eq!(
                eval_ix(&mirror, ix, w),
                mirror_index(ix as i32, w as u32) as i64,
                "mirror({ix})"
            );
        }
    }
}
