//! The function-mapping table (Section V-A).
//!
//! "While CUDA preserves the suffix of mathematical functions that denotes
//! the data type the function operates on, OpenCL removes these suffixes
//! and overloads the mathematical functions … For example, the `expf()`
//! function gets mapped to `exp()` when code is generated for OpenCL."
//!
//! The table also carries the optional hardware-accelerated intrinsics
//! (`__expf`), which the paper supports but does not enable for its
//! evaluation; the same default applies here.

use hipacc_hwmodel::Backend;
use hipacc_ir::MathFn;

/// One row of the mapping table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FunctionMapping {
    /// Abstract IR function.
    pub func: MathFn,
    /// CUDA spelling (suffixed for `float`).
    pub cuda: &'static str,
    /// OpenCL spelling (overloaded, unsuffixed).
    pub opencl: &'static str,
    /// CUDA fast hardware intrinsic, when one exists.
    pub cuda_intrinsic: Option<&'static str>,
}

/// The complete built-in table ("by default all supported mathematical
/// functions supported by CUDA and OpenCL are listed therein").
pub const TABLE: &[FunctionMapping] = &[
    FunctionMapping {
        func: MathFn::Exp,
        cuda: "expf",
        opencl: "exp",
        cuda_intrinsic: Some("__expf"),
    },
    FunctionMapping {
        func: MathFn::Log,
        cuda: "logf",
        opencl: "log",
        cuda_intrinsic: Some("__logf"),
    },
    FunctionMapping {
        func: MathFn::Sqrt,
        cuda: "sqrtf",
        opencl: "sqrt",
        cuda_intrinsic: Some("__fsqrt_rn"),
    },
    FunctionMapping {
        func: MathFn::Rsqrt,
        cuda: "rsqrtf",
        opencl: "rsqrt",
        cuda_intrinsic: Some("__frsqrt_rn"),
    },
    FunctionMapping {
        func: MathFn::Abs,
        cuda: "fabsf",
        opencl: "fabs",
        cuda_intrinsic: None,
    },
    FunctionMapping {
        func: MathFn::Sin,
        cuda: "sinf",
        opencl: "sin",
        cuda_intrinsic: Some("__sinf"),
    },
    FunctionMapping {
        func: MathFn::Cos,
        cuda: "cosf",
        opencl: "cos",
        cuda_intrinsic: Some("__cosf"),
    },
    FunctionMapping {
        func: MathFn::Pow,
        cuda: "powf",
        opencl: "pow",
        cuda_intrinsic: Some("__powf"),
    },
    // `min`/`max` are overloaded for integer and floating operands in both
    // CUDA device code and OpenCL's common functions, so no suffix games
    // are needed.
    FunctionMapping {
        func: MathFn::Min,
        cuda: "min",
        opencl: "min",
        cuda_intrinsic: None,
    },
    FunctionMapping {
        func: MathFn::Max,
        cuda: "max",
        opencl: "max",
        cuda_intrinsic: None,
    },
    FunctionMapping {
        func: MathFn::Floor,
        cuda: "floorf",
        opencl: "floor",
        cuda_intrinsic: None,
    },
    FunctionMapping {
        func: MathFn::Round,
        cuda: "roundf",
        opencl: "round",
        cuda_intrinsic: None,
    },
];

/// Look up the backend spelling of a function. `fast` requests the CUDA
/// hardware intrinsic where available.
pub fn map_function(func: MathFn, backend: Backend, fast: bool) -> &'static str {
    let row = TABLE
        .iter()
        .find(|r| r.func == func)
        .unwrap_or_else(|| panic!("function {func:?} missing from mapping table"));
    match backend {
        Backend::Cuda => {
            if fast {
                row.cuda_intrinsic.unwrap_or(row.cuda)
            } else {
                row.cuda
            }
        }
        Backend::OpenCl => row.opencl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_expf_maps_to_exp() {
        assert_eq!(map_function(MathFn::Exp, Backend::Cuda, false), "expf");
        assert_eq!(map_function(MathFn::Exp, Backend::OpenCl, false), "exp");
    }

    #[test]
    fn fast_intrinsics_only_affect_cuda() {
        assert_eq!(map_function(MathFn::Exp, Backend::Cuda, true), "__expf");
        assert_eq!(map_function(MathFn::Exp, Backend::OpenCl, true), "exp");
        // Functions without an intrinsic fall back to the standard name.
        assert_eq!(map_function(MathFn::Abs, Backend::Cuda, true), "fabsf");
    }

    #[test]
    fn every_ir_function_is_mapped() {
        use MathFn::*;
        for f in [
            Exp, Log, Sqrt, Rsqrt, Abs, Sin, Cos, Pow, Min, Max, Floor, Round,
        ] {
            // Must not panic.
            let _ = map_function(f, Backend::Cuda, false);
            let _ = map_function(f, Backend::OpenCl, false);
        }
        assert_eq!(TABLE.len(), 12);
    }

    #[test]
    fn suffix_convention_holds() {
        // CUDA float functions end in f (except the overloaded min/max);
        // OpenCL names never do.
        for row in TABLE {
            if !matches!(row.func, MathFn::Min | MathFn::Max) {
                assert!(row.cuda.ends_with('f') || row.cuda.ends_with("_rn"));
            }
            assert!(!row.opencl.ends_with('f') || row.opencl == "fabs");
        }
    }
}
