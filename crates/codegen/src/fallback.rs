//! Graceful configuration degradation for resilient launches.
//!
//! When a launch keeps failing — the device rejects the kernel's
//! resource demands, or the supervisor exhausts its retries on an
//! attempt that never validates — the next-cheapest thing to try is not
//! the same binary again but a *cheaper compilation* of the same filter:
//! drop the texture path back to plain global loads, give up the
//! scratchpad staging, shrink the tile. Each of those is a fresh
//! [`Compiler`] run with a degraded [`CompileSpec`], trading the
//! device-specific optimizations of Section IV for a configuration that
//! is far more likely to fit and to survive.
//!
//! [`fallback_chain`] enumerates that ladder for a requested memory
//! variant and an optional tile hint, most-capable first. The launch
//! supervisor in `hipacc-core` walks it step by step, recording a
//! recovery event per attempt.
//!
//! [`Compiler`]: crate::compile::Compiler
//! [`CompileSpec`]: crate::options::CompileSpec

use crate::options::MemVariant;
use hipacc_hwmodel::LaunchConfig;

/// Smallest tile the degradation ladder will try (one SIMD-width row on
/// every modeled device).
pub const MIN_FALLBACK_THREADS: u32 = 32;

/// One rung of the degradation ladder: a memory variant plus an optional
/// forced tile, with a human-readable label for recovery logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FallbackStep {
    /// What the step does, e.g. `scratchpad->global` or `tile 128x1`.
    pub label: String,
    /// Memory variant to recompile with.
    pub variant: MemVariant,
    /// Tile to force instead of re-running Algorithm 2 (`None` keeps the
    /// heuristic's choice).
    pub force_config: Option<(u32, u32)>,
}

fn variant_name(v: MemVariant) -> &'static str {
    match v {
        MemVariant::Auto => "auto",
        MemVariant::Global => "global",
        MemVariant::Texture => "texture",
        MemVariant::TextureHwBoundary => "texture-hw",
        MemVariant::Scratchpad => "scratchpad",
    }
}

/// The degradation ladder for a kernel compiled with `requested` and
/// (optionally) launched at `config_hint`.
///
/// Steps, in order:
///
/// 1. If the requested variant is not already plain global memory, one
///    step dropping it to [`MemVariant::Global`] (e.g. texture→global or
///    scratchpad→global) while keeping the heuristic tile.
/// 2. If a tile hint is given, successive halvings of it (y first, then
///    x — [`LaunchConfig::halved`]) down to [`MIN_FALLBACK_THREADS`]
///    threads, each forced on a global-memory compilation.
///
/// The ladder can be empty (already-global variant, no tile hint): then
/// there is nothing cheaper to try and the supervisor must surface the
/// error.
pub fn fallback_chain(
    requested: MemVariant,
    config_hint: Option<LaunchConfig>,
) -> Vec<FallbackStep> {
    let mut steps = Vec::new();
    if requested != MemVariant::Global {
        steps.push(FallbackStep {
            label: format!("{}->global", variant_name(requested)),
            variant: MemVariant::Global,
            force_config: None,
        });
    }
    let mut cfg = config_hint;
    while let Some(c) = cfg.and_then(|c| c.halved(MIN_FALLBACK_THREADS)) {
        steps.push(FallbackStep {
            label: format!("tile {c}"),
            variant: MemVariant::Global,
            force_config: Some((c.bx, c.by)),
        });
        cfg = Some(c);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_chain_drops_to_global_then_shrinks_tiles() {
        let chain = fallback_chain(
            MemVariant::Scratchpad,
            Some(LaunchConfig { bx: 128, by: 2 }),
        );
        let labels: Vec<&str> = chain.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["scratchpad->global", "tile 128x1", "tile 64x1", "tile 32x1"]
        );
        assert!(chain.iter().all(|s| s.variant == MemVariant::Global));
        assert_eq!(chain[0].force_config, None, "first step keeps the tile");
        assert_eq!(chain.last().unwrap().force_config, Some((32, 1)));
    }

    #[test]
    fn texture_variants_label_their_downgrade() {
        let chain = fallback_chain(MemVariant::TextureHwBoundary, None);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].label, "texture-hw->global");
        assert_eq!(
            fallback_chain(MemVariant::Texture, None)[0].label,
            "texture->global"
        );
    }

    #[test]
    fn global_variant_without_hint_has_nothing_to_degrade() {
        assert!(fallback_chain(MemVariant::Global, None).is_empty());
        let tiny = fallback_chain(MemVariant::Global, Some(LaunchConfig { bx: 32, by: 1 }));
        assert!(tiny.is_empty(), "tile already at the floor");
    }
}
