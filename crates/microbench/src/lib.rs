//! A dependency-free stand-in for the subset of the `criterion` API the
//! bench binaries use.
//!
//! The build environment has no crates.io access, so `crates/bench`
//! declares `criterion = { package = "hipacc-microbench", ... }` and the
//! bench sources compile unchanged (`use criterion::{...}`). The harness
//! is deliberately simple: per benchmark it warms up, sizes the iteration
//! batch so one sample costs at least a few milliseconds, collects
//! `sample_size` samples and reports median, spread and (optionally)
//! throughput. Numbers are wall-clock medians — good enough for the
//! relative comparisons the benches make (engine A vs engine B, table
//! reproduction cost), not a statistics suite.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle (criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(m) => {
                let thr = self.throughput.map(|t| m.format_throughput(t));
                println!(
                    "  {:<40} time: [{} .. {} .. {}]{}",
                    format!("{}/{}", self.name, id),
                    fmt_duration(m.min),
                    fmt_duration(m.median),
                    fmt_duration(m.max),
                    thr.map(|s| format!("  thrpt: {s}")).unwrap_or_default(),
                );
            }
            None => println!("  {}/{}  (no measurement)", self.name, id),
        }
        self
    }

    /// End the group (printing already happened incrementally).
    pub fn finish(&mut self) {}
}

/// Measurement result of one benchmark.
#[derive(Copy, Clone, Debug)]
struct Measurement {
    min: Duration,
    median: Duration,
    max: Duration,
}

impl Measurement {
    fn format_throughput(&self, t: Throughput) -> String {
        let per_sec = |n: u64| n as f64 / self.median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("{}/s", fmt_scaled(per_sec(n), "elem")),
            Throughput::Bytes(n) => format!("{}/s", fmt_scaled(per_sec(n), "B")),
        }
    }
}

/// Per-benchmark driver handed to the closure (criterion's `Bencher`).
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure the closure. The closure's return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: target >= 2 ms per sample so timer
        // resolution is irrelevant, cap the batch for slow benchmarks.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            samples.push(t.elapsed() / batch as u32);
        }
        samples.sort();
        self.result = Some(Measurement {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: *samples.last().unwrap(),
        });
    }

    /// Median duration of the last `iter` call (extension over criterion,
    /// used by the engine-comparison bench to compute speedups).
    pub fn last_median(&self) -> Option<Duration> {
        self.result.map(|m| m.median)
    }
}

/// Time a closure directly: median per-iteration wall time over `samples`
/// samples. Extension over the criterion API for benches that need the
/// number itself (speedup ratios) rather than a printed line.
pub fn time_median<O>(samples: usize, mut f: impl FnMut() -> O) -> Duration {
    let mut b = Bencher {
        sample_size: samples.max(2),
        result: None,
    };
    b.iter(&mut f);
    b.last_median().unwrap()
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_scaled(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Define a bench group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = b.last_median().is_some();
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn time_median_is_positive() {
        // `black_box` keeps the summation from being const-folded to a
        // sub-nanosecond no-op in release builds.
        let d = time_median(3, || (0..10_000).map(black_box).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).contains("ms"));
        assert_eq!(fmt_scaled(2.5e9, "elem"), "2.50 Gelem");
    }
}
