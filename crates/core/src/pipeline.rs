//! Bridges between the compiler's output and the simulator's inputs.
//!
//! `hipacc-codegen` and `hipacc-sim` are deliberately independent (the
//! emitters don't know about simulation; the simulator doesn't know about
//! compilation). This module converts a [`CompiledKernel`] into the
//! simulator's launch spec and the timing model's input.

use crate::target::Target;
use hipacc_codegen::lower::MemPath;
use hipacc_codegen::CompiledKernel;
use hipacc_image::Image;
use hipacc_ir::metrics::{count_ops_licm, CountConfig};
use hipacc_ir::ty::Const;
use hipacc_sim::launch::LaunchSpec;
use hipacc_sim::timing::{MemClass, RegionCost, TimingInput};
use std::collections::HashMap;
use std::sync::Arc;

/// Build the simulator launch spec for a compiled kernel.
///
/// The filter parameters and mask coefficients are *shared* into the
/// spec (`Arc::clone`), never deep-cloned: building a spec per frame in
/// a streaming loop allocates nothing proportional to mask size. The
/// per-launch `scalars` overlay carries only the iteration-space
/// geometry and shadows `params` by name.
pub fn launch_spec<'a>(
    compiled: &CompiledKernel,
    inputs: &[(&str, &'a Image<f32>)],
    params: &Arc<HashMap<String, Const>>,
    mask_data: &Arc<HashMap<String, Vec<f32>>>,
) -> LaunchSpec<'a> {
    let mut spec = LaunchSpec {
        grid: compiled.grid,
        block: (compiled.config.bx, compiled.config.by),
        inputs: HashMap::new(),
        mask_data: Arc::clone(mask_data),
        params: Arc::clone(params),
        scalars: HashMap::with_capacity(4),
        sim_threads: None,
        engine: None,
        pool: None,
    };
    for (name, img) in inputs {
        spec.inputs.insert((*name).to_string(), img);
    }
    // Iteration-space scalars come from the compiled kernel, so ROIs
    // survive the trip through the simulator.
    let (ox, oy, w, h) = compiled.iteration_space;
    spec.scalars
        .insert("is_offset_x".into(), Const::Int(ox as i64));
    spec.scalars
        .insert("is_offset_y".into(), Const::Int(oy as i64));
    spec.scalars.insert("is_width".into(), Const::Int(w as i64));
    spec.scalars
        .insert("is_height".into(), Const::Int(h as i64));
    spec
}

/// Translate the compiler's memory path into the timing model's class.
pub fn mem_class(path: MemPath) -> MemClass {
    match path {
        MemPath::Global => MemClass::Global,
        MemPath::TexLinear | MemPath::TexXy | MemPath::TexHw => MemClass::Texture,
        MemPath::Scratchpad => MemClass::Scratchpad,
    }
}

/// Assemble the timing-model input for a compiled kernel. `params` feeds
/// loop trip counts; `launches` covers multi-pass operators.
pub fn timing_input(
    compiled: &CompiledKernel,
    target: &Target,
    params: &HashMap<String, Const>,
    launches: u32,
) -> TimingInput {
    timing_input_opts(compiled, target, params, launches, false)
}

/// Like [`timing_input`], optionally counting operations without the
/// LICM/CSE model (`naive` — how a simple JIT like RapidMind's compiles).
pub fn timing_input_opts(
    compiled: &CompiledKernel,
    target: &Target,
    params: &HashMap<String, Const>,
    launches: u32,
    naive: bool,
) -> TimingInput {
    let cfg = CountConfig::default();
    // Block counts per region: from the region grid when border-specialized
    // code was generated, otherwise every block runs the single body.
    let total_blocks = compiled.grid.0 as u64 * compiled.grid.1 as u64;
    let block_counts: HashMap<hipacc_codegen::Region, u64> = match &compiled.region_grid {
        Some(g) => g.block_counts().into_iter().collect(),
        None => {
            let mut m = HashMap::new();
            m.insert(hipacc_codegen::Region::Interior, total_blocks);
            m
        }
    };
    let regions: Vec<RegionCost> = compiled
        .region_bodies
        .iter()
        .map(|(region, body)| RegionCost {
            blocks: block_counts.get(region).copied().unwrap_or(0),
            ops: if naive {
                hipacc_ir::metrics::count_ops(body, &cfg, params)
            } else {
                count_ops_licm(body, &cfg, params)
            },
        })
        .filter(|r| r.blocks > 0)
        .collect();

    TimingInput {
        device: target.device.clone(),
        opencl: target.backend == hipacc_hwmodel::Backend::OpenCl,
        config: compiled.config,
        occupancy: compiled.occupancy.map(|o| o.occupancy).unwrap_or(0.1),
        regions,
        mem: mem_class(compiled.mem_path),
        halo: compiled.max_half,
        pixel_bytes: 4,
        launches,
        vector_width: compiled.vector_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_codegen::{BoundarySpec, CompileSpec, Compiler};
    use hipacc_hwmodel::device::tesla_c2050;
    use hipacc_hwmodel::Backend;
    use hipacc_image::BoundaryMode;
    use hipacc_ir::{Expr, KernelBuilder, ScalarType};

    fn compiled() -> CompiledKernel {
        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            b.add_assign(&acc, b.read_at(&input, xf.get(), Expr::int(0)));
        });
        b.output(acc.get() / Expr::float(3.0));
        let spec = CompileSpec::new(tesla_c2050(), Backend::Cuda, 256, 256)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Clamp, 3, 1));
        Compiler::new().compile(&b.finish(), &spec).unwrap()
    }

    #[test]
    fn timing_input_blocks_sum_to_grid() {
        let c = compiled();
        let t = timing_input(&c, &Target::cuda(tesla_c2050()), &HashMap::new(), 1);
        let total: u64 = t.regions.iter().map(|r| r.blocks).sum();
        assert_eq!(total, c.grid.0 as u64 * c.grid.1 as u64);
        assert!(t.occupancy > 0.0);
        assert_eq!(t.halo, (1, 0));
    }

    #[test]
    fn border_regions_cost_more_than_interior() {
        let c = compiled();
        let t = timing_input(&c, &Target::cuda(tesla_c2050()), &HashMap::new(), 1);
        // Find interior (largest block count) and compare to any border
        // region's per-thread ops.
        let interior = t.regions.iter().max_by_key(|r| r.blocks).unwrap();
        let border = t.regions.iter().min_by_key(|r| r.blocks).unwrap();
        assert!(
            border.ops.alu >= interior.ops.alu,
            "border body must carry the extra clamp ops"
        );
    }
}
