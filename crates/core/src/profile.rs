//! The launch report: the pipeline's three observability feeds joined
//! into one record.
//!
//! A [`LaunchProfile`] combines
//!
//! 1. **compile-phase spans** — wall-clock timings of the compiler's
//!    numbered phases and each verifier pass, recorded through the
//!    [`hipacc_profile::ProfileSink`] plumbing,
//! 2. **per-region execution counters** — the simulator's per-block
//!    [`ExecStats`] attributed to the paper's nine boundary regions via
//!    the compiled kernel's [`RegionGrid`], cross-checked against the
//!    launch totals, and
//! 3. **the model view** — the analytical [`TimeBreakdown`] and hwmodel
//!    occupancy for the same launch,
//!
//! and renders them as a human-readable text report
//! ([`LaunchProfile::render_text`]) or a Chrome `trace_event` JSON
//! document ([`LaunchProfile::chrome_trace`]) for `about:tracing` /
//! Perfetto.
//!
//! Profiling is strictly opt-in: [`Operator::execute`] never records
//! anything; [`Operator::execute_profiled`] is the instrumented path.
//!
//! [`RegionGrid`]: hipacc_codegen::regions::RegionGrid
//! [`Operator::execute`]: crate::operator::Operator::execute
//! [`Operator::execute_profiled`]: crate::operator::Operator::execute_profiled

use hipacc_codegen::Region;
use hipacc_hwmodel::Occupancy;
use hipacc_profile::Span;
use hipacc_sim::sched::ExecProfile;
use hipacc_sim::timing::TimeBreakdown;
use hipacc_sim::ExecStats;

/// Execution counters attributed to one boundary region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionProfile {
    /// The region (one of the paper's nine; `Interior` when the kernel
    /// was compiled without boundary specialization).
    pub region: Region,
    /// Blocks that ran this region's body.
    pub blocks: u64,
    /// Summed dynamic statistics of those blocks.
    pub stats: ExecStats,
}

/// One launch, observed end to end.
#[derive(Clone, Debug)]
pub struct LaunchProfile {
    /// Kernel name.
    pub kernel: String,
    /// Target label (`"Tesla C2050 / CUDA"`).
    pub target: String,
    /// Which simulator engine ran the launch (`"bytecode"` /
    /// `"tree-walk"` / `"simd"`).
    pub engine: &'static str,
    /// Grid dimensions in blocks.
    pub grid: (u32, u32),
    /// Block dimensions in threads.
    pub block: (u32, u32),
    /// Effective host worker threads used by the simulator (after the
    /// `sim_threads` / `HIPACC_SIM_THREADS` override resolution).
    pub n_workers: usize,
    /// Per-region execution counters, in [`Region::all`] order, regions
    /// with zero blocks omitted.
    pub regions: Vec<RegionProfile>,
    /// Launch-total execution counters (what `execute()` reports).
    pub totals: ExecStats,
    /// Blocks run by each worker thread (index = worker id).
    pub blocks_per_worker: Vec<usize>,
    /// The analytical time model's verdict for this launch.
    pub time: TimeBreakdown,
    /// Occupancy at the chosen configuration, when available.
    pub occupancy: Option<Occupancy>,
    /// Compile-phase wall-clock breakdown `(phase, ms)`.
    pub phase_times: Vec<(String, f64)>,
    /// All recorded spans (compile phases, verifier passes, simulated
    /// launch) on the shared profiling timeline.
    pub spans: Vec<Span>,
    /// The fault plan injected into this launch (its stable summary
    /// string), when the launch ran under the supervisor with fault
    /// injection armed. `None` for plain launches.
    pub fault_plan: Option<String>,
    /// What the kernel cache did for this launch, when one was installed
    /// ([`crate::cache::KernelCache`]). `None` when no cache was
    /// consulted.
    pub cache: Option<crate::cache::CacheReport>,
    /// Mean active-lane fraction across all warp execution steps, when
    /// the launch ran on the simd engine. 1.0 means no divergence and no
    /// partially filled warps.
    pub warp_occupancy: Option<f64>,
    /// Explicit-vs-environment override conflicts detected for this
    /// launch (rendered [`hipacc_sim::OverrideConflict`]s): the explicit
    /// spec value won, the listed `HIPACC_SIM_*` variable was ignored.
    /// Empty when the two levels agree or only one is set.
    pub override_conflicts: Vec<String>,
}

impl LaunchProfile {
    /// Attribute a per-block execution profile to boundary regions.
    ///
    /// `region_of` maps a block index to its region — the compiled
    /// kernel's `RegionGrid::region_of`, or constant `Interior` when no
    /// boundary specialization was generated.
    pub fn attribute_regions(
        exec: &ExecProfile,
        region_of: impl Fn(u32, u32) -> Region,
    ) -> Vec<RegionProfile> {
        let mut per: Vec<RegionProfile> = Region::all()
            .iter()
            .map(|r| RegionProfile {
                region: *r,
                blocks: 0,
                stats: ExecStats::default(),
            })
            .collect();
        for b in &exec.blocks {
            let r = region_of(b.bx, b.by);
            let slot = per
                .iter_mut()
                .find(|p| p.region == r)
                .expect("Region::all covers every region");
            slot.blocks += 1;
            slot.stats.merge(&b.stats);
        }
        per.retain(|p| p.blocks > 0);
        per
    }

    /// Sum of the per-region counters. Equal to [`Self::totals`] for any
    /// faithful profile — [`Self::cross_check`] asserts it.
    pub fn region_sum(&self) -> ExecStats {
        let mut sum = ExecStats::default();
        for r in &self.regions {
            sum.merge(&r.stats);
        }
        sum
    }

    /// Verify the per-region attribution against the launch totals:
    /// every counter must sum exactly, and the region block counts must
    /// cover the whole grid. Returns a description of the first mismatch.
    pub fn cross_check(&self) -> Result<(), String> {
        let sum = self.region_sum();
        if sum != self.totals {
            return Err(format!(
                "per-region counters do not sum to launch totals:\n  regions: {sum:?}\n  totals:  {:?}",
                self.totals
            ));
        }
        let blocks: u64 = self.regions.iter().map(|r| r.blocks).sum();
        let grid = self.grid.0 as u64 * self.grid.1 as u64;
        if blocks != grid {
            return Err(format!(
                "region block counts cover {blocks} of {grid} grid blocks"
            ));
        }
        Ok(())
    }

    /// Render the profile as a Chrome `trace_event` JSON document.
    pub fn chrome_trace(&self) -> String {
        hipacc_profile::chrome::trace_json(&self.spans)
    }

    /// Render a human-readable text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "launch profile: {} on {} ({} engine)\n",
            self.kernel, self.target, self.engine
        ));
        out.push_str(&format!(
            "  grid {}x{} blocks of {}x{} threads, {} sim worker(s), blocks/worker {:?}\n",
            self.grid.0,
            self.grid.1,
            self.block.0,
            self.block.1,
            self.n_workers,
            self.blocks_per_worker,
        ));
        if let Some(plan) = &self.fault_plan {
            out.push_str(&format!("  injected: {plan}\n"));
        }
        for c in &self.override_conflicts {
            out.push_str(&format!("  override conflict: {c}\n"));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "  kernel cache: {} ({} hits, {} misses)\n",
                c.outcome, c.hits, c.misses
            ));
        }
        if let Some(w) = self.warp_occupancy {
            out.push_str(&format!(
                "  warp occupancy {:.3} (mean active-lane fraction)\n",
                w
            ));
        }
        if let Some(o) = &self.occupancy {
            out.push_str(&format!(
                "  occupancy {:.2} ({} warps, limited by {:?})\n",
                o.occupancy, o.active_warps, o.limiter
            ));
        }
        out.push_str(&format!(
            "  modelled time {:.3} ms (compute {:.3}, memory {:.3}, staging {:.3}, launch {:.3})\n",
            self.time.total_ms,
            self.time.compute_ms,
            self.time.memory_ms,
            self.time.staging_ms,
            self.time.launch_ms,
        ));

        out.push_str("  compile phases:\n");
        for (name, ms) in &self.phase_times {
            out.push_str(&format!("    {name:<16} {ms:>9.3} ms\n"));
        }

        out.push_str(&format!(
            "  {:<8} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9}\n",
            "region", "blocks", "gloads", "gstores", "tex", "const", "shload", "shstore", "barrier"
        ));
        let mut rows: Vec<(&str, u64, ExecStats)> = self
            .regions
            .iter()
            .map(|r| (r.region.label(), r.blocks, r.stats))
            .collect();
        rows.push((
            "TOTAL",
            self.grid.0 as u64 * self.grid.1 as u64,
            self.totals,
        ));
        for (label, blocks, s) in rows {
            out.push_str(&format!(
                "  {:<8} {:>7} {:>12} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9}\n",
                label,
                blocks,
                s.global_loads,
                s.global_stores,
                s.tex_fetches,
                s.const_loads,
                s.shared_loads,
                s.shared_stores,
                s.barriers,
            ));
        }
        if self.totals.oob_reads > 0 || self.totals.oob_stores > 0 {
            out.push_str(&format!(
                "  out-of-bounds: {} reads, {} stores (the paper's crash cells)\n",
                self.totals.oob_reads, self.totals.oob_stores
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_sim::sched::BlockProfile;

    fn stats(n: u64) -> ExecStats {
        ExecStats {
            global_loads: n,
            global_stores: 1,
            ..Default::default()
        }
    }

    fn profile_of(exec: &ExecProfile, grid: (u32, u32)) -> LaunchProfile {
        LaunchProfile {
            kernel: "k".into(),
            target: "t".into(),
            engine: "bytecode",
            grid,
            block: (8, 8),
            n_workers: exec.n_workers,
            regions: LaunchProfile::attribute_regions(exec, |bx, _| {
                if bx == 0 {
                    Region::Left
                } else {
                    Region::Interior
                }
            }),
            totals: exec.total(),
            blocks_per_worker: exec.blocks_per_worker(),
            time: TimeBreakdown::default(),
            occupancy: None,
            phase_times: vec![("lowering".into(), 0.5)],
            spans: Vec::new(),
            fault_plan: None,
            cache: None,
            warp_occupancy: None,
            override_conflicts: Vec::new(),
        }
    }

    fn exec_grid(gx: u32, gy: u32) -> ExecProfile {
        let mut blocks = Vec::new();
        for by in 0..gy {
            for bx in 0..gx {
                blocks.push(BlockProfile {
                    bx,
                    by,
                    worker: (bx % 2) as usize,
                    stats: stats((bx + 10 * by) as u64),
                });
            }
        }
        ExecProfile {
            n_workers: 2,
            blocks,
            simd: None,
        }
    }

    #[test]
    fn attribution_partitions_blocks_and_sums() {
        let exec = exec_grid(4, 3);
        let p = profile_of(&exec, (4, 3));
        assert_eq!(p.regions.len(), 2);
        let left = p.regions.iter().find(|r| r.region == Region::Left).unwrap();
        assert_eq!(left.blocks, 3);
        assert_eq!(left.stats.global_loads, 10 + 20);
        p.cross_check().unwrap();
    }

    #[test]
    fn cross_check_catches_dropped_counters() {
        let exec = exec_grid(4, 3);
        let mut p = profile_of(&exec, (4, 3));
        p.totals.global_loads += 1;
        assert!(p.cross_check().unwrap_err().contains("sum"));
        let mut p = profile_of(&exec, (5, 3));
        p.totals = p.region_sum();
        assert!(p.cross_check().unwrap_err().contains("grid blocks"));
    }

    #[test]
    fn text_report_mentions_every_section() {
        let exec = exec_grid(4, 3);
        let p = profile_of(&exec, (4, 3));
        let text = p.render_text();
        for needle in [
            "launch profile",
            "compile phases",
            "lowering",
            "L_BH",
            "TOTAL",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
