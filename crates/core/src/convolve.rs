//! The `convolve()` sugar of Section VIII (Listing 9).
//!
//! The paper proposes a lambda syntax so the compiler can see the
//! convolution structure directly:
//!
//! ```c++
//! void kernel() {
//!     output() = convolve(cMask, SUM, [&] () {
//!         return cMask() * Input(cMask);
//!     });
//! }
//! ```
//!
//! The Rust incarnation is a closure over the window offsets; the loop
//! bounds come from the Mask extents, so the kernel author cannot get them
//! wrong, and the generated loops are exactly what `unroll_kernel` +
//! constant propagation then flatten.

use hipacc_ir::builder::{KernelBuilder, MaskHandle, VarHandle};
use hipacc_ir::{Expr, MathFn, ScalarType};

/// Reduction mode of a convolution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Reduce {
    /// Sum of all window contributions.
    Sum,
    /// Minimum (erosion-style operators).
    Min,
    /// Maximum (dilation-style operators).
    Max,
    /// Product.
    Prod,
}

impl Reduce {
    /// Neutral element of the reduction.
    fn identity(self) -> f32 {
        match self {
            Reduce::Sum => 0.0,
            Reduce::Min => f32::MAX,
            Reduce::Max => f32::MIN,
            Reduce::Prod => 1.0,
        }
    }

    /// Combine the accumulator with one contribution.
    fn combine(self, acc: Expr, v: Expr) -> Expr {
        match self {
            Reduce::Sum => acc + v,
            Reduce::Min => Expr::call2(MathFn::Min, acc, v),
            Reduce::Max => Expr::call2(MathFn::Max, acc, v),
            Reduce::Prod => acc * v,
        }
    }
}

/// Emit a convolution over the extents of `mask`, reducing the values the
/// closure produces for each window offset `(dx, dy)`. Returns the
/// accumulator variable.
///
/// ```
/// use hipacc_core::convolve::{convolve, Reduce};
/// use hipacc_ir::{Expr, KernelBuilder, ScalarType};
///
/// let mut b = KernelBuilder::new("gauss", ScalarType::F32);
/// let input = b.accessor("IN", ScalarType::F32);
/// let mask = b.mask_const("M", 3, 3, vec![1.0 / 9.0; 9]);
/// let m2 = mask.clone();
/// let acc = convolve(&mut b, &mask, Reduce::Sum, |b, dx, dy| {
///     b.mask_at(&m2, dx.clone(), dy.clone()) * b.read_at(&input, dx, dy)
/// });
/// b.output(acc.get());
/// let kernel = b.finish();
/// assert_eq!(kernel.masks.len(), 1);
/// ```
pub fn convolve(
    b: &mut KernelBuilder,
    mask: &MaskHandle,
    mode: Reduce,
    f: impl Fn(&mut KernelBuilder, Expr, Expr) -> Expr,
) -> VarHandle {
    let (w, h) = b.mask_dims(mask);
    let hw = (w / 2) as i64;
    let hh = (h / 2) as i64;
    let acc = b.let_fresh("_conv", ScalarType::F32, Expr::float(mode.identity()));
    b.for_inclusive("_cy", Expr::int(-hh), Expr::int(hh), |b, cy| {
        b.for_inclusive("_cx", Expr::int(-hw), Expr::int(hw), |b, cx| {
            let contribution = f(b, cx.get(), cy.get());
            let combined = mode.combine(acc.get(), contribution);
            b.assign(&acc, combined);
        });
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use crate::target::Target;
    use hipacc_hwmodel::device::tesla_c2050;
    use hipacc_image::{phantom, reference, BoundaryMode};

    fn gaussian_via_convolve(size: u32, sigma: f32) -> hipacc_ir::KernelDef {
        let coeffs = reference::MaskCoeffs::gaussian(size, size, sigma);
        let mut b = KernelBuilder::new("gauss_conv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let mask = b.mask_const("M", size, size, coeffs.data().to_vec());
        let m2 = mask.clone();
        let acc = convolve(&mut b, &mask, Reduce::Sum, |b, dx, dy| {
            b.mask_at(&m2, dx.clone(), dy.clone()) * b.read_at(&input, dx, dy)
        });
        b.output(acc.get());
        b.finish()
    }

    #[test]
    fn convolve_sum_matches_reference_gaussian() {
        let img = phantom::vessel_tree(40, 32, &phantom::VesselParams::default());
        let op =
            Operator::new(gaussian_via_convolve(5, 1.0)).boundary("IN", BoundaryMode::Mirror, 5, 5);
        let result = op
            .execute(&[("IN", &img)], &Target::cuda(tesla_c2050()))
            .unwrap();
        let expected = reference::convolve2d(
            &img,
            &reference::MaskCoeffs::gaussian(5, 5, 1.0),
            BoundaryMode::Mirror,
        );
        assert!(result.output.max_abs_diff(&expected) < 1e-4);
    }

    #[test]
    fn convolve_max_implements_dilation() {
        // Max over a 3x3 window of the input: grayscale dilation.
        let mut b = KernelBuilder::new("dilate", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let mask = b.mask_const("M", 3, 3, vec![1.0; 9]);
        let acc = convolve(&mut b, &mask, Reduce::Max, |b, dx, dy| {
            b.read_at(&input, dx, dy)
        });
        b.output(acc.get());
        let mut img = hipacc_image::Image::new(16, 16);
        img.set(8, 8, 5.0);
        let op = Operator::new(b.finish()).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let result = op
            .execute(&[("IN", &img)], &Target::cuda(tesla_c2050()))
            .unwrap();
        // The bright pixel spreads to its 8 neighbours.
        assert_eq!(result.output.get(7, 7), 5.0);
        assert_eq!(result.output.get(9, 9), 5.0);
        assert_eq!(result.output.get(8, 8), 5.0);
        assert_eq!(result.output.get(6, 6), 0.0);
    }

    #[test]
    fn convolve_min_implements_erosion() {
        let mut b = KernelBuilder::new("erode", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let mask = b.mask_const("M", 3, 3, vec![1.0; 9]);
        let acc = convolve(&mut b, &mask, Reduce::Min, |b, dx, dy| {
            b.read_at(&input, dx, dy)
        });
        b.output(acc.get());
        let mut img = hipacc_image::Image::from_fn(16, 16, |_, _| 1.0);
        img.set(8, 8, 0.0);
        let op = Operator::new(b.finish()).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let result = op
            .execute(&[("IN", &img)], &Target::cuda(tesla_c2050()))
            .unwrap();
        assert_eq!(result.output.get(7, 8), 0.0);
        assert_eq!(result.output.get(6, 8), 1.0);
    }

    #[test]
    fn convolve_respects_anisotropic_masks() {
        // A 5x1 horizontal box via convolve must differ from 1x5 vertical.
        let mk = |w: u32, h: u32| {
            let n = (w * h) as usize;
            let mut b = KernelBuilder::new("box", ScalarType::F32);
            let input = b.accessor("IN", ScalarType::F32);
            let mask = b.mask_const("M", w, h, vec![1.0 / n as f32; n]);
            let m2 = mask.clone();
            let acc = convolve(&mut b, &mask, Reduce::Sum, |b, dx, dy| {
                b.mask_at(&m2, dx.clone(), dy.clone()) * b.read_at(&input, dx, dy)
            });
            b.output(acc.get());
            Operator::new(b.finish()).boundary("IN", BoundaryMode::Clamp, w.max(h), w.max(h))
        };
        let img = phantom::checkerboard(24, 24, 2);
        let t = Target::cuda(tesla_c2050());
        let horiz = mk(5, 1).execute(&[("IN", &img)], &t).unwrap();
        let vert = mk(1, 5).execute(&[("IN", &img)], &t).unwrap();
        assert!(horiz.output.max_abs_diff(&vert.output) > 0.0);
        // And each matches its reference.
        let expected_h = reference::convolve2d(
            &img,
            &reference::MaskCoeffs::box_filter(5, 1),
            BoundaryMode::Clamp,
        );
        assert!(horiz.output.max_abs_diff(&expected_h) < 1e-4);
    }
}
