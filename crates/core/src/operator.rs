//! The user-facing operator API.
//!
//! [`Operator`] bundles a DSL kernel with its access/execute metadata —
//! boundary conditions per accessor, scalar parameter values, dynamic mask
//! coefficients — the same information the paper's framework gathers from
//! the `BoundaryCondition` / `Accessor` / `Mask` objects and the kernel
//! constructor arguments. `execute()` drives the full pipeline: compile
//! for the target, run on the simulated device, estimate the execution
//! time with the analytical model.

use crate::pipeline::{launch_spec, timing_input_opts};
use crate::target::Target;
use hipacc_codegen::compile::CompileError;
use hipacc_codegen::{BoundarySpec, CompileSpec, CompiledKernel, Compiler, MemVariant};
use hipacc_image::{BoundaryMode, Image};
use hipacc_ir::ty::Const;
use hipacc_ir::KernelDef;
use hipacc_sim::interp::ExecStats;
use hipacc_sim::timing::{estimate_time, TimeBreakdown};
use std::collections::HashMap;
use std::fmt;

/// Pipeline knobs beyond the kernel itself — the compiler flags of the
/// paper's evaluation axes.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Memory-path selection (`Auto` consults the optimization database).
    pub variant: MemVariant,
    /// Store masks in constant memory.
    pub const_masks: bool,
    /// Run constant propagation with the bound parameters.
    pub constant_propagation: bool,
    /// Unroll convolution loops up to this trip count (0 = off).
    pub unroll_limit: u32,
    /// Pin the launch configuration instead of running the heuristic.
    pub force_config: Option<(u32, u32)>,
    /// Number of device launches the operator performs (for multi-pass
    /// operators' launch-overhead accounting).
    pub launches: u32,
    /// Iteration space `(x, y, w, h)` within the image; `None` = whole
    /// image (the paper's `IterationSpace` over the full output).
    pub roi: Option<(u32, u32, u32, u32)>,
    /// Pixels per work-item (Section-VIII vectorization; 1 = scalar).
    pub vectorize: u32,
    /// Naive boundary handling everywhere, no region specialization (the
    /// "Manual" baseline behaviour).
    pub generic_boundary: bool,
    /// Device-IR optimization level (0 = lower only, 1 = run the
    /// analysis-driven `ir::opt` pipeline; the default).
    pub opt_level: u8,
    /// Model a naive JIT backend (RapidMind): no loop-invariant code
    /// motion, no common-subexpression elimination in the op counting.
    pub naive_codegen: bool,
    /// Host worker threads for the simulator's parallel block loop
    /// (`None` = `HIPACC_SIM_THREADS` env var, then available
    /// parallelism). Outputs are bit-identical for any value.
    pub sim_threads: Option<usize>,
    /// Simulator execution engine (`None` = the `HIPACC_SIM_ENGINE` env
    /// var, then the default bytecode engine). Outputs and statistics are
    /// bit-identical across engines.
    pub engine: Option<hipacc_sim::Engine>,
    /// Cross-launch compiled-kernel cache (see [`crate::cache`]). `None`
    /// compiles fresh on every launch; sharing one `Arc` across operators
    /// lets steady-state pipelines skip the compile phases entirely.
    pub cache: Option<std::sync::Arc<crate::cache::KernelCache>>,
    /// Shared simulator worker pool (see [`hipacc_sim::WorkerPool`]).
    /// `None` spawns per-launch scoped threads; sharing one `Arc` across
    /// operators multiplexes the block work of concurrent launches over
    /// one set of persistent threads. Outputs are bit-identical either
    /// way.
    pub pool: Option<std::sync::Arc<hipacc_sim::WorkerPool>>,
    /// When set, this operator is a fused chain: compilation goes through
    /// [`Compiler::compile_fused`] with this chain instead of lowering
    /// [`Operator::def`] directly. Built by [`crate::fusion::fuse_operators`];
    /// `def` then holds the chain's union kernel, which launches and cache
    /// fingerprints are keyed against.
    pub fused: Option<std::sync::Arc<hipacc_ir::fuse::FusionChain>>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            variant: MemVariant::Auto,
            const_masks: true,
            constant_propagation: true,
            unroll_limit: 0,
            force_config: None,
            launches: 1,
            roi: None,
            vectorize: 1,
            generic_boundary: false,
            opt_level: 1,
            naive_codegen: false,
            sim_threads: None,
            engine: None,
            cache: None,
            pool: None,
            fused: None,
        }
    }
}

/// Errors from the operator pipeline.
#[derive(Debug)]
pub enum OperatorError {
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Sim(hipacc_sim::SimError),
    /// No input image was provided.
    NoInputs,
    /// The launch supervisor exhausted its retries and fallback
    /// configurations without obtaining a validated result (see
    /// [`crate::supervisor`]).
    Unrecovered(String),
}

impl fmt::Display for OperatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorError::Compile(e) => write!(f, "compile error: {e}"),
            OperatorError::Sim(e) => write!(f, "simulation error: {e}"),
            OperatorError::NoInputs => write!(f, "operator executed with no input images"),
            OperatorError::Unrecovered(m) => write!(f, "unrecovered launch: {m}"),
        }
    }
}

impl std::error::Error for OperatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OperatorError::Compile(e) => Some(e),
            OperatorError::Sim(e) => Some(e),
            OperatorError::NoInputs | OperatorError::Unrecovered(_) => None,
        }
    }
}

impl From<CompileError> for OperatorError {
    fn from(e: CompileError) -> Self {
        OperatorError::Compile(e)
    }
}

impl From<hipacc_sim::SimError> for OperatorError {
    fn from(e: hipacc_sim::SimError) -> Self {
        OperatorError::Sim(e)
    }
}

/// The result of executing an operator on a target.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The output image.
    pub output: Image<f32>,
    /// Dynamic simulator statistics.
    pub stats: ExecStats,
    /// Modelled execution time.
    pub time: TimeBreakdown,
    /// The compiled artifact (generated sources, config, occupancy, …).
    pub compiled: CompiledKernel,
}

impl Execution {
    /// Whether the paper would report this run as a crash: *Undefined*
    /// boundary handling actually read out of bounds.
    pub fn would_crash(&self) -> bool {
        self.stats.oob_reads > 0
    }
}

/// A DSL kernel plus its instance metadata.
#[derive(Clone, Debug)]
pub struct Operator {
    /// The kernel definition.
    pub def: KernelDef,
    /// Per-accessor boundary conditions.
    pub boundaries: HashMap<String, BoundarySpec>,
    /// Scalar parameter values (compile-time bound *and* passed at
    /// launch). Behind an `Arc` so every per-frame [`launch_spec`] shares
    /// one allocation instead of deep-cloning the map; the builder
    /// methods copy-on-write via [`std::sync::Arc::make_mut`].
    pub params: std::sync::Arc<HashMap<String, Const>>,
    /// Coefficients for dynamically initialized masks. Shared like
    /// [`Self::params`] — a 13×13 bilateral mask is uploaded by
    /// reference, never cloned per launch.
    pub mask_uploads: std::sync::Arc<HashMap<String, Vec<f32>>>,
    /// Pipeline options.
    pub options: PipelineOptions,
}

impl Operator {
    /// Wrap a kernel definition.
    pub fn new(def: KernelDef) -> Self {
        Self {
            def,
            boundaries: HashMap::new(),
            params: std::sync::Arc::new(HashMap::new()),
            mask_uploads: std::sync::Arc::new(HashMap::new()),
            options: PipelineOptions::default(),
        }
    }

    /// Attach a boundary condition to an accessor (the paper's
    /// `BoundaryCondition(IN, w, h, mode)` + `Accessor(BcIn)` pair).
    pub fn boundary(mut self, accessor: &str, mode: BoundaryMode, w: u32, h: u32) -> Self {
        self.boundaries
            .insert(accessor.to_string(), BoundarySpec::new(mode, w, h));
        self
    }

    /// Bind an integer parameter.
    pub fn param_int(mut self, name: &str, v: i64) -> Self {
        std::sync::Arc::make_mut(&mut self.params).insert(name.to_string(), Const::Int(v));
        self
    }

    /// Bind a float parameter.
    pub fn param_float(mut self, name: &str, v: f32) -> Self {
        std::sync::Arc::make_mut(&mut self.params).insert(name.to_string(), Const::Float(v));
        self
    }

    /// Upload coefficients for a dynamically initialized mask.
    pub fn upload_mask(mut self, name: &str, coeffs: Vec<f32>) -> Self {
        // Both the constant-memory name and the global fallback name are
        // registered; the compiled kernel uses whichever exists.
        let uploads = std::sync::Arc::make_mut(&mut self.mask_uploads);
        uploads.insert(format!("_const{name}"), coeffs.clone());
        uploads.insert(format!("_gmask{name}"), coeffs);
        self
    }

    /// Replace the pipeline options.
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Restrict the iteration space to a sub-rectangle of the output — the
    /// paper's `IterationSpace(OUT, roi)` form.
    pub fn with_roi(mut self, x: u32, y: u32, w: u32, h: u32) -> Self {
        self.options.roi = Some((x, y, w, h));
        self
    }

    /// Compute several adjacent pixels per work-item (the Section-VIII
    /// vectorization extension, relevant on AMD's VLIW parts).
    pub fn vectorized(mut self, width: u32) -> Self {
        self.options.vectorize = width;
        self
    }

    /// Build the compile specification for an image geometry.
    pub fn compile_spec(&self, target: &Target, width: u32, height: u32) -> CompileSpec {
        let mut spec = CompileSpec::new(target.device.clone(), target.backend, width, height);
        for (acc, b) in &self.boundaries {
            spec = spec.with_boundary(acc, *b);
        }
        for (name, v) in self.params.iter() {
            spec = spec.with_param(name, *v);
        }
        spec.variant = self.options.variant;
        spec.use_const_masks = self.options.const_masks;
        spec.constant_propagation = self.options.constant_propagation;
        spec.unroll_limit = self.options.unroll_limit;
        spec.force_config = self.options.force_config;
        spec.generic_boundary = self.options.generic_boundary;
        spec.opt_level = self.options.opt_level;
        if let Some((x, y, w, h)) = self.options.roi {
            spec = spec.with_roi(x, y, w, h);
        }
        if self.options.vectorize > 1 {
            spec = spec.with_vectorize(self.options.vectorize);
        }
        spec
    }

    /// Compile for a target and image geometry without executing.
    pub fn compile(
        &self,
        target: &Target,
        width: u32,
        height: u32,
    ) -> Result<CompiledKernel, OperatorError> {
        let spec = self.compile_spec(target, width, height);
        Ok(match &self.options.fused {
            Some(chain) => Compiler::new().compile_fused(chain, &spec)?,
            None => Compiler::new().compile(&self.def, &spec)?,
        })
    }

    /// Estimate the execution time of a compiled kernel on a target.
    pub fn estimate(&self, compiled: &CompiledKernel, target: &Target) -> TimeBreakdown {
        estimate_time(&timing_input_opts(
            compiled,
            target,
            &self.params,
            self.options.launches,
            self.options.naive_codegen,
        ))
    }

    /// Compile through the configured [`KernelCache`](crate::KernelCache)
    /// when one is installed, otherwise compile fresh (recording phase
    /// spans into `rec` when given). Returns the artifact and, when a
    /// cache was consulted, a report of what it did.
    fn compile_maybe_cached(
        &self,
        target: &Target,
        width: u32,
        height: u32,
        rec: Option<&mut hipacc_profile::Recorder>,
    ) -> Result<(CompiledKernel, Option<crate::cache::CacheReport>), OperatorError> {
        let spec = self.compile_spec(target, width, height);
        let fresh = |rec: Option<&mut hipacc_profile::Recorder>| match (&self.options.fused, rec) {
            (Some(chain), Some(r)) => Compiler::new().compile_fused_with_sink(chain, &spec, r),
            (Some(chain), None) => Compiler::new().compile_fused(chain, &spec),
            (None, Some(r)) => Compiler::new().compile_with_sink(&self.def, &spec, r),
            (None, None) => Compiler::new().compile(&self.def, &spec),
        };
        let Some(cache) = &self.options.cache else {
            return Ok((fresh(rec)?, None));
        };
        let key = crate::cache::KernelCache::fingerprint(&self.def, &spec);
        if let Some(hit) = cache.lookup(&key) {
            return Ok((hit, Some(cache.report("hit"))));
        }
        let compiled = fresh(rec)?;
        cache.insert(key, compiled.clone());
        Ok((compiled, Some(cache.report("miss"))))
    }

    /// Full pipeline: compile, execute on the simulated device, estimate
    /// the time. Runs on the engine selected by
    /// [`PipelineOptions::engine`] (falling back to `HIPACC_SIM_ENGINE`,
    /// then the default bytecode engine).
    pub fn execute(
        &self,
        inputs: &[(&str, &Image<f32>)],
        target: &Target,
    ) -> Result<Execution, OperatorError> {
        self.execute_with(
            inputs,
            target,
            hipacc_sim::resolve_engine(self.options.engine)?,
        )
    }

    /// [`Self::execute`] on an explicitly chosen simulator engine
    /// (bytecode register machine, warp-vectorized simd, or the reference
    /// tree-walk).
    pub fn execute_with(
        &self,
        inputs: &[(&str, &Image<f32>)],
        target: &Target,
        engine: hipacc_sim::Engine,
    ) -> Result<Execution, OperatorError> {
        let (_, first) = inputs.first().ok_or(OperatorError::NoInputs)?;
        let (compiled, _) =
            self.compile_maybe_cached(target, first.width(), first.height(), None)?;
        let mut spec = launch_spec(&compiled, inputs, &self.params, &self.mask_uploads);
        spec.sim_threads = self.options.sim_threads;
        spec.pool = self.options.pool.clone();
        let run = hipacc_sim::launch::run_on_image_with(&compiled.device_kernel, &spec, engine)?;
        let time = self.estimate(&compiled, target);
        Ok(Execution {
            output: run.output,
            stats: run.stats,
            time,
            compiled,
        })
    }

    /// [`Self::execute`] with full observability: compile phases and
    /// verifier passes are recorded as timed spans, the simulated launch
    /// is profiled per block, and everything is joined with the timing
    /// model and occupancy into a [`LaunchProfile`].
    ///
    /// Execution semantics — output image, statistics, modelled time —
    /// are identical to [`Self::execute`]; only the instrumentation
    /// differs.
    ///
    /// [`LaunchProfile`]: crate::profile::LaunchProfile
    pub fn execute_profiled(
        &self,
        inputs: &[(&str, &Image<f32>)],
        target: &Target,
        engine: hipacc_sim::Engine,
    ) -> Result<(Execution, crate::profile::LaunchProfile), OperatorError> {
        use hipacc_profile::{now_us, ProfileSink, Recorder, Span};

        let (_, first) = inputs.first().ok_or(OperatorError::NoInputs)?;
        let mut rec = Recorder::new();
        let (compiled, cache_report) =
            self.compile_maybe_cached(target, first.width(), first.height(), Some(&mut rec))?;
        let mut spec = launch_spec(&compiled, inputs, &self.params, &self.mask_uploads);
        spec.sim_threads = self.options.sim_threads;
        spec.pool = self.options.pool.clone();

        // Explicit overrides always beat the environment; when both are
        // set and disagree, say so in the profile instead of letting a
        // stale shell variable silently lose.
        let conflicts: Vec<String> =
            hipacc_sim::override_conflicts(Some(engine), self.options.sim_threads)
                .into_iter()
                .map(|c| c.to_string())
                .collect();
        for c in &conflicts {
            rec.record(
                hipacc_profile::Span::new("override-conflict", "diagnostic", now_us(), 0)
                    .arg("detail", c.clone()),
            );
        }

        let engine_label = engine.label();
        let start = now_us();
        let (run, exec) =
            hipacc_sim::launch::run_on_image_profiled(&compiled.device_kernel, &spec, engine)?;
        let end = now_us();
        rec.record(
            Span::new("execute", "launch", start, end.saturating_sub(start))
                .arg("engine", engine_label)
                .arg("workers", exec.n_workers.to_string())
                .arg("blocks", exec.blocks.len().to_string()),
        );

        let time = self.estimate(&compiled, target);
        let regions = crate::profile::LaunchProfile::attribute_regions(&exec, |bx, by| {
            compiled
                .region_grid
                .as_ref()
                .map(|g| g.region_of(bx, by))
                .unwrap_or(hipacc_codegen::Region::Interior)
        });
        // On a cache hit the compile phases never ran this launch: the
        // profile must show zero compile time, even though the cached
        // artifact still carries its original `phase_times`.
        let phase_times = if cache_report.as_ref().is_some_and(|c| c.is_hit()) {
            Vec::new()
        } else {
            compiled.phase_times.clone()
        };
        let profile = crate::profile::LaunchProfile {
            kernel: self.def.name.clone(),
            target: target.label(),
            engine: engine_label,
            grid: compiled.grid,
            block: (compiled.config.bx, compiled.config.by),
            n_workers: exec.n_workers,
            regions,
            totals: run.stats,
            blocks_per_worker: exec.blocks_per_worker(),
            time,
            occupancy: compiled.occupancy,
            phase_times,
            spans: rec.into_spans(),
            fault_plan: None,
            cache: cache_report,
            warp_occupancy: exec.simd.and_then(|t| t.mean_active_fraction()),
            override_conflicts: conflicts,
        };
        Ok((
            Execution {
                output: run.output,
                stats: run.stats,
                time,
                compiled,
            },
            profile,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::{radeon_hd_5870, tesla_c2050};
    use hipacc_image::phantom;
    use hipacc_image::reference;
    use hipacc_ir::{Expr, KernelBuilder, ScalarType};

    fn box3_kernel() -> KernelDef {
        let mut b = KernelBuilder::new("box3", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        b.finish()
    }

    #[test]
    fn executed_box_filter_matches_cpu_reference() {
        let img = phantom::vessel_tree(48, 40, &phantom::VesselParams::default());
        let op = Operator::new(box3_kernel()).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let target = Target::cuda(tesla_c2050());
        let result = op.execute(&[("IN", &img)], &target).unwrap();
        let expected = reference::convolve2d(
            &img,
            &reference::MaskCoeffs::box_filter(3, 3),
            BoundaryMode::Clamp,
        );
        assert!(
            result.output.max_abs_diff(&expected) < 1e-5,
            "diff {}",
            result.output.max_abs_diff(&expected)
        );
        assert!(!result.would_crash());
        assert!(result.time.total_ms > 0.0);
    }

    #[test]
    fn all_boundary_modes_match_reference_on_all_paths() {
        let img = phantom::gradient(40, 33);
        let mask = reference::MaskCoeffs::box_filter(3, 3);
        for mode in [
            BoundaryMode::Clamp,
            BoundaryMode::Repeat,
            BoundaryMode::Mirror,
            BoundaryMode::Constant(0.25),
        ] {
            for variant in [
                MemVariant::Global,
                MemVariant::Texture,
                MemVariant::Scratchpad,
            ] {
                let op = Operator::new(box3_kernel())
                    .boundary("IN", mode, 3, 3)
                    .with_options(PipelineOptions {
                        variant,
                        ..PipelineOptions::default()
                    });
                let target = Target::cuda(tesla_c2050());
                let result = op.execute(&[("IN", &img)], &target).unwrap();
                let expected = reference::convolve2d(&img, &mask, mode);
                assert!(
                    result.output.max_abs_diff(&expected) < 1e-4,
                    "{mode:?}/{variant:?}: diff {}",
                    result.output.max_abs_diff(&expected)
                );
            }
        }
    }

    #[test]
    fn undefined_mode_reports_potential_crash() {
        let img = phantom::gradient(32, 32);
        let op = Operator::new(box3_kernel()); // no boundary spec
        let target = Target::cuda(tesla_c2050());
        let result = op.execute(&[("IN", &img)], &target).unwrap();
        assert!(result.would_crash(), "border reads must go out of bounds");
    }

    #[test]
    fn opencl_on_amd_works_and_respects_block_cap() {
        let img = phantom::gradient(64, 64);
        let op = Operator::new(box3_kernel()).boundary("IN", BoundaryMode::Mirror, 3, 3);
        let target = Target::opencl(radeon_hd_5870());
        let result = op.execute(&[("IN", &img)], &target).unwrap();
        assert!(result.compiled.config.threads() <= 256);
        let expected = reference::convolve2d(
            &img,
            &reference::MaskCoeffs::box_filter(3, 3),
            BoundaryMode::Mirror,
        );
        assert!(result.output.max_abs_diff(&expected) < 1e-4);
    }

    #[test]
    fn forced_config_reaches_launch() {
        let img = phantom::gradient(64, 64);
        let op = Operator::new(box3_kernel())
            .boundary("IN", BoundaryMode::Clamp, 3, 3)
            .with_options(PipelineOptions {
                force_config: Some((64, 2)),
                ..PipelineOptions::default()
            });
        let result = op
            .execute(&[("IN", &img)], &Target::cuda(tesla_c2050()))
            .unwrap();
        assert_eq!(
            (result.compiled.config.bx, result.compiled.config.by),
            (64, 2)
        );
    }

    #[test]
    fn dynamic_mask_upload_is_used() {
        // Convolve with an uploaded 1x3 mask [0, 1, 0] — identity.
        let mut b = KernelBuilder::new("dynconv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let m = b.mask_dynamic("M", 3, 1);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            b.add_assign(
                &acc,
                b.mask_at(&m, xf.get(), Expr::int(0)) * b.read_at(&input, xf.get(), Expr::int(0)),
            );
        });
        b.output(acc.get());
        let img = phantom::gradient(32, 8);
        let op = Operator::new(b.finish())
            .boundary("IN", BoundaryMode::Clamp, 3, 1)
            .upload_mask("M", vec![0.0, 1.0, 0.0]);
        let result = op
            .execute(&[("IN", &img)], &Target::cuda(tesla_c2050()))
            .unwrap();
        assert!(result.output.max_abs_diff(&img) < 1e-6);
    }

    #[test]
    fn no_inputs_is_an_error() {
        let op = Operator::new(box3_kernel());
        assert!(matches!(
            op.execute(&[], &Target::cuda(tesla_c2050())).unwrap_err(),
            OperatorError::NoInputs
        ));
    }
}
