//! # hipacc-core
//!
//! The paper's framework, assembled: the DSL front-end classes (`Image`,
//! `IterationSpace`, `Accessor`, `BoundaryCondition`, `Mask`, `Kernel`) and
//! the pipeline that compiles a kernel for a target device, executes it on
//! the simulated GPU and reports both the functional result and the
//! modelled execution time.
//!
//! A filter author writes (compare Listings 1–3 of the paper):
//!
//! ```
//! use hipacc_core::prelude::*;
//!
//! // Derive a kernel: output() = 0.25 * (N + S + E + W).
//! let mut b = KernelBuilder::new("cross_blur", ScalarType::F32);
//! let input = b.accessor("Input", ScalarType::F32);
//! let sum = b.read(&input, -1, 0) + b.read(&input, 1, 0)
//!     + b.read(&input, 0, -1) + b.read(&input, 0, 1);
//! b.output(Expr::float(0.25) * sum);
//!
//! // Instantiate with access metadata and run on a simulated Tesla C2050.
//! let op = Operator::new(b.finish())
//!     .boundary("Input", BoundaryMode::Clamp, 3, 3);
//! let img = Image::from_fn(64, 64, |x, _| x as f32);
//! let target = Target::cuda(hipacc_hwmodel::device::tesla_c2050());
//! let result = op.execute(&[("Input", &img)], &target).unwrap();
//! assert_eq!(result.output.width(), 64);
//! assert!(result.time.total_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod convolve;
pub mod errors;
pub mod fusion;
pub mod operator;
pub mod pipeline;
pub mod profile;
pub mod reduce;
pub mod supervisor;
pub mod target;

pub use cache::{CacheReport, KernelCache};
pub use errors::{diagnostic_registry, error_chain, explain, CodeInfo, FailureClass};
pub use fusion::{check_chain, fuse_operators, FusionError};
pub use hipacc_faults::{FaultPlan, FaultSession};
pub use hipacc_sim::Engine;
pub use operator::{Execution, Operator, OperatorError, PipelineOptions};
pub use profile::{LaunchProfile, RegionProfile};
pub use supervisor::{
    supervise, RecoveryAction, RecoveryEvent, RecoveryReport, RungOutcome, Supervised,
    SupervisedError, SupervisorConfig,
};
pub use target::Target;

/// Convenience prelude for filter authors and examples.
pub mod prelude {
    pub use crate::convolve::{convolve, Reduce};
    pub use crate::operator::{Execution, Operator, PipelineOptions};
    pub use crate::target::Target;
    pub use hipacc_codegen::MemVariant;
    pub use hipacc_hwmodel::Backend;
    pub use hipacc_image::{BoundaryMode, Image, Rect};
    pub use hipacc_ir::{Expr, KernelBuilder, ScalarType};
}
