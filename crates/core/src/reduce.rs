//! Global operators (reductions) — the Section VIII outlook item
//! implemented.
//!
//! The paper classifies operators into point, local and global, and defers
//! global operators ("we look for a similar syntax that allows the
//! programmer to define operations that merge/reduce two pixels") to
//! future work. This module supplies that piece: a device-side two-stage
//! reduction. Stage one is a generated kernel that stages each block's
//! pixels into scratchpad memory and tree-reduces them with barriers
//! between strides; stage two folds the per-block partials on the host —
//! the standard CUDA reduction pattern.

use crate::target::Target;
use hipacc_ir::kernel::{
    AddressMode, BufferAccess, BufferParam, DeviceKernelDef, MemorySpace, ParamDecl, SharedDecl,
};
use hipacc_ir::{Builtin, Expr, MathFn, ScalarType, Stmt};
use hipacc_sim::interp::ExecStats;
use hipacc_sim::memory::{BufferGeometry, DeviceBuffer, DeviceMemory, LaunchParams};

/// The merge function of a global operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of all pixels.
    Sum,
    /// Minimum pixel value.
    Min,
    /// Maximum pixel value.
    Max,
}

impl ReduceOp {
    fn identity(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f32::MAX,
            ReduceOp::Max => f32::MIN,
        }
    }

    fn combine_expr(self, a: Expr, b: Expr) -> Expr {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => Expr::call2(MathFn::Min, a, b),
            ReduceOp::Max => Expr::call2(MathFn::Max, a, b),
        }
    }

    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Generate the stage-one reduction kernel for a 1-D block of `threads`
/// threads (must be a power of two).
pub fn reduction_kernel(op: ReduceOp, threads: u32) -> DeviceKernelDef {
    assert!(threads.is_power_of_two(), "reduction blocks must be 2^k");
    let tid = || Expr::Builtin(Builtin::ThreadIdxX);
    let mut body = vec![
        Stmt::Comment("stage: one pixel per thread, identity when out of range".into()),
        Stmt::Decl {
            name: "gid_x".into(),
            ty: ScalarType::I32,
            init: Some(
                Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX) + tid(),
            ),
        },
        Stmt::Decl {
            name: "gid_y".into(),
            ty: ScalarType::I32,
            init: Some(Expr::Builtin(Builtin::BlockIdxY)),
        },
        Stmt::Decl {
            name: "v".into(),
            ty: ScalarType::F32,
            init: Some(Expr::float(op.identity())),
        },
        Stmt::If {
            cond: Expr::var("gid_x")
                .lt(Expr::var("width"))
                .and(Expr::var("gid_y").lt(Expr::var("height"))),
            then: vec![Stmt::Assign {
                target: hipacc_ir::LValue::Var("v".into()),
                value: Expr::GlobalLoad {
                    buf: "IN".into(),
                    idx: Box::new(Expr::var("gid_x") + Expr::var("gid_y") * Expr::var("stride")),
                },
            }],
            els: vec![],
        },
        Stmt::SharedStore {
            buf: "_sred".into(),
            y: Expr::int(0),
            x: tid(),
            value: Expr::var("v"),
        },
        Stmt::Barrier,
    ];

    // Tree reduction: stride halving, one barrier per level.
    let mut s = threads / 2;
    while s >= 1 {
        body.push(Stmt::If {
            cond: tid().lt(Expr::int(s as i64)),
            then: vec![Stmt::SharedStore {
                buf: "_sred".into(),
                y: Expr::int(0),
                x: tid(),
                value: op.combine_expr(
                    Expr::SharedLoad {
                        buf: "_sred".into(),
                        y: Box::new(Expr::int(0)),
                        x: Box::new(tid()),
                    },
                    Expr::SharedLoad {
                        buf: "_sred".into(),
                        y: Box::new(Expr::int(0)),
                        x: Box::new(tid() + Expr::int(s as i64)),
                    },
                ),
            }],
            els: vec![],
        });
        body.push(Stmt::Barrier);
        s /= 2;
    }

    body.push(Stmt::If {
        cond: tid().eq_(Expr::int(0)),
        then: vec![Stmt::GlobalStore {
            buf: "OUT".into(),
            idx: Expr::Builtin(Builtin::BlockIdxY) * Expr::Builtin(Builtin::GridDimX)
                + Expr::Builtin(Builtin::BlockIdxX),
            value: Expr::SharedLoad {
                buf: "_sred".into(),
                y: Box::new(Expr::int(0)),
                x: Box::new(Expr::int(0)),
            },
        }],
        els: vec![],
    });

    DeviceKernelDef {
        name: format!("reduce_{op:?}").to_lowercase(),
        buffers: vec![
            BufferParam {
                name: "IN".into(),
                ty: ScalarType::F32,
                access: BufferAccess::ReadOnly,
                space: MemorySpace::Global,
                address_mode: AddressMode::None,
            },
            BufferParam {
                name: "OUT".into(),
                ty: ScalarType::F32,
                access: BufferAccess::WriteOnly,
                space: MemorySpace::Global,
                address_mode: AddressMode::None,
            },
        ],
        scalars: vec![
            ParamDecl {
                name: "width".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "height".into(),
                ty: ScalarType::I32,
            },
            ParamDecl {
                name: "stride".into(),
                ty: ScalarType::I32,
            },
        ],
        const_buffers: vec![],
        shared: vec![SharedDecl {
            name: "_sred".into(),
            ty: ScalarType::F32,
            rows: 1,
            cols: threads,
        }],
        body,
    }
}

/// Run a global reduction over an image on a simulated target.
pub fn reduce_image(
    img: &hipacc_image::Image<f32>,
    op: ReduceOp,
    target: &Target,
) -> Result<(f64, ExecStats), hipacc_sim::SimError> {
    let threads = 128u32
        .min(target.device.max_threads_per_block)
        .next_power_of_two()
        / 2
        * 2;
    let threads = if threads.is_power_of_two() {
        threads
    } else {
        128
    };
    let kernel = reduction_kernel(op, threads);
    let grid_x = img.width().div_ceil(threads);
    let grid_y = img.height();

    let mut mem = DeviceMemory::new();
    mem.bind_image("IN", img);
    let partials = grid_x as usize * grid_y as usize;
    mem.bind(
        "OUT",
        DeviceBuffer::new(BufferGeometry {
            width: partials as u32,
            height: 1,
            stride: partials as u32,
        }),
    );
    let mut params = LaunchParams::new((grid_x, grid_y), (threads, 1));
    params
        .set_int("width", img.width() as i64)
        .set_int("height", img.height() as i64)
        .set_int("stride", img.stride() as i64);
    let stats = hipacc_sim::execute(&kernel, &params, &mut mem)?;

    let out = &mem.buffer("OUT").unwrap().data;
    let mut acc = op.identity() as f64;
    for &p in out.iter().take(partials) {
        acc = op.combine(acc, p as f64);
    }
    Ok((acc, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::{radeon_hd_5870, tesla_c2050};
    use hipacc_image::{phantom, reference};

    #[test]
    fn reduction_kernel_typechecks() {
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let k = reduction_kernel(op, 128);
            hipacc_ir::typecheck::check_device(&k).unwrap();
            assert!(k.has_barrier());
        }
    }

    #[test]
    fn sum_matches_reference() {
        let img = phantom::vessel_tree(100, 64, &phantom::VesselParams::default());
        let (sum, stats) = reduce_image(&img, ReduceOp::Sum, &Target::cuda(tesla_c2050())).unwrap();
        let expected = reference::reduce_sum(&img);
        assert!(
            (sum - expected).abs() / expected.abs() < 1e-4,
            "{sum} vs {expected}"
        );
        assert!(stats.barriers > 0);
    }

    #[test]
    fn max_and_min_match_reference() {
        let img = phantom::gradient(73, 21); // deliberately non-power-of-two
        let t = Target::cuda(tesla_c2050());
        let (mx, _) = reduce_image(&img, ReduceOp::Max, &t).unwrap();
        let (mn, _) = reduce_image(&img, ReduceOp::Min, &t).unwrap();
        let (lo, hi) = img.min_max();
        assert_eq!(mx as f32, hi);
        assert_eq!(mn as f32, lo);
    }

    #[test]
    fn reduction_respects_amd_block_cap() {
        let img = phantom::gradient(64, 16);
        let t = Target::opencl(radeon_hd_5870());
        let (sum, _) = reduce_image(&img, ReduceOp::Sum, &t).unwrap();
        let expected = reference::reduce_sum(&img);
        assert!((sum - expected).abs() / expected.abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_blocks_rejected() {
        let _ = reduction_kernel(ReduceOp::Sum, 96);
    }
}
