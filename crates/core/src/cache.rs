//! Cross-launch compiled-kernel cache.
//!
//! Compiling a kernel — specialization, access analysis, lowering,
//! configuration selection, emission, verification — is pure: its output
//! depends only on the kernel definition and the [`CompileSpec`]. In a
//! steady-state pipeline (video frames, iterative solvers) the same
//! operator is launched over and over with identical geometry, so every
//! launch after the first repeats work whose result is already known.
//!
//! [`KernelCache`] memoizes the compiler artifact across launches. The key
//! is a *fingerprint*: a canonical rendering of the kernel definition plus
//! every compile-relevant field of the spec (device, backend, image
//! geometry, boundary handling, bound parameters, memory-path variant,
//! unrolling, forced configuration, ROI, vectorization). Anything that can
//! change the emitted code changes the key, so a cache hit is reuse of a
//! bit-identical artifact by construction — there is no invalidation
//! protocol to get wrong, only a bounded LRU that drops the
//! least-recently-used entry when full.
//!
//! The cache is **opt-in**: install one with
//! [`PipelineOptions::cache`](crate::PipelineOptions) (an `Arc`, so one
//! cache can back many operators). The default path compiles fresh every
//! launch, which keeps compile-phase traces intact for profiling tests.
//! Fault-recovery rungs that degrade the launch configuration compile with
//! a different `force_config`, hence a different fingerprint — a degraded
//! artifact can never be served for a healthy launch or vice versa. The
//! supervisor additionally bypasses the cache entirely on degraded rungs
//! (recorded as a bypass, not a miss) so recovery timing is never skewed
//! by warm-cache effects.

use hipacc_codegen::{CompileSpec, CompiledKernel};
use hipacc_ir::kernel::KernelDef;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default number of compiled kernels retained (LRU beyond this).
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// What the cache did for one launch, embedded in
/// [`LaunchProfile`](crate::LaunchProfile).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheReport {
    /// `"hit"`, `"miss"`, or `"bypass: <reason>"`.
    pub outcome: String,
    /// Cumulative hits on the cache at the time of this launch.
    pub hits: u64,
    /// Cumulative misses on the cache at the time of this launch.
    pub misses: u64,
    /// Times the cache adopted its state out of a poisoned lock (a
    /// launch thread panicked while holding it). Non-zero is worth a
    /// look but never fatal — see [`KernelCache::poison_diagnostic`].
    pub poison_recoveries: u64,
}

impl CacheReport {
    /// True when this launch was served from the cache.
    pub fn is_hit(&self) -> bool {
        self.outcome == "hit"
    }
}

struct Inner {
    map: HashMap<String, (u64, CompiledKernel)>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache of compiler artifacts keyed by kernel
/// fingerprint. See the module docs for keying and invalidation semantics.
pub struct KernelCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl std::fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("bypasses", &self.bypasses())
            .finish()
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl KernelCache {
    /// A cache retaining at most `capacity` compiled kernels (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Lock the cache state, recovering from mutex poisoning.
    ///
    /// A panic in one launch thread (a worker assertion, a test
    /// `should_panic`, an injected fault) poisons the mutex for every
    /// *unrelated* subsequent launch; propagating that panic turns one
    /// failure into a process-wide cascade. The inner state is safe to
    /// adopt as-is: every critical section either completes its
    /// `HashMap` operation or panics before mutating (`tick += 1` and
    /// map ops are individually atomic with respect to unwinding), and a
    /// worst-case stale LRU stamp or missing entry only costs a
    /// recompile. The recovery is counted and surfaced as a typed
    /// diagnostic ([`Self::poison_diagnostic`]) instead of a panic.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            }
        }
    }

    /// Canonical cache key for compiling `def` under `spec`.
    ///
    /// The spec's boundary and parameter maps are sorted by name before
    /// rendering: `HashMap`'s iteration (and hence `Debug`) order is
    /// unspecified and varies between separately built maps, which would
    /// otherwise turn identical launches into spurious misses.
    pub fn fingerprint(def: &KernelDef, spec: &CompileSpec) -> String {
        let mut bounds: Vec<_> = spec.boundaries.iter().collect();
        bounds.sort_by(|a, b| a.0.cmp(b.0));
        let mut params: Vec<_> = spec.param_bindings.iter().collect();
        params.sort_by(|a, b| a.0.cmp(b.0));
        let mut key = String::new();
        let _ = write!(
            key,
            "dev={:?}/{:?} geom={}x{}s{} bounds={bounds:?} params={params:?} \
             variant={:?} cmask={} cprop={} unroll={} force={:?} roi={:?} \
             vec={} generic={} opt={} disable={:?} def={def:?}",
            spec.device,
            spec.backend,
            spec.width,
            spec.height,
            spec.stride,
            spec.variant,
            spec.use_const_masks,
            spec.constant_propagation,
            spec.unroll_limit,
            spec.force_config,
            spec.roi,
            spec.vectorize,
            spec.generic_boundary,
            spec.opt_level,
            // The env veto changes the emitted kernel without touching the
            // spec; folding it into the key keeps opt variants from
            // aliasing (the IR the artifact was built from is implied by
            // level + veto set, both deterministic).
            hipacc_codegen::disabled_passes(),
        );
        key
    }

    /// Fetch the artifact for `key`, refreshing its LRU stamp. Counts a
    /// hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<CompiledKernel> {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.0 = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.1.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store an artifact under `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&self, key: String, compiled: CompiledKernel) {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, (tick, compiled));
    }

    /// Record a deliberate bypass (e.g. a degraded supervisor rung).
    pub fn note_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative bypass count.
    pub fn bypasses(&self) -> u64 {
        self.bypasses.load(Ordering::Relaxed)
    }

    /// Number of artifacts currently retained.
    pub fn len(&self) -> usize {
        self.lock_inner().map.len()
    }

    /// True when no artifact is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Times the cache recovered from a poisoned lock (see
    /// [`Self::poison_diagnostic`]).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// The typed diagnostic for poisoned-lock recoveries: `Some` once
    /// any launch thread has panicked while holding the cache lock
    /// (diagnostic code `R0501`), `None` while the cache has only ever
    /// seen clean unlocks. The cache keeps serving either way; this is
    /// the record that a panic happened nearby, not an error.
    pub fn poison_diagnostic(&self) -> Option<hipacc_analysis::Diagnostic> {
        let n = self.poison_recoveries();
        (n > 0).then(|| {
            hipacc_analysis::Diagnostic::warning(
                "R0501",
                "<kernel-cache>",
                format!(
                    "kernel cache recovered from a poisoned lock {n} time(s): \
                     a launch thread panicked while holding it; cached state \
                     was adopted and service continued"
                ),
            )
        })
    }

    /// Run `f` while holding the cache lock. Test seam for poisoning the
    /// mutex (panic inside `f` under `catch_unwind`); not part of the
    /// stable API.
    #[doc(hidden)]
    pub fn with_lock_for_test(&self, f: impl FnOnce()) {
        let _guard = self.lock_inner();
        f();
    }

    /// A report describing `outcome` with the current counters attached.
    pub fn report(&self, outcome: impl Into<String>) -> CacheReport {
        CacheReport {
            outcome: outcome.into(),
            hits: self.hits(),
            misses: self.misses(),
            poison_recoveries: self.poison_recoveries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_codegen::{BoundarySpec, Compiler};
    use hipacc_hwmodel::device::tesla_c2050;
    use hipacc_hwmodel::Backend;
    use hipacc_image::BoundaryMode;
    use hipacc_ir::{Expr, KernelBuilder, ScalarType};

    fn kernel() -> KernelDef {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        b.output(b.read(&input, 0, 0) * Expr::float(2.0));
        b.finish()
    }

    fn spec() -> CompileSpec {
        CompileSpec::new(tesla_c2050(), Backend::Cuda, 64, 64)
            .with_boundary("IN", BoundarySpec::new(BoundaryMode::Clamp, 3, 3))
    }

    #[test]
    fn fingerprint_is_stable_across_recomputation() {
        let (def, sp) = (kernel(), spec());
        // Build the spec twice: HashMap internals may differ; the key
        // must not.
        assert_eq!(
            KernelCache::fingerprint(&def, &sp),
            KernelCache::fingerprint(&kernel(), &spec())
        );
    }

    #[test]
    fn fingerprint_separates_configs() {
        let def = kernel();
        let a = KernelCache::fingerprint(&def, &spec());
        let mut forced = spec();
        forced.force_config = Some((32, 4));
        let b = KernelCache::fingerprint(&def, &forced);
        assert_ne!(a, b, "force_config must change the key");
    }

    #[test]
    fn hit_returns_identical_artifact() {
        let cache = KernelCache::default();
        let (def, sp) = (kernel(), spec());
        let key = KernelCache::fingerprint(&def, &sp);
        assert!(cache.lookup(&key).is_none());
        let compiled = Compiler::new().compile(&def, &sp).unwrap();
        cache.insert(key.clone(), compiled.clone());
        let cached = cache.lookup(&key).expect("inserted entry");
        assert_eq!(format!("{compiled:?}"), format!("{cached:?}"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = KernelCache::new(2);
        let (def, sp) = (kernel(), spec());
        let compiled = Compiler::new().compile(&def, &sp).unwrap();
        cache.insert("a".into(), compiled.clone());
        cache.insert("b".into(), compiled.clone());
        assert!(cache.lookup("a").is_some()); // refresh a; b is now oldest
        cache.insert("c".into(), compiled);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("b").is_none(), "b was least recently used");
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
    }
}
