//! The unified error surface of the pipeline.
//!
//! Compilation fails with [`CompileError`], simulation with [`SimError`],
//! and the operator API wraps both in [`OperatorError`] — three enums
//! that grew separately. The launch supervisor needs one consistent view
//! over them to decide what to *do* with a failure:
//!
//! * [`OperatorError::class`] splits failures into **transient** (a
//!   retry may cure them — today only a launch-deadline cancellation,
//!   the signature of a hung worker) and **permanent** (retrying the
//!   same configuration is pointless);
//! * [`OperatorError::diagnostic`] converts any failure into the same
//!   structured [`Diagnostic`] the kernel verifier emits, with a stable
//!   `C`-prefixed code for compile failures and `R`-prefixed code for
//!   runtime failures (verifier failures keep their original `A` code);
//! * [`error_chain`] walks `std::error::Error::source` links and renders
//!   each level, so a supervisor log can show "compile error: … ←
//!   kernel verification failed: …" without hand-written matching;
//! * [`diagnostic_registry`] / [`explain`] index *every* stable code of
//!   the three spaces (`A`/`C`/`R`) with a summary and advice —
//!   `reproduce --explain CODE` renders from it.
//!
//! # Runtime/compile diagnostic code space
//!
//! | Code  | Failure |
//! |-------|---------|
//! | C0101 | backend cannot target the device |
//! | C0102 | requested hardware boundary handling does not exist |
//! | C0103 | unsupported feature combination |
//! | C0201 | no launch configuration fits the device |
//! | C0202 | forced launch configuration invalid |
//! | C0301 | internal codegen error |
//! | F0101 | fusion rejected: incompatible ROIs across the chain |
//! | F0102 | fusion rejected: illegal handoff boundary mode |
//! | F0103 | fusion rejected: stage is not a linear single-input consumer |
//! | F0104 | fusion rejected: unsupported kernel shape |
//! | F0105 | fused compile exceeded device resources; fell back per-stage — *warning* |
//! | R0001 | operator executed with no inputs |
//! | R0101 | read of an undefined variable |
//! | R0102 | buffer not bound |
//! | R0103 | scalar argument missing |
//! | R0104 | integer division by zero |
//! | R0105 | barrier inside control flow |
//! | R0106 | expression evaluation failed |
//! | R0201 | invalid `HIPACC_SIM_THREADS` value |
//! | R0202 | invalid launch geometry |
//! | R0203 | explicit launch override shadows a conflicting `HIPACC_SIM_*` variable — *warning* |
//! | R0301 | launch deadline exceeded (hung worker) — *transient* |
//! | R0401 | supervisor exhausted retries and fallbacks |
//! | R0501 | kernel cache recovered from a poisoned lock — *warning* |
//! | R0601 | stage worker panic contained (frame failed, pipeline kept draining) |
//! | R0602 | per-frame deadline budget exhausted |
//! | R0603 | whole-stream deadline budget exhausted |
//! | R0604 | frame shed under sustained queue pressure |
//! | R0605 | invalid stream configuration |
//! | R0606 | circuit breaker pinned a stage to its degraded rung — *warning* |

use crate::operator::OperatorError;
use hipacc_analysis::Diagnostic;
use hipacc_codegen::CompileError;
use hipacc_sim::SimError;

/// Whether a failure is worth retrying.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The failure can vanish on a retry of the same configuration
    /// (e.g. a hung worker cancelled by the launch deadline).
    Transient,
    /// Retrying the identical launch will fail the identical way; only
    /// a *different* configuration (or giving up) makes progress.
    Permanent,
}

impl FailureClass {
    /// `true` for [`FailureClass::Transient`].
    pub fn is_transient(self) -> bool {
        self == FailureClass::Transient
    }
}

impl OperatorError {
    /// Classify the failure for retry policy. Only a launch-deadline
    /// cancellation is transient: every other failure is deterministic
    /// in this simulator and will recur verbatim.
    pub fn class(&self) -> FailureClass {
        match self {
            OperatorError::Sim(SimError::DeadlineExceeded { .. }) => FailureClass::Transient,
            _ => FailureClass::Permanent,
        }
    }

    /// The failure as a structured [`Diagnostic`] with a stable code
    /// (see the module docs for the code space). Verification failures
    /// return their first verifier diagnostic unchanged, so `A`-codes
    /// survive the conversion.
    pub fn diagnostic(&self) -> Diagnostic {
        let msg = self.to_string();
        match self {
            OperatorError::Compile(e) => {
                if let CompileError::Verification(diags) = e {
                    if let Some(d) = diags.first() {
                        return d.clone();
                    }
                }
                let code = match e {
                    CompileError::UnsupportedBackend(_) => "C0101",
                    CompileError::UnsupportedHwBoundary(_) => "C0102",
                    CompileError::UnsupportedCombination(_) => "C0103",
                    CompileError::NoValidConfiguration => "C0201",
                    CompileError::InvalidForcedConfiguration(_) => "C0202",
                    CompileError::Internal(_) => "C0301",
                    CompileError::Verification(_) => "C0301",
                };
                Diagnostic::error(code, "<operator>", msg)
            }
            OperatorError::Sim(e) => {
                let code = match e {
                    SimError::UndefinedVariable(_) => "R0101",
                    SimError::UnboundBuffer(_) => "R0102",
                    SimError::MissingScalar(_) => "R0103",
                    SimError::DivisionByZero => "R0104",
                    SimError::NestedBarrier => "R0105",
                    SimError::EvalError(_) => "R0106",
                    SimError::InvalidThreadCount(_) => "R0201",
                    SimError::InvalidLaunch(_) => "R0202",
                    SimError::DeadlineExceeded { .. } => "R0301",
                };
                Diagnostic::error(code, "<operator>", msg)
            }
            OperatorError::NoInputs => Diagnostic::error("R0001", "<operator>", msg),
            OperatorError::Unrecovered(_) => Diagnostic::error("R0401", "<operator>", msg),
        }
    }
}

/// One entry of the stable diagnostic-code registry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code: `A…` (verifier / source linter), `C…` (compile
    /// failure), `R…` (runtime failure).
    pub code: &'static str,
    /// The subsystem that emits the code.
    pub origin: &'static str,
    /// One-line summary, matching the code-space tables in the module
    /// docs here and in `hipacc_analysis::diag`.
    pub summary: &'static str,
    /// What the code means for the kernel author and how to react.
    pub advice: &'static str,
}

/// Every diagnostic code any layer of the pipeline can emit, in code
/// order. The registry is the single human-readable index over the three
/// code spaces; `reproduce --explain CODE` renders entries from it.
pub fn diagnostic_registry() -> &'static [CodeInfo] {
    REGISTRY
}

/// Look up one code, case-insensitively and ignoring surrounding
/// whitespace. Returns `None` for unknown codes.
pub fn explain(code: &str) -> Option<&'static CodeInfo> {
    let needle = code.trim().to_ascii_uppercase();
    REGISTRY.iter().find(|c| c.code == needle)
}

macro_rules! registry {
    ($($code:literal, $origin:literal : $summary:literal => $advice:literal;)*) => {
        &[$(CodeInfo {
            code: $code,
            origin: $origin,
            summary: $summary,
            advice: $advice,
        },)*]
    };
}

static REGISTRY: &[CodeInfo] = registry![
    "A0101", "verifier:barriers": "barrier under thread-dependent control flow" =>
        "Every thread of a block must reach the same barriers; hoist the barrier out of the divergent branch or make the condition block-uniform.";
    "A0102", "verifier:barriers": "barrier reachable after a thread-dependent early return" =>
        "Threads that returned early never arrive at the barrier and the block deadlocks; guard the returning path or drop the barrier.";
    "A0201", "verifier:races": "write/write race on shared memory in one barrier interval" =>
        "Two threads store to the same scratchpad cell between barriers; separate the phases with a barrier or make the store footprints disjoint.";
    "A0202", "verifier:races": "read/write race on shared memory in one barrier interval" =>
        "A thread reads a scratchpad cell another thread writes in the same interval; insert a barrier between the staging and consuming phases.";
    "A0301", "verifier:bounds": "global or texture access not provably in bounds" =>
        "The index interval escapes the buffer; clamp or wrap the coordinate (boundary handling), or shrink the iteration space.";
    "A0302", "verifier:bounds": "shared-memory access not provably in bounds" =>
        "The scratchpad index interval escapes the declared tile; check the tile geometry against the block size and filter radius.";
    "A0303", "verifier:bounds": "constant-memory access not provably in bounds" =>
        "The mask index interval escapes the constant buffer; check the mask dimensions against the loop bounds.";
    "A0401", "verifier:resources": "shared memory exceeds the device budget" =>
        "The scratchpad tiles do not fit the device's shared memory; shrink the block or switch the memory variant.";
    "A0402", "verifier:resources": "register estimate exceeds the per-thread limit" =>
        "The kernel's estimated register pressure exceeds the device limit; simplify the kernel or reduce unrolling.";
    "A0403", "verifier:resources": "constant-mask bytes exceed constant memory" =>
        "The compiled-in masks are larger than the device's constant memory; use dynamic masks or a smaller window.";
    "A0404", "verifier:resources": "block shape exceeds the device thread limits" =>
        "The launch configuration violates the device's block-dimension or thread-count limits; let the heuristic pick, or force a smaller block.";
    "A0501", "linter": "unbalanced delimiters in generated source" =>
        "The emitted source has mismatched braces/parens — a codegen bug; report it with the kernel that triggered it.";
    "A0502", "linter": "undeclared identifier in generated source" =>
        "The emitted source references a name it never declares — a codegen bug; report it with the kernel that triggered it.";
    "C0101", "compiler": "backend cannot target the device" =>
        "The vendor/backend pair is unsupported (e.g. CUDA on an AMD device); pick the device's native backend.";
    "C0102", "compiler": "requested hardware boundary handling does not exist" =>
        "The device's texture hardware has no unit for this boundary mode; use software boundary handling.";
    "C0103", "compiler": "unsupported feature combination" =>
        "Two requested options are mutually exclusive for this target; the message names the pair.";
    "C0201", "compiler": "no launch configuration fits the device" =>
        "The resource heuristic found no block shape satisfying all device limits; reduce the kernel's footprint.";
    "C0202", "compiler": "forced launch configuration invalid" =>
        "The `force_config` block shape violates a device limit; drop the override or pick a legal shape.";
    "C0301", "compiler": "internal codegen error" =>
        "The compiler reached an inconsistent state; this is a bug — report it with the kernel that triggered it.";
    "F0101", "fusion": "fusion rejected: incompatible ROIs across the chain" =>
        "Every stage of a fused chain must iterate the same space, and a partial ROI admits no stencil consumers (the unfused producer computes nothing outside the ROI); align the ROIs or run the chain unfused.";
    "F0102", "fusion": "fusion rejected: illegal handoff boundary mode" =>
        "An interior stage reads its producer with Repeat (wraps out of the staging tile) or Undefined (handoff values unspecified) handling; use Clamp, Mirror or Constant on interior stages, or run the chain unfused.";
    "F0103", "fusion": "fusion rejected: stage is not a linear single-input consumer" =>
        "Only linear producer -> consumer chains fuse: every stage must read exactly one input accessor; split multi-input stages out of the chain.";
    "F0104", "fusion": "fusion rejected: unsupported kernel shape" =>
        "The stage has no statically bounded read window, is vectorized, or fails structural composition (conditional output, early return); fused kernels are scalar with finite stencils.";
    "F0105", "fusion": "fused compile exceeded device resources; fell back per-stage" =>
        "The fused kernel's scratchpad tiles or registers fit no launch configuration, so the chain ran as individual launches instead — a warning recording the decision, not an error.";
    "R0001", "runtime": "operator executed with no inputs" =>
        "Bind at least one input image; the first input defines the output geometry.";
    "R0101", "runtime": "read of an undefined variable" =>
        "The kernel reads a local before any assignment on some path; initialize it at declaration.";
    "R0102", "runtime": "buffer not bound" =>
        "A buffer the kernel names was not supplied at launch; bind it in the inputs or mask uploads.";
    "R0103", "runtime": "scalar argument missing" =>
        "A scalar parameter has no binding at launch; supply it via the operator's params.";
    "R0104", "runtime": "integer division by zero" =>
        "An integer `/` or `%` evaluated with a zero divisor; guard the divisor.";
    "R0105", "runtime": "barrier inside control flow" =>
        "The engine refuses barriers nested in loops or branches; restructure so barriers sit at the kernel's top level.";
    "R0106", "runtime": "expression evaluation failed" =>
        "An expression produced no value (e.g. a type confusion); the message pinpoints the node.";
    "R0201", "runtime": "invalid HIPACC_SIM_THREADS value" =>
        "The worker-count override is not a positive integer; fix or unset the environment variable.";
    "R0202", "runtime": "invalid launch geometry" =>
        "Grid or block has a zero dimension, or the spec is otherwise degenerate; check the launch spec.";
    "R0203", "runtime": "explicit launch override shadows a conflicting HIPACC_SIM_* variable" =>
        "An explicit engine/sim_threads setting and the environment disagree; the explicit setting always wins — unset the stale variable if the environment was meant to apply.";
    "R0301", "runtime": "launch deadline exceeded (hung worker)" =>
        "A simulator worker missed the deadline — the signature of a hang; transient, the supervisor retries it.";
    "R0401", "supervisor": "supervisor exhausted retries and fallbacks" =>
        "Every retry and fallback in the recovery chain failed; the report lists each attempt's diagnostic.";
    "R0501", "runtime": "kernel cache recovered from a poisoned lock" =>
        "A launch thread panicked while holding the cache lock; the cache adopted its state and kept serving — investigate the panic, the cache itself is healthy.";
    "R0601", "stream": "stage worker panic contained (frame failed, pipeline kept draining)" =>
        "A stage's launch panicked (e.g. an injected driver abort); the frame is recorded as failed with this code, the stage thread survives, and successor frames keep flowing — replay the bundle to reproduce the panic standalone.";
    "R0602", "stream": "per-frame deadline budget exhausted" =>
        "A frame's supervised launches spent more virtual time than HIPACC_STREAM_DEADLINE_US / StreamConfig.frame_deadline_us allows; the frame is cancelled with a typed failure instead of stalling the queue chain — raise the budget or fix the hang.";
    "R0603", "stream": "whole-stream deadline budget exhausted" =>
        "The stream's cumulative virtual time crossed StreamConfig.stream_budget_us; every frame from the crossing point on is cancelled deterministically — raise the budget or shed load earlier.";
    "R0604", "stream": "frame shed under sustained queue pressure" =>
        "The producer queue sat at its high-water mark past StreamConfig.shed_after_us, so the oldest undispatched frame was dropped with a typed event; downstream stages never saw it — slow the producer or raise the capacity.";
    "R0605", "stream": "invalid stream configuration" =>
        "A stream knob is out of range (zero workers, zero queue capacity, a zero deadline, or a malformed HIPACC_STREAM_* value); fix the config or environment — the stream refuses to start rather than surface the error mid-run.";
    "R0606", "stream": "circuit breaker pinned a stage to its degraded rung" =>
        "A stage kept succeeding only via its degradation ladder, so the breaker opened and pinned the proven rung (one recompile, no per-frame ladder walk); half-open probes restore the healthy config after enough clean frames — a warning, not an error.";
];

/// Render an error and its `source()` chain, outermost first.
pub fn error_chain(e: &(dyn std::error::Error + 'static)) -> Vec<String> {
    let mut chain = vec![e.to_string()];
    let mut cur = e.source();
    while let Some(src) = cur {
        chain.push(src.to_string());
        cur = src.source();
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deadline() -> OperatorError {
        OperatorError::Sim(SimError::DeadlineExceeded {
            worker: 1,
            elapsed_us: 900,
            deadline_us: 500,
        })
    }

    #[test]
    fn classification_table() {
        let cases: Vec<(OperatorError, FailureClass, &str)> = vec![
            (deadline(), FailureClass::Transient, "R0301"),
            (
                OperatorError::Sim(SimError::InvalidThreadCount("x".into())),
                FailureClass::Permanent,
                "R0201",
            ),
            (
                OperatorError::Sim(SimError::InvalidLaunch("zero grid".into())),
                FailureClass::Permanent,
                "R0202",
            ),
            (
                OperatorError::Sim(SimError::UnboundBuffer("IN".into())),
                FailureClass::Permanent,
                "R0102",
            ),
            (
                OperatorError::Compile(CompileError::NoValidConfiguration),
                FailureClass::Permanent,
                "C0201",
            ),
            (
                OperatorError::Compile(CompileError::UnsupportedBackend("cuda/amd".into())),
                FailureClass::Permanent,
                "C0101",
            ),
            (OperatorError::NoInputs, FailureClass::Permanent, "R0001"),
            (
                OperatorError::Unrecovered("retries exhausted".into()),
                FailureClass::Permanent,
                "R0401",
            ),
        ];
        for (err, class, code) in cases {
            assert_eq!(err.class(), class, "{err}");
            let d = err.diagnostic();
            assert_eq!(d.code, code, "{err}");
            assert!(d.is_error());
            assert!(!d.message.is_empty());
        }
    }

    #[test]
    fn verification_failures_keep_their_verifier_code() {
        let inner = Diagnostic::error("A0401", "blur", "too much shared memory");
        let err = OperatorError::Compile(CompileError::Verification(vec![inner.clone()]));
        assert_eq!(err.diagnostic(), inner);
        assert_eq!(err.class(), FailureClass::Permanent);
    }

    #[test]
    fn chains_render_outermost_first() {
        let err = deadline();
        let chain = error_chain(&err);
        assert_eq!(chain.len(), 2);
        assert!(chain[0].starts_with("simulation error:"), "{}", chain[0]);
        assert!(chain[1].contains("deadline"), "{}", chain[1]);
    }
}
