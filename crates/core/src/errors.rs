//! The unified error surface of the pipeline.
//!
//! Compilation fails with [`CompileError`], simulation with [`SimError`],
//! and the operator API wraps both in [`OperatorError`] — three enums
//! that grew separately. The launch supervisor needs one consistent view
//! over them to decide what to *do* with a failure:
//!
//! * [`OperatorError::class`] splits failures into **transient** (a
//!   retry may cure them — today only a launch-deadline cancellation,
//!   the signature of a hung worker) and **permanent** (retrying the
//!   same configuration is pointless);
//! * [`OperatorError::diagnostic`] converts any failure into the same
//!   structured [`Diagnostic`] the kernel verifier emits, with a stable
//!   `C`-prefixed code for compile failures and `R`-prefixed code for
//!   runtime failures (verifier failures keep their original `A` code);
//! * [`error_chain`] walks `std::error::Error::source` links and renders
//!   each level, so a supervisor log can show "compile error: … ←
//!   kernel verification failed: …" without hand-written matching.
//!
//! # Runtime/compile diagnostic code space
//!
//! | Code  | Failure |
//! |-------|---------|
//! | C0101 | backend cannot target the device |
//! | C0102 | requested hardware boundary handling does not exist |
//! | C0103 | unsupported feature combination |
//! | C0201 | no launch configuration fits the device |
//! | C0202 | forced launch configuration invalid |
//! | C0301 | internal codegen error |
//! | R0001 | operator executed with no inputs |
//! | R0101 | read of an undefined variable |
//! | R0102 | buffer not bound |
//! | R0103 | scalar argument missing |
//! | R0104 | integer division by zero |
//! | R0105 | barrier inside control flow |
//! | R0106 | expression evaluation failed |
//! | R0201 | invalid `HIPACC_SIM_THREADS` value |
//! | R0202 | invalid launch geometry |
//! | R0301 | launch deadline exceeded (hung worker) — *transient* |
//! | R0401 | supervisor exhausted retries and fallbacks |

use crate::operator::OperatorError;
use hipacc_analysis::Diagnostic;
use hipacc_codegen::CompileError;
use hipacc_sim::SimError;

/// Whether a failure is worth retrying.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The failure can vanish on a retry of the same configuration
    /// (e.g. a hung worker cancelled by the launch deadline).
    Transient,
    /// Retrying the identical launch will fail the identical way; only
    /// a *different* configuration (or giving up) makes progress.
    Permanent,
}

impl FailureClass {
    /// `true` for [`FailureClass::Transient`].
    pub fn is_transient(self) -> bool {
        self == FailureClass::Transient
    }
}

impl OperatorError {
    /// Classify the failure for retry policy. Only a launch-deadline
    /// cancellation is transient: every other failure is deterministic
    /// in this simulator and will recur verbatim.
    pub fn class(&self) -> FailureClass {
        match self {
            OperatorError::Sim(SimError::DeadlineExceeded { .. }) => FailureClass::Transient,
            _ => FailureClass::Permanent,
        }
    }

    /// The failure as a structured [`Diagnostic`] with a stable code
    /// (see the module docs for the code space). Verification failures
    /// return their first verifier diagnostic unchanged, so `A`-codes
    /// survive the conversion.
    pub fn diagnostic(&self) -> Diagnostic {
        let msg = self.to_string();
        match self {
            OperatorError::Compile(e) => {
                if let CompileError::Verification(diags) = e {
                    if let Some(d) = diags.first() {
                        return d.clone();
                    }
                }
                let code = match e {
                    CompileError::UnsupportedBackend(_) => "C0101",
                    CompileError::UnsupportedHwBoundary(_) => "C0102",
                    CompileError::UnsupportedCombination(_) => "C0103",
                    CompileError::NoValidConfiguration => "C0201",
                    CompileError::InvalidForcedConfiguration(_) => "C0202",
                    CompileError::Internal(_) => "C0301",
                    CompileError::Verification(_) => "C0301",
                };
                Diagnostic::error(code, "<operator>", msg)
            }
            OperatorError::Sim(e) => {
                let code = match e {
                    SimError::UndefinedVariable(_) => "R0101",
                    SimError::UnboundBuffer(_) => "R0102",
                    SimError::MissingScalar(_) => "R0103",
                    SimError::DivisionByZero => "R0104",
                    SimError::NestedBarrier => "R0105",
                    SimError::EvalError(_) => "R0106",
                    SimError::InvalidThreadCount(_) => "R0201",
                    SimError::InvalidLaunch(_) => "R0202",
                    SimError::DeadlineExceeded { .. } => "R0301",
                };
                Diagnostic::error(code, "<operator>", msg)
            }
            OperatorError::NoInputs => Diagnostic::error("R0001", "<operator>", msg),
            OperatorError::Unrecovered(_) => Diagnostic::error("R0401", "<operator>", msg),
        }
    }
}

/// Render an error and its `source()` chain, outermost first.
pub fn error_chain(e: &(dyn std::error::Error + 'static)) -> Vec<String> {
    let mut chain = vec![e.to_string()];
    let mut cur = e.source();
    while let Some(src) = cur {
        chain.push(src.to_string());
        cur = src.source();
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deadline() -> OperatorError {
        OperatorError::Sim(SimError::DeadlineExceeded {
            worker: 1,
            elapsed_us: 900,
            deadline_us: 500,
        })
    }

    #[test]
    fn classification_table() {
        let cases: Vec<(OperatorError, FailureClass, &str)> = vec![
            (deadline(), FailureClass::Transient, "R0301"),
            (
                OperatorError::Sim(SimError::InvalidThreadCount("x".into())),
                FailureClass::Permanent,
                "R0201",
            ),
            (
                OperatorError::Sim(SimError::InvalidLaunch("zero grid".into())),
                FailureClass::Permanent,
                "R0202",
            ),
            (
                OperatorError::Sim(SimError::UnboundBuffer("IN".into())),
                FailureClass::Permanent,
                "R0102",
            ),
            (
                OperatorError::Compile(CompileError::NoValidConfiguration),
                FailureClass::Permanent,
                "C0201",
            ),
            (
                OperatorError::Compile(CompileError::UnsupportedBackend("cuda/amd".into())),
                FailureClass::Permanent,
                "C0101",
            ),
            (OperatorError::NoInputs, FailureClass::Permanent, "R0001"),
            (
                OperatorError::Unrecovered("retries exhausted".into()),
                FailureClass::Permanent,
                "R0401",
            ),
        ];
        for (err, class, code) in cases {
            assert_eq!(err.class(), class, "{err}");
            let d = err.diagnostic();
            assert_eq!(d.code, code, "{err}");
            assert!(d.is_error());
            assert!(!d.message.is_empty());
        }
    }

    #[test]
    fn verification_failures_keep_their_verifier_code() {
        let inner = Diagnostic::error("A0401", "blur", "too much shared memory");
        let err = OperatorError::Compile(CompileError::Verification(vec![inner.clone()]));
        assert_eq!(err.diagnostic(), inner);
        assert_eq!(err.class(), FailureClass::Permanent);
    }

    #[test]
    fn chains_render_outermost_first() {
        let err = deadline();
        let chain = error_chain(&err);
        assert_eq!(chain.len(), 2);
        assert!(chain[0].starts_with("simulation error:"), "{}", chain[0]);
        assert!(chain[1].contains("deadline"), "{}", chain[1]);
    }
}
