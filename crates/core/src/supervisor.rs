//! The resilient launch supervisor.
//!
//! [`supervise`] wraps the plain compile-and-execute pipeline of
//! [`Operator::execute`] in a recovery loop that survives every fault
//! class the injection plane ([`hipacc_faults`]) can produce:
//!
//! * **hung or stalled workers** — every faulted launch runs under the
//!   plan's virtual deadline; a cancellation
//!   ([`SimError::DeadlineExceeded`]) is classified *transient* and
//!   retried with exponential backoff. Both the launch cost and the
//!   backoff live on a **virtual clock** (microseconds accumulated in
//!   the report), so tests never sleep;
//! * **dropped, bit-flipped, or poisoned block results** — the engines
//!   keep per-block checksums of computed vs. committed stores; blocks
//!   whose checksums diverge are **selectively re-executed** on clean
//!   memory ([`repair_blocks`]) and patched into the output, and the
//!   repair itself is validated against the original checksums;
//! * **corrupted constant banks** — the post-launch scrub compares the
//!   uploaded coefficients bit-for-bit; a dirty bank invalidates the
//!   whole launch, which is retried (with the plan's seed rotated by the
//!   attempt counter, so transient flips do not recur);
//! * **configurations the device cannot sustain** — resource-limit
//!   compile failures and exhausted retries walk the degradation ladder
//!   of [`hipacc_codegen::fallback`]: drop texture/scratchpad paths back
//!   to global memory, then shrink the tile, recompiling at each rung.
//!
//! Every decision is recorded as a [`RecoveryEvent`]; the final
//! [`RecoveryReport`] renders as text or as `"recovery"`-category trace
//! spans merged into the launch profile. With an inert plan
//! ([`FaultPlan::none`]) the supervised result is **bit-identical** to
//! [`Operator::execute`] on the same engine.
//!
//! [`SimError::DeadlineExceeded`]: hipacc_sim::SimError::DeadlineExceeded
//! [`repair_blocks`]: hipacc_sim::launch::repair_blocks

use crate::operator::{Execution, Operator, OperatorError};
use crate::pipeline::launch_spec;
use crate::profile::LaunchProfile;
use crate::target::Target;
use hipacc_codegen::{fallback_chain, CompiledKernel, Compiler, MemVariant};
use hipacc_faults::{FaultPlan, FaultSession};
use hipacc_image::Image;
use hipacc_profile::{now_us, ProfileSink, Recorder, Span};
use hipacc_sim::inject::{combine_hash, store_hash};
use hipacc_sim::launch::{repair_blocks, run_on_image_faulted, FaultedLaunch};
use hipacc_sim::Engine;

/// Retry and fallback policy for [`supervise`].
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Launch attempts per configuration before degrading (≥ 1).
    pub max_attempts: u32,
    /// Base of the exponential virtual backoff charged after a transient
    /// failure: attempt `k` waits `backoff_base_us << k` virtual µs.
    pub backoff_base_us: u64,
    /// Walk the config-degradation ladder when retries are exhausted or
    /// compilation hits a resource limit. `false` = retry-only.
    pub fallback: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_us: 100,
            fallback: true,
        }
    }
}

/// What the supervisor did in response to one attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The attempt validated clean; its output is the result.
    Completed,
    /// Corrupted blocks were re-executed on clean memory and patched in;
    /// the repaired output is the result.
    Repaired,
    /// The attempt was discarded and relaunched (transient failure,
    /// constant-bank corruption, or a repair that did not validate).
    Retried,
    /// The configuration was abandoned for the next rung of the
    /// degradation ladder (recompile with cheaper options).
    Degraded,
    /// Recovery gave up; the error is surfaced to the caller.
    Surfaced,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryAction::Completed => "completed",
            RecoveryAction::Repaired => "repaired",
            RecoveryAction::Retried => "retried",
            RecoveryAction::Degraded => "degraded",
            RecoveryAction::Surfaced => "surfaced",
        })
    }
}

/// One structured entry of the supervisor's recovery log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Configuration rung the attempt ran under (`initial`,
    /// `scratchpad->global`, `tile 64x1`, …).
    pub step: String,
    /// Attempt index within the step (0-based).
    pub attempt: u32,
    /// What the supervisor did.
    pub action: RecoveryAction,
    /// Human-readable specifics (corrupted blocks, dirty banks, the
    /// failure diagnostic, …). Deterministic for a given plan.
    pub detail: String,
    /// Virtual time charged for the attempt (launch plus any backoff).
    pub virtual_us: u64,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} attempt {}] {}: {} ({}us)",
            self.step, self.attempt, self.action, self.detail, self.virtual_us
        )
    }
}

/// Outcome counters for one configuration rung the supervisor visited:
/// how many events on that rung ended in each [`RecoveryAction`], plus
/// the compile options the rung ran under. This is the machine-readable
/// side of the event log — the stream resilience governor keys its
/// circuit breaker on the **final** rung (`RecoveryReport::final_rung`),
/// and `StreamReport` derives its action totals from these counters, so
/// both share one source of truth with the rendered text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungOutcome {
    /// Rung label (`initial`, `scratchpad->global`, `tile 64x1`, …).
    pub rung: String,
    /// Memory variant the rung compiled with.
    pub variant: MemVariant,
    /// Forced launch config of the rung (`None` = the database's pick).
    pub force_config: Option<(u32, u32)>,
    /// Attempts on this rung that validated clean.
    pub completed: u32,
    /// Attempts recovered by selective block re-execution.
    pub repaired: u32,
    /// Attempts discarded and relaunched.
    pub retried: u32,
    /// Times this rung was abandoned for the next one.
    pub degraded: u32,
    /// Failures surfaced to the caller from this rung.
    pub surfaced: u32,
}

impl RungOutcome {
    fn new(rung: &str, variant: MemVariant, force_config: Option<(u32, u32)>) -> Self {
        Self {
            rung: rung.to_string(),
            variant,
            force_config,
            completed: 0,
            repaired: 0,
            retried: 0,
            degraded: 0,
            surfaced: 0,
        }
    }

    fn bump(&mut self, action: RecoveryAction) {
        match action {
            RecoveryAction::Completed => self.completed += 1,
            RecoveryAction::Repaired => self.repaired += 1,
            RecoveryAction::Retried => self.retried += 1,
            RecoveryAction::Degraded => self.degraded += 1,
            RecoveryAction::Surfaced => self.surfaced += 1,
        }
    }

    /// The counter for `action`.
    pub fn count(&self, action: RecoveryAction) -> u32 {
        match action {
            RecoveryAction::Completed => self.completed,
            RecoveryAction::Repaired => self.repaired,
            RecoveryAction::Retried => self.retried,
            RecoveryAction::Degraded => self.degraded,
            RecoveryAction::Surfaced => self.surfaced,
        }
    }

    /// Whether this rung produced the validated result (clean or
    /// repaired).
    pub fn succeeded(&self) -> bool {
        self.completed + self.repaired > 0
    }
}

/// The full recovery log of one supervised execution.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Events in the order they happened.
    pub events: Vec<RecoveryEvent>,
    /// Per-rung outcome counters, in ladder order as visited. The last
    /// entry is the rung execution ended on (successfully or not).
    pub rungs: Vec<RungOutcome>,
    /// Total launches attempted (including the successful one).
    pub attempts: u32,
    /// Total virtual time: launches, backoffs, repairs.
    pub virtual_us: u64,
    /// The fault plan's stable summary string.
    pub plan: String,
}

impl RecoveryReport {
    /// Whether any recovery action (beyond a clean first launch) was
    /// needed.
    pub fn recovered(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.action != RecoveryAction::Completed)
    }

    /// Total events across all rungs that ended in `action`.
    pub fn action_total(&self, action: RecoveryAction) -> u32 {
        self.rungs.iter().map(|r| r.count(action)).sum()
    }

    /// The rung execution ended on — the one a circuit breaker pins a
    /// stage to when it decides the ladder's verdict is stable.
    pub fn final_rung(&self) -> Option<&RungOutcome> {
        self.rungs.last()
    }

    /// Whether execution succeeded only after abandoning the requested
    /// configuration (the final rung is a degraded one).
    pub fn degraded_success(&self) -> bool {
        self.final_rung()
            .is_some_and(|r| r.succeeded() && r.rung != "initial")
    }

    /// The recovery log as `"recovery"`-category trace spans laid out
    /// sequentially on the virtual timeline starting at `base_us`.
    pub fn spans(&self, base_us: u64) -> Vec<Span> {
        let mut out = Vec::new();
        let mut cursor = base_us;
        for e in &self.events {
            let dur = e.virtual_us.max(1);
            out.push(
                Span::new(format!("{}: {}", e.action, e.step), "recovery", cursor, dur)
                    .arg("attempt", e.attempt.to_string())
                    .arg("detail", e.detail.clone())
                    .arg("virtual_us", e.virtual_us.to_string()),
            );
            cursor = cursor.saturating_add(dur);
        }
        out
    }

    /// Render the log as deterministic text, one event per line.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "recovery report: {} attempt(s), {} virtual us, plan: {}\n",
            self.attempts, self.virtual_us, self.plan
        );
        for e in &self.events {
            out.push_str(&format!("  {e}\n"));
        }
        for r in &self.rungs {
            out.push_str(&format!(
                "  rung {}: completed={} repaired={} retried={} degraded={} surfaced={}\n",
                r.rung, r.completed, r.repaired, r.retried, r.degraded, r.surfaced
            ));
        }
        out
    }
}

/// A supervised execution that (eventually) produced a validated result.
#[derive(Clone, Debug)]
pub struct Supervised {
    /// The validated execution (output, stats, modelled time, artifact).
    pub execution: Execution,
    /// What it took to get there.
    pub recovery: RecoveryReport,
    /// The launch profile of the successful attempt, with the fault plan
    /// recorded and the recovery spans merged in.
    pub profile: LaunchProfile,
}

/// A supervised execution that exhausted every recovery option.
#[derive(Debug)]
pub struct SupervisedError {
    /// The final, unrecoverable failure.
    pub error: OperatorError,
    /// Everything the supervisor tried before giving up.
    pub report: RecoveryReport,
}

impl std::fmt::Display for SupervisedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "supervision failed after {} attempt(s): {}",
            self.report.attempts, self.error
        )
    }
}

impl std::error::Error for SupervisedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One rung of the configuration ladder the supervisor walks.
#[derive(Clone, Debug)]
struct StepSpec {
    label: String,
    variant: MemVariant,
    force_config: Option<(u32, u32)>,
}

/// Find-or-create the [`RungOutcome`] entry for `rung` and bump its
/// `action` counter. Rung labels are unique across the ladder, so the
/// entries stay in visit order.
fn note_rung(
    report: &mut RecoveryReport,
    rung: &str,
    variant: MemVariant,
    force_config: Option<(u32, u32)>,
    action: RecoveryAction,
) {
    match report.rungs.iter_mut().find(|r| r.rung == rung) {
        Some(r) => r.bump(action),
        None => {
            let mut r = RungOutcome::new(rung, variant, force_config);
            r.bump(action);
            report.rungs.push(r);
        }
    }
}

fn block_list(blocks: &[(u32, u32)]) -> String {
    blocks
        .iter()
        .map(|(x, y)| format!("({x},{y})"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Execute `op` under the supervisor: inject `plan`, validate the
/// output, and retry / repair / degrade per `cfg` until a validated
/// result exists or every option is exhausted.
///
/// With [`FaultPlan::none`] the result is bit-identical to
/// [`Operator::execute_with`] on the same engine.
#[allow(clippy::result_large_err)] // the Err carries the full RecoveryReport by design
pub fn supervise(
    op: &Operator,
    inputs: &[(&str, &Image<f32>)],
    target: &Target,
    engine: Engine,
    plan: &FaultPlan,
    cfg: &SupervisorConfig,
) -> Result<Supervised, SupervisedError> {
    let mut report = RecoveryReport {
        plan: plan.summary(),
        ..RecoveryReport::default()
    };
    let fail = |error: OperatorError,
                mut report: RecoveryReport,
                step: &str,
                attempt: u32,
                variant: MemVariant,
                force: Option<(u32, u32)>| {
        note_rung(&mut report, step, variant, force, RecoveryAction::Surfaced);
        report.events.push(RecoveryEvent {
            step: step.to_string(),
            attempt,
            action: RecoveryAction::Surfaced,
            detail: error.diagnostic().to_string(),
            virtual_us: 0,
        });
        Err(SupervisedError { error, report })
    };

    let Some((_, first)) = inputs.first() else {
        return fail(
            OperatorError::NoInputs,
            report,
            "initial",
            0,
            op.options.variant,
            op.options.force_config,
        );
    };
    let (width, height) = (first.width(), first.height());

    let mut steps = vec![StepSpec {
        label: "initial".into(),
        variant: op.options.variant,
        force_config: op.options.force_config,
    }];
    let mut ladder_built = !cfg.fallback;
    // The fault session's attempt counter is global across rungs, so a
    // transient plan (faulty_attempts = 1) stays cured after a retry even
    // if the supervisor later degrades the configuration.
    let mut fault_attempt: u32 = 0;
    let mut step_idx = 0;

    while step_idx < steps.len() {
        let step = steps[step_idx].clone();
        let mut op_step = op.clone();
        op_step.options.variant = step.variant;
        op_step.options.force_config = step.force_config.or(op.options.force_config);
        // The effective compile options of this rung, recorded into the
        // per-rung outcome counters so a circuit breaker can re-create
        // exactly this configuration when it pins the stage.
        let rung_variant = op_step.options.variant;
        let rung_force = op_step.options.force_config;

        let mut rec = Recorder::new();
        let spec_c = op_step.compile_spec(target, width, height);
        // Kernel-cache policy: only the pristine `initial` rung may be
        // served from (or populate) the cache. Degraded rungs compile with
        // a different fingerprint anyway (variant / force_config are part
        // of the key), but they bypass the cache entirely — recovery
        // timing must never be skewed by warm-cache effects, and a
        // degraded artifact must never linger for later healthy launches.
        let mut cache_report: Option<crate::cache::CacheReport> = None;
        let mut cache_key: Option<String> = None;
        let mut from_cache: Option<CompiledKernel> = None;
        if let Some(cache) = op.options.cache.as_deref() {
            if step.label == "initial" {
                let key = crate::cache::KernelCache::fingerprint(&op.def, &spec_c);
                match cache.lookup(&key) {
                    Some(hit) => {
                        cache_report = Some(cache.report("hit"));
                        from_cache = Some(hit);
                    }
                    None => {
                        cache_report = Some(cache.report("miss"));
                        cache_key = Some(key);
                    }
                }
            } else {
                cache.note_bypass();
                cache_report = Some(cache.report("bypass: degraded-config"));
            }
        }
        let compiled: CompiledKernel = match from_cache {
            Some(c) => c,
            None => match match &op.options.fused {
                Some(chain) => Compiler::new().compile_fused_with_sink(chain, &spec_c, &mut rec),
                None => Compiler::new().compile_with_sink(&op.def, &spec_c, &mut rec),
            } {
                Ok(c) => {
                    if let (Some(cache), Some(key)) = (op.options.cache.as_deref(), cache_key) {
                        cache.insert(key, c.clone());
                    }
                    c
                }
                Err(e) => {
                    let resource = e.is_resource_limit();
                    let err = OperatorError::Compile(e);
                    if resource && cfg.fallback {
                        if !ladder_built {
                            // No tile hint from a failed compile: degrade
                            // the memory variant only.
                            steps.extend(ladder_steps(op.options.variant, None));
                            ladder_built = true;
                        }
                        if step_idx + 1 < steps.len() {
                            note_rung(
                                &mut report,
                                &step.label,
                                rung_variant,
                                rung_force,
                                RecoveryAction::Degraded,
                            );
                            report.events.push(RecoveryEvent {
                                step: step.label.clone(),
                                attempt: 0,
                                action: RecoveryAction::Degraded,
                                detail: format!(
                                    "{} -> trying {}",
                                    err.diagnostic(),
                                    steps[step_idx + 1].label
                                ),
                                virtual_us: 0,
                            });
                            step_idx += 1;
                            continue;
                        }
                    }
                    return fail(err, report, &step.label, 0, rung_variant, rung_force);
                }
            },
        };
        if !ladder_built {
            steps.extend(ladder_steps(op.options.variant, Some(compiled.config)));
            ladder_built = true;
        }

        let mut spec = launch_spec(&compiled, inputs, &op.params, &op.mask_uploads);
        spec.sim_threads = op.options.sim_threads;
        spec.pool = op.options.pool.clone();

        let mut attempt = 0;
        while attempt < cfg.max_attempts.max(1) {
            let session = FaultSession::new(plan.clone(), fault_attempt);
            report.attempts += 1;
            fault_attempt += 1;
            // Pushes the retry event; virtual-time accounting is the
            // caller's (launch time is already counted on success paths).
            let retry = |report: &mut RecoveryReport, detail: String, virtual_us: u64| {
                note_rung(
                    report,
                    &step.label,
                    rung_variant,
                    rung_force,
                    RecoveryAction::Retried,
                );
                report.events.push(RecoveryEvent {
                    step: step.label.clone(),
                    attempt,
                    action: RecoveryAction::Retried,
                    detail,
                    virtual_us,
                });
            };

            match run_on_image_faulted(&compiled.device_kernel, &spec, engine, &session) {
                Err(e) => {
                    let err = OperatorError::Sim(e);
                    let transient = err.class().is_transient();
                    // Charge the deadline, not the saturated worker time:
                    // the watchdog cancels *at* the deadline, and a hung
                    // worker's own clock reads (near) u64::MAX.
                    let elapsed = match &err {
                        OperatorError::Sim(hipacc_sim::SimError::DeadlineExceeded {
                            elapsed_us,
                            deadline_us,
                            ..
                        }) => (*elapsed_us).min(*deadline_us),
                        _ => 0,
                    };
                    if transient && attempt + 1 < cfg.max_attempts {
                        let backoff = cfg.backoff_base_us << attempt;
                        report.virtual_us = report
                            .virtual_us
                            .saturating_add(elapsed.saturating_add(backoff));
                        retry(
                            &mut report,
                            format!("{} -> backoff {}us", err.diagnostic(), backoff),
                            elapsed.saturating_add(backoff),
                        );
                        attempt += 1;
                        continue;
                    }
                    if transient && cfg.fallback && step_idx + 1 < steps.len() {
                        report.virtual_us = report.virtual_us.saturating_add(elapsed);
                        note_rung(
                            &mut report,
                            &step.label,
                            rung_variant,
                            rung_force,
                            RecoveryAction::Degraded,
                        );
                        report.events.push(RecoveryEvent {
                            step: step.label.clone(),
                            attempt,
                            action: RecoveryAction::Degraded,
                            detail: format!(
                                "retries exhausted -> trying {}",
                                steps[step_idx + 1].label
                            ),
                            virtual_us: elapsed,
                        });
                        break; // next rung
                    }
                    return fail(err, report, &step.label, attempt, rung_variant, rung_force);
                }
                Ok(run) => {
                    report.virtual_us += run.run.virtual_us;
                    if !run.corrupt_const_banks.is_empty() {
                        let detail =
                            format!("constant banks corrupted: {:?}", run.corrupt_const_banks);
                        if attempt + 1 < cfg.max_attempts {
                            retry(&mut report, detail, run.run.virtual_us);
                            attempt += 1;
                            continue;
                        }
                        return fail(
                            OperatorError::Unrecovered(detail),
                            report,
                            &step.label,
                            attempt,
                            rung_variant,
                            rung_force,
                        );
                    }

                    let corrupted = run.run.corrupted_blocks();
                    if corrupted.is_empty() {
                        note_rung(
                            &mut report,
                            &step.label,
                            rung_variant,
                            rung_force,
                            RecoveryAction::Completed,
                        );
                        report.events.push(RecoveryEvent {
                            step: step.label.clone(),
                            attempt,
                            action: RecoveryAction::Completed,
                            detail: "validated clean".into(),
                            virtual_us: run.run.virtual_us,
                        });
                        return finish(
                            op,
                            target,
                            engine,
                            plan,
                            compiled,
                            run,
                            rec,
                            report,
                            cache_report,
                        );
                    }

                    let launch_us = run.run.virtual_us;
                    match try_repair(&compiled, &spec, engine, &corrupted, run) {
                        Ok(run) => {
                            note_rung(
                                &mut report,
                                &step.label,
                                rung_variant,
                                rung_force,
                                RecoveryAction::Repaired,
                            );
                            report.events.push(RecoveryEvent {
                                step: step.label.clone(),
                                attempt,
                                action: RecoveryAction::Repaired,
                                detail: format!(
                                    "re-executed {} corrupted block(s): {}",
                                    corrupted.len(),
                                    block_list(&corrupted)
                                ),
                                virtual_us: run.run.virtual_us,
                            });
                            return finish(
                                op,
                                target,
                                engine,
                                plan,
                                compiled,
                                run,
                                rec,
                                report,
                                cache_report,
                            );
                        }
                        Err(detail) => {
                            if attempt + 1 < cfg.max_attempts {
                                retry(&mut report, detail, launch_us);
                                attempt += 1;
                                continue;
                            }
                            return fail(
                                OperatorError::Unrecovered(detail),
                                report,
                                &step.label,
                                attempt,
                                rung_variant,
                                rung_force,
                            );
                        }
                    }
                }
            }
        }
        if attempt >= cfg.max_attempts.max(1) {
            // Retries exhausted without a break-to-degrade: surface.
            return fail(
                OperatorError::Unrecovered(format!(
                    "{} attempt(s) exhausted on step `{}`",
                    cfg.max_attempts, step.label
                )),
                report,
                &step.label,
                attempt.saturating_sub(1),
                rung_variant,
                rung_force,
            );
        }
        step_idx += 1;
    }

    let err = OperatorError::Unrecovered("configuration ladder exhausted".into());
    fail(err, report, "ladder", 0, op.options.variant, None)
}

/// The degradation ladder as supervisor steps.
fn ladder_steps(
    requested: MemVariant,
    config: Option<hipacc_hwmodel::LaunchConfig>,
) -> Vec<StepSpec> {
    fallback_chain(requested, config)
        .into_iter()
        .map(|s| StepSpec {
            label: s.label,
            variant: s.variant,
            force_config: s.force_config,
        })
        .collect()
}

/// Selectively re-execute `corrupted` blocks on clean memory, validate
/// the recomputed stores against the ledger's expected checksums, and
/// patch them into the run's output. Returns the repaired run, or a
/// description of why the repair did not validate.
fn try_repair(
    compiled: &CompiledKernel,
    spec: &hipacc_sim::launch::LaunchSpec<'_>,
    engine: Engine,
    corrupted: &[(u32, u32)],
    mut run: FaultedLaunch,
) -> Result<FaultedLaunch, String> {
    let (stores, _stats) = repair_blocks(&compiled.device_kernel, spec, engine, corrupted)
        .map_err(|e| format!("repair failed: {e}"))?;
    let expected: u64 = run
        .run
        .ledger
        .iter()
        .filter(|l| corrupted.contains(&(l.bx, l.by)))
        .fold(0u64, |acc, l| acc.wrapping_add(l.expected));
    let recomputed = stores.iter().fold(0u64, |acc, s| {
        combine_hash(acc, store_hash(&s.buf, s.idx, s.value))
    });
    if recomputed != expected {
        return Err(format!(
            "repair of blocks {} did not validate against the ledger",
            block_list(corrupted)
        ));
    }
    let raw = run.output.raw_mut();
    for s in &stores {
        if s.buf == "OUT" && s.idx < raw.len() {
            raw[s.idx] = s.value;
        }
    }
    Ok(run)
}

/// Assemble the successful result: execution, profile (fault plan and
/// recovery spans included), and the recovery report.
#[allow(clippy::too_many_arguments, clippy::result_large_err)]
fn finish(
    op: &Operator,
    target: &Target,
    engine: Engine,
    plan: &FaultPlan,
    compiled: CompiledKernel,
    run: FaultedLaunch,
    mut rec: Recorder,
    report: RecoveryReport,
    cache_report: Option<crate::cache::CacheReport>,
) -> Result<Supervised, SupervisedError> {
    let time = op.estimate(&compiled, target);
    let launch_start = now_us();
    rec.record(
        Span::new("execute", "launch", launch_start, run.run.virtual_us.max(1))
            .arg("engine", engine.label())
            .arg("workers", run.exec.n_workers.to_string())
            .arg("blocks", run.exec.blocks.len().to_string()),
    );
    let mut spans = rec.into_spans();
    spans.extend(report.spans(launch_start));

    let regions = LaunchProfile::attribute_regions(&run.exec, |bx, by| {
        compiled
            .region_grid
            .as_ref()
            .map(|g| g.region_of(bx, by))
            .unwrap_or(hipacc_codegen::Region::Interior)
    });
    // A cache hit means the compile phases never ran for this launch.
    let phase_times = if cache_report.as_ref().is_some_and(|c| c.is_hit()) {
        Vec::new()
    } else {
        compiled.phase_times.clone()
    };
    let profile = LaunchProfile {
        kernel: op.def.name.clone(),
        target: target.label(),
        engine: engine.label(),
        grid: compiled.grid,
        block: (compiled.config.bx, compiled.config.by),
        n_workers: run.exec.n_workers,
        regions,
        totals: run.stats,
        blocks_per_worker: run.exec.blocks_per_worker(),
        time,
        occupancy: compiled.occupancy,
        phase_times,
        spans,
        fault_plan: plan.any_armed().then(|| plan.summary()),
        cache: cache_report,
        warp_occupancy: run.exec.simd.and_then(|t| t.mean_active_fraction()),
        override_conflicts: hipacc_sim::override_conflicts(Some(engine), op.options.sim_threads)
            .into_iter()
            .map(|c| c.to_string())
            .collect(),
    };
    Ok(Supervised {
        execution: Execution {
            output: run.output,
            stats: run.stats,
            time,
            compiled,
        },
        recovery: report,
        profile,
    })
}

impl Operator {
    /// [`Self::execute_with`] wrapped in the launch supervisor: inject
    /// `plan`, validate per-block checksums and constant banks, retry /
    /// repair / degrade per `cfg`. See [`supervise`].
    #[allow(clippy::result_large_err)]
    pub fn execute_supervised(
        &self,
        inputs: &[(&str, &Image<f32>)],
        target: &Target,
        engine: Engine,
        plan: &FaultPlan,
        cfg: &SupervisorConfig,
    ) -> Result<Supervised, SupervisedError> {
        supervise(self, inputs, target, engine, plan, cfg)
    }
}
