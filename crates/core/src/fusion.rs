//! Fusing operator chains: the framework-level planner.
//!
//! [`fuse_operators`] turns a linear chain of [`Operator`]s (producer
//! first, each consuming the previous stage's output) into one fused
//! operator whose compilation goes through
//! `Compiler::compile_fused`: legality is decided by
//! `hipacc_analysis::fusion` (ROIs, handoff boundary modes, kernel
//! shape — the `F01xx` diagnostic band), structure by
//! [`hipacc_ir::fuse::compose`] (linear single-input stages, one
//! top-level output, bounded windows), and the per-stage metadata —
//! boundary conditions, scalar parameters, dynamic mask uploads — is
//! re-keyed under the chain's alpha-renamed namespace so one launch
//! binds everything.
//!
//! Rejections come back as the same structured [`Diagnostic`]s the
//! kernel verifier emits ([`check_chain`] returns them without
//! failing), so a runtime can record *why* a chain stayed unfused and
//! fall back to per-stage launches.

use crate::operator::{Operator, PipelineOptions};
use hipacc_analysis::fusion::{check_fusion, StageShape};
use hipacc_analysis::Diagnostic;
use hipacc_image::BoundaryMode;
use hipacc_ir::fuse::{compose, FuseError, FusionChain};
use hipacc_ir::KernelDef;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a chain of operators was not fused.
#[derive(Debug)]
pub enum FusionError {
    /// The legality analysis rejected the chain; the diagnostics carry
    /// the stable `F01xx` codes.
    Illegal(Vec<Diagnostic>),
    /// The IR composer rejected a stage's structure.
    Structural(FuseError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::Illegal(diags) => {
                write!(f, "fusion rejected:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            FusionError::Structural(e) => write!(f, "fusion rejected: {e}"),
        }
    }
}

impl std::error::Error for FusionError {}

impl FusionError {
    /// The rejection as `F01xx` diagnostics (structural failures are
    /// mapped into the same code space).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        match self {
            FusionError::Illegal(diags) => diags.clone(),
            FusionError::Structural(e) => vec![fuse_error_diagnostic(e)],
        }
    }
}

/// Map an IR composer error into the `F01xx` diagnostic band.
fn fuse_error_diagnostic(e: &FuseError) -> Diagnostic {
    let (code, stage) = match e {
        FuseError::AccessorCount { stage, .. } => ("F0103", stage.as_str()),
        FuseError::TooFewStages(_) => ("F0104", "<chain>"),
        FuseError::OutputShape { stage }
        | FuseError::EarlyReturn { stage }
        | FuseError::UnboundedAccess { stage } => ("F0104", stage.as_str()),
    };
    Diagnostic::error(code, stage, e.to_string())
}

/// The fusion-relevant shape of each operator (producer first), fed to
/// the legality analysis.
pub fn stage_shapes(ops: &[&Operator]) -> Vec<StageShape> {
    ops.iter()
        .map(|op| {
            let acc = op
                .def
                .accessors
                .first()
                .map(|a| a.name.as_str())
                .unwrap_or("");
            let b = op.boundaries.get(acc);
            StageShape::of(
                &op.def,
                b.map(|b| b.mode).unwrap_or(BoundaryMode::Undefined),
                b.map(|b| (b.half_x(), b.half_y())).unwrap_or((0, 0)),
                op.options.roi,
                op.options.vectorize,
            )
        })
        .collect()
}

/// Check a chain for fusability without building anything. Returns the
/// `F01xx` diagnostics that would reject it; empty means the chain
/// fuses.
pub fn check_chain(ops: &[&Operator]) -> Vec<Diagnostic> {
    let mut diags = check_fusion(&stage_shapes(ops));
    if diags.is_empty() {
        let defs: Vec<KernelDef> = ops.iter().map(|o| o.def.clone()).collect();
        if let Err(e) = compose(&defs) {
            diags.push(fuse_error_diagnostic(&e));
        }
    }
    diags
}

/// Fuse a linear chain of operators (producer first) into one operator.
///
/// The fused operator's `def` is the chain's union kernel (what cache
/// fingerprints and launches bind against); its boundary conditions,
/// parameters and mask uploads are the stages' own, re-keyed under the
/// alpha-renamed (`_s<i>_`) namespace. Pipeline options are inherited
/// from the first stage — including its cache, engine and worker pool —
/// with `fused` set and vectorization forced scalar. The chain's input
/// binds under the first stage's original accessor name.
pub fn fuse_operators(ops: &[&Operator]) -> Result<Operator, FusionError> {
    let diags = check_fusion(&stage_shapes(ops));
    if !diags.is_empty() {
        return Err(FusionError::Illegal(diags));
    }
    let defs: Vec<KernelDef> = ops.iter().map(|o| o.def.clone()).collect();
    let chain: FusionChain = compose(&defs).map_err(FusionError::Structural)?;

    let mut boundaries = HashMap::new();
    let mut params = HashMap::new();
    let mut uploads = HashMap::new();
    for (i, (op, stage)) in ops.iter().zip(&chain.stages).enumerate() {
        let orig_acc = &op.def.accessors[0].name;
        if let Some(b) = op.boundaries.get(orig_acc) {
            boundaries.insert(stage.input.clone(), *b);
        }
        for (name, v) in op.params.iter() {
            params.insert(format!("_s{i}_{name}"), *v);
        }
        for m in &op.def.masks {
            if let Some(c) = op.mask_uploads.get(&format!("_const{}", m.name)) {
                let renamed = format!("_s{i}_{}", m.name);
                uploads.insert(format!("_const{renamed}"), c.clone());
                uploads.insert(format!("_gmask{renamed}"), c.clone());
            }
        }
    }

    let options = PipelineOptions {
        fused: Some(Arc::new(chain.clone())),
        vectorize: 1,
        // A configuration forced for one stage says nothing about the
        // fused kernel's resource needs; let selection run fresh.
        force_config: None,
        ..ops[0].options.clone()
    };
    Ok(Operator {
        def: chain.union.clone(),
        boundaries,
        params: Arc::new(params),
        mask_uploads: Arc::new(uploads),
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Target;
    use hipacc_hwmodel::device::tesla_c2050;
    use hipacc_image::phantom;
    use hipacc_ir::{Expr, KernelBuilder, ScalarType};

    fn box3_kernel(name: &str) -> KernelDef {
        let mut b = KernelBuilder::new(name, ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        b.finish()
    }

    fn cross_kernel(name: &str) -> KernelDef {
        let mut b = KernelBuilder::new(name, ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let sum = b.read_at(&input, Expr::int(-1), Expr::int(0))
            + b.read_at(&input, Expr::int(1), Expr::int(0))
            + b.read_at(&input, Expr::int(0), Expr::int(-1))
            + b.read_at(&input, Expr::int(0), Expr::int(1));
        b.output(Expr::float(0.25) * sum);
        b.finish()
    }

    fn diff(fused: &Operator, stages: &[&Operator], img: &hipacc_image::Image<f32>) -> f32 {
        let target = Target::cuda(tesla_c2050());
        let mut cur = img.clone();
        for op in stages {
            cur = op.execute(&[("IN", &cur)], &target).unwrap().output;
        }
        let got = fused.execute(&[("IN", img)], &target).unwrap().output;
        got.max_abs_diff(&cur)
    }

    #[test]
    fn two_stage_chain_is_bit_identical() {
        let a = Operator::new(box3_kernel("blur")).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let b = Operator::new(cross_kernel("edge")).boundary("IN", BoundaryMode::Mirror, 3, 3);
        let fused = fuse_operators(&[&a, &b]).unwrap();
        let img = phantom::vessel_tree(40, 33, &phantom::VesselParams::default());
        assert_eq!(diff(&fused, &[&a, &b], &img), 0.0);
    }

    #[test]
    fn three_stage_chain_on_tiny_all_border_image() {
        let a = Operator::new(box3_kernel("s0")).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let b = Operator::new(cross_kernel("s1")).boundary("IN", BoundaryMode::Constant(0.5), 3, 3);
        let c = Operator::new(box3_kernel("s2")).boundary("IN", BoundaryMode::Mirror, 3, 3);
        let fused = fuse_operators(&[&a, &b, &c]).unwrap();
        // Every pixel of a 9x7 frame is within the fused halo of a border.
        let img = phantom::gradient(9, 7);
        assert_eq!(diff(&fused, &[&a, &b, &c], &img), 0.0);
    }

    #[test]
    fn fused_params_and_masks_are_rekeyed() {
        // Stage 1 convolves with an uploaded identity mask scaled by a
        // runtime parameter, so the fused launch must bind both under
        // the renamed `_s1_` namespace.
        let mut b = KernelBuilder::new("dynconv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let m = b.mask_dynamic("M", 3, 1);
        let gain = b.param("gain", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            b.add_assign(
                &acc,
                b.mask_at(&m, xf.get(), Expr::int(0)) * b.read_at(&input, xf.get(), Expr::int(0)),
            );
        });
        b.output(acc.get() * gain.get());
        let a = Operator::new(box3_kernel("pre")).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let bop = Operator::new(b.finish())
            .boundary("IN", BoundaryMode::Clamp, 3, 1)
            .upload_mask("M", vec![0.0, 1.0, 0.0])
            .param_float("gain", 2.0);
        let fused = fuse_operators(&[&a, &bop]).unwrap();
        assert!(fused.mask_uploads.contains_key("_const_s1_M"));
        assert!(fused.params.contains_key("_s1_gain"));
        let img = phantom::gradient(24, 9);
        assert_eq!(diff(&fused, &[&a, &bop], &img), 0.0);
    }

    #[test]
    fn repeat_handoff_is_rejected_with_f0102() {
        let a = Operator::new(box3_kernel("a")).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let b = Operator::new(cross_kernel("b")).boundary("IN", BoundaryMode::Repeat, 3, 3);
        let err = fuse_operators(&[&a, &b]).unwrap_err();
        let codes: Vec<&str> = err.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["F0102"]);
        assert!(check_chain(&[&a, &b]).iter().any(|d| d.code == "F0102"));
    }

    #[test]
    fn early_return_maps_to_f0104() {
        let mut b = KernelBuilder::new("gated", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let v = b.read_at(&input, Expr::int(0), Expr::int(0));
        b.output(v);
        let mut def = b.finish();
        def.body.insert(0, hipacc_ir::Stmt::Return);
        let a = Operator::new(def).boundary("IN", BoundaryMode::Clamp, 1, 1);
        let c = Operator::new(cross_kernel("c")).boundary("IN", BoundaryMode::Clamp, 3, 3);
        let diags = check_chain(&[&a, &c]);
        assert!(diags.iter().any(|d| d.code == "F0104"), "{diags:?}");
    }
}
