//! Compilation targets: a device model plus a backend.

use hipacc_hwmodel::{Backend, DeviceModel};

/// A (device, backend) pair the compiler can generate code for — the
/// paper's compiler flags for target hardware and CUDA/OpenCL selection.
#[derive(Clone, Debug, PartialEq)]
pub struct Target {
    /// The modelled GPU.
    pub device: DeviceModel,
    /// The code-generation backend.
    pub backend: Backend,
}

impl Target {
    /// CUDA on an NVIDIA device.
    pub fn cuda(device: DeviceModel) -> Self {
        Self {
            device,
            backend: Backend::Cuda,
        }
    }

    /// OpenCL on any device.
    pub fn opencl(device: DeviceModel) -> Self {
        Self {
            device,
            backend: Backend::OpenCl,
        }
    }

    /// Display label like "Tesla C2050 / CUDA" used by the harnesses.
    pub fn label(&self) -> String {
        format!("{} / {}", self.device.name, self.backend.name())
    }

    /// The six (device, backend) combinations of Tables II–VII, in table
    /// order.
    pub fn evaluation_targets() -> Vec<Target> {
        use hipacc_hwmodel::device::*;
        vec![
            Target::cuda(tesla_c2050()),
            Target::opencl(tesla_c2050()),
            Target::cuda(quadro_fx_5800()),
            Target::opencl(quadro_fx_5800()),
            Target::opencl(radeon_hd_5870()),
            Target::opencl(radeon_hd_6970()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::tesla_c2050;

    #[test]
    fn labels_and_constructors() {
        let t = Target::cuda(tesla_c2050());
        assert_eq!(t.label(), "Tesla C2050 / CUDA");
        let t = Target::opencl(tesla_c2050());
        assert_eq!(t.label(), "Tesla C2050 / OpenCL");
    }

    #[test]
    fn evaluation_targets_match_tables() {
        let ts = Target::evaluation_targets();
        assert_eq!(ts.len(), 6);
        assert_eq!(ts[0].label(), "Tesla C2050 / CUDA");
        assert_eq!(ts[5].label(), "Radeon HD 6970 / OpenCL");
        // AMD targets are OpenCL-only.
        for t in &ts {
            if t.device.vendor == hipacc_hwmodel::Vendor::Amd {
                assert_eq!(t.backend, Backend::OpenCl);
            }
        }
    }
}
