//! Statement nodes of the kernel IR.

use crate::expr::Expr;
use crate::ty::ScalarType;

/// Assignment targets. Memory stores are separate statements so that the
/// read/write analysis can see them without alias reasoning.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A declared local variable.
    Var(String),
}

/// Statement nodes. DSL-level kernels use everything except the device
/// group; the compiler introduces the device group during lowering.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `type name = init;` (or an uninitialized declaration).
    Decl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: ScalarType,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `target = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `for (int var = from; var <= to; ++var) { body }` — the inclusive
    /// bound matches the paper's convolution loops
    /// (`for (yf = -2*sigma_d; yf <= 2*sigma_d; yf++)`).
    For {
        /// Loop variable (implicitly `int`).
        var: String,
        /// Inclusive lower bound.
        from: Expr,
        /// Inclusive upper bound.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { then } else { els }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// Early return from the kernel.
    Return,
    /// A comment propagated into generated code for readability.
    Comment(String),

    // ---- DSL level ----
    /// `output() = value;` — write the output pixel of the iteration space.
    Output(Expr),

    // ---- Device level ----
    /// `buf[idx] = value;` to global memory.
    GlobalStore {
        /// Global buffer name.
        buf: String,
        /// Linear element index.
        idx: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `smem[y][x] = value;` to scratchpad memory.
    SharedStore {
        /// Shared array name.
        buf: String,
        /// Row index.
        y: Expr,
        /// Column index.
        x: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `__syncthreads()` / `barrier(CLK_LOCAL_MEM_FENCE)`.
    Barrier,
}

impl Stmt {
    /// Visit every statement in a statement list, pre-order, recursing into
    /// loop and branch bodies.
    pub fn visit_all(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
        for s in stmts {
            f(s);
            match s {
                Stmt::For { body, .. } => Stmt::visit_all(body, f),
                Stmt::If { then, els, .. } => {
                    Stmt::visit_all(then, f);
                    Stmt::visit_all(els, f);
                }
                _ => {}
            }
        }
    }

    /// Visit every expression appearing in a statement list (conditions,
    /// bounds, initializers, indices, stored values).
    pub fn visit_exprs(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
        Stmt::visit_all(stmts, &mut |s| match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    e.visit(f);
                }
            }
            Stmt::Assign { value, .. } | Stmt::Output(value) => value.visit(f),
            Stmt::For { from, to, .. } => {
                from.visit(f);
                to.visit(f);
            }
            Stmt::If { cond, .. } => cond.visit(f),
            Stmt::GlobalStore { idx, value, .. } => {
                idx.visit(f);
                value.visit(f);
            }
            Stmt::SharedStore { y, x, value, .. } => {
                y.visit(f);
                x.visit(f);
                value.visit(f);
            }
            Stmt::Return | Stmt::Comment(_) | Stmt::Barrier => {}
        });
    }

    /// Rewrite every expression in a statement list through `f`
    /// (bottom-up within each expression).
    pub fn rewrite_exprs(stmts: Vec<Stmt>, f: &mut impl FnMut(Expr) -> Expr) -> Vec<Stmt> {
        stmts
            .into_iter()
            .map(|s| match s {
                Stmt::Decl { name, ty, init } => Stmt::Decl {
                    name,
                    ty,
                    init: init.map(|e| e.rewrite(f)),
                },
                Stmt::Assign { target, value } => Stmt::Assign {
                    target,
                    value: value.rewrite(f),
                },
                Stmt::Output(e) => Stmt::Output(e.rewrite(f)),
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => Stmt::For {
                    var,
                    from: from.rewrite(f),
                    to: to.rewrite(f),
                    body: Stmt::rewrite_exprs(body, f),
                },
                Stmt::If { cond, then, els } => Stmt::If {
                    cond: cond.rewrite(f),
                    then: Stmt::rewrite_exprs(then, f),
                    els: Stmt::rewrite_exprs(els, f),
                },
                Stmt::GlobalStore { buf, idx, value } => Stmt::GlobalStore {
                    buf,
                    idx: idx.rewrite(f),
                    value: value.rewrite(f),
                },
                Stmt::SharedStore { buf, y, x, value } => Stmt::SharedStore {
                    buf,
                    y: y.rewrite(f),
                    x: x.rewrite(f),
                    value: value.rewrite(f),
                },
                other @ (Stmt::Return | Stmt::Comment(_) | Stmt::Barrier) => other,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn sample() -> Vec<Stmt> {
        vec![
            Stmt::Decl {
                name: "d".into(),
                ty: ScalarType::F32,
                init: Some(Expr::float(0.0)),
            },
            Stmt::For {
                var: "yf".into(),
                from: Expr::int(-1),
                to: Expr::int(1),
                body: vec![Stmt::Assign {
                    target: LValue::Var("d".into()),
                    value: Expr::var("d") + Expr::input_at("IN", Expr::int(0), Expr::var("yf")),
                }],
            },
            Stmt::Output(Expr::var("d")),
        ]
    }

    #[test]
    fn visit_all_recurses_into_loops() {
        let stmts = sample();
        let mut n = 0;
        Stmt::visit_all(&stmts, &mut |_| n += 1);
        assert_eq!(n, 4); // decl, for, assign, output
    }

    #[test]
    fn visit_exprs_sees_loop_bounds_and_bodies() {
        let stmts = sample();
        let mut input_reads = 0;
        let mut imms = 0;
        Stmt::visit_exprs(&stmts, &mut |e| match e {
            Expr::InputAt { .. } => input_reads += 1,
            Expr::ImmInt(_) | Expr::ImmFloat(_) => imms += 1,
            _ => {}
        });
        assert_eq!(input_reads, 1);
        // 0.0 init, -1 and 1 bounds, 0 offset = 4 immediates.
        assert_eq!(imms, 4);
    }

    #[test]
    fn rewrite_exprs_applies_everywhere() {
        let stmts = sample();
        // Replace every ImmInt(1) with ImmInt(2) — hits the loop bound.
        let out = Stmt::rewrite_exprs(stmts, &mut |e| {
            if e == Expr::int(1) {
                Expr::int(2)
            } else {
                e
            }
        });
        match &out[1] {
            Stmt::For { to, .. } => assert_eq!(*to, Expr::int(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rewrite_preserves_statement_structure() {
        let stmts = sample();
        let out = Stmt::rewrite_exprs(stmts.clone(), &mut |e| e);
        assert_eq!(out, stmts);
    }

    #[test]
    fn comparison_binop_helper_compiles() {
        // Regression guard: BinOp is re-exported and usable in pattern form.
        let e = Expr::var("x").lt(Expr::int(0));
        assert!(matches!(e, Expr::Binary(BinOp::Lt, _, _)));
    }
}
