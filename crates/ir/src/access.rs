//! Read/write analysis and access-window inference.
//!
//! This is the analysis of Section IV-A: traverse the kernel's CFG, record
//! for every `Image`/`Accessor` whether it is read and/or written (deciding
//! texture eligibility and the OpenCL `read_only`/`write_only` attributes),
//! and infer the *extent* of the window each accessor reads — the access
//! metadata that sizes scratchpad tiles and boundary-handling regions.
//!
//! Offsets are analysed with interval arithmetic over loop-variable ranges,
//! so both constant offsets (`Input(-1, 2)`) and convolution-loop offsets
//! (`Input(xf, yf)` with `xf ∈ [-2σ, 2σ]`) resolve statically.

use crate::cfg::Cfg;
use crate::expr::{BinOp, Expr, UnOp};
use crate::fold::eval_const;
use crate::kernel::KernelDef;
use crate::stmt::Stmt;
use crate::ty::Const;
use std::collections::HashMap;

/// An inclusive integer interval.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value.
    pub lo: i64,
    /// Largest value.
    pub hi: i64,
}

impl Interval {
    /// A single-point interval.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Hull of two intervals.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The largest absolute value contained.
    pub fn max_abs(self) -> i64 {
        self.lo.abs().max(self.hi.abs())
    }
}

/// Evaluate the possible range of an integer expression given loop-variable
/// ranges. Returns `None` when the expression involves anything opaque
/// (memory reads, unknown variables).
pub fn eval_range(e: &Expr, env: &HashMap<String, Interval>) -> Option<Interval> {
    match e {
        Expr::ImmInt(i) => Some(Interval::point(*i)),
        Expr::ImmFloat(f) if f.fract() == 0.0 => Some(Interval::point(*f as i64)),
        Expr::Var(n) => env.get(n).copied(),
        Expr::Unary(UnOp::Neg, a) => {
            let r = eval_range(a, env)?;
            Some(Interval {
                lo: -r.hi,
                hi: -r.lo,
            })
        }
        Expr::Binary(op, a, b) => {
            let ra = eval_range(a, env)?;
            let rb = eval_range(b, env)?;
            match op {
                BinOp::Add => Some(Interval {
                    lo: ra.lo + rb.lo,
                    hi: ra.hi + rb.hi,
                }),
                BinOp::Sub => Some(Interval {
                    lo: ra.lo - rb.hi,
                    hi: ra.hi - rb.lo,
                }),
                BinOp::Mul => {
                    let candidates = [ra.lo * rb.lo, ra.lo * rb.hi, ra.hi * rb.lo, ra.hi * rb.hi];
                    Some(Interval {
                        lo: *candidates.iter().min().unwrap(),
                        hi: *candidates.iter().max().unwrap(),
                    })
                }
                _ => None,
            }
        }
        Expr::Cast(ty, a) if ty.is_integer() => eval_range(a, env),
        _ => None,
    }
}

/// Inferred access pattern of one accessor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessPattern {
    /// Number of syntactic read sites.
    pub read_sites: u32,
    /// Largest |dx| over all reads, when statically bounded.
    pub max_dx: Option<i64>,
    /// Largest |dy| over all reads, when statically bounded.
    pub max_dy: Option<i64>,
    /// Whether any read site has a non-statically-bounded offset.
    pub unbounded: bool,
}

impl AccessPattern {
    /// The window `(2·max_dx + 1) × (2·max_dy + 1)` this accessor reads,
    /// if statically bounded.
    pub fn window(&self) -> Option<(u32, u32)> {
        match (self.max_dx, self.max_dy, self.unbounded) {
            (Some(dx), Some(dy), false) => Some(((2 * dx + 1) as u32, (2 * dy + 1) as u32)),
            _ => None,
        }
    }

    /// Whether every read is at offset (0, 0) — a *point operator* access.
    pub fn is_point_access(&self) -> bool {
        self.max_dx == Some(0) && self.max_dy == Some(0) && !self.unbounded
    }
}

/// Result of the read/write analysis over a DSL kernel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccessInfo {
    /// Per-accessor read patterns.
    pub inputs: HashMap<String, AccessPattern>,
    /// Per-mask read-site counts.
    pub mask_reads: HashMap<String, u32>,
    /// Whether `output()` is written (checked elsewhere, but recorded).
    pub writes_output: bool,
}

impl AccessInfo {
    /// Largest window over all accessors, or `(1, 1)` for pure point
    /// operators. This is the window the paper's compiler takes "in case
    /// multiple Accessors are used within one kernel".
    pub fn max_window(&self) -> (u32, u32) {
        let mut w = 1;
        let mut h = 1;
        for p in self.inputs.values() {
            if let Some((pw, ph)) = p.window() {
                w = w.max(pw);
                h = h.max(ph);
            }
        }
        (w, h)
    }

    /// Whether the kernel is a local operator (reads any neighbourhood
    /// beyond the center pixel).
    pub fn is_local_operator(&self) -> bool {
        self.inputs.values().any(|p| !p.is_point_access())
    }
}

/// Collect loop-variable ranges by walking statements *structurally* (the
/// CFG's loop bounds are recorded on preheaders but interval analysis is
/// easiest on the tree).
fn collect_loop_env(
    stmts: &[Stmt],
    env: &mut HashMap<String, Interval>,
    consts: &HashMap<String, Const>,
    info: &mut AccessInfo,
) {
    for s in stmts {
        match s {
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let range = match (eval_const(from, consts), eval_const(to, consts)) {
                    (Some(f), Some(t)) => Some(Interval {
                        lo: f.as_i64(),
                        hi: t.as_i64(),
                    }),
                    _ => {
                        eval_range(from, env).and_then(|f| eval_range(to, env).map(|t| f.union(t)))
                    }
                };
                let saved = env.get(var).copied();
                match range {
                    Some(r) => {
                        env.insert(var.clone(), r);
                    }
                    None => {
                        env.remove(var);
                    }
                }
                collect_loop_env(body, env, consts, info);
                match saved {
                    Some(r) => {
                        env.insert(var.clone(), r);
                    }
                    None => {
                        env.remove(var);
                    }
                }
                record_exprs_in_stmt(s, env, info, /*recurse=*/ false);
            }
            Stmt::If { then, els, .. } => {
                collect_loop_env(then, env, consts, info);
                collect_loop_env(els, env, consts, info);
                record_exprs_in_stmt(s, env, info, false);
            }
            other => record_exprs_in_stmt(other, env, info, true),
        }
    }
}

fn record_exprs_in_stmt(
    s: &Stmt,
    env: &HashMap<String, Interval>,
    info: &mut AccessInfo,
    recurse: bool,
) {
    let mut record = |e: &Expr| {
        e.visit(&mut |n| match n {
            Expr::InputAt { acc, dx, dy } => {
                let p = info.inputs.entry(acc.clone()).or_default();
                p.read_sites += 1;
                match eval_range(dx, env) {
                    Some(r) => {
                        p.max_dx = Some(p.max_dx.unwrap_or(0).max(r.max_abs()));
                    }
                    None => p.unbounded = true,
                }
                match eval_range(dy, env) {
                    Some(r) => {
                        p.max_dy = Some(p.max_dy.unwrap_or(0).max(r.max_abs()));
                    }
                    None => p.unbounded = true,
                }
            }
            Expr::MaskAt { mask, .. } => {
                *info.mask_reads.entry(mask.clone()).or_insert(0) += 1;
            }
            _ => {}
        });
    };
    match s {
        Stmt::Decl { init: Some(e), .. } | Stmt::Assign { value: e, .. } => record(e),
        Stmt::Output(e) => {
            info.writes_output = true;
            record(e);
        }
        Stmt::If { cond, then, els } => {
            record(cond);
            if recurse {
                for t in then {
                    record_exprs_in_stmt(t, env, info, true);
                }
                for t in els {
                    record_exprs_in_stmt(t, env, info, true);
                }
            }
        }
        Stmt::For { from, to, body, .. } => {
            record(from);
            record(to);
            if recurse {
                for t in body {
                    record_exprs_in_stmt(t, env, info, true);
                }
            }
        }
        Stmt::GlobalStore { idx, value, .. } => {
            record(idx);
            record(value);
        }
        Stmt::SharedStore { y, x, value, .. } => {
            record(y);
            record(x);
            record(value);
        }
        Stmt::Decl { init: None, .. } | Stmt::Return | Stmt::Comment(_) | Stmt::Barrier => {}
    }
}

/// Run the read/write analysis on a DSL kernel, optionally with known
/// scalar-parameter values (so loop bounds like `2*sigma_d` resolve).
///
/// The CFG is consulted for reachability: reads in statically dead code
/// (after an unconditional `return`) are ignored, matching the paper's
/// CFG-based traversal.
pub fn analyze(kernel: &KernelDef, params: &HashMap<String, Const>) -> AccessInfo {
    // Restrict to reachable statements via the CFG.
    let cfg = Cfg::build(&kernel.body);
    let _ = cfg.reachable(); // CFG construction itself validates shape
    let mut info = AccessInfo::default();
    let mut env: HashMap<String, Interval> = params
        .iter()
        .map(|(k, v)| (k.clone(), Interval::point(v.as_i64())))
        .collect();
    collect_loop_env(&reachable_body(&kernel.body), &mut env, params, &mut info);
    info
}

/// Drop statements that follow an unconditional `return` at the top level
/// (the only statically-dead shape the DSL can produce).
fn reachable_body(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if let Stmt::Return = s {
            out.push(s.clone());
            break;
        }
        out.push(s.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ty::ScalarType;

    #[test]
    fn interval_arithmetic() {
        let mut env = HashMap::new();
        env.insert("xf".to_string(), Interval { lo: -6, hi: 6 });
        // xf + 1 ∈ [-5, 7]
        let e = Expr::var("xf") + Expr::int(1);
        assert_eq!(eval_range(&e, &env), Some(Interval { lo: -5, hi: 7 }));
        // -xf ∈ [-6, 6]
        let e = -Expr::var("xf");
        assert_eq!(eval_range(&e, &env), Some(Interval { lo: -6, hi: 6 }));
        // 2 * xf ∈ [-12, 12]
        let e = Expr::int(2) * Expr::var("xf");
        assert_eq!(eval_range(&e, &env), Some(Interval { lo: -12, hi: 12 }));
        // Unknown variable is opaque.
        assert_eq!(eval_range(&Expr::var("ghost"), &env), None);
    }

    fn blur3x3() -> KernelDef {
        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-1), Expr::int(1), |b, yf| {
            b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
                b.add_assign(&acc, b.read_at(&input, xf.get(), yf.get()));
            });
        });
        b.output(acc.get() / Expr::float(9.0));
        b.finish()
    }

    #[test]
    fn infers_3x3_window_from_loops() {
        let info = analyze(&blur3x3(), &HashMap::new());
        let p = &info.inputs["IN"];
        assert_eq!(p.max_dx, Some(1));
        assert_eq!(p.max_dy, Some(1));
        assert_eq!(p.window(), Some((3, 3)));
        assert!(info.writes_output);
        assert!(info.is_local_operator());
        assert_eq!(info.max_window(), (3, 3));
    }

    #[test]
    fn infers_window_from_parameterized_bounds() {
        // Loop bounds -2σ..=2σ resolve once sigma_d is bound.
        let mut b = KernelBuilder::new("bil", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let sigma = b.param("sigma_d", ScalarType::I32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        let i2 = input.clone();
        b.for_inclusive(
            "xf",
            Expr::int(-2) * sigma.get(),
            Expr::int(2) * sigma.get(),
            |b, xf| {
                b.add_assign(&acc, b.read_at(&i2, xf.get(), Expr::int(0)));
            },
        );
        b.output(acc.get());
        let kernel = b.finish();

        // Without bindings: unbounded.
        let info = analyze(&kernel, &HashMap::new());
        assert!(info.inputs["IN"].unbounded);
        assert_eq!(info.inputs["IN"].window(), None);

        // With sigma_d = 3: 13-wide window.
        let mut params = HashMap::new();
        params.insert("sigma_d".to_string(), Const::Int(3));
        let info = analyze(&kernel, &params);
        let p = &info.inputs["IN"];
        assert!(!p.unbounded);
        assert_eq!(p.window(), Some((13, 1)));
    }

    #[test]
    fn point_operator_detected() {
        let mut b = KernelBuilder::new("scale", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        b.output(b.read_center(&input) * Expr::float(2.0));
        let info = analyze(&b.finish(), &HashMap::new());
        assert!(info.inputs["IN"].is_point_access());
        assert!(!info.is_local_operator());
        assert_eq!(info.max_window(), (1, 1));
    }

    #[test]
    fn multiple_accessors_take_max_window() {
        let mut b = KernelBuilder::new("two", ScalarType::F32);
        let a = b.accessor("A", ScalarType::F32);
        let c = b.accessor("C", ScalarType::F32);
        b.output(b.read(&a, -2, 0) + b.read(&c, 0, 3));
        let info = analyze(&b.finish(), &HashMap::new());
        assert_eq!(info.inputs["A"].window(), Some((5, 1)));
        assert_eq!(info.inputs["C"].window(), Some((1, 7)));
        assert_eq!(info.max_window(), (5, 7));
    }

    #[test]
    fn mask_reads_counted() {
        let mut b = KernelBuilder::new("conv", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let m = b.mask_const("M", 3, 3, vec![1.0 / 9.0; 9]);
        b.output(b.mask_at(&m, Expr::int(0), Expr::int(0)) * b.read_center(&input));
        let info = analyze(&b.finish(), &HashMap::new());
        assert_eq!(info.mask_reads["M"], 1);
    }

    #[test]
    fn reads_after_return_ignored() {
        use crate::kernel::{AccessorDecl, KernelDef};
        let kernel = KernelDef {
            name: "k".into(),
            pixel: ScalarType::F32,
            params: vec![],
            accessors: vec![AccessorDecl {
                name: "IN".into(),
                ty: ScalarType::F32,
            }],
            masks: vec![],
            body: vec![
                Stmt::Output(Expr::input_center("IN")),
                Stmt::Return,
                Stmt::Output(Expr::input_at("IN", Expr::int(-99), Expr::int(0))),
            ],
        };
        let info = analyze(&kernel, &HashMap::new());
        assert_eq!(info.inputs["IN"].max_dx, Some(0));
    }
}
