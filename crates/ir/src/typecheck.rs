//! Well-formedness and type checking for both IR levels.
//!
//! The DSL check runs when a kernel is built (so filter authors get errors
//! at construction time, like the paper's compiler emitting diagnostics for
//! unsupported constructs); the device check runs in the codegen tests to
//! guarantee the lowering never leaves DSL nodes behind.

use crate::expr::{BinOp, Expr, TexCoords, UnOp};
use crate::kernel::{DeviceKernelDef, KernelDef};
use crate::stmt::{LValue, Stmt};
use crate::ty::ScalarType;
use std::collections::HashMap;
use std::fmt;

/// A type-check failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError(msg.into()))
}

/// Which IR level a kernel is being checked against.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Level {
    Dsl,
    Device,
}

struct Ctx<'a> {
    level: Level,
    vars: Vec<HashMap<String, ScalarType>>,
    kernel: Option<&'a KernelDef>,
    device: Option<&'a DeviceKernelDef>,
    output_seen: bool,
}

impl<'a> Ctx<'a> {
    fn lookup(&self, name: &str) -> Option<ScalarType> {
        self.vars.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, ty: ScalarType) -> Result<(), TypeError> {
        let scope = self.vars.last_mut().expect("no scope");
        if scope.contains_key(name) {
            return err(format!("variable `{name}` redeclared in the same scope"));
        }
        scope.insert(name.to_string(), ty);
        Ok(())
    }

    fn push_scope(&mut self) {
        self.vars.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.vars.pop();
    }
}

/// Numeric promotion following C: any float operand promotes the result.
fn promote(a: ScalarType, b: ScalarType) -> Result<ScalarType, TypeError> {
    use ScalarType::*;
    match (a, b) {
        (Bool, Bool) => Ok(Bool),
        (F32, _) | (_, F32) => {
            if a == Bool || b == Bool {
                err("cannot mix bool with float")
            } else {
                Ok(F32)
            }
        }
        (I32, I32) => Ok(I32),
        (U32, U32) => Ok(U32),
        (I32, U32) | (U32, I32) => Ok(I32),
        (Bool, _) | (_, Bool) => err("cannot mix bool with numeric type"),
    }
}

fn infer(e: &Expr, ctx: &Ctx<'_>) -> Result<ScalarType, TypeError> {
    match e {
        Expr::ImmInt(_) => Ok(ScalarType::I32),
        Expr::ImmFloat(_) => Ok(ScalarType::F32),
        Expr::ImmBool(_) => Ok(ScalarType::Bool),
        Expr::Var(name) => ctx
            .lookup(name)
            .ok_or_else(|| TypeError(format!("use of undeclared variable `{name}`"))),
        Expr::Unary(op, a) => {
            let t = infer(a, ctx)?;
            match op {
                UnOp::Neg => {
                    if t == ScalarType::Bool {
                        err("cannot negate bool")
                    } else {
                        Ok(t)
                    }
                }
                UnOp::Not => {
                    if t == ScalarType::Bool {
                        Ok(ScalarType::Bool)
                    } else {
                        err("logical not requires bool")
                    }
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let ta = infer(a, ctx)?;
            let tb = infer(b, ctx)?;
            match op {
                BinOp::And | BinOp::Or => {
                    if ta == ScalarType::Bool && tb == ScalarType::Bool {
                        Ok(ScalarType::Bool)
                    } else {
                        err(format!("`{}` requires bool operands", op.c_symbol()))
                    }
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    promote(ta, tb)?;
                    Ok(ScalarType::Bool)
                }
                BinOp::Rem => {
                    let t = promote(ta, tb)?;
                    if t.is_integer() {
                        Ok(t)
                    } else {
                        err("`%` requires integer operands")
                    }
                }
                _ => promote(ta, tb),
            }
        }
        Expr::Call(f, args) => {
            if args.len() != f.arity() {
                return err(format!(
                    "`{}` expects {} argument(s), got {}",
                    f.name(),
                    f.arity(),
                    args.len()
                ));
            }
            let mut t = infer(&args[0], ctx)?;
            for a in &args[1..] {
                t = promote(t, infer(a, ctx)?)?;
            }
            if t == ScalarType::Bool {
                return err(format!("`{}` is not defined on bool", f.name()));
            }
            // Transcendentals operate in float.
            if f.uses_sfu() {
                Ok(ScalarType::F32)
            } else {
                Ok(t)
            }
        }
        Expr::Cast(ty, a) => {
            infer(a, ctx)?;
            Ok(*ty)
        }
        Expr::Select(c, a, b) => {
            if infer(c, ctx)? != ScalarType::Bool {
                return err("select condition must be bool");
            }
            promote(infer(a, ctx)?, infer(b, ctx)?)
        }
        Expr::InputAt { acc, dx, dy } => {
            if ctx.level != Level::Dsl {
                return err("Input(..) is not allowed in device-level kernels");
            }
            let kernel = ctx.kernel.expect("dsl ctx");
            let decl = kernel
                .accessor(acc)
                .ok_or_else(|| TypeError(format!("unknown accessor `{acc}`")))?;
            for (axis, off) in [("dx", dx), ("dy", dy)] {
                let t = infer(off, ctx)?;
                if !t.is_integer() {
                    return err(format!("accessor offset {axis} must be an integer"));
                }
            }
            Ok(decl.ty)
        }
        Expr::MaskAt { mask, dx, dy } => {
            if ctx.level != Level::Dsl {
                return err("Mask(..) is not allowed in device-level kernels");
            }
            let kernel = ctx.kernel.expect("dsl ctx");
            kernel
                .mask(mask)
                .ok_or_else(|| TypeError(format!("unknown mask `{mask}`")))?;
            for off in [dx, dy] {
                if !infer(off, ctx)?.is_integer() {
                    return err("mask offset must be an integer");
                }
            }
            Ok(ScalarType::F32)
        }
        Expr::OutputX | Expr::OutputY => {
            if ctx.level != Level::Dsl {
                return err("x()/y() are not allowed in device-level kernels");
            }
            Ok(ScalarType::I32)
        }
        Expr::Builtin(_) => {
            if ctx.level != Level::Device {
                return err("thread builtins are not allowed in DSL kernels");
            }
            Ok(ScalarType::I32)
        }
        Expr::GlobalLoad { buf, idx } => {
            let dk = device_only(ctx, "global loads")?;
            let b = dk
                .buffer(buf)
                .ok_or_else(|| TypeError(format!("unknown buffer `{buf}`")))?;
            if !infer(idx, ctx)?.is_integer() {
                return err("buffer index must be an integer");
            }
            Ok(b.ty)
        }
        Expr::TexFetch { buf, coords } => {
            let dk = device_only(ctx, "texture fetches")?;
            let b = dk
                .buffer(buf)
                .ok_or_else(|| TypeError(format!("unknown texture `{buf}`")))?;
            match coords {
                TexCoords::Linear(i) => {
                    if !infer(i, ctx)?.is_integer() {
                        return err("texture index must be an integer");
                    }
                }
                TexCoords::Xy(x, y) => {
                    if !infer(x, ctx)?.is_integer() || !infer(y, ctx)?.is_integer() {
                        return err("texture coordinates must be integers");
                    }
                }
            }
            Ok(b.ty)
        }
        Expr::ConstLoad { buf, idx } => {
            let dk = device_only(ctx, "constant loads")?;
            dk.const_buffer(buf)
                .ok_or_else(|| TypeError(format!("unknown constant buffer `{buf}`")))?;
            if !infer(idx, ctx)?.is_integer() {
                return err("constant buffer index must be an integer");
            }
            Ok(ScalarType::F32)
        }
        Expr::SharedLoad { buf, y, x } => {
            let dk = device_only(ctx, "shared loads")?;
            let s = dk
                .shared
                .iter()
                .find(|s| &s.name == buf)
                .ok_or_else(|| TypeError(format!("unknown shared array `{buf}`")))?;
            if !infer(y, ctx)?.is_integer() || !infer(x, ctx)?.is_integer() {
                return err("shared indices must be integers");
            }
            Ok(s.ty)
        }
    }
}

fn device_only<'a>(ctx: &Ctx<'a>, what: &str) -> Result<&'a DeviceKernelDef, TypeError> {
    if ctx.level != Level::Device {
        return err(format!("{what} are not allowed in DSL kernels"));
    }
    Ok(ctx.device.expect("device ctx"))
}

fn check_stmts(stmts: &[Stmt], ctx: &mut Ctx<'_>) -> Result<(), TypeError> {
    for s in stmts {
        match s {
            Stmt::Decl { name, ty, init } => {
                if let Some(e) = init {
                    let t = infer(e, ctx)?;
                    promote(*ty, t).map_err(|_| {
                        TypeError(format!(
                            "cannot initialize `{name}: {ty}` from expression of type {t}"
                        ))
                    })?;
                }
                ctx.declare(name, *ty)?;
            }
            Stmt::Assign { target, value } => {
                let LValue::Var(name) = target;
                let vt = ctx
                    .lookup(name)
                    .ok_or_else(|| TypeError(format!("assignment to undeclared `{name}`")))?;
                let et = infer(value, ctx)?;
                promote(vt, et).map_err(|_| {
                    TypeError(format!(
                        "cannot assign expression of type {et} to `{name}: {vt}`"
                    ))
                })?;
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                if !infer(from, ctx)?.is_integer() || !infer(to, ctx)?.is_integer() {
                    return err("loop bounds must be integers");
                }
                ctx.push_scope();
                ctx.declare(var, ScalarType::I32)?;
                check_stmts(body, ctx)?;
                ctx.pop_scope();
            }
            Stmt::If { cond, then, els } => {
                if infer(cond, ctx)? != ScalarType::Bool {
                    return err("if condition must be bool");
                }
                // The branches are exclusive: each starts from the same
                // incoming output state, and `output()` in both arms is a
                // single write on every path.
                let output_before = ctx.output_seen;
                ctx.push_scope();
                check_stmts(then, ctx)?;
                ctx.pop_scope();
                let output_then = ctx.output_seen;
                ctx.output_seen = output_before;
                ctx.push_scope();
                check_stmts(els, ctx)?;
                ctx.pop_scope();
                ctx.output_seen |= output_then;
            }
            Stmt::Output(e) => {
                if ctx.level != Level::Dsl {
                    return err("output() is not allowed in device-level kernels");
                }
                if ctx.output_seen {
                    return err("output() written more than once");
                }
                infer(e, ctx)?;
                ctx.output_seen = true;
            }
            Stmt::GlobalStore { buf, idx, value } => {
                let dk = device_only(ctx, "global stores")?;
                if dk.buffer(buf).is_none() {
                    return err(format!("store to unknown buffer `{buf}`"));
                }
                if !infer(idx, ctx)?.is_integer() {
                    return err("store index must be an integer");
                }
                infer(value, ctx)?;
            }
            Stmt::SharedStore { buf, y, x, value } => {
                let dk = device_only(ctx, "shared stores")?;
                if !dk.shared.iter().any(|s| &s.name == buf) {
                    return err(format!("store to unknown shared array `{buf}`"));
                }
                if !infer(y, ctx)?.is_integer() || !infer(x, ctx)?.is_integer() {
                    return err("shared store indices must be integers");
                }
                infer(value, ctx)?;
            }
            Stmt::Barrier => {
                if ctx.level != Level::Device {
                    return err("barriers are not allowed in DSL kernels");
                }
            }
            Stmt::Return | Stmt::Comment(_) => {}
        }
    }
    Ok(())
}

/// Check a DSL-level kernel: declarations before use, consistent types, no
/// device-level nodes, and at least one `output()` on some path.
pub fn check_dsl(kernel: &KernelDef) -> Result<(), TypeError> {
    let mut ctx = Ctx {
        level: Level::Dsl,
        vars: vec![HashMap::new()],
        kernel: Some(kernel),
        device: None,
        output_seen: false,
    };
    for p in &kernel.params {
        ctx.declare(&p.name, p.ty)?;
    }
    check_stmts(&kernel.body, &mut ctx)?;
    if !ctx.output_seen {
        return err("kernel never writes output()");
    }
    Ok(())
}

/// Check a device-level kernel: no DSL nodes, all buffer/shared/constant
/// references resolve, consistent types.
pub fn check_device(kernel: &DeviceKernelDef) -> Result<(), TypeError> {
    let mut ctx = Ctx {
        level: Level::Device,
        vars: vec![HashMap::new()],
        kernel: None,
        device: Some(kernel),
        output_seen: false,
    };
    for p in &kernel.scalars {
        ctx.declare(&p.name, p.ty)?;
    }
    check_stmts(&kernel.body, &mut ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessorDecl, MaskDecl, ParamDecl};

    fn kernel_with_body(body: Vec<Stmt>) -> KernelDef {
        KernelDef {
            name: "k".into(),
            pixel: ScalarType::F32,
            params: vec![ParamDecl {
                name: "sigma".into(),
                ty: ScalarType::I32,
            }],
            accessors: vec![AccessorDecl {
                name: "IN".into(),
                ty: ScalarType::F32,
            }],
            masks: vec![MaskDecl {
                name: "M".into(),
                width: 3,
                height: 3,
                coeffs: None,
            }],
            body,
        }
    }

    #[test]
    fn valid_kernel_passes() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::input_center("IN"))]);
        assert!(check_dsl(&k).is_ok());
    }

    #[test]
    fn undeclared_variable_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::var("ghost"))]);
        let e = check_dsl(&k).unwrap_err();
        assert!(e.0.contains("undeclared"), "{e}");
    }

    #[test]
    fn unknown_accessor_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::input_center("NOPE"))]);
        assert!(check_dsl(&k).unwrap_err().0.contains("unknown accessor"));
    }

    #[test]
    fn unknown_mask_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::mask_at(
            "NOPE",
            Expr::int(0),
            Expr::int(0),
        ))]);
        assert!(check_dsl(&k).unwrap_err().0.contains("unknown mask"));
    }

    #[test]
    fn float_accessor_offset_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::input_at(
            "IN",
            Expr::float(1.5),
            Expr::int(0),
        ))]);
        assert!(check_dsl(&k).unwrap_err().0.contains("integer"));
    }

    #[test]
    fn missing_output_rejected() {
        let k = kernel_with_body(vec![Stmt::Decl {
            name: "v".into(),
            ty: ScalarType::F32,
            init: Some(Expr::float(0.0)),
        }]);
        assert!(check_dsl(&k).unwrap_err().0.contains("output"));
    }

    #[test]
    fn double_output_rejected() {
        let k = kernel_with_body(vec![
            Stmt::Output(Expr::input_center("IN")),
            Stmt::Output(Expr::float(0.0)),
        ]);
        let e = check_dsl(&k).unwrap_err();
        assert!(e.0.contains("more than once"), "{e}");
    }

    #[test]
    fn bool_init_of_float_rejected() {
        let k = kernel_with_body(vec![
            Stmt::Decl {
                name: "v".into(),
                ty: ScalarType::F32,
                init: Some(Expr::ImmBool(true)),
            },
            Stmt::Output(Expr::float(0.0)),
        ]);
        let e = check_dsl(&k).unwrap_err();
        assert!(e.0.contains("cannot initialize"), "{e}");
    }

    #[test]
    fn dsl_nodes_rejected_in_device_kernel() {
        use crate::kernel::*;
        let dk = DeviceKernelDef {
            name: "k".into(),
            buffers: vec![BufferParam {
                name: "OUT".into(),
                ty: ScalarType::F32,
                access: BufferAccess::WriteOnly,
                space: MemorySpace::Global,
                address_mode: AddressMode::None,
            }],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body: vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::input_center("IN"),
            }],
        };
        let e = check_device(&dk).unwrap_err();
        assert!(e.0.contains("not allowed"), "{e}");
    }

    #[test]
    fn device_nodes_rejected_in_dsl() {
        let k = kernel_with_body(vec![Stmt::Barrier, Stmt::Output(Expr::input_center("IN"))]);
        assert!(check_dsl(&k).unwrap_err().0.contains("not allowed"));
        let k = kernel_with_body(vec![Stmt::Output(
            Expr::Builtin(crate::expr::Builtin::ThreadIdxX).cast(ScalarType::F32),
        )]);
        assert!(check_dsl(&k).unwrap_err().0.contains("not allowed"));
    }

    #[test]
    fn loop_variable_scoped_to_loop() {
        let k = kernel_with_body(vec![
            Stmt::For {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(3),
                body: vec![],
            },
            // `i` is out of scope here.
            Stmt::Output(Expr::var("i").cast(ScalarType::F32)),
        ]);
        assert!(check_dsl(&k).unwrap_err().0.contains("undeclared"));
    }

    #[test]
    fn redeclaration_in_same_scope_rejected() {
        let k = kernel_with_body(vec![
            Stmt::Decl {
                name: "v".into(),
                ty: ScalarType::F32,
                init: None,
            },
            Stmt::Decl {
                name: "v".into(),
                ty: ScalarType::F32,
                init: None,
            },
            Stmt::Output(Expr::float(0.0)),
        ]);
        assert!(check_dsl(&k).unwrap_err().0.contains("redeclared"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        let k = kernel_with_body(vec![
            Stmt::Decl {
                name: "v".into(),
                ty: ScalarType::F32,
                init: Some(Expr::float(1.0)),
            },
            Stmt::For {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(1),
                body: vec![Stmt::Decl {
                    name: "v".into(),
                    ty: ScalarType::I32,
                    init: Some(Expr::int(0)),
                }],
            },
            Stmt::Output(Expr::var("v")),
        ]);
        assert!(check_dsl(&k).is_ok());
    }

    #[test]
    fn rem_on_floats_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::float(1.0).rem(Expr::float(2.0)))]);
        assert!(check_dsl(&k).unwrap_err().0.contains("integer"));
    }

    #[test]
    fn bool_arithmetic_rejected() {
        let k = kernel_with_body(vec![Stmt::Output(Expr::ImmBool(true) + Expr::float(1.0))]);
        assert!(check_dsl(&k).is_err());
    }

    #[test]
    fn if_condition_must_be_bool() {
        let k = kernel_with_body(vec![
            Stmt::If {
                cond: Expr::int(1),
                then: vec![],
                els: vec![],
            },
            Stmt::Output(Expr::float(0.0)),
        ]);
        assert!(check_dsl(&k).unwrap_err().0.contains("bool"));
    }

    #[test]
    fn device_kernel_checks_buffers() {
        use crate::kernel::*;
        let dk = DeviceKernelDef {
            name: "k".into(),
            buffers: vec![BufferParam {
                name: "OUT".into(),
                ty: ScalarType::F32,
                access: BufferAccess::WriteOnly,
                space: MemorySpace::Global,
                address_mode: AddressMode::None,
            }],
            scalars: vec![ParamDecl {
                name: "stride".into(),
                ty: ScalarType::I32,
            }],
            const_buffers: vec![],
            shared: vec![],
            body: vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::Builtin(crate::expr::Builtin::ThreadIdxX),
                value: Expr::float(1.0),
            }],
        };
        assert!(check_device(&dk).is_ok());
        // Unknown buffer.
        let mut bad = dk.clone();
        bad.body = vec![Stmt::GlobalStore {
            buf: "NOPE".into(),
            idx: Expr::int(0),
            value: Expr::float(1.0),
        }];
        assert!(check_device(&bad).unwrap_err().0.contains("unknown buffer"));
        // DSL node in device kernel.
        let mut bad = dk;
        bad.body = vec![Stmt::Output(Expr::float(1.0))];
        assert!(check_device(&bad).unwrap_err().0.contains("not allowed"));
    }
}
