//! Scalar types and compile-time constants.

use std::fmt;

/// The scalar types the kernel IR supports. These correspond to the C
/// types the generated CUDA/OpenCL uses; vector types (`float4`) only
/// appear at the codegen boundary and are not first-class in the IR.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// `bool` — condition results.
    Bool,
    /// `int` — 32-bit signed integer (indices, loop counters).
    I32,
    /// `unsigned int` — 32-bit unsigned integer (dimensions, strides).
    U32,
    /// `float` — 32-bit IEEE float (pixel arithmetic).
    F32,
}

impl ScalarType {
    /// The C spelling of the type in generated code.
    pub fn c_name(self) -> &'static str {
        match self {
            ScalarType::Bool => "bool",
            ScalarType::I32 => "int",
            ScalarType::U32 => "unsigned int",
            ScalarType::F32 => "float",
        }
    }

    /// Whether the type is an integer (signed or unsigned).
    pub fn is_integer(self) -> bool {
        matches!(self, ScalarType::I32 | ScalarType::U32)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A compile-time constant value, produced by constant evaluation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Const {
    /// Boolean constant.
    Bool(bool),
    /// Integer constant (stored widened; both I32 and U32 land here).
    Int(i64),
    /// Float constant.
    Float(f32),
}

impl Const {
    /// The scalar type this constant carries.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            Const::Bool(_) => ScalarType::Bool,
            Const::Int(_) => ScalarType::I32,
            Const::Float(_) => ScalarType::F32,
        }
    }

    /// Interpret as `f32`, widening integers.
    pub fn as_f32(self) -> f32 {
        match self {
            Const::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            Const::Int(i) => i as f32,
            Const::Float(f) => f,
        }
    }

    /// Interpret as `i64`, truncating floats toward zero (C semantics).
    pub fn as_i64(self) -> i64 {
        match self {
            Const::Bool(b) => b as i64,
            Const::Int(i) => i,
            Const::Float(f) => f as i64,
        }
    }

    /// Interpret as a boolean (C truthiness: nonzero is true).
    pub fn as_bool(self) -> bool {
        match self {
            Const::Bool(b) => b,
            Const::Int(i) => i != 0,
            Const::Float(f) => f != 0.0,
        }
    }

    /// Whether the constant is exactly integer-valued (used by folding to
    /// decide when `Float` can participate in index arithmetic).
    pub fn is_integral(self) -> bool {
        match self {
            Const::Bool(_) | Const::Int(_) => true,
            Const::Float(f) => f.fract() == 0.0,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Bool(b) => write!(f, "{b}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e7 {
                    write!(f, "{v:.1}f")
                } else {
                    write!(f, "{v}f")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_names() {
        assert_eq!(ScalarType::F32.c_name(), "float");
        assert_eq!(ScalarType::I32.c_name(), "int");
        assert_eq!(ScalarType::U32.c_name(), "unsigned int");
        assert_eq!(ScalarType::Bool.c_name(), "bool");
    }

    #[test]
    fn integer_predicate() {
        assert!(ScalarType::I32.is_integer());
        assert!(ScalarType::U32.is_integer());
        assert!(!ScalarType::F32.is_integer());
        assert!(!ScalarType::Bool.is_integer());
    }

    #[test]
    fn const_conversions() {
        assert_eq!(Const::Int(3).as_f32(), 3.0);
        assert_eq!(Const::Float(2.9).as_i64(), 2); // C truncation
        assert_eq!(Const::Float(-2.9).as_i64(), -2);
        assert!(Const::Int(1).as_bool());
        assert!(!Const::Float(0.0).as_bool());
        assert!(Const::Bool(true).as_bool());
        assert_eq!(Const::Bool(true).as_f32(), 1.0);
    }

    #[test]
    fn integral_detection() {
        assert!(Const::Float(4.0).is_integral());
        assert!(!Const::Float(4.5).is_integral());
        assert!(Const::Int(-7).is_integral());
    }

    #[test]
    fn display_formats_floats_with_suffix() {
        assert_eq!(Const::Float(1.0).to_string(), "1.0f");
        assert_eq!(Const::Int(42).to_string(), "42");
        assert_eq!(Const::Bool(false).to_string(), "false");
    }
}
