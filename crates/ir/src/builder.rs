//! Ergonomic construction of DSL-level kernels.
//!
//! The builder plays the role of the C++ class syntax in the paper's
//! Listing 1: deriving from `Kernel`, declaring accessors / masks /
//! parameters in the constructor, and writing the `kernel()` body. A
//! Rust-side filter is a function that drives a [`KernelBuilder`] and
//! returns the finished [`KernelDef`].
//!
//! ```
//! use hipacc_ir::builder::KernelBuilder;
//! use hipacc_ir::{Expr, ScalarType};
//!
//! // output() = 0.25f * (Input(-1,0) + Input(1,0) + Input(0,-1) + Input(0,1));
//! let mut b = KernelBuilder::new("cross_blur", ScalarType::F32);
//! let input = b.accessor("Input", ScalarType::F32);
//! let sum = b.read(&input, -1, 0) + b.read(&input, 1, 0)
//!     + b.read(&input, 0, -1) + b.read(&input, 0, 1);
//! b.output(Expr::float(0.25) * sum);
//! let kernel = b.finish();
//! assert_eq!(kernel.accessors.len(), 1);
//! ```

use crate::expr::Expr;
use crate::kernel::{AccessorDecl, KernelDef, MaskDecl, ParamDecl};
use crate::stmt::{LValue, Stmt};
use crate::ty::ScalarType;

/// Handle to a declared accessor.
#[derive(Clone, Debug)]
pub struct AccessorHandle {
    name: String,
}

/// Handle to a declared mask.
#[derive(Clone, Debug)]
pub struct MaskHandle {
    name: String,
}

/// Handle to a declared local variable.
#[derive(Clone, Debug)]
pub struct VarHandle {
    name: String,
}

impl VarHandle {
    /// Reference the variable in an expression.
    pub fn get(&self) -> Expr {
        Expr::var(self.name.clone())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Builder for DSL-level kernels.
pub struct KernelBuilder {
    name: String,
    pixel: ScalarType,
    params: Vec<ParamDecl>,
    accessors: Vec<AccessorDecl>,
    masks: Vec<MaskDecl>,
    /// Stack of open statement lists: the innermost open loop/branch body.
    scopes: Vec<Vec<Stmt>>,
    fresh: u32,
}

impl KernelBuilder {
    /// Start a new kernel.
    pub fn new(name: impl Into<String>, pixel: ScalarType) -> Self {
        Self {
            name: name.into(),
            pixel,
            params: Vec::new(),
            accessors: Vec::new(),
            masks: Vec::new(),
            scopes: vec![Vec::new()],
            fresh: 0,
        }
    }

    /// Declare an input accessor (the paper's `addAccessor(&Input)`).
    pub fn accessor(&mut self, name: impl Into<String>, ty: ScalarType) -> AccessorHandle {
        let name = name.into();
        assert!(
            self.accessors.iter().all(|a| a.name != name),
            "duplicate accessor {name}"
        );
        self.accessors.push(AccessorDecl {
            name: name.clone(),
            ty,
        });
        AccessorHandle { name }
    }

    /// Declare a filter mask with compile-time constant coefficients.
    ///
    /// # Panics
    /// Panics on even window sizes or mismatched coefficient counts.
    pub fn mask_const(
        &mut self,
        name: impl Into<String>,
        width: u32,
        height: u32,
        coeffs: Vec<f32>,
    ) -> MaskHandle {
        assert!(width % 2 == 1 && height % 2 == 1, "mask sizes must be odd");
        assert_eq!(coeffs.len(), (width * height) as usize);
        let name = name.into();
        self.masks.push(MaskDecl {
            name: name.clone(),
            width,
            height,
            coeffs: Some(coeffs),
        });
        MaskHandle { name }
    }

    /// Declare a filter mask whose coefficients are uploaded at run time.
    pub fn mask_dynamic(&mut self, name: impl Into<String>, width: u32, height: u32) -> MaskHandle {
        assert!(width % 2 == 1 && height % 2 == 1, "mask sizes must be odd");
        let name = name.into();
        self.masks.push(MaskDecl {
            name: name.clone(),
            width,
            height,
            coeffs: None,
        });
        MaskHandle { name }
    }

    /// Declare a scalar kernel parameter.
    pub fn param(&mut self, name: impl Into<String>, ty: ScalarType) -> VarHandle {
        let name = name.into();
        self.params.push(ParamDecl {
            name: name.clone(),
            ty,
        });
        VarHandle { name }
    }

    /// `Input(dx, dy)` with constant offsets.
    pub fn read(&self, acc: &AccessorHandle, dx: i32, dy: i32) -> Expr {
        Expr::input_at(acc.name.clone(), Expr::int(dx as i64), Expr::int(dy as i64))
    }

    /// `Input(dx, dy)` with expression offsets (loop variables).
    pub fn read_at(&self, acc: &AccessorHandle, dx: Expr, dy: Expr) -> Expr {
        Expr::input_at(acc.name.clone(), dx, dy)
    }

    /// `Input()` — the center pixel.
    pub fn read_center(&self, acc: &AccessorHandle) -> Expr {
        Expr::input_center(acc.name.clone())
    }

    /// `Mask(dx, dy)` with expression offsets.
    pub fn mask_at(&self, mask: &MaskHandle, dx: Expr, dy: Expr) -> Expr {
        Expr::mask_at(mask.name.clone(), dx, dy)
    }

    /// The `(width, height)` of a declared mask — used by the `convolve()`
    /// sugar to derive its loop bounds from the mask extent.
    pub fn mask_dims(&self, mask: &MaskHandle) -> (u32, u32) {
        let m = self
            .masks
            .iter()
            .find(|m| m.name == mask.name)
            .expect("mask declared on this builder");
        (m.width, m.height)
    }

    /// Declare and initialize a local variable.
    pub fn let_(&mut self, name: impl Into<String>, ty: ScalarType, init: Expr) -> VarHandle {
        let name = name.into();
        self.push(Stmt::Decl {
            name: name.clone(),
            ty,
            init: Some(init),
        });
        VarHandle { name }
    }

    /// Declare a fresh uniquely-named variable.
    pub fn let_fresh(&mut self, prefix: &str, ty: ScalarType, init: Expr) -> VarHandle {
        self.fresh += 1;
        let name = format!("{prefix}_{}", self.fresh);
        self.let_(name, ty, init)
    }

    /// `var = value;`
    pub fn assign(&mut self, var: &VarHandle, value: Expr) {
        self.push(Stmt::Assign {
            target: LValue::Var(var.name.clone()),
            value,
        });
    }

    /// `var += value;` (desugared to an assignment).
    pub fn add_assign(&mut self, var: &VarHandle, value: Expr) {
        self.assign(var, var.get() + value);
    }

    /// Open `for (int var = from; var <= to; ++var)`, run `body` to emit
    /// the loop body, close the loop. Returns the loop-variable handle
    /// inside the closure.
    pub fn for_inclusive(
        &mut self,
        var: impl Into<String>,
        from: Expr,
        to: Expr,
        body: impl FnOnce(&mut Self, &VarHandle),
    ) {
        let var = var.into();
        self.scopes.push(Vec::new());
        let handle = VarHandle { name: var.clone() };
        body(self, &handle);
        let stmts = self.scopes.pop().expect("scope imbalance");
        self.push(Stmt::For {
            var,
            from,
            to,
            body: stmts,
        });
    }

    /// Open an `if (cond) { … }` with no else branch.
    pub fn if_(&mut self, cond: Expr, then: impl FnOnce(&mut Self)) {
        self.scopes.push(Vec::new());
        then(self);
        let t = self.scopes.pop().expect("scope imbalance");
        self.push(Stmt::If {
            cond,
            then: t,
            els: Vec::new(),
        });
    }

    /// Open an `if (cond) { … } else { … }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        self.scopes.push(Vec::new());
        then(self);
        let t = self.scopes.pop().expect("scope imbalance");
        self.scopes.push(Vec::new());
        els(self);
        let e = self.scopes.pop().expect("scope imbalance");
        self.push(Stmt::If {
            cond,
            then: t,
            els: e,
        });
    }

    /// `output() = value;`
    pub fn output(&mut self, value: Expr) {
        self.push(Stmt::Output(value));
    }

    /// Insert a comment that survives into generated code.
    pub fn comment(&mut self, text: impl Into<String>) {
        self.push(Stmt::Comment(text.into()));
    }

    fn push(&mut self, s: Stmt) {
        self.scopes
            .last_mut()
            .expect("builder already finished")
            .push(s);
    }

    /// Finish and return the kernel definition.
    ///
    /// # Panics
    /// Panics if loops/branches were left open or the kernel fails the
    /// DSL-level type check.
    pub fn finish(mut self) -> KernelDef {
        assert_eq!(self.scopes.len(), 1, "unclosed loop or branch");
        let body = self.scopes.pop().unwrap();
        let def = KernelDef {
            name: self.name,
            pixel: self.pixel,
            params: self.params,
            accessors: self.accessors,
            masks: self.masks,
            body,
        };
        if let Err(e) = crate::typecheck::check_dsl(&def) {
            panic!("kernel {:?} failed type check: {e}", def.name);
        }
        def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the bilateral filter exactly as the paper's Listing 5 (using
    /// a precalculated closeness Mask).
    fn bilateral_listing5(sigma_d: u32) -> KernelDef {
        let size = 4 * sigma_d + 1;
        let coeffs = vec![0.5f32; (size * size) as usize];
        let mut b = KernelBuilder::new("BilateralFilter", ScalarType::F32);
        let input = b.accessor("Input", ScalarType::F32);
        let cmask = b.mask_const("CMask", size, size, coeffs);
        let sigma_r = b.param("sigma_r", ScalarType::I32);

        let c_r = b.let_(
            "c_r",
            ScalarType::F32,
            Expr::float(1.0)
                / (Expr::float(2.0)
                    * sigma_r.get().cast(ScalarType::F32)
                    * sigma_r.get().cast(ScalarType::F32)),
        );
        let d = b.let_("d", ScalarType::F32, Expr::float(0.0));
        let p = b.let_("p", ScalarType::F32, Expr::float(0.0));
        let half = (2 * sigma_d) as i64;
        b.for_inclusive("yf", Expr::int(-half), Expr::int(half), |b, yf| {
            b.for_inclusive("xf", Expr::int(-half), Expr::int(half), |b, xf| {
                let diff = b.let_(
                    "diff",
                    ScalarType::F32,
                    b.read_at(&input, xf.get(), yf.get()) - b.read_center(&input),
                );
                let s = b.let_(
                    "s",
                    ScalarType::F32,
                    Expr::exp(-(c_r.get() * diff.get() * diff.get())),
                );
                let c = b.let_("c", ScalarType::F32, b.mask_at(&cmask, xf.get(), yf.get()));
                b.add_assign(&d, s.get() * c.get());
                b.add_assign(
                    &p,
                    s.get() * c.get() * b.read_at(&input, xf.get(), yf.get()),
                );
            });
        });
        b.output(p.get() / d.get());
        b.finish()
    }

    #[test]
    fn builder_produces_wellformed_bilateral() {
        let k = bilateral_listing5(3);
        assert_eq!(k.name, "BilateralFilter");
        assert_eq!(k.accessors.len(), 1);
        assert_eq!(k.masks.len(), 1);
        assert_eq!(k.masks[0].width, 13);
        // Body: 3 decls, 1 for, 1 output.
        assert_eq!(k.body.len(), 5);
        match &k.body[3] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "yf");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected outer loop, got {other:?}"),
        }
    }

    #[test]
    fn dsl_loc_is_compact() {
        // The paper quotes 16 DSL lines vs 317 generated CUDA lines for the
        // bilateral kernel; our pretty-printed body should be of the same
        // order (well under 30 lines).
        let k = bilateral_listing5(3);
        let loc = k.dsl_loc();
        assert!(loc < 30, "DSL body unexpectedly long: {loc} lines");
    }

    #[test]
    #[should_panic(expected = "duplicate accessor")]
    fn duplicate_accessor_rejected() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        b.accessor("IN", ScalarType::F32);
        b.accessor("IN", ScalarType::F32);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_mask_rejected() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        b.mask_const("M", 4, 3, vec![0.0; 12]);
    }

    #[test]
    fn if_else_builds_both_branches() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let v = b.let_("v", ScalarType::F32, b.read_center(&input));
        b.if_else(
            v.get().gt(Expr::float(0.5)),
            |b| b.output(Expr::float(1.0)),
            |b| b.output(Expr::float(0.0)),
        );
        let k = b.finish();
        match &k.body[1] {
            Stmt::If { then, els, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn fresh_variables_are_unique() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        let a = b.let_fresh("t", ScalarType::F32, Expr::float(0.0));
        let c = b.let_fresh("t", ScalarType::F32, Expr::float(0.0));
        assert_ne!(a.name(), c.name());
        b.output(a.get() + c.get());
        b.finish();
    }
}
