//! Pretty-printing of IR in an abstract C-like syntax.
//!
//! This printer is backend-neutral (builtins print in CUDA spelling, math
//! functions unsuffixed); the real CUDA/OpenCL emitters live in
//! `hipacc-codegen` and reuse [`expr_to_string`] with backend-specific
//! renderers for the memory nodes.

use crate::expr::{Builtin, Expr, TexCoords, UnOp};
use crate::stmt::{LValue, Stmt};

/// How to render the backend-specific leaf nodes of an expression. The
/// neutral printer and both codegen backends provide implementations.
pub trait LeafRenderer {
    /// Render a thread/block builtin.
    fn builtin(&self, b: Builtin) -> String;
    /// Render a math-function name for the given argument renderings.
    fn math_call(&self, f: crate::expr::MathFn, args: &[String]) -> String;
    /// Render a global load `buf[idx]`.
    fn global_load(&self, buf: &str, idx: &str) -> String;
    /// Render a texture fetch.
    fn tex_fetch(&self, buf: &str, coords: &RenderedCoords) -> String;
    /// Render a constant-memory load.
    fn const_load(&self, buf: &str, idx: &str) -> String;
    /// Render a shared-memory load.
    fn shared_load(&self, buf: &str, y: &str, x: &str) -> String;
}

/// Rendered texture coordinates.
pub enum RenderedCoords {
    /// Linear element index.
    Linear(String),
    /// 2-D coordinates.
    Xy(String, String),
}

/// The neutral renderer used for diagnostics and DSL pretty-printing.
pub struct NeutralRenderer;

impl LeafRenderer for NeutralRenderer {
    fn builtin(&self, b: Builtin) -> String {
        b.cuda_name().to_string()
    }
    fn math_call(&self, f: crate::expr::MathFn, args: &[String]) -> String {
        format!("{}({})", f.name(), args.join(", "))
    }
    fn global_load(&self, buf: &str, idx: &str) -> String {
        format!("{buf}[{idx}]")
    }
    fn tex_fetch(&self, buf: &str, coords: &RenderedCoords) -> String {
        match coords {
            RenderedCoords::Linear(i) => format!("tex({buf}, {i})"),
            RenderedCoords::Xy(x, y) => format!("tex2({buf}, {x}, {y})"),
        }
    }
    fn const_load(&self, buf: &str, idx: &str) -> String {
        format!("{buf}[{idx}]")
    }
    fn shared_load(&self, buf: &str, y: &str, x: &str) -> String {
        format!("{buf}[{y}][{x}]")
    }
}

/// Operator precedence for parenthesization.
fn precedence(e: &Expr) -> u8 {
    use crate::expr::BinOp::*;
    match e {
        Expr::Binary(op, ..) => match op {
            Or => 1,
            And => 2,
            Eq | Ne => 3,
            Lt | Le | Gt | Ge => 4,
            Add | Sub => 5,
            Mul | Div | Rem => 6,
        },
        Expr::Select(..) => 0,
        Expr::Unary(..) | Expr::Cast(..) => 7,
        _ => 8,
    }
}

/// Render an expression with a leaf renderer.
pub fn expr_to_string(e: &Expr, r: &dyn LeafRenderer) -> String {
    fn child(e: &Expr, parent_prec: u8, r: &dyn LeafRenderer) -> String {
        let s = expr_to_string(e, r);
        if precedence(e) < parent_prec {
            format!("({s})")
        } else {
            s
        }
    }
    match e {
        Expr::ImmInt(i) => i.to_string(),
        Expr::ImmFloat(f) => crate::ty::Const::Float(*f).to_string(),
        Expr::ImmBool(b) => b.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Unary(op, a) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", child(a, 7, r))
        }
        Expr::Binary(op, a, b) => {
            let p = precedence(e);
            format!(
                "{} {} {}",
                child(a, p, r),
                op.c_symbol(),
                child(b, p + 1, r)
            )
        }
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(|a| expr_to_string(a, r)).collect();
            r.math_call(*f, &rendered)
        }
        Expr::Cast(ty, a) => format!("({}){}", ty.c_name(), child(a, 7, r)),
        Expr::Select(c, a, b) => format!(
            "{} ? {} : {}",
            child(c, 1, r),
            child(a, 1, r),
            child(b, 1, r)
        ),
        Expr::InputAt { acc, dx, dy } => {
            let dx = expr_to_string(dx, r);
            let dy = expr_to_string(dy, r);
            if dx == "0" && dy == "0" {
                format!("{acc}()")
            } else {
                format!("{acc}({dx}, {dy})")
            }
        }
        Expr::MaskAt { mask, dx, dy } => format!(
            "{mask}({}, {})",
            expr_to_string(dx, r),
            expr_to_string(dy, r)
        ),
        Expr::OutputX => "x()".to_string(),
        Expr::OutputY => "y()".to_string(),
        Expr::Builtin(b) => r.builtin(*b),
        Expr::GlobalLoad { buf, idx } => r.global_load(buf, &expr_to_string(idx, r)),
        Expr::TexFetch { buf, coords } => {
            let rc = match coords {
                TexCoords::Linear(i) => RenderedCoords::Linear(expr_to_string(i, r)),
                TexCoords::Xy(x, y) => {
                    RenderedCoords::Xy(expr_to_string(x, r), expr_to_string(y, r))
                }
            };
            r.tex_fetch(buf, &rc)
        }
        Expr::ConstLoad { buf, idx } => r.const_load(buf, &expr_to_string(idx, r)),
        Expr::SharedLoad { buf, y, x } => {
            r.shared_load(buf, &expr_to_string(y, r), &expr_to_string(x, r))
        }
    }
}

/// Emit a statement list with a leaf renderer into `out`, indented by
/// `indent` levels of four spaces.
pub fn emit_stmts(stmts: &[Stmt], r: &dyn LeafRenderer, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Decl { name, ty, init } => match init {
                Some(e) => out.push_str(&format!(
                    "{pad}{} {name} = {};\n",
                    ty.c_name(),
                    expr_to_string(e, r)
                )),
                None => out.push_str(&format!("{pad}{} {name};\n", ty.c_name())),
            },
            Stmt::Assign { target, value } => {
                let LValue::Var(name) = target;
                out.push_str(&format!("{pad}{name} = {};\n", expr_to_string(value, r)));
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                out.push_str(&format!(
                    "{pad}for (int {var} = {}; {var} <= {}; ++{var}) {{\n",
                    expr_to_string(from, r),
                    expr_to_string(to, r)
                ));
                emit_stmts(body, r, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::If { cond, then, els } => {
                out.push_str(&format!("{pad}if ({}) {{\n", expr_to_string(cond, r)));
                emit_stmts(then, r, indent + 1, out);
                if els.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    emit_stmts(els, r, indent + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::Output(e) => {
                out.push_str(&format!("{pad}output() = {};\n", expr_to_string(e, r)));
            }
            Stmt::GlobalStore { buf, idx, value } => {
                out.push_str(&format!(
                    "{pad}{buf}[{}] = {};\n",
                    expr_to_string(idx, r),
                    expr_to_string(value, r)
                ));
            }
            Stmt::SharedStore { buf, y, x, value } => {
                out.push_str(&format!(
                    "{pad}{buf}[{}][{}] = {};\n",
                    expr_to_string(y, r),
                    expr_to_string(x, r),
                    expr_to_string(value, r)
                ));
            }
            Stmt::Barrier => out.push_str(&format!("{pad}__barrier();\n")),
            Stmt::Return => out.push_str(&format!("{pad}return;\n")),
            Stmt::Comment(c) => out.push_str(&format!("{pad}// {c}\n")),
        }
    }
}

/// Pretty-print a statement list in the neutral syntax.
pub fn pretty(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    emit_stmts(stmts, &NeutralRenderer, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::ScalarType;

    #[test]
    fn precedence_parenthesizes_correctly() {
        // (a + b) * c needs parens; a + b * c does not.
        let e = (Expr::var("a") + Expr::var("b")) * Expr::var("c");
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "(a + b) * c");
        let e = Expr::var("a") + Expr::var("b") * Expr::var("c");
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "a + b * c");
    }

    #[test]
    fn subtraction_is_left_associative() {
        // a - (b - c) must keep its parens; (a - b) - c must not.
        let e = Expr::var("a") - (Expr::var("b") - Expr::var("c"));
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "a - (b - c)");
        let e = (Expr::var("a") - Expr::var("b")) - Expr::var("c");
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "a - b - c");
    }

    #[test]
    fn input_center_prints_empty_parens() {
        let e = Expr::input_center("Input");
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "Input()");
        let e = Expr::input_at("Input", Expr::var("xf"), Expr::var("yf"));
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "Input(xf, yf)");
    }

    #[test]
    fn float_literals_keep_suffix() {
        let e = Expr::float(1.0) / Expr::float(2.0);
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "1.0f / 2.0f");
    }

    #[test]
    fn statements_render_as_c() {
        let stmts = vec![
            Stmt::Decl {
                name: "d".into(),
                ty: ScalarType::F32,
                init: Some(Expr::float(0.0)),
            },
            Stmt::For {
                var: "i".into(),
                from: Expr::int(-1),
                to: Expr::int(1),
                body: vec![Stmt::Assign {
                    target: LValue::Var("d".into()),
                    value: Expr::var("d") + Expr::var("i").cast(ScalarType::F32),
                }],
            },
            Stmt::Output(Expr::var("d")),
        ];
        let text = pretty(&stmts);
        assert_eq!(
            text,
            "float d = 0.0f;\n\
             for (int i = -1; i <= 1; ++i) {\n    \
                 d = d + (float)i;\n\
             }\n\
             output() = d;\n"
        );
    }

    #[test]
    fn select_renders_ternary() {
        let e = Expr::select(
            Expr::var("x").lt(Expr::int(0)),
            Expr::int(0),
            Expr::var("x"),
        );
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "x < 0 ? 0 : x");
    }

    #[test]
    fn cast_and_negation() {
        let e = -(Expr::var("c") * Expr::var("d"));
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "-(c * d)");
        let e = Expr::var("i").cast(ScalarType::F32) * Expr::var("j").cast(ScalarType::F32);
        assert_eq!(expr_to_string(&e, &NeutralRenderer), "(float)i * (float)j");
    }
}
