//! Kernel definitions at both IR levels.
//!
//! [`KernelDef`] is the DSL-level artifact: the body of the programmer's
//! `kernel()` method plus declarations of the accessors, masks and scalar
//! parameters it uses — exactly the information the paper's compiler gets
//! from the Clang AST and the framework's built-in classes.
//!
//! [`DeviceKernelDef`] is the device-level artifact the source-to-source
//! compiler produces: explicit buffer parameters with memory spaces,
//! scratchpad declarations, and a body written against thread/block
//! builtins. Both the CUDA/OpenCL text emitters and the functional
//! simulator consume it, which is what lets us *execute* the generated
//! code and check it against the CPU reference.

use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::ty::ScalarType;

/// A scalar kernel parameter (e.g. `sigma_d`, `sigma_r`).
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: ScalarType,
}

/// An input-image accessor declared on a DSL kernel. Boundary conditions
/// and window sizes are attached later (they are *access metadata* carried
/// by the framework objects, not by the kernel body).
#[derive(Clone, Debug, PartialEq)]
pub struct AccessorDecl {
    /// Accessor name as referenced by `Expr::InputAt`.
    pub name: String,
    /// Element type of the underlying image.
    pub ty: ScalarType,
}

/// A filter mask declared on a DSL kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct MaskDecl {
    /// Mask name as referenced by `Expr::MaskAt`.
    pub name: String,
    /// Window width (odd).
    pub width: u32,
    /// Window height (odd).
    pub height: u32,
    /// Row-major coefficients when known at compile time (static constant
    /// memory); `None` for dynamically initialized masks.
    pub coeffs: Option<Vec<f32>>,
}

impl MaskDecl {
    /// Horizontal half-window.
    pub fn half_w(&self) -> i32 {
        (self.width / 2) as i32
    }

    /// Vertical half-window.
    pub fn half_h(&self) -> i32 {
        (self.height / 2) as i32
    }
}

/// A DSL-level kernel: the paper's `Kernel` subclass after "parsing".
#[derive(Clone, Debug, PartialEq)]
pub struct KernelDef {
    /// Kernel name (becomes the generated function name).
    pub name: String,
    /// Output pixel type.
    pub pixel: ScalarType,
    /// Scalar parameters.
    pub params: Vec<ParamDecl>,
    /// Input accessors.
    pub accessors: Vec<AccessorDecl>,
    /// Filter masks.
    pub masks: Vec<MaskDecl>,
    /// The `kernel()` body.
    pub body: Vec<Stmt>,
}

impl KernelDef {
    /// Look up an accessor declaration by name.
    pub fn accessor(&self, name: &str) -> Option<&AccessorDecl> {
        self.accessors.iter().find(|a| a.name == name)
    }

    /// Look up a mask declaration by name.
    pub fn mask(&self, name: &str) -> Option<&MaskDecl> {
        self.masks.iter().find(|m| m.name == name)
    }

    /// Look up a scalar parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Source lines of the DSL body when pretty-printed — the paper's
    /// "16 lines of code" metric for Listing 5.
    pub fn dsl_loc(&self) -> usize {
        crate::display::pretty(&self.body).lines().count()
    }
}

/// How a device buffer parameter may be accessed; result of the paper's
/// read/write analysis, and the source of OpenCL's `read_only` /
/// `write_only` image attributes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BufferAccess {
    /// Only read by the kernel.
    ReadOnly,
    /// Only written by the kernel.
    WriteOnly,
    /// Both read and written.
    ReadWrite,
}

/// The memory path a device buffer is bound to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemorySpace {
    /// Plain global memory pointer.
    Global,
    /// Read through the texture path (CUDA linear texture / OpenCL image).
    Texture,
    /// Constant memory (broadcast-cached).
    Constant,
}

/// Hardware texture address mode, for the `+2DTex` / `ImgBH` variants where
/// boundary handling is delegated to the texture unit.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AddressMode {
    /// No hardware handling; coordinates must be in range.
    None,
    /// Hardware clamp-to-edge.
    Clamp,
    /// Hardware wrap/repeat.
    Repeat,
    /// Hardware constant border (OpenCL `CLK_ADDRESS_CLAMP`, border color).
    BorderConstant(f32),
}

/// A buffer parameter of a device kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct BufferParam {
    /// Buffer name as referenced by loads/stores in the body.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Read/write classification.
    pub access: BufferAccess,
    /// Bound memory path.
    pub space: MemorySpace,
    /// Hardware address mode (only meaningful for 2-D texture bindings).
    pub address_mode: AddressMode,
}

/// A scratchpad (shared/local memory) array declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedDecl {
    /// Array name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Number of rows (`SY + BSY` in Listing 7).
    pub rows: u32,
    /// Number of columns, including the +1 bank-conflict pad
    /// (`SX + BSX + 1`).
    pub cols: u32,
}

impl SharedDecl {
    /// Bytes of scratchpad this declaration consumes (4-byte elements; the
    /// IR only stages `float`/`int` tiles).
    pub fn bytes(&self) -> u32 {
        self.rows * self.cols * 4
    }
}

/// A constant-memory buffer holding filter-mask coefficients.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstBufferDecl {
    /// Buffer name as referenced by `Expr::ConstLoad`.
    pub name: String,
    /// Window width.
    pub width: u32,
    /// Window height.
    pub height: u32,
    /// Coefficients when statically initialized; `None` when the host
    /// uploads them at run time (`cudaMemcpyToSymbol`).
    pub data: Option<Vec<f32>>,
}

/// A device-level kernel: the product of source-to-source compilation.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceKernelDef {
    /// Kernel function name.
    pub name: String,
    /// Buffer parameters (inputs and output).
    pub buffers: Vec<BufferParam>,
    /// Scalar parameters (image geometry, filter parameters, region-dispatch
    /// constants).
    pub scalars: Vec<ParamDecl>,
    /// Constant-memory buffers.
    pub const_buffers: Vec<ConstBufferDecl>,
    /// Scratchpad arrays.
    pub shared: Vec<SharedDecl>,
    /// Kernel body (device level).
    pub body: Vec<Stmt>,
}

impl DeviceKernelDef {
    /// Total scratchpad bytes declared.
    pub fn shared_bytes(&self) -> u32 {
        self.shared.iter().map(SharedDecl::bytes).sum()
    }

    /// Find a buffer parameter by name.
    pub fn buffer(&self, name: &str) -> Option<&BufferParam> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// Find a constant buffer by name.
    pub fn const_buffer(&self, name: &str) -> Option<&ConstBufferDecl> {
        self.const_buffers.iter().find(|b| b.name == name)
    }

    /// Whether the body contains any barrier (implies scratchpad phases).
    pub fn has_barrier(&self) -> bool {
        let mut found = false;
        Stmt::visit_all(&self.body, &mut |s| {
            if matches!(s, Stmt::Barrier) {
                found = true;
            }
        });
        found
    }

    /// Collect the names of all buffers read via the texture path in the
    /// body (used by emitters to declare texture references/samplers).
    pub fn texture_reads(&self) -> Vec<String> {
        let mut names = Vec::new();
        Stmt::visit_exprs(&self.body, &mut |e| {
            if let Expr::TexFetch { buf, .. } = e {
                if !names.contains(buf) {
                    names.push(buf.clone());
                }
            }
        });
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_half_windows() {
        let m = MaskDecl {
            name: "M".into(),
            width: 13,
            height: 13,
            coeffs: None,
        };
        assert_eq!(m.half_w(), 6);
        assert_eq!(m.half_h(), 6);
    }

    #[test]
    fn shared_decl_bytes() {
        // Listing 7: [SY + BSY][SX + BSX + 1] floats.
        let s = SharedDecl {
            name: "_smemIN".into(),
            ty: ScalarType::F32,
            rows: 12 + 1,
            cols: 12 + 128 + 1,
        };
        assert_eq!(s.bytes(), 13 * 141 * 4);
    }

    #[test]
    fn device_kernel_lookup_helpers() {
        let dk = DeviceKernelDef {
            name: "k".into(),
            buffers: vec![BufferParam {
                name: "IN".into(),
                ty: ScalarType::F32,
                access: BufferAccess::ReadOnly,
                space: MemorySpace::Texture,
                address_mode: AddressMode::None,
            }],
            scalars: vec![],
            const_buffers: vec![ConstBufferDecl {
                name: "_constCM".into(),
                width: 3,
                height: 3,
                data: Some(vec![0.0; 9]),
            }],
            shared: vec![],
            body: vec![Stmt::Barrier],
        };
        assert!(dk.buffer("IN").is_some());
        assert!(dk.buffer("OUT").is_none());
        assert!(dk.const_buffer("_constCM").is_some());
        assert!(dk.has_barrier());
        assert_eq!(dk.shared_bytes(), 0);
    }

    #[test]
    fn texture_reads_deduplicates() {
        use crate::expr::TexCoords;
        let fetch = Expr::TexFetch {
            buf: "_texIN".into(),
            coords: TexCoords::Linear(Box::new(Expr::int(0))),
        };
        let dk = DeviceKernelDef {
            name: "k".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body: vec![
                Stmt::Output(fetch.clone() + fetch.clone()),
                Stmt::Output(fetch),
            ],
        };
        assert_eq!(dk.texture_reads(), vec!["_texIN".to_string()]);
    }
}
