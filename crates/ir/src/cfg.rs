//! Control-flow graph construction.
//!
//! Section IV-A of the paper: "a control-flow graph (CFG) of the
//! instructions in the kernel method is created and traversed" to perform
//! the read/write analysis. This module builds that CFG from the structured
//! statement list; [`crate::access`] traverses it.

use crate::stmt::Stmt;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A basic block: a maximal straight-line run of non-control statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The statements of the block (control statements never appear here;
    /// their conditions are recorded on the block that evaluates them).
    pub stmts: Vec<Stmt>,
    /// Condition expressions evaluated at the end of this block (loop
    /// bounds / branch conditions), kept for analyses that must see every
    /// evaluated expression.
    pub conditions: Vec<crate::expr::Expr>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Whether the block ends in a kernel return.
    pub terminates: bool,
}

/// A control-flow graph over kernel statements.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// The single exit block id.
    pub exit: BlockId,
}

impl Cfg {
    /// Build the CFG of a statement list.
    pub fn build(stmts: &[Stmt]) -> Cfg {
        let mut cfg = Cfg {
            blocks: vec![Block::default()],
            exit: 0,
        };
        let entry = 0;
        let last = cfg.lower_seq(stmts, entry);
        // Create a dedicated exit block.
        let exit = cfg.new_block();
        cfg.add_edge(last, exit);
        // Blocks that terminated with `return` also flow to exit.
        for b in 0..cfg.blocks.len() {
            if cfg.blocks[b].terminates && !cfg.blocks[b].succs.contains(&exit) {
                cfg.blocks[b].succs.push(exit);
            }
        }
        cfg.exit = exit;
        cfg
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn add_edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lower a statement sequence starting in `current`; returns the block
    /// that control falls out of.
    fn lower_seq(&mut self, stmts: &[Stmt], mut current: BlockId) -> BlockId {
        for s in stmts {
            match s {
                Stmt::If { cond, then, els } => {
                    self.blocks[current].conditions.push(cond.clone());
                    let then_entry = self.new_block();
                    let els_entry = self.new_block();
                    self.add_edge(current, then_entry);
                    self.add_edge(current, els_entry);
                    let then_exit = self.lower_seq(then, then_entry);
                    let els_exit = self.lower_seq(els, els_entry);
                    let join = self.new_block();
                    self.add_edge(then_exit, join);
                    self.add_edge(els_exit, join);
                    current = join;
                }
                Stmt::For { from, to, body, .. } => {
                    self.blocks[current].conditions.push(from.clone());
                    self.blocks[current].conditions.push(to.clone());
                    let header = self.new_block();
                    self.add_edge(current, header);
                    let body_entry = self.new_block();
                    self.add_edge(header, body_entry);
                    let body_exit = self.lower_seq(body, body_entry);
                    // Back edge and loop exit.
                    self.add_edge(body_exit, header);
                    let after = self.new_block();
                    self.add_edge(header, after);
                    current = after;
                }
                Stmt::Return => {
                    self.blocks[current].terminates = true;
                    // Statements after an unconditional return are dead;
                    // start a fresh unreachable block for them.
                    current = self.new_block();
                }
                other => self.blocks[current].stmts.push(other.clone()),
            }
        }
        current
    }

    /// Blocks reachable from the entry, in preorder.
    pub fn reachable(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            order.push(b);
            for &s in &self.blocks[b].succs {
                stack.push(s);
            }
        }
        order
    }

    /// Visit every statement and condition in reachable blocks — the
    /// paper's "traversal" primitive that the read/write analysis uses.
    pub fn visit_reachable(
        &self,
        mut on_stmt: impl FnMut(&Stmt),
        mut on_cond: impl FnMut(&crate::expr::Expr),
    ) {
        for b in self.reachable() {
            for s in &self.blocks[b].stmts {
                on_stmt(s);
            }
            for c in &self.blocks[b].conditions {
                on_cond(c);
            }
        }
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true: entry always exists).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ty::ScalarType;

    fn decl(name: &str) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty: ScalarType::F32,
            init: Some(Expr::float(0.0)),
        }
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let cfg = Cfg::build(&[decl("a"), decl("b")]);
        // Entry + exit.
        assert_eq!(cfg.len(), 2);
        assert_eq!(cfg.blocks[0].stmts.len(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_produces_diamond() {
        let cfg = Cfg::build(&[Stmt::If {
            cond: Expr::var("x").lt(Expr::int(0)),
            then: vec![decl("a")],
            els: vec![decl("b")],
        }]);
        // entry, then, else, join, exit.
        assert_eq!(cfg.len(), 5);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(cfg.blocks[0].conditions.len(), 1);
        // Both branches join.
        let joins: Vec<_> = cfg.blocks[1].succs.clone();
        assert_eq!(joins, cfg.blocks[2].succs);
    }

    #[test]
    fn loop_has_back_edge() {
        let cfg = Cfg::build(&[Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::int(3),
            body: vec![decl("a")],
        }]);
        // Find a block whose successors include an earlier block.
        let mut has_back_edge = false;
        for (i, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                if s <= i {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge, "loop CFG must contain a back edge");
        // Loop bounds are recorded as conditions on the preheader.
        assert_eq!(cfg.blocks[0].conditions.len(), 2);
    }

    #[test]
    fn statements_after_return_are_unreachable() {
        let cfg = Cfg::build(&[decl("a"), Stmt::Return, decl("dead")]);
        let reachable = cfg.reachable();
        let mut seen_dead = false;
        for b in &reachable {
            for s in &cfg.blocks[*b].stmts {
                if matches!(s, Stmt::Decl { name, .. } if name == "dead") {
                    seen_dead = true;
                }
            }
        }
        assert!(!seen_dead, "code after return must be unreachable");
    }

    #[test]
    fn visit_reachable_sees_all_live_statements() {
        let cfg = Cfg::build(&[
            decl("a"),
            Stmt::If {
                cond: Expr::ImmBool(true),
                then: vec![decl("b")],
                els: vec![],
            },
            Stmt::Output(Expr::var("a")),
        ]);
        let mut stmts = 0;
        let mut conds = 0;
        cfg.visit_reachable(|_| stmts += 1, |_| conds += 1);
        assert_eq!(stmts, 3); // a, b, output
        assert_eq!(conds, 1);
    }
}
