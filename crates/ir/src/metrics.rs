//! Static per-thread operation counting.
//!
//! The paper's compiler feeds generated kernels to `nvcc` / the OpenCL
//! runtime to learn their resource usage; our stand-in walks the IR and
//! produces dynamic operation estimates per thread — ALU operations,
//! special-function (transcendental) operations, memory operations per
//! space, and branches — with loop bodies weighted by their trip counts.
//!
//! Both the register-pressure estimator in `hipacc-hwmodel` and the
//! analytical timing model in `hipacc-sim` consume these counts.

use crate::expr::{BinOp, Expr, MathFn, TexCoords};
use crate::fold::eval_const;
use crate::stmt::Stmt;
use crate::ty::Const;
use std::collections::HashMap;
use std::ops::{Add, AddAssign};

/// Dynamic operation counts for one thread, as `f64` so that divergent
/// branches can be weighted fractionally.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct OpCounts {
    /// Simple arithmetic/logic operations (add, mul, compare, select, cast).
    pub alu: f64,
    /// Special-function operations (`exp`, `sqrt`, `sin`, …).
    pub sfu: f64,
    /// Floating-point divisions (slower than plain ALU on all targets).
    pub fdiv: f64,
    /// Integer division/remainder operations (expensive on GPUs).
    pub idiv: f64,
    /// Global-memory loads.
    pub global_loads: f64,
    /// Global-memory stores.
    pub global_stores: f64,
    /// Texture fetches.
    pub tex_fetches: f64,
    /// Constant-memory loads.
    pub const_loads: f64,
    /// Shared-memory loads.
    pub shared_loads: f64,
    /// Shared-memory stores.
    pub shared_stores: f64,
    /// Barriers executed.
    pub barriers: f64,
    /// Conditional branches evaluated.
    pub branches: f64,
    /// DSL-level accessor reads (before memory-space lowering).
    pub input_reads: f64,
    /// DSL-level mask reads.
    pub mask_reads: f64,
    /// Selects whose arms contain memory operations: these compile to real
    /// (divergence-capable) branches around loads rather than predicated
    /// moves, and carry a per-device control-flow penalty in the timing
    /// model.
    pub mem_selects: f64,
}

impl OpCounts {
    /// Scale all counts by a factor (loop trip count, region weight).
    pub fn scaled(mut self, k: f64) -> OpCounts {
        for f in [
            &mut self.alu,
            &mut self.sfu,
            &mut self.fdiv,
            &mut self.idiv,
            &mut self.global_loads,
            &mut self.global_stores,
            &mut self.tex_fetches,
            &mut self.const_loads,
            &mut self.shared_loads,
            &mut self.shared_stores,
            &mut self.barriers,
            &mut self.branches,
            &mut self.input_reads,
            &mut self.mask_reads,
            &mut self.mem_selects,
        ] {
            *f *= k;
        }
        self
    }

    /// Total memory operations of any kind.
    pub fn total_memory_ops(&self) -> f64 {
        self.global_loads
            + self.global_stores
            + self.tex_fetches
            + self.const_loads
            + self.shared_loads
            + self.shared_stores
    }

    /// Total compute operations (ALU + weighted SFU + weighted divides).
    /// SFUs and divides are weighted by their typical issue-cost ratio
    /// relative to a fused multiply-add.
    pub fn weighted_compute(&self, sfu_cost: f64, div_cost: f64) -> f64 {
        self.alu + self.sfu * sfu_cost + (self.fdiv + self.idiv) * div_cost + self.branches
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            alu: self.alu + o.alu,
            sfu: self.sfu + o.sfu,
            fdiv: self.fdiv + o.fdiv,
            idiv: self.idiv + o.idiv,
            global_loads: self.global_loads + o.global_loads,
            global_stores: self.global_stores + o.global_stores,
            tex_fetches: self.tex_fetches + o.tex_fetches,
            const_loads: self.const_loads + o.const_loads,
            shared_loads: self.shared_loads + o.shared_loads,
            shared_stores: self.shared_stores + o.shared_stores,
            barriers: self.barriers + o.barriers,
            branches: self.branches + o.branches,
            input_reads: self.input_reads + o.input_reads,
            mask_reads: self.mask_reads + o.mask_reads,
            mem_selects: self.mem_selects + o.mem_selects,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = *self + o;
    }
}

/// Configuration for counting.
#[derive(Copy, Clone, Debug)]
pub struct CountConfig {
    /// Trip count assumed for loops whose bounds cannot be evaluated.
    pub default_trip: f64,
    /// How to weight `if` branches: `true` counts both sides (divergent
    /// warp executes both paths), `false` counts the heavier side only
    /// (uniform branch: one path per warp).
    pub divergent_branches: bool,
}

impl Default for CountConfig {
    fn default() -> Self {
        Self {
            default_trip: 8.0,
            divergent_branches: false,
        }
    }
}

/// Whether an expression contains any memory operation (load of any kind).
fn contains_memory(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if matches!(
            n,
            Expr::GlobalLoad { .. }
                | Expr::TexFetch { .. }
                | Expr::ConstLoad { .. }
                | Expr::SharedLoad { .. }
                | Expr::InputAt { .. }
        ) {
            found = true;
        }
    });
    found
}

fn count_expr(e: &Expr, c: &mut OpCounts) {
    e.visit(&mut |n| match n {
        Expr::Binary(op, ..) => match op {
            BinOp::Div => c.fdiv += 1.0, // refined by type below if needed
            BinOp::Rem => c.idiv += 1.0,
            _ => c.alu += 1.0,
        },
        Expr::Unary(..) | Expr::Cast(..) => c.alu += 1.0,
        Expr::Select(_, a, b) => {
            c.alu += 1.0;
            if contains_memory(a) || contains_memory(b) {
                c.mem_selects += 1.0;
            }
        }
        Expr::Call(f, _) => {
            if f.uses_sfu() {
                c.sfu += 1.0;
            } else if matches!(
                f,
                MathFn::Min | MathFn::Max | MathFn::Abs | MathFn::Floor | MathFn::Round
            ) {
                c.alu += 1.0;
            }
        }
        Expr::GlobalLoad { .. } => c.global_loads += 1.0,
        Expr::TexFetch { coords, .. } => {
            c.tex_fetches += 1.0;
            // Index arithmetic inside coords is visited separately below.
            match coords {
                TexCoords::Linear(_) | TexCoords::Xy(..) => {}
            }
        }
        Expr::ConstLoad { .. } => c.const_loads += 1.0,
        Expr::SharedLoad { .. } => c.shared_loads += 1.0,
        Expr::InputAt { .. } => c.input_reads += 1.0,
        Expr::MaskAt { .. } => c.mask_reads += 1.0,
        _ => {}
    });
}

fn count_stmts(stmts: &[Stmt], cfg: &CountConfig, consts: &HashMap<String, Const>) -> OpCounts {
    let mut total = OpCounts::default();
    for s in stmts {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    count_expr(e, &mut total);
                }
            }
            Stmt::Assign { value, .. } | Stmt::Output(value) => {
                count_expr(value, &mut total);
                if matches!(s, Stmt::Output(_)) {
                    // The output write lowers to one global store.
                    total.global_stores += 1.0;
                }
            }
            Stmt::For { from, to, body, .. } => {
                count_expr(from, &mut total);
                count_expr(to, &mut total);
                let trip = match (eval_const(from, consts), eval_const(to, consts)) {
                    (Some(f), Some(t)) => ((t.as_i64() - f.as_i64() + 1).max(0)) as f64,
                    _ => cfg.default_trip,
                };
                // Loop overhead: one compare + one increment per iteration.
                let mut per_iter = count_stmts(body, cfg, consts);
                per_iter.alu += 2.0;
                per_iter.branches += 1.0;
                total += per_iter.scaled(trip);
            }
            Stmt::If { cond, then, els } => {
                count_expr(cond, &mut total);
                total.branches += 1.0;
                let ct = count_stmts(then, cfg, consts);
                let ce = count_stmts(els, cfg, consts);
                if cfg.divergent_branches {
                    total += ct + ce;
                } else {
                    // Take the heavier path (uniform branching).
                    let heavier = if ct.weighted_compute(1.0, 1.0) + ct.total_memory_ops()
                        >= ce.weighted_compute(1.0, 1.0) + ce.total_memory_ops()
                    {
                        ct
                    } else {
                        ce
                    };
                    total += heavier;
                }
            }
            Stmt::GlobalStore { idx, value, .. } => {
                count_expr(idx, &mut total);
                count_expr(value, &mut total);
                total.global_stores += 1.0;
            }
            Stmt::SharedStore { y, x, value, .. } => {
                count_expr(y, &mut total);
                count_expr(x, &mut total);
                count_expr(value, &mut total);
                total.shared_stores += 1.0;
            }
            Stmt::Barrier => total.barriers += 1.0,
            Stmt::Return | Stmt::Comment(_) => {}
        }
    }
    total
}

/// Count per-thread dynamic operations for a statement list, resolving
/// loop trip counts with the given parameter bindings.
pub fn count_ops(stmts: &[Stmt], cfg: &CountConfig, params: &HashMap<String, Const>) -> OpCounts {
    count_stmts(stmts, cfg, params)
}

// ---------------------------------------------------------------------
// Loop-invariant-aware counting.
// ---------------------------------------------------------------------

use std::collections::HashSet;

fn assigned_in(stmts: &[Stmt]) -> HashSet<String> {
    let mut set = HashSet::new();
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: crate::stmt::LValue::Var(n),
            ..
        } = s
        {
            set.insert(n.clone());
        }
        if let Stmt::Decl { name, .. } = s {
            set.insert(name.clone());
        }
    });
    set
}

/// Multi-level LICM-aware counter. `levels[k]` holds the variant-variable
/// set of the (k+1)-th enclosing loop; `acc[k+1]` accumulates costs that
/// execute once per iteration of that loop, `acc[0]` costs hoisted out of
/// every loop.
/// A constant-trip loop this small gets fully unrolled by any backend
/// compiler (nvcc, the OpenCL JIT), folding loop-variable arithmetic into
/// immediate operands and removing loop control entirely.
const UNROLL_TRIP: f64 = 32.0;
/// Cap on the unrolled nest product (25 for a 5x5 convolution qualifies;
/// the 169-tap bilateral does not).
const UNROLL_TOTAL: f64 = 128.0;

struct Licm<'a> {
    cfg: &'a CountConfig,
    consts: &'a HashMap<String, Const>,
    levels: Vec<HashSet<String>>,
    /// Per level: (loop variable, whether the backend unrolls this loop).
    loop_vars: Vec<(String, bool)>,
    /// Trip counts of unrolled ancestors (1.0 for non-unrolled levels).
    unrolled_trips: Vec<f64>,
    /// Currently walking a memory-address operand.
    in_addr: bool,
    acc: Vec<OpCounts>,
    /// Common-subexpression memo, one map per level: a pure subtree already
    /// counted at level `l` costs nothing when it recurs within the same
    /// iteration scope — real backends CSE these (the repeated `ix` in a
    /// mirror select, the repeated `Input(xf, yf)` read of Listing 1).
    memo: Vec<HashMap<String, usize>>,
    /// Variables that are reassigned somewhere in the kernel: subtrees
    /// containing them are not CSE-safe across statements.
    mutable_vars: HashSet<String>,
}

impl Licm<'_> {
    /// Whether level `l` (1-based) is an unrolled loop.
    fn level_unrolled(&self, l: usize) -> bool {
        l >= 1 && self.loop_vars.get(l - 1).map(|(_, u)| *u).unwrap_or(false)
    }

    /// Whether the subtree becomes a literal once unrolled loops are
    /// expanded: every variable it touches is an unrolled loop variable
    /// (pure math over such variables constant-folds, `exp` included —
    /// LLVM folds libm calls with literal arguments).
    fn folds_after_unroll(&self, e: &Expr) -> bool {
        let mut ok = true;
        e.visit(&mut |n| match n {
            Expr::ImmInt(_) | Expr::ImmFloat(_) | Expr::ImmBool(_) => {}
            Expr::Var(v) => {
                if !self
                    .loop_vars
                    .iter()
                    .any(|(name, unrolled)| *unrolled && name == v)
                {
                    ok = false;
                }
            }
            Expr::Unary(..)
            | Expr::Binary(..)
            | Expr::Cast(..)
            | Expr::Select(..)
            | Expr::Call(..) => {}
            _ => ok = false,
        });
        ok
    }

    /// Like [`Self::split`], but for memory-address operands: add/sub/mul
    /// whose level is an unrolled loop folds into the instruction's
    /// immediate offset (`[base + imm]`, strength-reduced row bases) and
    /// costs nothing. Boundary-handling arithmetic (min/max/select/
    /// compares) stays priced — it does not fold into addressing modes.
    fn split_addr(&mut self, e: &Expr) -> usize {
        let saved = self.in_addr;
        self.in_addr = true;
        let l = self.split(e);
        self.in_addr = saved;
        l
    }

    fn level_of_var(&self, n: &str) -> usize {
        for (i, vs) in self.levels.iter().enumerate().rev() {
            if vs.contains(n) {
                return i + 1;
            }
        }
        0
    }

    /// Whether a subtree may be memoized: pure over immutable state only.
    fn is_memoizable(&self, e: &Expr) -> bool {
        let mut ok = true;
        e.visit(&mut |n| match n {
            Expr::Var(v) if self.mutable_vars.contains(v) => ok = false,
            Expr::SharedLoad { .. } => ok = false,
            Expr::Select(_, a, b) if contains_memory(a) || contains_memory(b) => ok = false,
            _ => {}
        });
        ok
    }

    /// Classify an expression with CSE: a repeated pure subtree is free.
    fn split(&mut self, e: &Expr) -> usize {
        let trivial = matches!(
            e,
            Expr::ImmInt(_)
                | Expr::ImmFloat(_)
                | Expr::ImmBool(_)
                | Expr::Var(_)
                | Expr::Builtin(_)
                | Expr::OutputX
                | Expr::OutputY
        );
        if !trivial && self.folds_after_unroll(e) {
            // Becomes a literal after unrolling: free, but each unrolled
            // iteration gets its own literal, so the *level* is preserved
            // (parent expressions stay per-iteration).
            let mut l = 0;
            e.visit(&mut |n| {
                if let Expr::Var(v) = n {
                    l = l.max(self.level_of_var(v));
                }
            });
            return l;
        }
        if trivial || !self.is_memoizable(e) {
            return self.split_uncached(e);
        }
        let key = format!("{e:?}");
        for m in self.memo.iter().rev() {
            if let Some(&l) = m.get(&key) {
                return l;
            }
        }
        let level = self.split_uncached(e);
        let idx = level.min(self.memo.len() - 1);
        self.memo[idx].insert(key, level);
        level
    }

    /// Classify an expression; its own cost is charged at the returned
    /// level (the innermost loop it depends on; 0 = fully hoistable).
    fn split_uncached(&mut self, e: &Expr) -> usize {
        use crate::expr::TexCoords;
        match e {
            Expr::ImmInt(_) | Expr::ImmFloat(_) | Expr::ImmBool(_) => 0,
            Expr::Var(n) => self.level_of_var(n),
            Expr::Builtin(_) | Expr::OutputX | Expr::OutputY => 0,
            Expr::Unary(_, a) | Expr::Cast(_, a) => {
                let l = self.split(a);
                self.acc[l].alu += 1.0;
                l
            }
            Expr::Binary(op, a, b) => {
                let l = self.split(a).max(self.split(b));
                let folds_into_address = self.in_addr
                    && self.level_unrolled(l)
                    && matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul);
                if !folds_into_address {
                    match op {
                        BinOp::Div => self.acc[l].fdiv += 1.0,
                        BinOp::Rem => self.acc[l].idiv += 1.0,
                        _ => self.acc[l].alu += 1.0,
                    }
                }
                l
            }
            Expr::Select(c, a, b) => {
                let l = self.split(c).max(self.split(a)).max(self.split(b));
                self.acc[l].alu += 1.0;
                if contains_memory(a) || contains_memory(b) {
                    // A guarded load is a real branch, not a cmov.
                    self.acc[l].mem_selects += 1.0;
                }
                l
            }
            Expr::Call(f, args) => {
                let mut l = 0;
                for a in args {
                    l = l.max(self.split(a));
                }
                if f.uses_sfu() {
                    self.acc[l].sfu += 1.0;
                } else {
                    self.acc[l].alu += 1.0;
                }
                l
            }
            // Read-only loads hoist with their address: the buffers are
            // immutable during the launch (guaranteed by the read/write
            // analysis), which is what lets nvcc hoist e.g. the bilateral
            // filter's center-pixel read out of the convolution loops.
            Expr::ConstLoad { idx, .. } => {
                let l = self.split_addr(idx);
                self.acc[l].const_loads += 1.0;
                l
            }
            Expr::GlobalLoad { idx, .. } => {
                let l = self.split_addr(idx);
                self.acc[l].global_loads += 1.0;
                l
            }
            Expr::TexFetch { coords, .. } => {
                let l = match coords {
                    TexCoords::Linear(i) => self.split_addr(i),
                    TexCoords::Xy(x, y) => self.split_addr(x).max(self.split_addr(y)),
                };
                self.acc[l].tex_fetches += 1.0;
                l
            }
            // Shared memory mutates across barriers: pinned to the current
            // (innermost) level, never hoisted.
            Expr::SharedLoad { y, x, .. } => {
                self.split(y);
                self.split(x);
                let l = self.levels.len();
                self.acc[l].shared_loads += 1.0;
                l
            }
            Expr::InputAt { dx, dy, .. } => {
                let l = self.split(dx).max(self.split(dy));
                self.acc[l].input_reads += 1.0;
                l
            }
            Expr::MaskAt { dx, dy, .. } => {
                let l = self.split(dx).max(self.split(dy));
                self.acc[l].mask_reads += 1.0;
                l
            }
        }
    }

    fn top(&mut self) -> &mut OpCounts {
        self.acc.last_mut().expect("acc stack")
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Decl { init, .. } => {
                    if let Some(e) = init {
                        self.split(e);
                    }
                }
                Stmt::Assign { value, .. } => {
                    self.split(value);
                }
                Stmt::Output(e) => {
                    self.split(e);
                    self.top().global_stores += 1.0;
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    self.split(from);
                    self.split(to);
                    let trip = match (eval_const(from, self.consts), eval_const(to, self.consts)) {
                        (Some(f), Some(t)) => ((t.as_i64() - f.as_i64() + 1).max(0)) as f64,
                        _ => self.cfg.default_trip,
                    };
                    let const_trip = matches!(
                        (eval_const(from, self.consts), eval_const(to, self.consts)),
                        (Some(_), Some(_))
                    );
                    let unrolled_parents: f64 = self.unrolled_trips.iter().product();
                    let unrolled = const_trip
                        && trip <= UNROLL_TRIP
                        && unrolled_parents * trip <= UNROLL_TOTAL;
                    let mut vset = assigned_in(body);
                    vset.insert(var.clone());
                    self.levels.push(vset);
                    self.loop_vars.push((var.clone(), unrolled));
                    self.unrolled_trips.push(if unrolled { trip } else { 1.0 });
                    self.acc.push(OpCounts::default());
                    self.memo.push(HashMap::new());
                    self.walk(body);
                    let mut per_iter = self.acc.pop().expect("acc stack");
                    self.memo.pop();
                    self.loop_vars.pop();
                    self.unrolled_trips.pop();
                    self.levels.pop();
                    if !unrolled {
                        per_iter.alu += 2.0;
                        per_iter.branches += 1.0;
                    }
                    *self.top() += per_iter.scaled(trip);
                }
                Stmt::If { cond, then, els } => {
                    self.split(cond);
                    self.top().branches += 1.0;
                    // No hoisting out of conditionals: branch bodies are
                    // counted naively and charged at the current level.
                    let ct = count_stmts(then, self.cfg, self.consts);
                    let ce = count_stmts(els, self.cfg, self.consts);
                    if self.cfg.divergent_branches {
                        *self.top() += ct + ce;
                    } else if ct.weighted_compute(1.0, 1.0) + ct.total_memory_ops()
                        >= ce.weighted_compute(1.0, 1.0) + ce.total_memory_ops()
                    {
                        *self.top() += ct;
                    } else {
                        *self.top() += ce;
                    }
                }
                Stmt::GlobalStore { idx, value, .. } => {
                    self.split(idx);
                    self.split(value);
                    let l = self.levels.len();
                    self.acc[l].global_stores += 1.0;
                }
                Stmt::SharedStore { y, x, value, .. } => {
                    self.split(y);
                    self.split(x);
                    self.split(value);
                    let l = self.levels.len();
                    self.acc[l].shared_stores += 1.0;
                }
                Stmt::Barrier => self.top().barriers += 1.0,
                Stmt::Return | Stmt::Comment(_) => {}
            }
        }
    }
}

/// Count per-thread dynamic operations like [`count_ops`], but model the
/// loop-invariant code motion a backend compiler (nvcc, the OpenCL JIT)
/// performs: a subexpression is charged once per iteration of the
/// innermost loop it actually depends on — fully invariant work (including
/// read-only loads with invariant addresses) is charged exactly once.
pub fn count_ops_licm(
    stmts: &[Stmt],
    cfg: &CountConfig,
    params: &HashMap<String, Const>,
) -> OpCounts {
    let mut mutable_vars = HashSet::new();
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: crate::stmt::LValue::Var(n),
            ..
        } = s
        {
            mutable_vars.insert(n.clone());
        }
    });
    let mut licm = Licm {
        cfg,
        consts: params,
        levels: Vec::new(),
        loop_vars: Vec::new(),
        unrolled_trips: Vec::new(),
        in_addr: false,
        acc: vec![OpCounts::default()],
        memo: vec![HashMap::new()],
        mutable_vars,
    };
    licm.walk(stmts);
    licm.acc[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ty::ScalarType;

    #[test]
    fn counts_loop_body_times_trip() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        let i2 = input.clone();
        b.for_inclusive("xf", Expr::int(-6), Expr::int(6), |b, xf| {
            b.add_assign(&acc, b.read_at(&i2, xf.get(), Expr::int(0)));
        });
        b.output(acc.get());
        let k = b.finish();
        let c = count_ops(&k.body, &CountConfig::default(), &HashMap::new());
        // 13 iterations, one input read each.
        assert_eq!(c.input_reads, 13.0);
        assert_eq!(c.global_stores, 1.0); // output()
        assert!(c.branches >= 13.0); // loop back-edge checks
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = KernelBuilder::new("k", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("yf", Expr::int(-6), Expr::int(6), |b, yf| {
            b.for_inclusive("xf", Expr::int(-6), Expr::int(6), |b, xf| {
                b.add_assign(&acc, Expr::exp(b.read_at(&input, xf.get(), yf.get())));
            });
        });
        b.output(acc.get());
        let k = b.finish();
        let c = count_ops(&k.body, &CountConfig::default(), &HashMap::new());
        assert_eq!(c.input_reads, 169.0);
        assert_eq!(c.sfu, 169.0); // one exp per tap
    }

    #[test]
    fn symbolic_bounds_use_default_trip() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::var("n"),
            body: vec![Stmt::Assign {
                target: crate::stmt::LValue::Var("a".into()),
                value: Expr::var("a") + Expr::float(1.0),
            }],
        }];
        let cfg = CountConfig {
            default_trip: 4.0,
            ..CountConfig::default()
        };
        let c = count_ops(&stmts, &cfg, &HashMap::new());
        assert_eq!(c.alu, 4.0 * (1.0 + 2.0)); // add + loop overhead per iter
    }

    #[test]
    fn parameterized_bounds_resolve_with_bindings() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(-2) * Expr::var("sigma"),
            to: Expr::int(2) * Expr::var("sigma"),
            body: vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::float(0.0),
            }],
        }];
        let mut params = HashMap::new();
        params.insert("sigma".to_string(), Const::Int(3));
        let c = count_ops(&stmts, &CountConfig::default(), &params);
        assert_eq!(c.global_stores, 13.0);
    }

    #[test]
    fn divergent_branches_count_both_sides() {
        let stmts = vec![Stmt::If {
            cond: Expr::var("x").lt(Expr::int(0)),
            then: vec![Stmt::Assign {
                target: crate::stmt::LValue::Var("a".into()),
                value: Expr::var("a") + Expr::float(1.0),
            }],
            els: vec![Stmt::Assign {
                target: crate::stmt::LValue::Var("a".into()),
                value: Expr::var("a") * Expr::float(2.0),
            }],
        }];
        let uniform = count_ops(&stmts, &CountConfig::default(), &HashMap::new());
        let divergent = count_ops(
            &stmts,
            &CountConfig {
                divergent_branches: true,
                ..CountConfig::default()
            },
            &HashMap::new(),
        );
        assert_eq!(uniform.alu, 1.0 + 1.0); // compare + one branch body
        assert_eq!(divergent.alu, 1.0 + 2.0); // compare + both bodies
    }

    #[test]
    fn memory_spaces_are_distinguished() {
        let stmts = vec![
            Stmt::Decl {
                name: "v".into(),
                ty: ScalarType::F32,
                init: Some(
                    Expr::GlobalLoad {
                        buf: "IN".into(),
                        idx: Box::new(Expr::int(0)),
                    } + Expr::TexFetch {
                        buf: "T".into(),
                        coords: TexCoords::Linear(Box::new(Expr::int(0))),
                    } + Expr::ConstLoad {
                        buf: "C".into(),
                        idx: Box::new(Expr::int(0)),
                    } + Expr::SharedLoad {
                        buf: "S".into(),
                        y: Box::new(Expr::int(0)),
                        x: Box::new(Expr::int(0)),
                    },
                ),
            },
            Stmt::SharedStore {
                buf: "S".into(),
                y: Expr::int(0),
                x: Expr::int(0),
                value: Expr::var("v"),
            },
            Stmt::Barrier,
        ];
        let c = count_ops(&stmts, &CountConfig::default(), &HashMap::new());
        assert_eq!(c.global_loads, 1.0);
        assert_eq!(c.tex_fetches, 1.0);
        assert_eq!(c.const_loads, 1.0);
        assert_eq!(c.shared_loads, 1.0);
        assert_eq!(c.shared_stores, 1.0);
        assert_eq!(c.barriers, 1.0);
        assert_eq!(c.total_memory_ops(), 5.0);
    }

    #[test]
    fn licm_hoists_center_read_out_of_loops() {
        // d += IN[gid] inside a double loop: the load address is
        // loop-invariant, so LICM counting charges it once; naive counting
        // charges it per tap.
        let load = Expr::GlobalLoad {
            buf: "IN".into(),
            idx: Box::new(Expr::var("gid")),
        };
        let stmts = vec![Stmt::For {
            var: "y".into(),
            from: Expr::int(-6),
            to: Expr::int(6),
            body: vec![Stmt::For {
                var: "x".into(),
                from: Expr::int(-6),
                to: Expr::int(6),
                body: vec![Stmt::Assign {
                    target: crate::stmt::LValue::Var("d".into()),
                    value: Expr::var("d") + load.clone(),
                }],
            }],
        }];
        let naive = count_ops(&stmts, &CountConfig::default(), &HashMap::new());
        let licm = count_ops_licm(&stmts, &CountConfig::default(), &HashMap::new());
        assert_eq!(naive.global_loads, 169.0);
        assert_eq!(licm.global_loads, 1.0);
        // The variant add still runs per tap.
        assert!(licm.alu >= 169.0);
    }

    #[test]
    fn licm_keeps_variant_loads_per_iteration() {
        let load = Expr::GlobalLoad {
            buf: "IN".into(),
            idx: Box::new(Expr::var("gid") + Expr::var("x")),
        };
        let stmts = vec![Stmt::For {
            var: "x".into(),
            from: Expr::int(0),
            to: Expr::int(12),
            body: vec![Stmt::Assign {
                target: crate::stmt::LValue::Var("d".into()),
                value: Expr::var("d") + load,
            }],
        }];
        let licm = count_ops_licm(&stmts, &CountConfig::default(), &HashMap::new());
        assert_eq!(licm.global_loads, 13.0);
    }

    #[test]
    fn licm_hoists_row_term_out_of_inner_loop() {
        // exp(-(c*y*y)) depends only on the outer loop variable: charged 13
        // times (once per outer iteration) instead of 169.
        let inner_exp = Expr::exp(
            -(Expr::var("c")
                * Expr::var("y").cast(ScalarType::F32)
                * Expr::var("y").cast(ScalarType::F32)),
        );
        let stmts = vec![Stmt::For {
            var: "y".into(),
            from: Expr::int(-6),
            to: Expr::int(6),
            body: vec![Stmt::For {
                var: "x".into(),
                from: Expr::int(-6),
                to: Expr::int(6),
                body: vec![Stmt::Assign {
                    target: crate::stmt::LValue::Var("d".into()),
                    value: Expr::var("d")
                        + inner_exp.clone()
                            * Expr::exp(
                                -(Expr::var("c")
                                    * Expr::var("x").cast(ScalarType::F32)
                                    * Expr::var("x").cast(ScalarType::F32)),
                            ),
                }],
            }],
        }];
        let naive = count_ops(&stmts, &CountConfig::default(), &HashMap::new());
        let licm = count_ops_licm(&stmts, &CountConfig::default(), &HashMap::new());
        assert_eq!(naive.sfu, 2.0 * 169.0);
        // x-exp per tap (169) + y-exp per row (13).
        assert_eq!(licm.sfu, 169.0 + 13.0);
    }

    #[test]
    fn weighted_compute_applies_cost_ratios() {
        let c = OpCounts {
            alu: 10.0,
            sfu: 2.0,
            fdiv: 1.0,
            ..OpCounts::default()
        };
        assert_eq!(c.weighted_compute(4.0, 8.0), 10.0 + 8.0 + 8.0);
    }
}
