//! Producer–consumer kernel fusion: the IR-level composer.
//!
//! The paper's pipelines (Gaussian → Sobel → Harris) run each local
//! operator as its own launch, round-tripping every intermediate image
//! through global memory. Fusing a *chain* of point/local operators into
//! one kernel removes the intermediate launches entirely; what this
//! module contributes is the DSL-level half of that transformation:
//!
//! * **structural validation** — a stage is composable iff it reads
//!   exactly one input accessor, writes its output exactly once at the
//!   top level of its body, never returns early, and every read offset
//!   is bounded (so the stage has a finite stencil window);
//! * **alpha-renaming** — every stage's parameters, masks, locals and
//!   loop variables are prefixed `_s<i>_` so the composed kernel has one
//!   flat namespace with no collisions, even when the same operator
//!   appears twice in a chain;
//! * **halo inference** — per-stage half-windows from
//!   [`access::analyze`](crate::access::analyze), which the code
//!   generator widens into the *cumulative* halo each staging tile must
//!   carry (stage `i`'s tile covers the block extent plus the sum of all
//!   downstream stencil reaches).
//!
//! The result is a [`FusionChain`]: the renamed per-stage kernels plus a
//! synthetic *union* [`KernelDef`] that merges every parameter and mask
//! declaration. The union kernel is what the runtime binds launches and
//! cache fingerprints against — its body is the concatenation of all
//! stage bodies, so two chains differing anywhere fingerprint apart —
//! while the per-stage kernels are what
//! `hipacc_codegen::Compiler::compile_fused` actually lowers. Boundary
//! *legality* (compatible modes and ROIs) is deliberately not decided
//! here: the IR crate knows nothing about boundary handling, so that
//! check lives in `hipacc_analysis::fusion`.

use crate::access::analyze;
use crate::kernel::{AccessorDecl, KernelDef};
use crate::stmt::{LValue, Stmt};
use crate::Expr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Why a chain of kernels cannot be composed. These are *structural*
/// failures of the kernel shapes themselves; boundary-mode and ROI
/// legality is checked separately by `hipacc_analysis::fusion`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuseError {
    /// Fusion needs at least two stages.
    TooFewStages(usize),
    /// A stage reads more (or fewer) than one input accessor, so the
    /// chain is not a linear producer → consumer pipeline.
    AccessorCount {
        /// Kernel name of the offending stage.
        stage: String,
        /// How many accessors it declares.
        count: usize,
    },
    /// A stage does not write its output exactly once as a top-level
    /// statement of its body.
    OutputShape {
        /// Kernel name of the offending stage.
        stage: String,
    },
    /// A stage returns early, so a staging slot could be left undefined.
    EarlyReturn {
        /// Kernel name of the offending stage.
        stage: String,
    },
    /// A stage's reads of its input are not bounded by a finite window.
    UnboundedAccess {
        /// Kernel name of the offending stage.
        stage: String,
    },
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::TooFewStages(n) => {
                write!(f, "fusion needs at least two stages, got {n}")
            }
            FuseError::AccessorCount { stage, count } => write!(
                f,
                "stage `{stage}` declares {count} accessors; fusable stages read exactly one input"
            ),
            FuseError::OutputShape { stage } => write!(
                f,
                "stage `{stage}` must write its output exactly once at the top level of its body"
            ),
            FuseError::EarlyReturn { stage } => {
                write!(
                    f,
                    "stage `{stage}` returns early; staging slots could stay undefined"
                )
            }
            FuseError::UnboundedAccess { stage } => write!(
                f,
                "stage `{stage}` reads its input with offsets not bounded by a finite window"
            ),
        }
    }
}

impl std::error::Error for FuseError {}

/// One alpha-renamed stage of a fused chain.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedStage {
    /// The stage kernel with `_s<i>_`-prefixed params, masks and locals.
    /// `def.name` keeps the original kernel name for diagnostics.
    pub def: KernelDef,
    /// The accessor this stage reads: the original input name for stage
    /// 0, the renamed handoff accessor (`_s<i>_<name>`) for later stages.
    pub input: String,
    /// Inferred half-window of the stage's reads on `input` (x, y). The
    /// code generator widens this with any declared boundary window.
    pub halo: (u32, u32),
}

/// A validated, alpha-renamed chain of fusable kernels.
#[derive(Clone, Debug, PartialEq)]
pub struct FusionChain {
    /// Chain name, derived from the stage names.
    pub name: String,
    /// The renamed stages, producer first.
    pub stages: Vec<FusedStage>,
    /// The synthetic union kernel: merged params/masks, the stage-0
    /// accessor, and the concatenated stage bodies. This is the artifact
    /// launches are bound against and cache keys are derived from; it is
    /// never lowered directly.
    pub union: KernelDef,
}

impl FusionChain {
    /// Stage kernel names, producer first.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.def.name.as_str()).collect()
    }
}

/// Compose a chain of kernels (producer first) into a [`FusionChain`].
///
/// Each `stages[i + 1]` consumes the output image of `stages[i]`; the
/// caller is responsible for that wiring being real (in a
/// [`Stream`](https://docs.rs) chain it is by construction). Fails with
/// the first structural violation found, producer first.
pub fn compose(stages: &[KernelDef]) -> Result<FusionChain, FuseError> {
    if stages.len() < 2 {
        return Err(FuseError::TooFewStages(stages.len()));
    }

    let mut renamed = Vec::with_capacity(stages.len());
    for (i, def) in stages.iter().enumerate() {
        validate_stage(def)?;
        let halo = stage_halo(def)?;
        let stage = rename_stage(def, i);
        renamed.push(FusedStage {
            input: stage_input(&stage),
            def: stage,
            halo,
        });
    }

    let union = union_def(&renamed);
    Ok(FusionChain {
        name: union.name.clone(),
        stages: renamed,
        union,
    })
}

/// The single accessor name of a validated, renamed stage.
fn stage_input(def: &KernelDef) -> String {
    def.accessors[0].name.clone()
}

fn validate_stage(def: &KernelDef) -> Result<(), FuseError> {
    if def.accessors.len() != 1 {
        return Err(FuseError::AccessorCount {
            stage: def.name.clone(),
            count: def.accessors.len(),
        });
    }
    let mut returns = false;
    let mut nested_outputs = 0usize;
    Stmt::visit_all(&def.body, &mut |s| {
        if matches!(s, Stmt::Return) {
            returns = true;
        }
        if matches!(s, Stmt::Output(_)) {
            nested_outputs += 1;
        }
    });
    if returns {
        return Err(FuseError::EarlyReturn {
            stage: def.name.clone(),
        });
    }
    let top_level_outputs = def
        .body
        .iter()
        .filter(|s| matches!(s, Stmt::Output(_)))
        .count();
    // Exactly one output, and it must sit at the top level: an output
    // under `if`/`for` may execute zero or many times per pixel.
    if nested_outputs != 1 || top_level_outputs != 1 {
        return Err(FuseError::OutputShape {
            stage: def.name.clone(),
        });
    }
    Ok(())
}

/// Inferred half-window of the stage's reads on its (single) accessor.
fn stage_halo(def: &KernelDef) -> Result<(u32, u32), FuseError> {
    let info = analyze(def, &HashMap::new());
    match info.inputs.get(&def.accessors[0].name) {
        None => Ok((0, 0)), // the stage never reads its input
        Some(p) => match p.window() {
            Some((w, h)) if !p.unbounded => Ok((w / 2, h / 2)),
            _ => Err(FuseError::UnboundedAccess {
                stage: def.name.clone(),
            }),
        },
    }
}

/// Alpha-rename stage `i`: params, masks, locals and loop variables get
/// the `_s<i>_` prefix; the accessor is renamed for every stage but the
/// first (whose accessor stays the real input binding name).
fn rename_stage(def: &KernelDef, i: usize) -> KernelDef {
    let prefix = format!("_s{i}_");

    let mut vars: HashSet<String> = def.params.iter().map(|p| p.name.clone()).collect();
    Stmt::visit_all(&def.body, &mut |s| match s {
        Stmt::Decl { name, .. } => {
            vars.insert(name.clone());
        }
        Stmt::For { var, .. } => {
            vars.insert(var.clone());
        }
        _ => {}
    });
    let masks: HashSet<String> = def.masks.iter().map(|m| m.name.clone()).collect();
    let old_acc = def.accessors[0].name.clone();
    let new_acc = if i == 0 {
        old_acc.clone()
    } else {
        format!("{prefix}{old_acc}")
    };

    let mut out = def.clone();
    for p in &mut out.params {
        p.name = format!("{prefix}{}", p.name);
    }
    for m in &mut out.masks {
        m.name = format!("{prefix}{}", m.name);
    }
    out.accessors = vec![AccessorDecl {
        name: new_acc.clone(),
        ty: def.accessors[0].ty,
    }];
    out.body = rename_stmts(std::mem::take(&mut out.body), &|name: &str| {
        if vars.contains(name) {
            Some(format!("{prefix}{name}"))
        } else {
            None
        }
    });
    out.body = Stmt::rewrite_exprs(std::mem::take(&mut out.body), &mut |e| match e {
        Expr::Var(name) if vars.contains(&name) => Expr::Var(format!("{prefix}{name}")),
        Expr::MaskAt { mask, dx, dy } if masks.contains(&mask) => Expr::MaskAt {
            mask: format!("{prefix}{mask}"),
            dx,
            dy,
        },
        Expr::InputAt { acc, dx, dy } if acc == old_acc => Expr::InputAt {
            acc: new_acc.clone(),
            dx,
            dy,
        },
        other => other,
    });
    out
}

/// Rename declaration sites (`Decl`, `For` variables, `Assign` targets);
/// expression *uses* are renamed by a `rewrite_exprs` pass afterwards.
fn rename_stmts(stmts: Vec<Stmt>, rename: &impl Fn(&str) -> Option<String>) -> Vec<Stmt> {
    stmts
        .into_iter()
        .map(|s| match s {
            Stmt::Decl { name, ty, init } => Stmt::Decl {
                name: rename(&name).unwrap_or(name),
                ty,
                init,
            },
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } => Stmt::Assign {
                target: LValue::Var(rename(&name).unwrap_or(name)),
                value,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var: rename(&var).unwrap_or(var),
                from,
                to,
                body: rename_stmts(body, rename),
            },
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: rename_stmts(then, rename),
                els: rename_stmts(els, rename),
            },
            other => other,
        })
        .collect()
}

/// The synthetic union kernel of a renamed chain.
fn union_def(stages: &[FusedStage]) -> KernelDef {
    let name = format!(
        "_fused_{}",
        stages
            .iter()
            .map(|s| s.def.name.as_str())
            .collect::<Vec<_>>()
            .join("_")
    );
    let mut body = Vec::new();
    for (i, s) in stages.iter().enumerate() {
        body.push(Stmt::Comment(format!("fused stage {i}: {}", s.def.name)));
        body.extend(s.def.body.iter().cloned());
    }
    KernelDef {
        name,
        pixel: stages.last().expect("chain has stages").def.pixel,
        params: stages.iter().flat_map(|s| s.def.params.clone()).collect(),
        accessors: stages[0].def.accessors.clone(),
        masks: stages.iter().flat_map(|s| s.def.masks.clone()).collect(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ty::ScalarType;

    fn blur3(name: &str) -> KernelDef {
        let mut b = KernelBuilder::new(name, ScalarType::F32);
        let input = b.accessor("Input", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            b.add_assign(&acc, b.read_at(&input, xf.get(), Expr::int(0)));
        });
        b.output(acc.get() / Expr::float(3.0));
        b.finish()
    }

    fn scale(name: &str) -> KernelDef {
        let mut b = KernelBuilder::new(name, ScalarType::F32);
        let input = b.accessor("Input", ScalarType::F32);
        let gain = b.param("gain", ScalarType::F32);
        b.output(b.read_center(&input) * gain.get());
        b.finish()
    }

    #[test]
    fn composes_and_renames_a_two_stage_chain() {
        let chain = compose(&[blur3("blur"), scale("scale")]).unwrap();
        assert_eq!(chain.stages.len(), 2);
        assert_eq!(chain.stages[0].halo, (1, 0));
        assert_eq!(chain.stages[1].halo, (0, 0));
        // Stage 0 keeps the real input binding name; stage 1 reads the
        // renamed handoff accessor.
        assert_eq!(chain.stages[0].input, "Input");
        assert_eq!(chain.stages[1].input, "_s1_Input");
        // Params and locals are prefixed.
        assert_eq!(chain.stages[1].def.params[0].name, "_s1_gain");
        let mut saw_renamed_local = false;
        Stmt::visit_all(&chain.stages[0].def.body, &mut |s| {
            if let Stmt::Decl { name, .. } = s {
                if name == "_s0_acc" {
                    saw_renamed_local = true;
                }
            }
        });
        assert!(saw_renamed_local, "stage-0 local must be prefixed");
        // The union merges the namespaces and keeps the stage-0 accessor.
        assert_eq!(chain.union.accessors.len(), 1);
        assert_eq!(chain.union.accessors[0].name, "Input");
        assert_eq!(chain.union.params.len(), 1);
        assert_eq!(chain.union.name, "_fused_blur_scale");
    }

    #[test]
    fn same_operator_twice_does_not_collide() {
        let chain = compose(&[blur3("blur"), blur3("blur")]).unwrap();
        let names: Vec<_> = chain.stages.iter().map(|s| s.input.clone()).collect();
        assert_eq!(names, vec!["Input".to_string(), "_s1_Input".to_string()]);
    }

    #[test]
    fn rejects_single_stage_and_multi_accessor() {
        assert_eq!(
            compose(&[blur3("blur")]).unwrap_err(),
            FuseError::TooFewStages(1)
        );
        let mut b = KernelBuilder::new("two", ScalarType::F32);
        let a = b.accessor("A", ScalarType::F32);
        let _ = b.accessor("B", ScalarType::F32);
        b.output(b.read_center(&a));
        let two = b.finish();
        assert!(matches!(
            compose(&[blur3("blur"), two]).unwrap_err(),
            FuseError::AccessorCount { count: 2, .. }
        ));
    }

    #[test]
    fn rejects_conditional_output() {
        let mut b = KernelBuilder::new("cond", ScalarType::F32);
        let input = b.accessor("Input", ScalarType::F32);
        let v = b.let_("v", ScalarType::F32, b.read_center(&input));
        b.if_else(
            v.get().gt(Expr::float(0.0)),
            |b| b.output(Expr::float(1.0)),
            |b| b.output(Expr::float(0.0)),
        );
        let cond = b.finish();
        assert!(matches!(
            compose(&[cond, blur3("blur")]).unwrap_err(),
            FuseError::OutputShape { .. }
        ));
    }

    #[test]
    fn rejects_param_dependent_window() {
        let mut b = KernelBuilder::new("dyn", ScalarType::F32);
        let input = b.accessor("Input", ScalarType::F32);
        let r = b.param("r", ScalarType::I32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        b.for_inclusive("xf", Expr::int(0) - r.get(), r.get(), |b, xf| {
            b.add_assign(&acc, b.read_at(&input, xf.get(), Expr::int(0)));
        });
        b.output(acc.get());
        let dynamic = b.finish();
        assert!(matches!(
            compose(&[dynamic, blur3("blur")]).unwrap_err(),
            FuseError::UnboundedAccess { .. }
        ));
    }
}
