//! Range-based strength reduction.
//!
//! Rewrites driven by the value-range oracle:
//!
//! * comparisons and boolean operators whose truth value the ranges
//!   decide fold to `true`/`false` literals,
//! * `Select`s with a decided condition collapse to the taken branch
//!   (the untaken branch was never evaluated — `Select` is lazy in every
//!   engine — so only the condition must be transparent),
//! * `a % b` → `a` when `0 <= a < b` is provable,
//! * `a / b` → `0` under the same ranges.
//!
//! Each rewrite drops only [`transparent`](super::transparent)
//! subexpressions (no memory access, no possible trap), so outputs *and*
//! `ExecStats` are preserved bit-for-bit. Decided `if` statements are
//! left for the clamp-elision and cleanup passes; this pass only touches
//! expressions.

use super::{transparent, Oracle, WalkConfig};
use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::DeviceKernelDef;

/// Run strength reduction over `k`. Returns the rewrite count.
pub fn strength_reduce<O: Oracle>(k: &mut DeviceKernelDef, o: &mut O) -> u32 {
    let cfg = WalkConfig {
        collapse_ifs: false,
        flatten: false,
    };
    let body = std::mem::take(&mut k.body);
    let (body, fires) = super::run_walker(body, &k.scalars, o, &cfg, &mut reduce);
    k.body = body;
    fires
}

fn reduce<O: Oracle>(e: Expr, o: &O, fires: &mut u32) -> Expr {
    match e {
        // Decided boolean expression → literal. The engines evaluate a
        // comparison to the same `Bool` constant the literal produces.
        Expr::Binary(op, a, b) if op.is_comparison() => {
            let e = Expr::Binary(op, a, b);
            if transparent(&e) {
                if let Some(t) = o.truth(&e) {
                    *fires += 1;
                    return Expr::ImmBool(t);
                }
            }
            e
        }
        Expr::Unary(UnOp::Not, a) => {
            let e = Expr::Unary(UnOp::Not, a);
            if transparent(&e) {
                if let Some(t) = o.truth(&e) {
                    *fires += 1;
                    return Expr::ImmBool(t);
                }
            }
            e
        }
        // Decided select → taken branch (lazy: the other branch never
        // ran; the dropped condition must be transparent).
        Expr::Select(c, a, b) => {
            if transparent(&c) {
                if let Some(t) = o.truth(&c) {
                    *fires += 1;
                    return if t { *a } else { *b };
                }
            }
            Expr::Select(c, a, b)
        }
        // 0 <= a < b proves a % b == a and a / b == 0. The ranges also
        // prove b != 0, so the (integer) division cannot trap.
        Expr::Binary(op @ (BinOp::Rem | BinOp::Div), a, b) => {
            if let (Some((al, ah)), Some((bl, _))) = (o.range(&a), o.range(&b)) {
                if al >= 0 && bl > 0 && ah < bl {
                    match op {
                        BinOp::Rem if transparent(&b) => {
                            *fires += 1;
                            return *a;
                        }
                        BinOp::Div if transparent(&a) && transparent(&b) => {
                            *fires += 1;
                            return Expr::ImmInt(0);
                        }
                        _ => {}
                    }
                }
            }
            Expr::Binary(op, a, b)
        }
        other => other,
    }
}
