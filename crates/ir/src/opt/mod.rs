//! Analysis-driven optimization passes over the *device* IR.
//!
//! The verifier (crate `hipacc-analysis`) proves facts about lowered
//! kernels — value ranges, block-uniformity, race phases — and until now
//! only *diagnosed* with them. This module consumes the same facts to
//! *transform* kernels. The passes are deliberately split from the
//! analyses: everything here is generic over an [`Oracle`] that answers
//! range/truth/uniformity queries, so the IR crate stays free of any
//! dependency on the analysis crate (which depends on this one).
//!
//! Passes (driver order; names are the `HIPACC_OPT_DISABLE` keys):
//!
//! 1. [`elide_clamps`] — bounds-check elision: statically decided
//!    branches (region dispatch, iteration guards) collapse, provably
//!    zero-trip loops drop, and redundant `min`/`max` clamps reduce to
//!    their surviving operand.
//! 2. [`strength_reduce`] — range-based strength reduction: decided
//!    comparisons and boolean operators fold to literals, `Select`s with
//!    decided conditions collapse, and `x % c` / `x / c` reduce when the
//!    dividend range proves the operation trivial.
//! 3. [`flatten_branches`] — thread-*varying* single-assignment branches
//!    rewrite to `Select` form so the SIMD engine sees straight-line code.
//! 4. [`hoist_invariants`] — loop-invariant code motion for transparent
//!    expressions (convolution-row addresses, mask-row bases).
//! 5. [`remove_barriers`] — dead-barrier elimination, fed by the race
//!    analysis' phase footprints (computed by the caller).
//! 6. [`cleanup`](fn@cleanup) — constant folding ([`crate::fold`]) with the widened
//!    boolean identities, safe decided-`If` collapse and dead-decl
//!    removal, run last to sweep up literals the other passes produced.
//!
//! # Soundness contract
//!
//! Every rewrite must preserve *observable equivalence* on the
//! simulator's engines: bit-identical outputs, identical `ExecStats`
//! (every load class is counted, so an expression may only be dropped or
//! moved when it performs no memory access), and identical error
//! behavior (division traps, nested-barrier errors). The predicate
//! encoding that is [`transparent`]; facts stronger than syntax come
//! from the [`Oracle`], whose implementations must only decide queries
//! whose runtime semantics they model exactly (see
//! `hipacc_analysis::range`).

use crate::expr::Expr;
use crate::stmt::{LValue, Stmt};
use crate::ty::ScalarType;
use std::collections::HashSet;

mod barrier;
mod clamps;
mod cleanup;
mod flatten;
mod hoist;
mod strength;

pub use barrier::remove_barriers;
pub use clamps::elide_clamps;
pub use cleanup::cleanup;
pub use flatten::flatten_branches;
pub use hoist::hoist_invariants;
pub use strength::strength_reduce;

/// `HIPACC_OPT_DISABLE` key of the clamp/bounds-check elision pass.
pub const PASS_ELIDE_CLAMPS: &str = "elide-clamps";
/// `HIPACC_OPT_DISABLE` key of the strength-reduction pass.
pub const PASS_STRENGTH: &str = "strength-reduce";
/// `HIPACC_OPT_DISABLE` key of the divergent-branch flattening pass.
pub const PASS_FLATTEN: &str = "flatten";
/// `HIPACC_OPT_DISABLE` key of the loop-invariant hoisting pass.
pub const PASS_HOIST: &str = "hoist";
/// `HIPACC_OPT_DISABLE` key of the dead-barrier elimination pass.
pub const PASS_DEAD_BARRIER: &str = "dead-barrier";
/// `HIPACC_OPT_DISABLE` key of the final fold/cleanup pass.
pub const PASS_FOLD: &str = "fold";

/// All pass names in driver order.
pub const PASSES: &[&str] = &[
    PASS_ELIDE_CLAMPS,
    PASS_STRENGTH,
    PASS_FLATTEN,
    PASS_HOIST,
    PASS_DEAD_BARRIER,
    PASS_FOLD,
];

/// The fact interface the transforming passes query. Implemented by
/// `hipacc_analysis::range::RangeState` (interval lattice + uniformity
/// taint) and by the trivial [`NoFacts`] oracle for tests.
///
/// Soundness rests on the implementation: `range`/`truth` answers must
/// hold for **every** thread of **every** block of the launch and must
/// model the runtime semantics of the queried expression exactly
/// (integer-valued, no hidden coercions). Returning `None` — or `false`
/// from `is_uniform` — is always sound.
pub trait Oracle: Clone {
    /// Inclusive value range of an integer-valued expression, or `None`
    /// when unknown, non-integer, or unreachable.
    fn range(&self, e: &Expr) -> Option<(i64, i64)>;
    /// Decide a boolean condition when the facts separate it.
    fn truth(&self, e: &Expr) -> Option<bool>;
    /// Whether the expression evaluates identically on every thread of a
    /// block (`false` is the safe default).
    fn is_uniform(&self, e: &Expr) -> bool;
    /// A declaration executed: bind `name` (coerced to `ty`) to `init`.
    fn decl(&mut self, name: &str, ty: ScalarType, init: Option<&Expr>);
    /// An assignment executed: rebind `name` to `value` (no coercion).
    fn assign(&mut self, name: &str, value: &Expr);
    /// Assume `cond` evaluates to `want` from here on. Returns `false`
    /// when that assumption is infeasible (the path is dead).
    fn refine(&mut self, cond: &Expr, want: bool) -> bool;
    /// Merge facts from the other arm of a branch (lattice join).
    fn join(&mut self, other: &Self);
    /// Forget everything about `name` (loop-carried assignment).
    fn havoc(&mut self, name: &str);
    /// Bind a loop variable to the union of all its iteration values.
    fn bind_loop(&mut self, var: &str, from: &Expr, to: &Expr);
    /// `name` went out of scope: drop it entirely.
    fn drop_var(&mut self, name: &str);
}

/// The oracle that knows nothing: every query returns "unknown". Passes
/// driven by it perform only their syntactically-justified rewrites.
#[derive(Copy, Clone, Debug, Default)]
pub struct NoFacts;

impl Oracle for NoFacts {
    fn range(&self, _e: &Expr) -> Option<(i64, i64)> {
        None
    }
    fn truth(&self, _e: &Expr) -> Option<bool> {
        None
    }
    fn is_uniform(&self, _e: &Expr) -> bool {
        false
    }
    fn decl(&mut self, _name: &str, _ty: ScalarType, _init: Option<&Expr>) {}
    fn assign(&mut self, _name: &str, _value: &Expr) {}
    fn refine(&mut self, _cond: &Expr, _want: bool) -> bool {
        true
    }
    fn join(&mut self, _other: &Self) {}
    fn havoc(&mut self, _name: &str) {}
    fn bind_loop(&mut self, _var: &str, _from: &Expr, _to: &Expr) {}
    fn drop_var(&mut self, _name: &str) {}
}

/// What the optimizer did to one kernel: the active level and the number
/// of rewrites each pass performed (in driver order; disabled passes are
/// absent).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptReport {
    /// The `opt_level` the kernel was compiled at.
    pub level: u8,
    /// `(pass name, rewrite count)` per executed pass.
    pub passes: Vec<(String, u32)>,
}

impl OptReport {
    /// Rewrite count of one pass (0 when it did not run or did nothing).
    pub fn fires(&self, pass: &str) -> u32 {
        self.passes
            .iter()
            .find(|(n, _)| n == pass)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Total rewrites across all passes.
    pub fn total(&self) -> u32 {
        self.passes.iter().map(|(_, c)| c).sum()
    }
}

/// Whether evaluating `e` is invisible to the simulator: no memory
/// access of any class (every load is counted in `ExecStats`), and no
/// possible trap (`/`/`%` only with a provably non-zero literal
/// divisor). Only transparent expressions may be dropped, duplicated or
/// moved by a pass.
pub fn transparent(e: &Expr) -> bool {
    use crate::expr::BinOp;
    let mut ok = true;
    e.visit(&mut |n| match n {
        Expr::GlobalLoad { .. }
        | Expr::TexFetch { .. }
        | Expr::ConstLoad { .. }
        | Expr::SharedLoad { .. }
        | Expr::InputAt { .. }
        | Expr::MaskAt { .. } => ok = false,
        Expr::Binary(BinOp::Div | BinOp::Rem, _, b) => match &**b {
            Expr::ImmInt(v) if *v != 0 => {}
            Expr::ImmFloat(_) => {} // float division never traps
            _ => ok = false,
        },
        _ => {}
    });
    ok
}

/// Shared statement walker for the fact-driven passes: tracks oracle
/// state through declarations, assignments, branches (with per-arm
/// refinement and four-way join) and loops (havoc + loop-variable
/// binding), applying `hook` bottom-up to every expression. Behavior
/// toggles:
pub(crate) struct WalkConfig {
    /// Collapse `If`s whose condition the oracle decides (and drop
    /// provably zero-trip loops).
    pub collapse_ifs: bool,
    /// Rewrite thread-varying single-assignment branches to `Select`.
    pub flatten: bool,
}

/// Run the shared walker over a kernel body. Returns the rewrite count.
pub(crate) fn run_walker<O: Oracle>(
    body: Vec<Stmt>,
    scalars: &[crate::kernel::ParamDecl],
    o: &mut O,
    cfg: &WalkConfig,
    hook: &mut dyn FnMut(Expr, &O, &mut u32) -> Expr,
) -> (Vec<Stmt>, u32) {
    let mut fires = 0;
    let mut declared: HashSet<String> = scalars.iter().map(|p| p.name.clone()).collect();
    let (out, _returns) = walk(body, o, &mut declared, cfg, hook, &mut fires, true);
    (out, fires)
}

fn rewrite_with<O: Oracle>(
    e: Expr,
    o: &O,
    hook: &mut dyn FnMut(Expr, &O, &mut u32) -> Expr,
    fires: &mut u32,
) -> Expr {
    e.rewrite(&mut |n| hook(n, o, fires))
}

fn assigned_names(stmts: &[Stmt], out: &mut HashSet<String>) {
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: LValue::Var(v),
            ..
        } = s
        {
            out.insert(v.clone());
        }
    });
}

fn walk<O: Oracle>(
    stmts: Vec<Stmt>,
    o: &mut O,
    declared: &mut HashSet<String>,
    cfg: &WalkConfig,
    hook: &mut dyn FnMut(Expr, &O, &mut u32) -> Expr,
    fires: &mut u32,
    at_top: bool,
) -> (Vec<Stmt>, bool) {
    use crate::expr::BinOp;
    let mut out = Vec::with_capacity(stmts.len());
    let mut returned = false;
    for s in stmts {
        if returned {
            // Unreachable for every thread that got here; keep verbatim.
            out.push(s);
            continue;
        }
        match s {
            Stmt::Decl { name, ty, init } => {
                let init = init.map(|e| rewrite_with(e, o, hook, fires));
                o.decl(&name, ty, init.as_ref());
                // `declared` really tracks *initialized* names: flatten
                // synthesizes a read of the variable, which is only safe
                // once it holds a value.
                if init.is_some() {
                    declared.insert(name.clone());
                }
                out.push(Stmt::Decl { name, ty, init });
            }
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } => {
                let value = rewrite_with(value, o, hook, fires);
                o.assign(&name, &value);
                declared.insert(name.clone());
                out.push(Stmt::Assign {
                    target: LValue::Var(name),
                    value,
                });
            }
            Stmt::If { cond, then, els } => {
                let cond = rewrite_with(cond, o, hook, fires);
                // Statically decided branch: inline the taken arm. The
                // dropped arm never executed, so it needs no
                // transparency; the condition is dropped, so it does.
                // A top-level barrier directly inside the taken arm
                // would change from a (nested-barrier) runtime error to
                // a legal phase split when inlined at the top level, so
                // that case is left alone.
                let decided = if cfg.collapse_ifs && transparent(&cond) {
                    o.truth(&cond)
                } else {
                    None
                };
                if let Some(t) = decided {
                    let taken = if t { then } else { els };
                    let hazard = at_top && taken.iter().any(|s| matches!(s, Stmt::Barrier));
                    if !hazard {
                        *fires += 1;
                        o.refine(&cond, t);
                        let (mut inner, ret) = walk(taken, o, declared, cfg, hook, fires, at_top);
                        out.append(&mut inner);
                        returned = ret;
                        continue;
                    }
                    out.push(Stmt::If {
                        cond,
                        then: taken,
                        els: Vec::new(),
                    });
                    continue;
                }
                // Divergent single-assignment branches flatten to Select
                // form (the assigned value stays lazily evaluated).
                if cfg.flatten && !o.is_uniform(&cond) {
                    match flatten::try_flatten(cond, then, els, declared) {
                        Ok((name, value)) => {
                            let value = rewrite_with(value, o, hook, fires);
                            o.assign(&name, &value);
                            *fires += 1;
                            out.push(Stmt::Assign {
                                target: LValue::Var(name),
                                value,
                            });
                            continue;
                        }
                        Err((cond, then, els)) => {
                            out.push(walk_undecided_if(
                                cond,
                                then,
                                els,
                                o,
                                declared,
                                cfg,
                                hook,
                                fires,
                                &mut returned,
                            ));
                            continue;
                        }
                    }
                }
                out.push(walk_undecided_if(
                    cond,
                    then,
                    els,
                    o,
                    declared,
                    cfg,
                    hook,
                    fires,
                    &mut returned,
                ));
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let from = rewrite_with(from, o, hook, fires);
                let to = rewrite_with(to, o, hook, fires);
                // Provably zero-trip loops disappear; `from`/`to` are
                // dropped with the loop, so they must be transparent.
                if cfg.collapse_ifs && transparent(&from) && transparent(&to) {
                    let gone =
                        Expr::Binary(BinOp::Gt, Box::new(from.clone()), Box::new(to.clone()));
                    if o.truth(&gone) == Some(true) {
                        *fires += 1;
                        continue;
                    }
                }
                let mut assigned = HashSet::new();
                assigned_names(&body, &mut assigned);
                // Walk the body on a throwaway clone: loop-carried
                // variables are havocked, the loop variable spans every
                // iteration. The surviving state havocs the assigned
                // set, which also covers the zero-trip case.
                let mut ob = o.clone();
                for a in &assigned {
                    ob.havoc(a);
                }
                ob.bind_loop(&var, &from, &to);
                let mut db = declared.clone();
                db.insert(var.clone());
                let (body, _ret) = walk(body, &mut ob, &mut db, cfg, hook, fires, false);
                for a in &assigned {
                    o.havoc(a);
                }
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            Stmt::Return => {
                out.push(Stmt::Return);
                returned = true;
            }
            Stmt::Output(e) => {
                let e = rewrite_with(e, o, hook, fires);
                out.push(Stmt::Output(e));
            }
            Stmt::GlobalStore { buf, idx, value } => {
                let idx = rewrite_with(idx, o, hook, fires);
                let value = rewrite_with(value, o, hook, fires);
                out.push(Stmt::GlobalStore { buf, idx, value });
            }
            Stmt::SharedStore { buf, y, x, value } => {
                let y = rewrite_with(y, o, hook, fires);
                let x = rewrite_with(x, o, hook, fires);
                let value = rewrite_with(value, o, hook, fires);
                out.push(Stmt::SharedStore { buf, y, x, value });
            }
            s @ (Stmt::Barrier | Stmt::Comment(_)) => out.push(s),
        }
    }
    (out, returned)
}

#[allow(clippy::too_many_arguments)]
fn walk_undecided_if<O: Oracle>(
    cond: Expr,
    then: Vec<Stmt>,
    els: Vec<Stmt>,
    o: &mut O,
    declared: &HashSet<String>,
    cfg: &WalkConfig,
    hook: &mut dyn FnMut(Expr, &O, &mut u32) -> Expr,
    fires: &mut u32,
    returned: &mut bool,
) -> Stmt {
    let mut ot = o.clone();
    let mut oe = o.clone();
    ot.refine(&cond, true);
    oe.refine(&cond, false);
    let mut dt = declared.clone();
    let mut de = declared.clone();
    let (then, rt) = walk(then, &mut ot, &mut dt, cfg, hook, fires, false);
    let (els, re) = walk(els, &mut oe, &mut de, cfg, hook, fires, false);
    // Branch-local declarations go out of scope at the join (only
    // top-level ones entered these clones; nested scopes walked on
    // their own clones).
    for s in &then {
        if let Stmt::Decl { name, .. } = s {
            ot.drop_var(name);
        }
    }
    for s in &els {
        if let Stmt::Decl { name, .. } = s {
            oe.drop_var(name);
        }
    }
    match (rt, re) {
        (true, true) => *returned = true,
        // Guard-return: only the other arm falls through, keeping its
        // refinement (this is what proves iteration-guarded accesses).
        (true, false) => *o = oe,
        (false, true) => *o = ot,
        (false, false) => {
            *o = ot;
            o.join(&oe);
        }
    }
    Stmt::If { cond, then, els }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Builtin;

    #[test]
    fn transparency_classifies_memory_and_traps() {
        // Pure arithmetic over builtins: transparent.
        let e = Expr::Builtin(Builtin::ThreadIdxX) * Expr::int(4) + Expr::int(1);
        assert!(transparent(&e));
        // Any load class is opaque (it is counted in ExecStats).
        let load = Expr::GlobalLoad {
            buf: "IN".into(),
            idx: Box::new(Expr::int(0)),
        };
        assert!(!transparent(&load));
        assert!(!transparent(&(Expr::int(1) + load)));
        let sh = Expr::SharedLoad {
            buf: "t".into(),
            y: Box::new(Expr::int(0)),
            x: Box::new(Expr::int(0)),
        };
        assert!(!transparent(&sh));
        // Division: literal non-zero divisor is trap-free, anything
        // else may trap.
        assert!(transparent(&(Expr::var("x") / Expr::int(2))));
        assert!(!transparent(&(Expr::var("x") / Expr::int(0))));
        assert!(!transparent(&(Expr::var("x") / Expr::var("y"))));
        assert!(transparent(&(Expr::var("x") / Expr::float(0.5))));
        assert!(!transparent(&Expr::var("x").rem(Expr::var("n"))));
        assert!(transparent(&Expr::var("x").rem(Expr::int(4))));
    }

    #[test]
    fn report_counts_fires() {
        let r = OptReport {
            level: 1,
            passes: vec![("hoist".into(), 3), ("fold".into(), 1)],
        };
        assert_eq!(r.fires("hoist"), 3);
        assert_eq!(r.fires("flatten"), 0);
        assert_eq!(r.total(), 4);
    }
}
