//! Clamp and bounds-check elision.
//!
//! Interior-region specializations carry boundary machinery that their
//! block rectangle makes dead: `min`/`max` clamps whose input range
//! already lies inside the clamp bound, region-dispatch branches whose
//! condition the launch geometry decides, and border loops that never
//! trip. This pass removes all three, driven by the value-range oracle:
//!
//! * `min(a, b)` → `a` when `range(a).hi <= range(b).lo` (symmetric),
//! * `max(a, b)` → `a` when `range(a).lo >= range(b).hi` (symmetric),
//! * decided `if`s inline their taken arm (the walker's job),
//! * provably zero-trip `for`s disappear (also the walker).
//!
//! Soundness: replacements only apply to *integer*-valued operands (the
//! oracle refuses ranges for anything else; integer `min`/`max` are
//! value-preserving in the engines), and the dropped operand must be
//! [`transparent`](super::transparent) since it is no longer evaluated.

use super::{transparent, Oracle, WalkConfig};
use crate::expr::{Expr, MathFn};
use crate::kernel::DeviceKernelDef;

/// Run clamp/bounds-check elision over `k`. Returns the rewrite count.
pub fn elide_clamps<O: Oracle>(k: &mut DeviceKernelDef, o: &mut O) -> u32 {
    let cfg = WalkConfig {
        collapse_ifs: true,
        flatten: false,
    };
    let body = std::mem::take(&mut k.body);
    let (body, fires) = super::run_walker(body, &k.scalars, o, &cfg, &mut reduce_clamp);
    k.body = body;
    fires
}

fn reduce_clamp<O: Oracle>(e: Expr, o: &O, fires: &mut u32) -> Expr {
    let Expr::Call(f @ (MathFn::Min | MathFn::Max), args) = e else {
        return e;
    };
    let (ra, rb) = (o.range(&args[0]), o.range(&args[1]));
    if let (Some((al, ah)), Some((bl, bh))) = (ra, rb) {
        let keep_a = match f {
            MathFn::Min => ah <= bl,
            _ => al >= bh,
        };
        let keep_b = match f {
            MathFn::Min => bh <= al,
            _ => bl >= ah,
        };
        let mut args = args;
        if keep_a && transparent(&args[1]) {
            *fires += 1;
            return args.swap_remove(0);
        }
        if keep_b && transparent(&args[0]) {
            *fires += 1;
            return args.swap_remove(1);
        }
        return Expr::Call(f, args);
    }
    Expr::Call(f, args)
}
