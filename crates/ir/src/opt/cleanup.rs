//! Final fold/cleanup pass.
//!
//! The earlier passes leave literals behind — `ImmBool` branch
//! conditions from strength reduction, constant subtrees from inlined
//! dispatch arms. This pass sweeps them up with the device-safe
//! simplifier [`widen_fold`](crate::fold::widen_fold), collapses
//! literal-condition `if`s, and drops declarations nothing reads.
//!
//! It deliberately does **not** reuse `fold`'s statement folding: that
//! runs on DSL-level kernels and collapses `if (true) { ... }`
//! unconditionally, which on device IR would promote a nested barrier
//! (a runtime error) to a legal top-level phase split. The collapse here
//! keeps such an `if` intact.

use crate::fold::widen_fold;
use crate::kernel::DeviceKernelDef;
use crate::stmt::{LValue, Stmt};
use std::collections::HashSet;

/// Run the cleanup pass over `k`. Returns the rewrite count.
pub fn cleanup(k: &mut DeviceKernelDef) -> u32 {
    let mut fires = 0u32;
    let body = std::mem::take(&mut k.body);
    let body = Stmt::rewrite_exprs(body, &mut |e| {
        let before = e.clone();
        let out = widen_fold(e);
        if out != before {
            fires += 1;
        }
        out
    });
    let body = collapse(body, true, &mut fires);
    let body = drop_dead_decls(body, &mut fires);
    k.body = body;
    fires
}

/// Collapse `if (true/false)` statements. A taken arm holding a
/// *top-level* barrier is kept wrapped: inlining it would turn a
/// nested-barrier runtime error into a legal phase boundary.
fn collapse(stmts: Vec<Stmt>, at_top: bool, fires: &mut u32) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::If {
                cond: crate::expr::Expr::ImmBool(t),
                then,
                els,
            } => {
                let taken = if t { then } else { els };
                let hazard = at_top && taken.iter().any(|s| matches!(s, Stmt::Barrier));
                if hazard {
                    out.push(Stmt::If {
                        cond: crate::expr::Expr::ImmBool(t),
                        then: collapse(taken, false, fires),
                        els: Vec::new(),
                    });
                } else {
                    *fires += 1;
                    out.extend(collapse(taken, at_top, fires));
                }
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond,
                then: collapse(then, false, fires),
                els: collapse(els, false, fires),
            }),
            Stmt::For {
                var,
                from,
                to,
                body,
            } => out.push(Stmt::For {
                var,
                from,
                to,
                body: collapse(body, false, fires),
            }),
            other => out.push(other),
        }
    }
    out
}

/// Drop declarations of variables that are never read or assigned
/// anywhere in the body. The initializer's evaluation disappears with
/// the declaration, so it must be incapable of observable effects:
/// literals and builtins only (even transparent arithmetic can trap on
/// integer overflow).
fn drop_dead_decls(stmts: Vec<Stmt>, fires: &mut u32) -> Vec<Stmt> {
    use crate::expr::Expr;
    let mut used: HashSet<String> = HashSet::new();
    Stmt::visit_exprs(&stmts, &mut |e| {
        if let Expr::Var(v) = e {
            used.insert(v.clone());
        }
    });
    Stmt::visit_all(&stmts, &mut |s| {
        if let Stmt::Assign {
            target: LValue::Var(v),
            ..
        } = s
        {
            used.insert(v.clone());
        }
    });
    fn trivial_init(init: &Option<Expr>) -> bool {
        match init {
            None => true,
            Some(e) => {
                let mut ok = true;
                e.visit(&mut |n| {
                    if !matches!(
                        n,
                        Expr::ImmInt(_) | Expr::ImmFloat(_) | Expr::ImmBool(_) | Expr::Builtin(_)
                    ) {
                        ok = false;
                    }
                });
                // Non-leaf arithmetic over literals could still trap or
                // overflow only if it failed to fold; keep those.
                ok && matches!(
                    e,
                    Expr::ImmInt(_) | Expr::ImmFloat(_) | Expr::ImmBool(_) | Expr::Builtin(_)
                )
            }
        }
    }
    fn sweep(stmts: Vec<Stmt>, used: &HashSet<String>, fires: &mut u32) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::Decl { name, ty, init } if !used.contains(&name) && trivial_init(&init) => {
                    let _ = (ty, init);
                    *fires += 1;
                }
                Stmt::If { cond, then, els } => out.push(Stmt::If {
                    cond,
                    then: sweep(then, used, fires),
                    els: sweep(els, used, fires),
                }),
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body: sweep(body, used, fires),
                }),
                other => out.push(other),
            }
        }
        out
    }
    sweep(stmts, &used, fires)
}
