//! Dead-barrier elimination (mechanical half).
//!
//! Which barriers are removable is decided by the race analysis — it
//! owns the phase model and the per-lane footprint evaluation (see
//! `hipacc_analysis::races::removable_barriers`). This module is only
//! the IR surgery: given the ordinals of removable *top-level* barriers
//! (the only kind the engines accept — nested barriers are runtime
//! errors), delete them.
//!
//! Note the `ExecStats::barriers` counter necessarily drops with each
//! removed phase boundary; the translation-validation protocol compares
//! stats *within* an opt level, not across levels, for exactly this
//! reason.

use crate::kernel::DeviceKernelDef;
use crate::stmt::Stmt;
use std::collections::HashSet;

/// Delete the top-level barriers whose ordinal (0-based, in body order)
/// appears in `dead`. Returns how many were removed.
pub fn remove_barriers(k: &mut DeviceKernelDef, dead: &[usize]) -> u32 {
    if dead.is_empty() {
        return 0;
    }
    let dead: HashSet<usize> = dead.iter().copied().collect();
    let mut ord = 0usize;
    let mut removed = 0u32;
    let body = std::mem::take(&mut k.body);
    k.body = body
        .into_iter()
        .filter(|s| {
            if matches!(s, Stmt::Barrier) {
                let drop = dead.contains(&ord);
                ord += 1;
                if drop {
                    removed += 1;
                }
                !drop
            } else {
                true
            }
        })
        .collect();
    removed
}
