//! Thread-varying branch flattening.
//!
//! A statement-level `if` whose condition differs across the threads of
//! a warp forces the SIMD engine off its converged fast path: the warp
//! splits into masked halves and replays both arms. When each arm is a
//! single assignment to the same variable, the branch is equivalent to
//! one unconditional assignment of a `Select` — straight-line code the
//! warp executes converged (the `Select` stays lazy per lane, so loads
//! and stats are untouched).
//!
//! The pass only fires on conditions the uniformity analysis marks
//! thread-*varying*; uniform branches are already converged and keeping
//! them preserves their (cheaper) branch shape. One-sided branches
//! flatten to `v = cond ? a : v`, which requires `v` to already hold a
//! value — the walker tracks initialized names for exactly this check.

use super::{Oracle, WalkConfig};
use crate::expr::Expr;
use crate::kernel::DeviceKernelDef;
use crate::stmt::{LValue, Stmt};
use std::collections::HashSet;

/// Run branch flattening over `k`. Returns the rewrite count.
pub fn flatten_branches<O: Oracle>(k: &mut DeviceKernelDef, o: &mut O) -> u32 {
    let cfg = WalkConfig {
        collapse_ifs: false,
        flatten: true,
    };
    let body = std::mem::take(&mut k.body);
    let (body, fires) = super::run_walker(body, &k.scalars, o, &cfg, &mut |e, _, _| e);
    k.body = body;
    fires
}

/// The pieces of an `if` handed back unchanged when flattening does not
/// apply: `(cond, then, els)`.
pub(super) type Unflattened = (Expr, Vec<Stmt>, Vec<Stmt>);

/// Try to express `if (cond) { then } else { els }` as a single
/// `name = Select(...)` assignment. Returns the pieces unchanged when
/// the shape does not match.
pub(super) fn try_flatten(
    cond: Expr,
    then: Vec<Stmt>,
    els: Vec<Stmt>,
    initialized: &HashSet<String>,
) -> Result<(String, Expr), Unflattened> {
    let single = |arm: &[Stmt]| -> Option<(String, Expr)> {
        match arm {
            [Stmt::Assign {
                target: LValue::Var(v),
                value,
            }] => Some((v.clone(), value.clone())),
            _ => None,
        }
    };
    match (single(&then), single(&els), then.is_empty(), els.is_empty()) {
        (Some((v, a)), Some((w, b)), _, _) if v == w => Ok((v, Expr::select(cond, a, b))),
        (Some((v, a)), None, _, true) if initialized.contains(&v) => {
            let keep = Expr::var(v.clone());
            Ok((v, Expr::select(cond, a, keep)))
        }
        (None, Some((v, b)), true, _) if initialized.contains(&v) => {
            let keep = Expr::var(v.clone());
            Ok((v, Expr::select(cond, keep, b)))
        }
        _ => Err((cond, then, els)),
    }
}
