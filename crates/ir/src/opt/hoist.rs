//! Loop-invariant code motion.
//!
//! Convolution loops in the lowered kernels recompute mask-row bases and
//! staging addresses (`(yf + hy) * mask_w`, `tidY + hy + yf`, …) every
//! iteration. This pass lifts maximal loop-invariant, transparent
//! subexpressions into a fresh declaration in front of the loop. It is
//! purely syntactic — no oracle — so its guards are strict:
//!
//! * the loop must syntactically trip at least once (`ImmInt` bounds
//!   with `from <= to`), otherwise hoisting would introduce an
//!   evaluation the original program never performed;
//! * the candidate must be [`transparent`](super::transparent) (no
//!   memory access, no possible division trap), so moving it is
//!   invisible to `ExecStats` and cannot move a trap;
//! * the candidate must not mention the loop variable, any variable
//!   assigned or declared inside the loop body, or a variable whose
//!   runtime type is unknown;
//! * the candidate's runtime constant kind (`Int`/`Float`/`Bool`) must
//!   be inferable exactly, because a declaration coerces its initializer
//!   to the declared type — the inferred kind makes that coercion the
//!   identity. Variables keep their declared kind only while every
//!   reaching assignment preserves it (assignments do *not* coerce);
//! * candidates are collected — and substituted — only at
//!   *unconditional* positions inside the loop: never under an `If`
//!   (condition included) and never inside a `Select`. The verifier's
//!   bounds pass narrows value ranges through guard conditions by
//!   expression pattern; naming a guarded subexpression before the loop
//!   evaluates it outside the guard's refinement, which turns verified
//!   kernels into unprovable ones (and, for `Select`, would defeat lazy
//!   evaluation of the untaken branch). At unconditional positions the
//!   decl-site and use-site environments are identical, so the verifier
//!   loses nothing.
//!
//! Candidates are substituted largest-first so nested invariants don't
//! shadow their enclosing expression.

use super::transparent;
use crate::expr::{BinOp, Expr, MathFn, TexCoords, UnOp};
use crate::kernel::DeviceKernelDef;
use crate::stmt::{LValue, Stmt};
use crate::ty::ScalarType;
use std::collections::{HashMap, HashSet};

/// Runtime constant kind — what `Const` variant the expression produces.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Kind {
    Int,
    Float,
    Bool,
}

impl Kind {
    fn ty(self) -> ScalarType {
        match self {
            Kind::Int => ScalarType::I32,
            Kind::Float => ScalarType::F32,
            Kind::Bool => ScalarType::Bool,
        }
    }

    fn of_ty(ty: ScalarType) -> Kind {
        match ty {
            ScalarType::I32 | ScalarType::U32 => Kind::Int,
            ScalarType::F32 => Kind::Float,
            ScalarType::Bool => Kind::Bool,
        }
    }
}

/// Run loop-invariant hoisting over `k`. Returns the number of hoisted
/// declarations.
pub fn hoist_invariants(k: &mut DeviceKernelDef) -> u32 {
    let mut env: HashMap<String, Kind> = k
        .scalars
        .iter()
        .map(|p| (p.name.clone(), Kind::of_ty(p.ty)))
        .collect();
    let mut counter = 0u32;
    let mut fires = 0u32;
    let body = std::mem::take(&mut k.body);
    k.body = hoist_in(body, &mut env, &mut counter, &mut fires);
    fires
}

fn assigned_in(stmts: &[Stmt], out: &mut HashSet<String>) {
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: LValue::Var(v),
            ..
        } = s
        {
            out.insert(v.clone());
        }
    });
}

fn declared_in(stmts: &[Stmt], out: &mut HashSet<String>) {
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Decl { name, .. } = s {
            out.insert(name.clone());
        }
    });
}

fn hoist_in(
    stmts: Vec<Stmt>,
    env: &mut HashMap<String, Kind>,
    counter: &mut u32,
    fires: &mut u32,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Decl { name, ty, init } => {
                // The declaration coerces, so the kind is the type's.
                env.insert(name.clone(), Kind::of_ty(ty));
                out.push(Stmt::Decl { name, ty, init });
            }
            Stmt::Assign {
                target: LValue::Var(name),
                value,
            } => {
                // Assignments do not coerce: the variable keeps a known
                // kind only when the assigned value provably matches it.
                match infer_kind(&value, env) {
                    Some(k) if env.get(&name) == Some(&k) => {}
                    _ => {
                        env.remove(&name);
                    }
                }
                out.push(Stmt::Assign {
                    target: LValue::Var(name),
                    value,
                });
            }
            Stmt::If { cond, then, els } => {
                let mut et = env.clone();
                let then = hoist_in(then, &mut et, counter, fires);
                let mut ee = env.clone();
                let els = hoist_in(els, &mut ee, counter, fires);
                let mut assigned = HashSet::new();
                assigned_in(&then, &mut assigned);
                assigned_in(&els, &mut assigned);
                for a in &assigned {
                    env.remove(a);
                }
                out.push(Stmt::If { cond, then, els });
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                // Hoist out of the outermost loop first: anything that
                // leaves this loop leaves every inner one too.
                let (decls, body) = hoist_loop(&var, &from, &to, body, env, counter, fires);
                for d in decls {
                    if let Stmt::Decl { name, ty, .. } = &d {
                        env.insert(name.clone(), Kind::of_ty(*ty));
                    }
                    out.push(d);
                }
                let mut eb = env.clone();
                eb.insert(var.clone(), Kind::Int);
                let body = hoist_in(body, &mut eb, counter, fires);
                let mut assigned = HashSet::new();
                assigned_in(&body, &mut assigned);
                for a in &assigned {
                    env.remove(a);
                }
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            other => out.push(other),
        }
    }
    out
}

fn hoist_loop(
    var: &str,
    from: &Expr,
    to: &Expr,
    body: Vec<Stmt>,
    env: &HashMap<String, Kind>,
    counter: &mut u32,
    fires: &mut u32,
) -> (Vec<Stmt>, Vec<Stmt>) {
    // Must trip at least once, or hoisting introduces an evaluation.
    match (from, to) {
        (Expr::ImmInt(f), Expr::ImmInt(t)) if f <= t => {}
        _ => return (Vec::new(), body),
    }
    let mut forbidden: HashSet<String> = HashSet::new();
    forbidden.insert(var.to_string());
    assigned_in(&body, &mut forbidden);
    declared_in(&body, &mut forbidden);

    let mut candidates: Vec<Expr> = Vec::new();
    visit_unconditional(&body, &mut |e| {
        // Pre-order, so outer subtrees come first; the qualify check
        // below keeps only maximal ones via the size sort plus
        // substitution order.
        if qualifies(e, &forbidden, env) && !candidates.contains(e) {
            candidates.push(e.clone());
        }
    });
    // Largest first: substituting an enclosing candidate consumes its
    // nested ones, which then simply find no occurrences.
    candidates.sort_by_key(|c| std::cmp::Reverse(node_count(c)));

    let mut decls = Vec::new();
    let mut body = body;
    for cand in candidates {
        let mut hits = 0u32;
        let name = format!("_opt_h{counter}");
        body = body
            .into_iter()
            .map(|s| subst_stmt(s, &cand, &name, &mut hits))
            .collect();
        if hits == 0 {
            continue; // swallowed by a larger candidate
        }
        let kind = infer_kind(&cand, env).expect("qualified candidate has a kind");
        decls.push(Stmt::Decl {
            name,
            ty: kind.ty(),
            init: Some(cand),
        });
        *counter += 1;
        *fires += 1;
    }
    (decls, body)
}

/// Visit expressions at unconditional positions only: recurse through
/// loops (their bounds and bodies run whenever the loop is reached) but
/// not into `If` statements, and stop at `Select` nodes. See the module
/// docs for why conditional occurrences must be left alone.
fn visit_unconditional(stmts: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::If { .. } => {}
            Stmt::For { from, to, body, .. } => {
                visit_expr_skip_select(from, f);
                visit_expr_skip_select(to, f);
                visit_unconditional(body, f);
            }
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    visit_expr_skip_select(e, f);
                }
            }
            Stmt::Assign { value, .. } | Stmt::Output(value) => visit_expr_skip_select(value, f),
            Stmt::GlobalStore { idx, value, .. } => {
                visit_expr_skip_select(idx, f);
                visit_expr_skip_select(value, f);
            }
            Stmt::SharedStore { y, x, value, .. } => {
                visit_expr_skip_select(y, f);
                visit_expr_skip_select(x, f);
                visit_expr_skip_select(value, f);
            }
            Stmt::Return | Stmt::Comment(_) | Stmt::Barrier => {}
        }
    }
}

/// Pre-order expression visit that does not descend into `Select`
/// subtrees (the node itself is skipped too — nothing under a lazy
/// conditional is an unconditional occurrence).
fn visit_expr_skip_select(e: &Expr, f: &mut impl FnMut(&Expr)) {
    if matches!(e, Expr::Select(..)) {
        return;
    }
    f(e);
    match e {
        Expr::Unary(_, a) | Expr::Cast(_, a) => visit_expr_skip_select(a, f),
        Expr::Binary(_, a, b) => {
            visit_expr_skip_select(a, f);
            visit_expr_skip_select(b, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                visit_expr_skip_select(a, f);
            }
        }
        Expr::InputAt { dx, dy, .. } | Expr::MaskAt { dx, dy, .. } => {
            visit_expr_skip_select(dx, f);
            visit_expr_skip_select(dy, f);
        }
        Expr::GlobalLoad { idx, .. } | Expr::ConstLoad { idx, .. } => {
            visit_expr_skip_select(idx, f)
        }
        Expr::TexFetch { coords, .. } => match coords {
            TexCoords::Linear(i) => visit_expr_skip_select(i, f),
            TexCoords::Xy(x, y) => {
                visit_expr_skip_select(x, f);
                visit_expr_skip_select(y, f);
            }
        },
        Expr::SharedLoad { y, x, .. } => {
            visit_expr_skip_select(y, f);
            visit_expr_skip_select(x, f);
        }
        _ => {}
    }
}

/// Substitute `cand` → `Var(name)` at unconditional positions of one
/// statement, mirroring [`visit_unconditional`]'s traversal.
fn subst_stmt(s: Stmt, cand: &Expr, name: &str, hits: &mut u32) -> Stmt {
    let mut sub = |e: Expr| subst_expr(e, cand, name, hits);
    match s {
        s @ Stmt::If { .. } => s,
        Stmt::For {
            var,
            from,
            to,
            body,
        } => Stmt::For {
            var,
            from: sub(from),
            to: sub(to),
            body: body
                .into_iter()
                .map(|s| subst_stmt(s, cand, name, hits))
                .collect(),
        },
        Stmt::Decl { name: n, ty, init } => Stmt::Decl {
            name: n,
            ty,
            init: init.map(sub),
        },
        Stmt::Assign { target, value } => Stmt::Assign {
            target,
            value: sub(value),
        },
        Stmt::Output(e) => Stmt::Output(sub(e)),
        Stmt::GlobalStore { buf, idx, value } => {
            let idx = sub(idx);
            Stmt::GlobalStore {
                buf,
                idx,
                value: sub(value),
            }
        }
        Stmt::SharedStore { buf, y, x, value } => {
            let y = sub(y);
            let x = sub(x);
            Stmt::SharedStore {
                buf,
                y,
                x,
                value: sub(value),
            }
        }
        s @ (Stmt::Return | Stmt::Comment(_) | Stmt::Barrier) => s,
    }
}

/// Top-down equality substitution that leaves `Select` subtrees intact.
fn subst_expr(e: Expr, cand: &Expr, name: &str, hits: &mut u32) -> Expr {
    if &e == cand {
        *hits += 1;
        return Expr::var(name);
    }
    match e {
        e @ Expr::Select(..) => e,
        Expr::Unary(op, a) => Expr::Unary(op, Box::new(subst_expr(*a, cand, name, hits))),
        Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(subst_expr(*a, cand, name, hits))),
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(subst_expr(*a, cand, name, hits)),
            Box::new(subst_expr(*b, cand, name, hits)),
        ),
        Expr::Call(f, args) => Expr::Call(
            f,
            args.into_iter()
                .map(|a| subst_expr(a, cand, name, hits))
                .collect(),
        ),
        Expr::InputAt { acc, dx, dy } => Expr::InputAt {
            acc,
            dx: Box::new(subst_expr(*dx, cand, name, hits)),
            dy: Box::new(subst_expr(*dy, cand, name, hits)),
        },
        Expr::MaskAt { mask, dx, dy } => Expr::MaskAt {
            mask,
            dx: Box::new(subst_expr(*dx, cand, name, hits)),
            dy: Box::new(subst_expr(*dy, cand, name, hits)),
        },
        Expr::GlobalLoad { buf, idx } => Expr::GlobalLoad {
            buf,
            idx: Box::new(subst_expr(*idx, cand, name, hits)),
        },
        Expr::ConstLoad { buf, idx } => Expr::ConstLoad {
            buf,
            idx: Box::new(subst_expr(*idx, cand, name, hits)),
        },
        Expr::TexFetch { buf, coords } => Expr::TexFetch {
            buf,
            coords: match coords {
                TexCoords::Linear(i) => {
                    TexCoords::Linear(Box::new(subst_expr(*i, cand, name, hits)))
                }
                TexCoords::Xy(x, y) => TexCoords::Xy(
                    Box::new(subst_expr(*x, cand, name, hits)),
                    Box::new(subst_expr(*y, cand, name, hits)),
                ),
            },
        },
        Expr::SharedLoad { buf, y, x } => {
            let y = Box::new(subst_expr(*y, cand, name, hits));
            let x = Box::new(subst_expr(*x, cand, name, hits));
            Expr::SharedLoad { buf, y, x }
        }
        leaf => leaf,
    }
}

fn qualifies(e: &Expr, forbidden: &HashSet<String>, env: &HashMap<String, Kind>) -> bool {
    if node_count(e) < 2 || !transparent(e) {
        return false;
    }
    let mut clean = true;
    e.visit(&mut |n| {
        if let Expr::Var(v) = n {
            if forbidden.contains(v) {
                clean = false;
            }
        }
    });
    clean && infer_kind(e, env).is_some()
}

fn node_count(e: &Expr) -> usize {
    let mut n = 0;
    e.visit(&mut |_| n += 1);
    n
}

/// Predict the runtime `Const` kind of `e`, or `None` when any operand
/// kind is unknown or the operation's result kind is input-dependent in
/// a way we cannot see. Mirrors `fold`'s evaluators: integer `min`/`max`
/// stay `Int`, `abs` always widens to `Float`, mixed arithmetic widens
/// to `Float`, `%` is only allowed fully integer (the float path errors
/// at runtime).
fn infer_kind(e: &Expr, env: &HashMap<String, Kind>) -> Option<Kind> {
    match e {
        Expr::ImmInt(_) | Expr::Builtin(_) => Some(Kind::Int),
        Expr::ImmFloat(_) => Some(Kind::Float),
        Expr::ImmBool(_) => Some(Kind::Bool),
        Expr::Var(v) => env.get(v).copied(),
        Expr::Unary(UnOp::Neg, a) => match infer_kind(a, env)? {
            Kind::Bool => None, // runtime error: leave it in place
            k => Some(k),
        },
        Expr::Unary(UnOp::Not, a) => {
            infer_kind(a, env)?;
            Some(Kind::Bool)
        }
        Expr::Binary(op, a, b) => {
            let (ka, kb) = (infer_kind(a, env)?, infer_kind(b, env)?);
            if op.is_comparison() {
                return Some(Kind::Bool);
            }
            match (op, ka, kb) {
                (_, Kind::Bool, _) | (_, _, Kind::Bool) => None,
                (_, Kind::Int, Kind::Int) => Some(Kind::Int),
                // Float % anything errors at runtime; don't move it.
                (BinOp::Rem, _, _) => None,
                _ => Some(Kind::Float),
            }
        }
        Expr::Call(f, args) => {
            let kinds: Option<Vec<Kind>> = args.iter().map(|a| infer_kind(a, env)).collect();
            let kinds = kinds?;
            match f {
                MathFn::Min | MathFn::Max => {
                    if kinds.iter().all(|k| *k == Kind::Int) {
                        Some(Kind::Int)
                    } else {
                        Some(Kind::Float)
                    }
                }
                // Everything else — including abs — produces Float.
                _ => Some(Kind::Float),
            }
        }
        Expr::Cast(ty, a) => {
            infer_kind(a, env)?;
            Some(Kind::of_ty(*ty))
        }
        Expr::Select(c, a, b) => {
            infer_kind(c, env)?;
            let (ka, kb) = (infer_kind(a, env)?, infer_kind(b, env)?);
            if ka == kb {
                Some(ka)
            } else {
                None
            }
        }
        // Loads never qualify (not transparent), and the DSL-level nodes
        // are gone after lowering; refuse them all.
        Expr::GlobalLoad { .. }
        | Expr::TexFetch {
            coords: TexCoords::Linear(_) | TexCoords::Xy(_, _),
            ..
        }
        | Expr::ConstLoad { .. }
        | Expr::SharedLoad { .. }
        | Expr::InputAt { .. }
        | Expr::MaskAt { .. }
        | Expr::OutputX
        | Expr::OutputY => None,
    }
}
