//! Loop unrolling for convolution loops (Section VIII outlook).
//!
//! After constant propagation the convolution loops of a local operator
//! have literal bounds (`for (yf = -6; yf <= 6; ++yf)`); fully unrolling
//! them and substituting the loop variable exposes every mask coefficient
//! as a constant, which [`crate::fold`] then propagates — the combination
//! the paper describes for the `convolve(cMask, SUM, …)` lambda syntax.

use crate::expr::Expr;
use crate::fold::{eval_const, fold_expr};
use crate::kernel::KernelDef;
use crate::stmt::{LValue, Stmt};
use std::collections::HashMap;

/// Substitute `var := value` in a statement list, respecting shadowing: a
/// redeclaration of `var` (by `Decl` or an inner loop with the same
/// variable) stops the substitution for the shadowed region.
fn subst_stmts(stmts: Vec<Stmt>, var: &str, value: &Expr) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    let mut shadowed = false;
    for s in stmts {
        if shadowed {
            out.push(s);
            continue;
        }
        let subst_expr = |e: Expr| {
            e.rewrite(&mut |n| {
                if matches!(&n, Expr::Var(v) if v == var) {
                    value.clone()
                } else {
                    n
                }
            })
        };
        match s {
            Stmt::Decl { name, ty, init } => {
                let init = init.map(subst_expr);
                if name == var {
                    shadowed = true;
                }
                out.push(Stmt::Decl { name, ty, init });
            }
            Stmt::For {
                var: lv,
                from,
                to,
                body,
            } => {
                let from = subst_expr(from);
                let to = subst_expr(to);
                let body = if lv == var {
                    body // inner loop shadows; leave its body alone
                } else {
                    subst_stmts(body, var, value)
                };
                out.push(Stmt::For {
                    var: lv,
                    from,
                    to,
                    body,
                });
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond: subst_expr(cond),
                then: subst_stmts(then, var, value),
                els: subst_stmts(els, var, value),
            }),
            other => {
                let mut rewritten = Stmt::rewrite_exprs(vec![other], &mut |n| {
                    if matches!(&n, Expr::Var(v) if v == var) {
                        value.clone()
                    } else {
                        n
                    }
                });
                out.append(&mut rewritten);
            }
        }
    }
    out
}

/// Rename every occurrence of variable `old` (declarations, assignment
/// targets and uses) to `new`. The shadowing structure is preserved, so
/// semantics are unchanged as long as `new` is fresh.
fn rename_var(stmts: Vec<Stmt>, old: &str, new: &str) -> Vec<Stmt> {
    let renamed = Stmt::rewrite_exprs(stmts, &mut |e| {
        if matches!(&e, Expr::Var(v) if v == old) {
            Expr::var(new)
        } else {
            e
        }
    });
    renamed
        .into_iter()
        .map(|s| match s {
            Stmt::Decl { name, ty, init } => Stmt::Decl {
                name: if name == old { new.to_string() } else { name },
                ty,
                init,
            },
            Stmt::Assign {
                target: LValue::Var(n),
                value,
            } => Stmt::Assign {
                target: LValue::Var(if n == old { new.to_string() } else { n }),
                value,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => Stmt::For {
                var,
                from,
                to,
                body: rename_var(body, old, new),
            },
            Stmt::If { cond, then, els } => Stmt::If {
                cond,
                then: rename_var(then, old, new),
                els: rename_var(els, old, new),
            },
            other => other,
        })
        .collect()
}

/// Collect all names declared by `Decl` statements at any depth.
fn declared_names(stmts: &[Stmt]) -> Vec<String> {
    let mut names = Vec::new();
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Decl { name, .. } = s {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    });
    names
}

/// Statistics reported by an unrolling pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnrollStats {
    /// Loops fully unrolled.
    pub unrolled: u32,
    /// Loops left intact (non-constant bounds or over budget).
    pub kept: u32,
}

/// Format an iteration index as an identifier-safe suffix (`m` for minus).
fn iter_tag(i: i64) -> String {
    if i < 0 {
        format!("m{}", -i)
    } else {
        i.to_string()
    }
}

/// Unroll every loop whose trip count is a compile-time constant not
/// exceeding `max_trip`. Nested loops unroll inside-out, so a 13×13
/// convolution becomes 169 straight-line statement groups when the budget
/// allows. Declarations inside unrolled bodies are renamed per iteration
/// (`diff` → `diff_xfm2`) so the flattened code stays well-formed C.
pub fn unroll_stmts(stmts: Vec<Stmt>, max_trip: u32, stats: &mut UnrollStats) -> Vec<Stmt> {
    let empty = HashMap::new();
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let body = unroll_stmts(body, max_trip, stats);
                let from_c = eval_const(&from, &empty);
                let to_c = eval_const(&to, &empty);
                if let (Some(f), Some(t)) = (from_c, to_c) {
                    let (f, t) = (f.as_i64(), t.as_i64());
                    let trip = (t - f + 1).max(0) as u64;
                    if trip <= max_trip as u64 {
                        stats.unrolled += 1;
                        let decls = declared_names(&body);
                        for i in f..=t {
                            let mut iter_body = body.clone();
                            for name in &decls {
                                let fresh = format!("{name}_{var}{}", iter_tag(i));
                                iter_body = rename_var(iter_body, name, &fresh);
                            }
                            out.extend(subst_stmts(iter_body, &var, &Expr::int(i)));
                        }
                        continue;
                    }
                }
                stats.kept += 1;
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond,
                then: unroll_stmts(then, max_trip, stats),
                els: unroll_stmts(els, max_trip, stats),
            }),
            other => out.push(other),
        }
    }
    out
}

/// Unroll a DSL kernel's constant-bound loops, then fold the result so the
/// now-constant offsets simplify.
pub fn unroll_kernel(kernel: &KernelDef, max_trip: u32) -> (KernelDef, UnrollStats) {
    let mut stats = UnrollStats::default();
    let body = unroll_stmts(kernel.body.clone(), max_trip, &mut stats);
    let body = Stmt::rewrite_exprs(body, &mut |e| fold_expr(e, &HashMap::new()));
    (
        KernelDef {
            body,
            ..kernel.clone()
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::ScalarType;

    #[test]
    fn unrolls_constant_loop() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::int(2),
            body: vec![Stmt::Assign {
                target: LValue::Var("acc".into()),
                value: Expr::var("acc") + Expr::var("i").cast(ScalarType::F32),
            }],
        }];
        let mut stats = UnrollStats::default();
        let out = unroll_stmts(stmts, 16, &mut stats);
        assert_eq!(stats.unrolled, 1);
        assert_eq!(out.len(), 3);
        match &out[2] {
            Stmt::Assign { value, .. } => {
                let printed =
                    crate::display::expr_to_string(value, &crate::display::NeutralRenderer);
                assert_eq!(printed, "acc + (float)2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keeps_loops_over_budget() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::int(99),
            body: vec![],
        }];
        let mut stats = UnrollStats::default();
        let out = unroll_stmts(stmts, 16, &mut stats);
        assert_eq!(stats.kept, 1);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Stmt::For { .. }));
    }

    #[test]
    fn keeps_symbolic_bounds() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::var("n"),
            body: vec![],
        }];
        let mut stats = UnrollStats::default();
        let out = unroll_stmts(stmts, 1024, &mut stats);
        assert_eq!(stats.kept, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nested_loops_unroll_to_product() {
        let stmts = vec![Stmt::For {
            var: "y".into(),
            from: Expr::int(-1),
            to: Expr::int(1),
            body: vec![Stmt::For {
                var: "x".into(),
                from: Expr::int(-1),
                to: Expr::int(1),
                body: vec![Stmt::Assign {
                    target: LValue::Var("acc".into()),
                    value: Expr::var("acc") + Expr::input_at("IN", Expr::var("x"), Expr::var("y")),
                }],
            }],
        }];
        let mut stats = UnrollStats::default();
        let out = unroll_stmts(stmts, 16, &mut stats);
        assert_eq!(out.len(), 9);
        // Every offset pair appears exactly once.
        let mut offsets = Vec::new();
        Stmt::visit_exprs(&out, &mut |e| {
            if let Expr::InputAt { dx, dy, .. } = e {
                if let (Expr::ImmInt(a), Expr::ImmInt(b)) = (&**dx, &**dy) {
                    offsets.push((*a, *b));
                }
            }
        });
        offsets.sort_unstable();
        let mut expected: Vec<(i64, i64)> = (-1..=1i64)
            .flat_map(|y| (-1..=1i64).map(move |x| (x, y)))
            .collect();
        expected.sort_unstable();
        assert_eq!(offsets, expected);
    }

    #[test]
    fn unrolled_declarations_get_unique_names() {
        let stmts = vec![Stmt::For {
            var: "xf".into(),
            from: Expr::int(-1),
            to: Expr::int(1),
            body: vec![Stmt::Decl {
                name: "diff".into(),
                ty: ScalarType::F32,
                init: Some(Expr::var("xf").cast(ScalarType::F32)),
            }],
        }];
        let mut stats = UnrollStats::default();
        let out = unroll_stmts(stmts, 8, &mut stats);
        let names = declared_names(&out);
        assert_eq!(
            names,
            vec![
                "diff_xfm1".to_string(),
                "diff_xf0".into(),
                "diff_xf1".into()
            ]
        );
    }

    #[test]
    fn shadowed_variable_not_substituted() {
        // The loop body redeclares a variable named like an outer one the
        // substitution must not touch past the redeclaration point.
        let body = vec![
            Stmt::Assign {
                target: LValue::Var("a".into()),
                value: Expr::var("i"),
            },
            Stmt::Decl {
                name: "i".into(),
                ty: ScalarType::I32,
                init: Some(Expr::int(42)),
            },
            Stmt::Assign {
                target: LValue::Var("a".into()),
                value: Expr::var("i"), // refers to the *inner* i
            },
        ];
        let out = subst_stmts(body, "i", &Expr::int(7));
        match &out[0] {
            Stmt::Assign { value, .. } => assert_eq!(*value, Expr::int(7)),
            other => panic!("unexpected {other:?}"),
        }
        match &out[2] {
            Stmt::Assign { value, .. } => assert_eq!(*value, Expr::var("i")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unroll_kernel_folds_offsets_and_typechecks() {
        use crate::builder::KernelBuilder;
        let mut b = KernelBuilder::new("blur", ScalarType::F32);
        let input = b.accessor("IN", ScalarType::F32);
        let acc = b.let_("acc", ScalarType::F32, Expr::float(0.0));
        let input2 = input.clone();
        b.for_inclusive("xf", Expr::int(-1), Expr::int(1), |b, xf| {
            let d = b.let_(
                "d",
                ScalarType::F32,
                b.read_at(&input2, xf.get(), Expr::int(0)),
            );
            b.add_assign(&acc, d.get());
        });
        b.output(acc.get() / Expr::float(3.0));
        let kernel = b.finish();
        let (unrolled, stats) = unroll_kernel(&kernel, 8);
        assert_eq!(stats.unrolled, 1);
        // No loops remain.
        let mut loops = 0;
        Stmt::visit_all(&unrolled.body, &mut |s| {
            if matches!(s, Stmt::For { .. }) {
                loops += 1;
            }
        });
        assert_eq!(loops, 0);
        // And the flattened kernel still passes the DSL type check (no
        // duplicate declarations).
        crate::typecheck::check_dsl(&unrolled).expect("unrolled kernel well-formed");
    }
}
