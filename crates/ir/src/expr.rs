//! Expression nodes of the kernel IR.

use crate::ty::ScalarType;

/// Binary operators. Comparison and logic operators produce
/// `ScalarType::Bool`; the rest preserve
/// their operand type.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// C `%` (truncated remainder; may be negative for negative operands).
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// The C spelling of the operator.
    pub fn c_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Whether the result type is boolean regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        ) || matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Abstract mathematical functions.
///
/// The IR keeps these *unsuffixed*; the paper's "function mapping" happens
/// at codegen time (CUDA preserves the `f` suffix — `expf` — while OpenCL
/// overloads `exp`; optionally CUDA maps to the hardware-accelerated
/// `__expf`). Min/max on integers are emitted as `min`/`max`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MathFn {
    Exp,
    Log,
    Sqrt,
    Rsqrt,
    Abs,
    Sin,
    Cos,
    Pow,
    Min,
    Max,
    Floor,
    Round,
}

impl MathFn {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Pow | MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// Whether evaluating the function uses the GPU's special-function
    /// units (transcendentals). Drives the timing model's SFU accounting.
    pub fn uses_sfu(self) -> bool {
        matches!(
            self,
            MathFn::Exp
                | MathFn::Log
                | MathFn::Sqrt
                | MathFn::Rsqrt
                | MathFn::Sin
                | MathFn::Cos
                | MathFn::Pow
        )
    }

    /// Canonical (abstract) name used by the IR printer.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Sqrt => "sqrt",
            MathFn::Rsqrt => "rsqrt",
            MathFn::Abs => "abs",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Pow => "pow",
            MathFn::Min => "min",
            MathFn::Max => "max",
            MathFn::Floor => "floor",
            MathFn::Round => "round",
        }
    }
}

/// Device-level builtin values (CUDA spellings; OpenCL equivalents are
/// substituted by the OpenCL backend: `get_local_id(0)`, `get_group_id(0)`,
/// `get_local_size(0)`, `get_num_groups(0)`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Builtin {
    ThreadIdxX,
    ThreadIdxY,
    BlockIdxX,
    BlockIdxY,
    BlockDimX,
    BlockDimY,
    GridDimX,
    GridDimY,
}

impl Builtin {
    /// CUDA spelling.
    pub fn cuda_name(self) -> &'static str {
        match self {
            Builtin::ThreadIdxX => "threadIdx.x",
            Builtin::ThreadIdxY => "threadIdx.y",
            Builtin::BlockIdxX => "blockIdx.x",
            Builtin::BlockIdxY => "blockIdx.y",
            Builtin::BlockDimX => "blockDim.x",
            Builtin::BlockDimY => "blockDim.y",
            Builtin::GridDimX => "gridDim.x",
            Builtin::GridDimY => "gridDim.y",
        }
    }

    /// OpenCL spelling.
    pub fn opencl_name(self) -> &'static str {
        match self {
            Builtin::ThreadIdxX => "get_local_id(0)",
            Builtin::ThreadIdxY => "get_local_id(1)",
            Builtin::BlockIdxX => "get_group_id(0)",
            Builtin::BlockIdxY => "get_group_id(1)",
            Builtin::BlockDimX => "get_local_size(0)",
            Builtin::BlockDimY => "get_local_size(1)",
            Builtin::GridDimX => "get_num_groups(0)",
            Builtin::GridDimY => "get_num_groups(1)",
        }
    }
}

/// Texture coordinate forms (see Section IV-A of the paper).
#[derive(Clone, Debug, PartialEq)]
pub enum TexCoords {
    /// CUDA `tex1Dfetch` on linear memory: a single linear element index.
    Linear(Box<Expr>),
    /// CUDA 2-D texture / OpenCL image object: `(x, y)` coordinates. The
    /// hardware address mode (boundary handling) is attached to the texture
    /// binding, not the fetch.
    Xy(Box<Expr>, Box<Expr>),
}

/// Expression nodes. DSL-level kernels use the first group plus
/// `InputAt`/`MaskAt`/`OutputX`/`OutputY`; the compiler lowers those into
/// the device-level group.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    ImmInt(i64),
    /// Float literal.
    ImmFloat(f32),
    /// Boolean literal.
    ImmBool(bool),
    /// Reference to a declared variable or kernel parameter.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Mathematical function call.
    Call(MathFn, Vec<Expr>),
    /// Explicit conversion, `(type)expr`.
    Cast(ScalarType, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),

    // ---- DSL level ----
    /// `Input(dx, dy)` — read the accessor named `acc` at the window offset
    /// `(dx, dy)` relative to the output pixel. `Input()` is offset (0, 0).
    InputAt {
        /// Accessor name, as declared on the kernel.
        acc: String,
        /// Column offset expression.
        dx: Box<Expr>,
        /// Row offset expression.
        dy: Box<Expr>,
    },
    /// `Mask(dx, dy)` — read a filter-mask coefficient.
    MaskAt {
        /// Mask name, as declared on the kernel.
        mask: String,
        /// Column offset expression.
        dx: Box<Expr>,
        /// Row offset expression.
        dy: Box<Expr>,
    },
    /// The output pixel's x coordinate within the iteration space.
    OutputX,
    /// The output pixel's y coordinate within the iteration space.
    OutputY,

    // ---- Device level ----
    /// Thread/block builtin.
    Builtin(Builtin),
    /// `buf[idx]` from global memory.
    GlobalLoad {
        /// Global buffer (kernel parameter) name.
        buf: String,
        /// Linear element index.
        idx: Box<Expr>,
    },
    /// Texture fetch (read-only cached path).
    TexFetch {
        /// Texture reference / image object name.
        buf: String,
        /// Coordinate form.
        coords: TexCoords,
    },
    /// `cbuf[idx]` from constant memory.
    ConstLoad {
        /// Constant buffer name.
        buf: String,
        /// Linear element index.
        idx: Box<Expr>,
    },
    /// `smem[y][x]` from scratchpad memory.
    SharedLoad {
        /// Shared array name.
        buf: String,
        /// Row index.
        y: Box<Expr>,
        /// Column index.
        x: Box<Expr>,
    },
}

impl Expr {
    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::ImmInt(v)
    }

    /// Float literal helper.
    pub fn float(v: f32) -> Expr {
        Expr::ImmFloat(v)
    }

    /// Variable reference helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `Input()` at the center offset.
    pub fn input_center(acc: impl Into<String>) -> Expr {
        Expr::InputAt {
            acc: acc.into(),
            dx: Box::new(Expr::int(0)),
            dy: Box::new(Expr::int(0)),
        }
    }

    /// `Input(dx, dy)` with expression offsets.
    pub fn input_at(acc: impl Into<String>, dx: Expr, dy: Expr) -> Expr {
        Expr::InputAt {
            acc: acc.into(),
            dx: Box::new(dx),
            dy: Box::new(dy),
        }
    }

    /// `Mask(dx, dy)` with expression offsets.
    pub fn mask_at(mask: impl Into<String>, dx: Expr, dy: Expr) -> Expr {
        Expr::MaskAt {
            mask: mask.into(),
            dx: Box::new(dx),
            dy: Box::new(dy),
        }
    }

    /// Unary math call.
    pub fn call1(f: MathFn, a: Expr) -> Expr {
        debug_assert_eq!(f.arity(), 1);
        Expr::Call(f, vec![a])
    }

    /// Binary math call.
    pub fn call2(f: MathFn, a: Expr, b: Expr) -> Expr {
        debug_assert_eq!(f.arity(), 2);
        Expr::Call(f, vec![a, b])
    }

    /// `exp(a)` helper — the workhorse of the bilateral filter.
    pub fn exp(a: Expr) -> Expr {
        Expr::call1(MathFn::Exp, a)
    }

    /// `min(a, b)` helper.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::call2(MathFn::Min, a, b)
    }

    /// `max(a, b)` helper.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::call2(MathFn::Max, a, b)
    }

    /// Comparison helper, `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper, `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper, `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper, `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// Comparison helper, `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// Logical and.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// Logical or.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// C remainder.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// Cast to another scalar type.
    pub fn cast(self, ty: ScalarType) -> Expr {
        Expr::Cast(ty, Box::new(self))
    }

    /// Ternary select.
    pub fn select(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, a) | Expr::Cast(_, a) => a.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Select(c, a, b) => {
                c.visit(f);
                a.visit(f);
                b.visit(f);
            }
            Expr::InputAt { dx, dy, .. } | Expr::MaskAt { dx, dy, .. } => {
                dx.visit(f);
                dy.visit(f);
            }
            Expr::GlobalLoad { idx, .. } | Expr::ConstLoad { idx, .. } => idx.visit(f),
            Expr::TexFetch { coords, .. } => match coords {
                TexCoords::Linear(i) => i.visit(f),
                TexCoords::Xy(x, y) => {
                    x.visit(f);
                    y.visit(f);
                }
            },
            Expr::SharedLoad { y, x, .. } => {
                y.visit(f);
                x.visit(f);
            }
            Expr::ImmInt(_)
            | Expr::ImmFloat(_)
            | Expr::ImmBool(_)
            | Expr::Var(_)
            | Expr::OutputX
            | Expr::OutputY
            | Expr::Builtin(_) => {}
        }
    }

    /// Rewrite every sub-expression bottom-up through `f`.
    pub fn rewrite(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Unary(op, a) => Expr::Unary(op, Box::new(a.rewrite(f))),
            Expr::Cast(ty, a) => Expr::Cast(ty, Box::new(a.rewrite(f))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(op, Box::new(a.rewrite(f)), Box::new(b.rewrite(f)))
            }
            Expr::Call(func, args) => {
                Expr::Call(func, args.into_iter().map(|a| a.rewrite(f)).collect())
            }
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.rewrite(f)),
                Box::new(a.rewrite(f)),
                Box::new(b.rewrite(f)),
            ),
            Expr::InputAt { acc, dx, dy } => Expr::InputAt {
                acc,
                dx: Box::new(dx.rewrite(f)),
                dy: Box::new(dy.rewrite(f)),
            },
            Expr::MaskAt { mask, dx, dy } => Expr::MaskAt {
                mask,
                dx: Box::new(dx.rewrite(f)),
                dy: Box::new(dy.rewrite(f)),
            },
            Expr::GlobalLoad { buf, idx } => Expr::GlobalLoad {
                buf,
                idx: Box::new(idx.rewrite(f)),
            },
            Expr::ConstLoad { buf, idx } => Expr::ConstLoad {
                buf,
                idx: Box::new(idx.rewrite(f)),
            },
            Expr::TexFetch { buf, coords } => Expr::TexFetch {
                buf,
                coords: match coords {
                    TexCoords::Linear(i) => TexCoords::Linear(Box::new(i.rewrite(f))),
                    TexCoords::Xy(x, y) => {
                        TexCoords::Xy(Box::new(x.rewrite(f)), Box::new(y.rewrite(f)))
                    }
                },
            },
            Expr::SharedLoad { buf, y, x } => Expr::SharedLoad {
                buf,
                y: Box::new(y.rewrite(f)),
                x: Box::new(x.rewrite(f)),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }
}

// Operator overloads for ergonomic kernel construction.
impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_overloads_build_binaries() {
        let e = Expr::var("a") + Expr::int(1) * Expr::var("b");
        match e {
            Expr::Binary(BinOp::Add, lhs, rhs) => {
                assert_eq!(*lhs, Expr::var("a"));
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn visit_reaches_every_node() {
        let e = Expr::exp(-(Expr::var("c") * Expr::input_at("IN", Expr::var("xf"), Expr::int(0))));
        let mut count = 0usize;
        let mut inputs = 0usize;
        e.visit(&mut |n| {
            count += 1;
            if matches!(n, Expr::InputAt { .. }) {
                inputs += 1;
            }
        });
        // exp, neg, mul, var c, input, var xf, imm 0 = 7 nodes.
        assert_eq!(count, 7);
        assert_eq!(inputs, 1);
    }

    #[test]
    fn rewrite_substitutes_variables() {
        let e = Expr::var("sigma") + Expr::int(1);
        let out = e.rewrite(&mut |n| {
            if n == Expr::var("sigma") {
                Expr::int(3)
            } else {
                n
            }
        });
        assert_eq!(out, Expr::int(3) + Expr::int(1));
    }

    #[test]
    fn mathfn_arity_and_sfu() {
        assert_eq!(MathFn::Exp.arity(), 1);
        assert_eq!(MathFn::Pow.arity(), 2);
        assert!(MathFn::Exp.uses_sfu());
        assert!(MathFn::Rsqrt.uses_sfu());
        assert!(!MathFn::Abs.uses_sfu());
        assert!(!MathFn::Min.uses_sfu());
    }

    #[test]
    fn builtin_names_differ_per_backend() {
        assert_eq!(Builtin::ThreadIdxX.cuda_name(), "threadIdx.x");
        assert_eq!(Builtin::ThreadIdxX.opencl_name(), "get_local_id(0)");
        assert_eq!(Builtin::GridDimY.cuda_name(), "gridDim.y");
        assert_eq!(Builtin::GridDimY.opencl_name(), "get_num_groups(1)");
    }

    #[test]
    fn comparison_ops_are_boolean() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Le.c_symbol(), "<=");
    }
}
