//! # hipacc-ir
//!
//! The typed kernel IR that plays the role of the Clang AST in the paper's
//! source-to-source compiler.
//!
//! The paper parses C++ kernel methods with Clang and manipulates the AST;
//! we instead let DSL kernels *construct* an equivalent AST through
//! [`builder::KernelBuilder`], and every later stage of the pipeline —
//! read/write analysis, constant propagation, loop unrolling, memory-space
//! lowering, CUDA/OpenCL emission, functional simulation — operates on this
//! IR.
//!
//! Two *levels* share one AST:
//!
//! * **DSL level** — what the programmer writes: [`Expr::InputAt`] /
//!   [`Expr::MaskAt`] / [`Stmt::Output`] plus ordinary arithmetic and
//!   control flow. No notion of threads or memory spaces.
//! * **Device level** — what the compiler produces: explicit thread/block
//!   builtins, global/texture/constant/shared memory operations and
//!   barriers. The functional simulator executes this level.
//!
//! [`typecheck`] enforces well-formedness and can restrict a kernel to one
//! level; [`access`] implements the paper's read/write analysis over a
//! [`cfg`](mod@cfg); [`fold`] and [`unroll`] implement the Section VIII outlook
//! optimizations (constant propagation and convolution-loop unrolling);
//! [`metrics`] derives the dynamic operation counts that feed the hardware
//! model and the analytical timing model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod builder;
pub mod cfg;
pub mod display;
pub mod expr;
pub mod fold;
pub mod fuse;
pub mod kernel;
pub mod metrics;
pub mod opt;
pub mod stmt;
pub mod ty;
pub mod typecheck;
pub mod unroll;

pub use builder::KernelBuilder;
pub use expr::{BinOp, Builtin, Expr, MathFn, TexCoords, UnOp};
pub use fuse::{FuseError, FusedStage, FusionChain};
pub use kernel::{AccessorDecl, KernelDef, MaskDecl, ParamDecl};
pub use stmt::{LValue, Stmt};
pub use ty::{Const, ScalarType};
