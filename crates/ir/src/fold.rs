//! Constant evaluation, constant propagation and algebraic simplification.
//!
//! Section VIII of the paper lists constant propagation (together with loop
//! unrolling) as the key outlook optimization for local operators: once the
//! filter-mask coefficients and `sigma` parameters are compile-time
//! constants, per-pixel recomputation (`c_d`, `exp` of constants, …)
//! disappears from the generated kernel. This module implements that pass
//! over the IR; [`crate::unroll`] builds on it.

use crate::expr::{BinOp, Expr, MathFn, UnOp};
use crate::kernel::KernelDef;
use crate::stmt::{LValue, Stmt};
use crate::ty::{Const, ScalarType};
use std::collections::{HashMap, HashSet};

/// Evaluate a binary operation on constants with C semantics.
pub fn eval_binop(op: BinOp, a: Const, b: Const) -> Option<Const> {
    use BinOp::*;
    // Comparisons and logic first.
    match op {
        And => return Some(Const::Bool(a.as_bool() && b.as_bool())),
        Or => return Some(Const::Bool(a.as_bool() || b.as_bool())),
        Eq | Ne | Lt | Le | Gt | Ge => {
            let (x, y) = (a.as_f32(), b.as_f32());
            let r = match op {
                Eq => x == y,
                Ne => x != y,
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            };
            return Some(Const::Bool(r));
        }
        _ => {}
    }
    // Arithmetic: integer if both are ints, else float.
    match (a, b) {
        (Const::Int(x), Const::Int(y)) => {
            let r = match op {
                Add => x.checked_add(y)?,
                Sub => x.checked_sub(y)?,
                Mul => x.checked_mul(y)?,
                Div => {
                    if y == 0 {
                        return None;
                    }
                    x / y
                }
                Rem => {
                    if y == 0 {
                        return None;
                    }
                    x % y
                }
                _ => unreachable!(),
            };
            Some(Const::Int(r))
        }
        _ => {
            let (x, y) = (a.as_f32(), b.as_f32());
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => return None, // % on floats is rejected by typecheck
                _ => unreachable!(),
            };
            Some(Const::Float(r))
        }
    }
}

/// Evaluate a unary operation on a constant.
pub fn eval_unop(op: UnOp, a: Const) -> Option<Const> {
    match (op, a) {
        (UnOp::Neg, Const::Int(i)) => Some(Const::Int(-i)),
        (UnOp::Neg, Const::Float(f)) => Some(Const::Float(-f)),
        (UnOp::Not, c) => Some(Const::Bool(!c.as_bool())),
        (UnOp::Neg, Const::Bool(_)) => None,
    }
}

/// Evaluate a math function on constants.
pub fn eval_mathfn(f: MathFn, args: &[Const]) -> Option<Const> {
    let x = args.first()?.as_f32();
    let r = match f {
        MathFn::Exp => x.exp(),
        MathFn::Log => x.ln(),
        MathFn::Sqrt => x.sqrt(),
        MathFn::Rsqrt => 1.0 / x.sqrt(),
        MathFn::Abs => x.abs(),
        MathFn::Sin => x.sin(),
        MathFn::Cos => x.cos(),
        MathFn::Floor => x.floor(),
        MathFn::Round => x.round(),
        MathFn::Pow => x.powf(args.get(1)?.as_f32()),
        MathFn::Min | MathFn::Max => {
            let y = *args.get(1)?;
            // Integer min/max stay integer.
            if let (Const::Int(a), Const::Int(b)) = (args[0], y) {
                return Some(Const::Int(if f == MathFn::Min {
                    a.min(b)
                } else {
                    a.max(b)
                }));
            }
            let y = y.as_f32();
            if f == MathFn::Min {
                x.min(y)
            } else {
                x.max(y)
            }
        }
    };
    Some(Const::Float(r))
}

/// Try to evaluate a *pure* expression to a constant under a variable
/// environment. Memory reads, accessor reads and builtins are opaque.
pub fn eval_const(e: &Expr, env: &HashMap<String, Const>) -> Option<Const> {
    match e {
        Expr::ImmInt(i) => Some(Const::Int(*i)),
        Expr::ImmFloat(f) => Some(Const::Float(*f)),
        Expr::ImmBool(b) => Some(Const::Bool(*b)),
        Expr::Var(n) => env.get(n).copied(),
        Expr::Unary(op, a) => eval_unop(*op, eval_const(a, env)?),
        Expr::Binary(op, a, b) => eval_binop(*op, eval_const(a, env)?, eval_const(b, env)?),
        Expr::Call(f, args) => {
            let vals: Option<Vec<Const>> = args.iter().map(|a| eval_const(a, env)).collect();
            eval_mathfn(*f, &vals?)
        }
        Expr::Cast(ty, a) => {
            let v = eval_const(a, env)?;
            Some(match ty {
                ScalarType::F32 => Const::Float(v.as_f32()),
                ScalarType::I32 | ScalarType::U32 => Const::Int(v.as_i64()),
                ScalarType::Bool => Const::Bool(v.as_bool()),
            })
        }
        Expr::Select(c, a, b) => {
            if eval_const(c, env)?.as_bool() {
                eval_const(a, env)
            } else {
                eval_const(b, env)
            }
        }
        _ => None,
    }
}

fn const_to_expr(c: Const) -> Expr {
    match c {
        Const::Bool(b) => Expr::ImmBool(b),
        Const::Int(i) => Expr::ImmInt(i),
        Const::Float(f) => Expr::ImmFloat(f),
    }
}

fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::ImmInt(0)) || matches!(e, Expr::ImmFloat(f) if *f == 0.0)
}

fn is_one(e: &Expr) -> bool {
    matches!(e, Expr::ImmInt(1)) || matches!(e, Expr::ImmFloat(f) if *f == 1.0)
}

/// Fold an expression bottom-up under an environment: constant subtrees
/// become literals and trivial algebraic identities are removed
/// (`x + 0`, `x * 1`, `x * 0` — all IR expressions are pure, so dropping
/// operands is sound).
pub fn fold_expr(e: Expr, env: &HashMap<String, Const>) -> Expr {
    e.rewrite(&mut |node| {
        if let Some(c) = eval_const(&node, env) {
            // Keep float NaN/inf out of generated source.
            if let Const::Float(f) = c {
                if !f.is_finite() {
                    return node;
                }
            }
            return const_to_expr(c);
        }
        match node {
            Expr::Binary(BinOp::Add, a, b) => {
                if is_zero(&a) {
                    *b
                } else if is_zero(&b) {
                    *a
                } else {
                    Expr::Binary(BinOp::Add, a, b)
                }
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                if is_zero(&b) {
                    *a
                } else {
                    Expr::Binary(BinOp::Sub, a, b)
                }
            }
            Expr::Binary(BinOp::Mul, a, b) => {
                if is_one(&a) {
                    *b
                } else if is_one(&b) || is_zero(&a) {
                    // x*1 = x; 0*y = 0 (the zero literal itself).
                    *a
                } else if is_zero(&b) {
                    *b
                } else {
                    Expr::Binary(BinOp::Mul, a, b)
                }
            }
            Expr::Binary(BinOp::Div, a, b) => {
                if is_one(&b) {
                    *a
                } else {
                    Expr::Binary(BinOp::Div, a, b)
                }
            }
            Expr::Select(c, a, b) => match *c {
                Expr::ImmBool(true) => *a,
                Expr::ImmBool(false) => *b,
                c => Expr::Select(Box::new(c), a, b),
            },
            other => other,
        }
    })
}

/// Widened, *device-safe* single-node simplification used by the
/// optimizer's cleanup pass (`ir::opt`). Unlike [`fold_expr`]'s
/// identities, every rewrite here is observationally invisible on the
/// lowered device IR, where subexpressions may carry counted memory
/// accesses or traps:
///
/// * constant subtrees fold (such a subtree is literal-only, so it can
///   neither access memory nor trap — division by a constant zero
///   refuses to fold);
/// * identities only ever drop a *literal* operand (`x-0`, `x*1`,
///   `1*x`, `x/1` — but not `x+0`, which flips the sign of a float
///   `-0.0` and would break bit-identity) or an operand the engines
///   provably never evaluate
///   (the untaken branch of a literal `Select`, the right side of a
///   short-circuited `false && _` / `true || _`);
/// * boolean widenings: `b && true → b`, `b || false → b`, `!!b → b`,
///   gated on `b` being syntactically boolean so the result's constant
///   kind is unchanged.
///
/// The input is a single node whose children are already simplified (the
/// shape `Expr::rewrite` hands out); callers drive it bottom-up.
pub fn widen_fold(node: Expr) -> Expr {
    let empty = HashMap::new();
    if let Some(c) = eval_const(&node, &empty) {
        if !matches!(c, Const::Float(f) if !f.is_finite()) {
            return const_to_expr(c);
        }
    }
    fn boolish(e: &Expr) -> bool {
        matches!(e, Expr::ImmBool(_) | Expr::Unary(UnOp::Not, _))
            || matches!(e, Expr::Binary(op, _, _) if op.is_comparison())
    }
    // `x - (-0.0)` is not identity for `x = -0.0`; only drop `+0.0`.
    let is_pos_zero = |e: &Expr| {
        matches!(e, Expr::ImmInt(0))
            || matches!(e, Expr::ImmFloat(f) if *f == 0.0 && !f.is_sign_negative())
    };
    match node {
        Expr::Binary(BinOp::Sub, a, b) if is_pos_zero(&b) => *a,
        Expr::Binary(BinOp::Mul, a, b) => {
            if is_one(&a) {
                *b
            } else if is_one(&b) {
                *a
            } else {
                Expr::Binary(BinOp::Mul, a, b)
            }
        }
        Expr::Binary(BinOp::Div, a, b) if is_one(&b) => *a,
        Expr::Binary(BinOp::And, a, b) => match (&*a, &*b) {
            // false && _ short-circuits: b never runs.
            (Expr::ImmBool(false), _) => Expr::ImmBool(false),
            (Expr::ImmBool(true), _) if boolish(&b) => *b,
            (_, Expr::ImmBool(true)) if boolish(&a) => *a,
            _ => Expr::Binary(BinOp::And, a, b),
        },
        Expr::Binary(BinOp::Or, a, b) => match (&*a, &*b) {
            // true || _ short-circuits: b never runs.
            (Expr::ImmBool(true), _) => Expr::ImmBool(true),
            (Expr::ImmBool(false), _) if boolish(&b) => *b,
            (_, Expr::ImmBool(false)) if boolish(&a) => *a,
            _ => Expr::Binary(BinOp::Or, a, b),
        },
        Expr::Unary(UnOp::Not, a) => match *a {
            Expr::Unary(UnOp::Not, inner) if boolish(&inner) => *inner,
            a => Expr::Unary(UnOp::Not, Box::new(a)),
        },
        Expr::Select(c, a, b) => match *c {
            // Lazy: the untaken branch never evaluated.
            Expr::ImmBool(true) => *a,
            Expr::ImmBool(false) => *b,
            c => Expr::Select(Box::new(c), a, b),
        },
        other => other,
    }
}

/// Names of variables that are ever the target of an assignment.
fn assigned_vars(stmts: &[Stmt]) -> HashSet<String> {
    let mut set = HashSet::new();
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: LValue::Var(n),
            ..
        } = s
        {
            set.insert(n.clone());
        }
    });
    set
}

/// Names of variables referenced anywhere in expressions.
fn used_vars(stmts: &[Stmt]) -> HashSet<String> {
    let mut set = HashSet::new();
    Stmt::visit_exprs(stmts, &mut |e| {
        if let Expr::Var(n) = e {
            set.insert(n.clone());
        }
    });
    set
}

fn fold_stmts(
    stmts: Vec<Stmt>,
    env: &mut HashMap<String, Const>,
    never_assigned: &HashSet<String>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Decl { name, ty, init } => {
                let init = init.map(|e| fold_expr(e, env));
                // A write-once variable with a constant initializer joins
                // the environment so later uses fold away.
                if never_assigned.contains(&name) {
                    if let Some(e) = &init {
                        if let Some(c) = eval_const(e, env) {
                            env.insert(name.clone(), c);
                        }
                    }
                }
                out.push(Stmt::Decl { name, ty, init });
            }
            Stmt::Assign { target, value } => {
                let LValue::Var(ref n) = target;
                // Conservatively drop any stale binding for reassigned vars.
                env.remove(n);
                out.push(Stmt::Assign {
                    target,
                    value: fold_expr(value, env),
                });
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let from = fold_expr(from, env);
                let to = fold_expr(to, env);
                // The loop variable varies: it must not be in the env.
                let saved = env.remove(&var);
                let body = fold_stmts(body, env, never_assigned);
                if let Some(c) = saved {
                    env.insert(var.clone(), c);
                }
                out.push(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                });
            }
            Stmt::If { cond, then, els } => {
                let cond = fold_expr(cond, env);
                match cond {
                    // Statically decided branches collapse entirely.
                    Expr::ImmBool(true) => {
                        out.extend(fold_stmts(then, env, never_assigned));
                    }
                    Expr::ImmBool(false) => {
                        out.extend(fold_stmts(els, env, never_assigned));
                    }
                    cond => {
                        let then = fold_stmts(then, &mut env.clone(), never_assigned);
                        let els = fold_stmts(els, &mut env.clone(), never_assigned);
                        out.push(Stmt::If { cond, then, els });
                    }
                }
            }
            Stmt::Output(e) => out.push(Stmt::Output(fold_expr(e, env))),
            Stmt::GlobalStore { buf, idx, value } => out.push(Stmt::GlobalStore {
                buf,
                idx: fold_expr(idx, env),
                value: fold_expr(value, env),
            }),
            Stmt::SharedStore { buf, y, x, value } => out.push(Stmt::SharedStore {
                buf,
                y: fold_expr(y, env),
                x: fold_expr(x, env),
                value: fold_expr(value, env),
            }),
            other @ (Stmt::Return | Stmt::Comment(_) | Stmt::Barrier) => out.push(other),
        }
    }
    out
}

/// Remove declarations of variables that are never read and never
/// reassigned (their initializers are pure, so dropping them is sound).
fn eliminate_dead_decls(stmts: Vec<Stmt>) -> Vec<Stmt> {
    let used = used_vars(&stmts);
    let assigned = assigned_vars(&stmts);
    fn walk(stmts: Vec<Stmt>, used: &HashSet<String>, assigned: &HashSet<String>) -> Vec<Stmt> {
        stmts
            .into_iter()
            .filter_map(|s| match s {
                Stmt::Decl { ref name, .. } if !used.contains(name) && !assigned.contains(name) => {
                    None
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => Some(Stmt::For {
                    var,
                    from,
                    to,
                    body: walk(body, used, assigned),
                }),
                Stmt::If { cond, then, els } => Some(Stmt::If {
                    cond,
                    then: walk(then, used, assigned),
                    els: walk(els, used, assigned),
                }),
                other => Some(other),
            })
            .collect()
    }
    walk(stmts, &used, &assigned)
}

/// Specialize a DSL kernel for known scalar-parameter values: substitute
/// the bindings, propagate write-once constant locals, fold constant
/// subtrees, collapse statically-decided branches, and drop dead
/// declarations. Bound parameters remain in the signature (the generated
/// code simply no longer reads them).
pub fn specialize_kernel(kernel: &KernelDef, bindings: &HashMap<String, Const>) -> KernelDef {
    let mut env = bindings.clone();
    // A bound parameter that the kernel reassigns must not be propagated:
    // its runtime value diverges from the binding after the assignment.
    for n in assigned_vars(&kernel.body) {
        env.remove(&n);
    }
    let never_assigned: HashSet<String> = {
        let assigned = assigned_vars(&kernel.body);
        let mut all = HashSet::new();
        Stmt::visit_all(&kernel.body, &mut |s| {
            if let Stmt::Decl { name, .. } = s {
                all.insert(name.clone());
            }
        });
        all.difference(&assigned).cloned().collect()
    };
    let body = fold_stmts(kernel.body.clone(), &mut env, &never_assigned);
    let body = eliminate_dead_decls(body);
    KernelDef {
        body,
        ..kernel.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> HashMap<String, Const> {
        HashMap::new()
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = (Expr::int(2) + Expr::int(3)) * Expr::int(4);
        assert_eq!(fold_expr(e, &env()), Expr::int(20));
    }

    #[test]
    fn folds_through_variables_in_env() {
        let mut env = env();
        env.insert("sigma_d".into(), Const::Int(3));
        let e = Expr::int(-2) * Expr::var("sigma_d");
        assert_eq!(fold_expr(e, &env), Expr::int(-6));
    }

    #[test]
    fn folds_exp_of_constant() {
        let e = Expr::exp(Expr::float(0.0));
        assert_eq!(fold_expr(e, &env()), Expr::float(1.0));
    }

    #[test]
    fn keeps_nonconstant_subtrees() {
        let e = Expr::var("x") + (Expr::int(1) + Expr::int(2));
        assert_eq!(fold_expr(e, &env()), Expr::var("x") + Expr::int(3));
    }

    #[test]
    fn algebraic_identities() {
        let x = || Expr::var("x");
        assert_eq!(fold_expr(x() + Expr::float(0.0), &env()), x());
        assert_eq!(fold_expr(x() * Expr::float(1.0), &env()), x());
        assert_eq!(fold_expr(x() * Expr::float(0.0), &env()), Expr::float(0.0));
        assert_eq!(fold_expr(x() - Expr::int(0), &env()), x());
        assert_eq!(fold_expr(x() / Expr::float(1.0), &env()), x());
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::int(1) / Expr::int(0);
        // Left intact for the backend to deal with (C UB is not our UB).
        assert_eq!(fold_expr(e.clone(), &env()), e);
        let e = Expr::float(1.0) / Expr::float(0.0);
        assert_eq!(fold_expr(e.clone(), &env()), e); // inf is not emitted
    }

    #[test]
    fn c_truncating_cast() {
        let e = Expr::float(2.9).cast(ScalarType::I32);
        assert_eq!(fold_expr(e, &env()), Expr::int(2));
        let e = Expr::float(-2.9).cast(ScalarType::I32);
        assert_eq!(fold_expr(e, &env()), Expr::int(-2));
    }

    #[test]
    fn rem_euclid_identity_on_constants() {
        // ((i % n) + n) % n for i = -1, n = 4 folds to 3.
        let e = (Expr::int(-1).rem(Expr::int(4)) + Expr::int(4)).rem(Expr::int(4));
        assert_eq!(fold_expr(e, &env()), Expr::int(3));
    }

    #[test]
    fn specialize_removes_param_computation() {
        // Mimic Listing 1: c_r = 1/(2*sigma_r*sigma_r) folds to a constant
        // once sigma_r is bound, and d += c_r * x uses the literal.
        let kernel = KernelDef {
            name: "k".into(),
            pixel: ScalarType::F32,
            params: vec![crate::kernel::ParamDecl {
                name: "sigma_r".into(),
                ty: ScalarType::I32,
            }],
            accessors: vec![crate::kernel::AccessorDecl {
                name: "IN".into(),
                ty: ScalarType::F32,
            }],
            masks: vec![],
            body: vec![
                Stmt::Decl {
                    name: "c_r".into(),
                    ty: ScalarType::F32,
                    init: Some(
                        Expr::float(1.0)
                            / (Expr::float(2.0)
                                * Expr::var("sigma_r").cast(ScalarType::F32)
                                * Expr::var("sigma_r").cast(ScalarType::F32)),
                    ),
                },
                Stmt::Output(Expr::var("c_r") * Expr::input_center("IN")),
            ],
        };
        let mut bindings = HashMap::new();
        bindings.insert("sigma_r".to_string(), Const::Int(5));
        let spec = specialize_kernel(&kernel, &bindings);
        // The c_r declaration is dead and removed; output uses 0.02f.
        assert_eq!(spec.body.len(), 1);
        match &spec.body[0] {
            Stmt::Output(Expr::Binary(BinOp::Mul, a, _)) => {
                assert_eq!(**a, Expr::float(1.0 / 50.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn specialize_collapses_static_branches() {
        let kernel = KernelDef {
            name: "k".into(),
            pixel: ScalarType::F32,
            params: vec![crate::kernel::ParamDecl {
                name: "flag".into(),
                ty: ScalarType::I32,
            }],
            accessors: vec![crate::kernel::AccessorDecl {
                name: "IN".into(),
                ty: ScalarType::F32,
            }],
            masks: vec![],
            body: vec![Stmt::If {
                cond: Expr::var("flag").gt(Expr::int(0)),
                then: vec![Stmt::Output(Expr::float(1.0))],
                els: vec![Stmt::Output(Expr::float(2.0))],
            }],
        };
        let mut b = HashMap::new();
        b.insert("flag".to_string(), Const::Int(1));
        let spec = specialize_kernel(&kernel, &b);
        assert_eq!(spec.body, vec![Stmt::Output(Expr::float(1.0))]);
        let mut b = HashMap::new();
        b.insert("flag".to_string(), Const::Int(0));
        let spec = specialize_kernel(&kernel, &b);
        assert_eq!(spec.body, vec![Stmt::Output(Expr::float(2.0))]);
    }

    #[test]
    fn reassigned_variables_are_not_propagated() {
        let kernel = KernelDef {
            name: "k".into(),
            pixel: ScalarType::F32,
            params: vec![],
            accessors: vec![crate::kernel::AccessorDecl {
                name: "IN".into(),
                ty: ScalarType::F32,
            }],
            masks: vec![],
            body: vec![
                Stmt::Decl {
                    name: "acc".into(),
                    ty: ScalarType::F32,
                    init: Some(Expr::float(0.0)),
                },
                Stmt::Assign {
                    target: LValue::Var("acc".into()),
                    value: Expr::var("acc") + Expr::input_center("IN"),
                },
                Stmt::Output(Expr::var("acc")),
            ],
        };
        let spec = specialize_kernel(&kernel, &HashMap::new());
        // `acc` must survive: it is reassigned.
        assert_eq!(spec.body.len(), 3);
        match &spec.body[1] {
            Stmt::Assign { value, .. } => {
                // acc + IN() must NOT have become 0.0 + IN().
                assert!(matches!(value, Expr::Binary(BinOp::Add, a, _)
                        if **a == Expr::var("acc")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
