//! Criterion benches regenerating the Gaussian tables (VIII and IX),
//! including the OpenCV comparator rows with both PPT mappings.
//!
//! ```text
//! cargo bench -p hipacc-bench --bench tables_gaussian
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hipacc_bench::tables::gaussian_table;
use hipacc_core::Target;
use hipacc_hwmodel::device::{quadro_fx_5800, tesla_c2050};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_tables");
    group.sample_size(10);
    for (table_no, device) in [(8u32, tesla_c2050()), (9, quadro_fx_5800())] {
        for size in [3u32, 5] {
            let target = Target::cuda(device.clone());
            group.bench_function(
                format!("table_{table_no}_{}x{size}_{}", size, device.name),
                |b| {
                    b.iter(|| {
                        let t = gaussian_table(black_box(&target), size, table_no);
                        assert_eq!(t.rows.len(), 8);
                        black_box(t)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
