//! Criterion benches regenerating the bilateral-filter tables (II–VII).
//!
//! One benchmark per paper table. Each iteration rebuilds the full table —
//! 10–12 implementation rows × 5 boundary modes, each cell running the
//! complete pipeline (DSL → analysis → lowering → Algorithm 2 → emission →
//! analytical timing) at the paper's 4096² / 13×13 scale.
//!
//! ```text
//! cargo bench -p hipacc-bench --bench tables_bilateral
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hipacc_bench::tables::bilateral_table;
use hipacc_core::Target;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("bilateral_tables");
    group.sample_size(10);
    for (i, target) in Target::evaluation_targets().into_iter().enumerate() {
        let table_no = 2 + i as u32;
        group.bench_function(format!("table_{table_no}_{}", target.label()), |b| {
            b.iter(|| {
                let t = bilateral_table(black_box(&target), table_no);
                assert!(t.rows.len() >= 10);
                black_box(t)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
