//! Criterion benches for the functional SIMT interpreter: how fast the
//! simulated GPU executes generated kernels on the host. These are host-
//! performance benchmarks of the substrate itself (the table numbers come
//! from the analytical model, not from these wall-clock times).
//!
//! ```text
//! cargo bench -p hipacc-bench --bench simulator
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hipacc_core::Target;
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::boxf::box_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let target = Target::cuda(tesla_c2050());
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);

    let img128 = phantom::vessel_tree(128, 128, &phantom::VesselParams::default());
    group.throughput(Throughput::Elements(128 * 128));
    group.bench_function("gaussian_3x3_128", |b| {
        let op = gaussian_operator(3, 0.8, BoundaryMode::Clamp);
        b.iter(|| black_box(op.execute(&[("Input", &img128)], &target).unwrap()))
    });
    group.bench_function("box_5x5_128", |b| {
        let op = box_operator(5, 5, BoundaryMode::Mirror);
        b.iter(|| black_box(op.execute(&[("Input", &img128)], &target).unwrap()))
    });

    let img64 = phantom::vessel_tree(64, 64, &phantom::VesselParams::default());
    group.throughput(Throughput::Elements(64 * 64));
    group.bench_function("bilateral_5x5_64", |b| {
        let op = bilateral_operator(1, 5, true, BoundaryMode::Clamp);
        b.iter(|| black_box(op.execute(&[("Input", &img64)], &target).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
