//! Criterion bench over the ablation suite: each iteration recomputes the
//! modelled effect of one design choice (region specialization, constant
//! masks, the configuration heuristic, AMD vectorization) at the paper's
//! 4096² scale.
//!
//! ```text
//! cargo bench -p hipacc-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hipacc_bench::ablation;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("region_specialization", |b| {
        b.iter(|| {
            let a = ablation::ablate_region_specialization();
            assert!(a.factor() > 1.0);
            black_box(a)
        })
    });
    group.bench_function("constant_masks", |b| {
        b.iter(|| black_box(ablation::ablate_constant_masks()))
    });
    group.bench_function("config_heuristic", |b| {
        b.iter(|| black_box(ablation::ablate_config_heuristic()))
    });
    group.bench_function("amd_vectorization", |b| {
        b.iter(|| black_box(ablation::ablate_vectorization()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
