//! Tree-walk vs bytecode vs simd execution-engine comparison.
//!
//! Measures the simulator's three engines on the same compiled device
//! kernels — the paper's 5×5 Gaussian and the 5×5 bilateral filter — and
//! prints the speedup of the bytecode register machine and the
//! warp-vectorized simd engine over the reference tree-walking
//! interpreter. The device kernel is compiled from the DSL once outside
//! the timed region, so the comparison isolates launch + execution (the
//! part the bytecode and simd engines restructure).
//!
//! ```text
//! cargo bench -p hipacc-bench --bench engine
//! ```

use criterion::{criterion_group, criterion_main, time_median, Criterion, Throughput};
use hipacc_core::pipeline::launch_spec;
use hipacc_core::{Engine, Operator, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_sim::run_on_image_with;
use std::hint::black_box;

const SIZE: u32 = 128;
const SAMPLES: usize = 8;

/// Compare the three engines on one operator; returns (tree-walk,
/// bytecode, simd) median times and asserts the engines still agree
/// bit-for-bit on output and statistics.
fn compare(op: &Operator, img: &Image<f32>, name: &str) -> (f64, f64, f64) {
    let target = Target::cuda(tesla_c2050());
    let compiled = op.compile(&target, img.width(), img.height()).unwrap();
    let spec = launch_spec(&compiled, &[("Input", img)], &op.params, &op.mask_uploads);

    let ref_out = run_on_image_with(&compiled.device_kernel, &spec, Engine::TreeWalk).unwrap();
    for engine in [Engine::Bytecode, Engine::Simd] {
        let out = run_on_image_with(&compiled.device_kernel, &spec, engine).unwrap();
        assert_eq!(
            ref_out.stats,
            out.stats,
            "{name}: {} stats diverge",
            engine.label()
        );
        assert_eq!(
            ref_out.output.max_abs_diff(&out.output),
            0.0,
            "{name}: {} outputs diverge",
            engine.label()
        );
    }

    let time = |engine: Engine| {
        time_median(SAMPLES, || {
            black_box(run_on_image_with(&compiled.device_kernel, &spec, engine).unwrap())
        })
        .as_secs_f64()
    };
    (
        time(Engine::TreeWalk),
        time(Engine::Bytecode),
        time(Engine::Simd),
    )
}

fn bench_engines(c: &mut Criterion) {
    let img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
    let opt_level = hipacc_bench::enginebench::opt_level_from_env();
    let mut group = c.benchmark_group("engine");
    group.sample_size(SAMPLES);
    group.throughput(Throughput::Elements((SIZE * SIZE) as u64));

    let mut benches: Vec<(&str, Operator)> = vec![
        (
            "gaussian_5x5",
            gaussian_operator(5, 1.0, BoundaryMode::Clamp),
        ),
        (
            "bilateral_5x5",
            bilateral_operator(1, 5, true, BoundaryMode::Clamp),
        ),
    ];
    for (_, op) in &mut benches {
        op.options.opt_level = opt_level;
    }

    let mut report = Vec::new();
    for (name, op) in &benches {
        let (tree, bc, simd) = compare(op, &img, name);
        report.push((*name, tree, bc, simd));
        // Standard criterion lines for each engine as well, so the bench
        // output stays comparable across runs.
        let target = Target::cuda(tesla_c2050());
        let compiled = op.compile(&target, img.width(), img.height()).unwrap();
        let spec = launch_spec(&compiled, &[("Input", &img)], &op.params, &op.mask_uploads);
        for (suffix, engine) in [
            ("treewalk", Engine::TreeWalk),
            ("bytecode", Engine::Bytecode),
            ("simd", Engine::Simd),
        ] {
            group.bench_function(format!("{name}_{suffix}"), |b| {
                b.iter(|| {
                    black_box(run_on_image_with(&compiled.device_kernel, &spec, engine).unwrap())
                })
            });
        }
    }
    group.finish();

    println!("\nengine speedup over tree-walk, {SIZE}x{SIZE}, opt {opt_level}:");
    for (name, tree, bc, simd) in &report {
        println!(
            "  {name:<16} tree-walk {:>8.2} ms   bytecode {:>8.2} ms ({:>5.2}x)   simd {:>8.2} ms ({:>5.2}x, {:>5.2}x vs bytecode)",
            tree * 1e3,
            bc * 1e3,
            tree / bc,
            simd * 1e3,
            tree / simd,
            bc / simd
        );
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
