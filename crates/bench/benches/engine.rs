//! Tree-walk vs bytecode execution-engine comparison.
//!
//! Measures the simulator's two engines on the same compiled device
//! kernels — the paper's 5×5 Gaussian and the 5×5 bilateral filter — and
//! prints the speedup of the bytecode register machine over the reference
//! tree-walking interpreter. The device kernel is compiled from the DSL
//! once outside the timed region, so the comparison isolates launch +
//! execution (the part the bytecode engine restructures).
//!
//! ```text
//! cargo bench -p hipacc-bench --bench engine
//! ```

use criterion::{criterion_group, criterion_main, time_median, Criterion, Throughput};
use hipacc_core::pipeline::launch_spec;
use hipacc_core::{Engine, Operator, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_sim::run_on_image_with;
use std::hint::black_box;

const SIZE: u32 = 128;
const SAMPLES: usize = 8;

/// Compare both engines on one operator; returns (tree-walk, bytecode)
/// median times and asserts the engines still agree on the output.
fn compare(op: &Operator, img: &Image<f32>, name: &str) -> (f64, f64) {
    let target = Target::cuda(tesla_c2050());
    let compiled = op.compile(&target, img.width(), img.height()).unwrap();
    let spec = launch_spec(&compiled, &[("Input", img)], &op.params, &op.mask_uploads);

    let ref_out = run_on_image_with(&compiled.device_kernel, &spec, Engine::TreeWalk).unwrap();
    let bc_out = run_on_image_with(&compiled.device_kernel, &spec, Engine::Bytecode).unwrap();
    assert_eq!(ref_out.stats, bc_out.stats, "{name}: engine stats diverge");
    assert_eq!(
        ref_out.output.max_abs_diff(&bc_out.output),
        0.0,
        "{name}: engine outputs diverge"
    );

    let tree = time_median(SAMPLES, || {
        black_box(run_on_image_with(&compiled.device_kernel, &spec, Engine::TreeWalk).unwrap())
    });
    let bc = time_median(SAMPLES, || {
        black_box(run_on_image_with(&compiled.device_kernel, &spec, Engine::Bytecode).unwrap())
    });
    (tree.as_secs_f64(), bc.as_secs_f64())
}

fn bench_engines(c: &mut Criterion) {
    let img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
    let mut group = c.benchmark_group("engine");
    group.sample_size(SAMPLES);
    group.throughput(Throughput::Elements((SIZE * SIZE) as u64));

    let benches: Vec<(&str, Operator)> = vec![
        (
            "gaussian_5x5",
            gaussian_operator(5, 1.0, BoundaryMode::Clamp),
        ),
        (
            "bilateral_5x5",
            bilateral_operator(1, 5, true, BoundaryMode::Clamp),
        ),
    ];

    let mut report = Vec::new();
    for (name, op) in &benches {
        let (tree, bc) = compare(op, &img, name);
        report.push((*name, tree, bc));
        // Standard criterion lines for each engine as well, so the bench
        // output stays comparable across runs.
        let target = Target::cuda(tesla_c2050());
        let compiled = op.compile(&target, img.width(), img.height()).unwrap();
        let spec = launch_spec(&compiled, &[("Input", &img)], &op.params, &op.mask_uploads);
        group.bench_function(format!("{name}_treewalk"), |b| {
            b.iter(|| {
                black_box(
                    run_on_image_with(&compiled.device_kernel, &spec, Engine::TreeWalk).unwrap(),
                )
            })
        });
        group.bench_function(format!("{name}_bytecode"), |b| {
            b.iter(|| {
                black_box(
                    run_on_image_with(&compiled.device_kernel, &spec, Engine::Bytecode).unwrap(),
                )
            })
        });
    }
    group.finish();

    println!("\nengine speedup (tree-walk / bytecode), {SIZE}x{SIZE}:");
    for (name, tree, bc) in &report {
        println!(
            "  {name:<16} tree-walk {:>8.2} ms   bytecode {:>8.2} ms   speedup {:>5.2}x",
            tree * 1e3,
            bc * 1e3,
            tree / bc
        );
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
