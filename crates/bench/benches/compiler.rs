//! Criterion benches for the source-to-source compiler itself: lowering,
//! nine-region specialization, configuration selection and text emission,
//! plus the Section-VIII optimization passes (constant propagation and
//! loop unrolling) as ablations.
//!
//! ```text
//! cargo bench -p hipacc-bench --bench compiler
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hipacc_codegen::{BoundarySpec, CompileSpec, Compiler};
use hipacc_core::Target;
use hipacc_filters::bilateral::bilateral_masked_kernel;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_hwmodel::Backend;
use hipacc_image::BoundaryMode;
use hipacc_ir::fold::specialize_kernel;
use hipacc_ir::ty::Const;
use hipacc_ir::unroll::unroll_kernel;
use std::collections::HashMap;
use std::hint::black_box;

fn base_spec() -> CompileSpec {
    CompileSpec::new(tesla_c2050(), Backend::Cuda, 4096, 4096)
        .with_boundary("Input", BoundarySpec::new(BoundaryMode::Clamp, 13, 13))
        .with_param("sigma_d", Const::Int(3))
        .with_param("sigma_r", Const::Int(5))
}

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    let kernel = bilateral_masked_kernel(3);
    let _ = Target::cuda(tesla_c2050());

    group.bench_function("full_pipeline_bilateral_cuda", |b| {
        let compiler = Compiler::new();
        let spec = base_spec();
        b.iter(|| black_box(compiler.compile(&kernel, &spec).unwrap()))
    });

    group.bench_function("full_pipeline_bilateral_opencl", |b| {
        let compiler = Compiler::new();
        let mut spec = base_spec();
        spec.backend = Backend::OpenCl;
        b.iter(|| black_box(compiler.compile(&kernel, &spec).unwrap()))
    });

    group.bench_function("constant_propagation_pass", |b| {
        let mut bindings = HashMap::new();
        bindings.insert("sigma_d".to_string(), Const::Int(3));
        bindings.insert("sigma_r".to_string(), Const::Int(5));
        b.iter(|| black_box(specialize_kernel(&kernel, &bindings)))
    });

    group.bench_function("unroll_pass_13x13", |b| {
        let mut bindings = HashMap::new();
        bindings.insert("sigma_d".to_string(), Const::Int(3));
        bindings.insert("sigma_r".to_string(), Const::Int(5));
        let specialized = specialize_kernel(&kernel, &bindings);
        b.iter(|| black_box(unroll_kernel(&specialized, 200)))
    });

    group.bench_function("access_analysis", |b| {
        let mut bindings = HashMap::new();
        bindings.insert("sigma_d".to_string(), Const::Int(3));
        b.iter(|| black_box(hipacc_ir::access::analyze(&kernel, &bindings)))
    });

    group.bench_function("kernel_verifier", |b| {
        let compiler = Compiler::new();
        let spec = base_spec();
        let compiled = compiler.compile(&kernel, &spec).unwrap();
        b.iter(|| black_box(hipacc_codegen::verify_compiled(&compiled, &spec)))
    });

    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
