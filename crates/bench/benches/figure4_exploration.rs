//! Criterion bench for Figure 4: the full configuration-space exploration
//! of the bilateral filter on the Tesla C2050 — every valid launch
//! configuration compiled, its region grid re-derived for the tiling, and
//! its execution time modelled.
//!
//! ```text
//! cargo bench -p hipacc-bench --bench figure4_exploration
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hipacc_bench::figures::figure4;
use std::hint::black_box;

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    group.bench_function("configuration_sweep", |b| {
        b.iter(|| {
            let e = figure4();
            assert!(e.points.len() > 50);
            black_box(e)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
