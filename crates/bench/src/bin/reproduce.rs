//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce --all            # every table and figure, with paper comparison
//! reproduce --table 2        # one table
//! reproduce --figure 4       # one figure
//! reproduce --loc            # the §VI-C lines-of-code metric
//! reproduce --inject 42      # seeded fault-injection drill under the supervisor
//! reproduce --bench-json BENCH_engine.json   # per-engine frame times
//! reproduce --explain A0301  # describe one diagnostic code (or `all`)
//! reproduce --replay PATH    # re-execute recorded stream failures, assert their codes
//! ```

use hipacc_bench::ablation;
use hipacc_bench::figures::{figure3, figure4, loc_metric};
use hipacc_bench::paper;
use hipacc_bench::render::{paired_times, render_comparison, render_csv, render_text, spearman};
use hipacc_bench::tables::{bilateral_table, gaussian_table};
use hipacc_core::Target;
use hipacc_hwmodel::device::{quadro_fx_5800, tesla_c2050};

fn print_table(n: u32) {
    let targets = Target::evaluation_targets();
    match n {
        2..=7 => {
            let model = bilateral_table(&targets[(n - 2) as usize], n);
            let paper = paper::bilateral_tables()[(n - 2) as usize];
            print!("{}", render_comparison(&model, paper));
            let (m, p) = paired_times(&model, paper);
            if m.len() > 2 {
                println!("rank correlation (Spearman): {:.2}\n", spearman(&m, &p));
            }
        }
        8 | 9 => {
            let dev = if n == 8 {
                tesla_c2050()
            } else {
                quadro_fx_5800()
            };
            for (size, pt) in [(3u32, 0usize), (5, 1)] {
                let model = gaussian_table(&Target::cuda(dev.clone()), size, n);
                let paper_entry = paper::gaussian_tables()[if n == 8 { pt } else { 2 + pt }].2;
                print!("{}", render_comparison(&model, paper_entry));
                let (m, p) = paired_times(&model, paper_entry);
                if m.len() > 2 {
                    println!("rank correlation (Spearman): {:.2}\n", spearman(&m, &p));
                }
            }
        }
        _ => eprintln!("unknown table {n} (valid: 2..9)"),
    }
}

fn print_figure(n: u32) {
    match n {
        3 => {
            println!(
                "Figure 3: block-to-region assignment (256x96 image, 32x6 blocks, 13x13 window)"
            );
            for row in figure3(256, 96, (32, 6)) {
                println!("  {row}");
            }
            println!();
        }
        4 => {
            let e = figure4();
            println!(
                "Figure 4: configuration exploration, bilateral 13x13, 4096^2, Tesla C2050 (CUDA)"
            );
            println!(
                "  {:>6} {:>9} {:>10} {:>10}",
                "config", "threads", "occupancy", "time_ms"
            );
            let mut pts = e.points.clone();
            pts.sort_by_key(|p| (p.threads, p.by));
            for p in &pts {
                println!(
                    "  {:>3}x{:<3} {:>8} {:>10.3} {:>10.2}",
                    p.bx, p.by, p.threads, p.occupancy, p.time_ms
                );
            }
            println!(
                "  heuristic choice: {} -> {:.2} ms",
                e.heuristic_choice, e.heuristic_time_ms
            );
            println!(
                "  sweep optimum:    {}x{} -> {:.2} ms",
                e.optimum.bx, e.optimum.by, e.optimum.time_ms
            );
            println!(
                "  paper optimum:    {}x{} -> {:.2} ms\n",
                paper::FIG4_OPTIMUM.0,
                paper::FIG4_OPTIMUM.1,
                paper::FIG4_OPTIMUM.2
            );
        }
        _ => eprintln!("unknown figure {n} (valid: 3, 4)"),
    }
}

fn print_ablations() {
    println!("Ablations: what each design choice is worth (bilateral 13x13, 4096^2)");
    println!(
        "  {:<58} {:>10} {:>10} {:>8}",
        "feature", "with ms", "without", "factor"
    );
    for a in ablation::all_ablations() {
        println!(
            "  {:<58} {:>10.2} {:>10.2} {:>7.2}x",
            a.name,
            a.baseline_ms,
            a.ablated_ms,
            a.factor()
        );
    }
    let (g, s) = ablation::sobel_equals_gaussian();
    println!("  Sobel vs Gaussian 3x3 (paper: identical): {g:.2} vs {s:.2} ms\n");
}

fn print_loc() {
    let (dsl, generated) = loc_metric();
    println!("Lines of code (SVI-C): DSL kernel {dsl} lines -> generated CUDA {generated} lines");
    println!(
        "Paper reported: {} -> {}\n",
        paper::LOC_METRIC.0,
        paper::LOC_METRIC.1
    );
}

/// Profile representative launches (Gaussian 5x5 and bilateral 13x13 on
/// the Tesla C2050) and write the combined Chrome trace to `path`.
fn print_profile(path: &str) {
    use hipacc_filters::bilateral::bilateral_operator;
    use hipacc_filters::gaussian::gaussian_operator;
    use hipacc_image::{phantom, BoundaryMode};

    let image = phantom::vessel_tree(512, 512, &phantom::VesselParams::default());
    let target = Target::cuda(tesla_c2050());
    let mut spans = Vec::new();
    for (label, op) in [
        (
            "gaussian 5x5",
            gaussian_operator(5, 1.1, BoundaryMode::Clamp),
        ),
        (
            "bilateral 13x13",
            bilateral_operator(3, 5, true, BoundaryMode::Clamp),
        ),
    ] {
        let (_, profile) = op
            .execute_profiled(
                &[("Input", &image)],
                &target,
                hipacc_core::Engine::default(),
            )
            .expect("profiled launch");
        profile.cross_check().expect("region cross-check");
        println!("--- {label} ---");
        println!("{}", profile.render_text());
        spans.extend(profile.spans);
    }
    let trace = hipacc_profile::chrome::trace_json(&spans);
    let n = hipacc_profile::chrome::validate(&trace).expect("trace must validate");
    std::fs::write(path, &trace).expect("write trace");
    println!("wrote {n} trace events to {path}\n");
}

/// Run representative filters under the launch supervisor with a seeded
/// fault plan arming every fault class, and print each recovery log.
/// Exits non-zero on silent corruption (a recovered output that is not
/// bit-identical to the fault-free reference).
fn print_inject(seed: u64) {
    use hipacc_core::{Engine, FaultPlan, SupervisorConfig};
    use hipacc_filters::bilateral::bilateral_operator;
    use hipacc_filters::gaussian::gaussian_operator;
    use hipacc_filters::sobel::sobel_operator;
    use hipacc_image::{phantom, BoundaryMode};

    let image = phantom::vessel_tree(256, 256, &phantom::VesselParams::default());
    let target = Target::cuda(tesla_c2050());
    let engine = Engine::default();
    let cfg = SupervisorConfig::default();
    println!("Fault injection drill, seed {seed} (Tesla C2050, CUDA)");
    for (i, (label, op)) in [
        (
            "gaussian 5x5",
            gaussian_operator(5, 1.1, BoundaryMode::Clamp),
        ),
        (
            "bilateral 13x13",
            bilateral_operator(3, 5, true, BoundaryMode::Clamp),
        ),
        ("sobel-x 3x3", sobel_operator(true, BoundaryMode::Clamp)),
    ]
    .into_iter()
    .enumerate()
    {
        // Store and latency faults only: a hang would dominate every run
        // on a grid this size (the hung-worker drill lives in
        // `examples/fault_drill.rs`).
        let plan = FaultPlan {
            seed: seed.wrapping_add(i as u64),
            global_flip_rate: 0.01,
            drop_rate: 0.01,
            poison_boundary_rate: 0.02,
            stall_rate: 0.05,
            stall_us: 20,
            deadline_us: Some(50_000),
            ..FaultPlan::default()
        };
        let reference = op
            .execute_with(&[("Input", &image)], &target, engine)
            .expect("fault-free reference");
        println!("--- {label} ---");
        match op.execute_supervised(&[("Input", &image)], &target, engine, &plan, &cfg) {
            Ok(sup) => {
                if reference.output.max_abs_diff(&sup.execution.output) != 0.0 {
                    eprintln!("SILENT CORRUPTION under {plan}");
                    std::process::exit(1);
                }
                print!("{}", sup.recovery.render_text());
                println!("validated: output bit-identical to fault-free reference\n");
            }
            Err(e) => {
                print!("{}", e.report.render_text());
                println!("surfaced typed error: {}\n", e.error.diagnostic());
            }
        }
    }
}

/// Time every execution engine (tree-walk, bytecode, simd) on the
/// representative cells and write the machine-readable report to `path`
/// (the `BENCH_engine.json` artifact the CI bench-smoke job gates on).
fn print_bench_json(path: &str) {
    use hipacc_bench::enginebench;

    let bench = enginebench::run(enginebench::DEFAULT_SAMPLES)
        .with_streaming()
        .with_fusion();
    print!("{}", bench.render_text());
    std::fs::write(path, bench.to_json()).expect("write bench json");
    println!("wrote engine bench report to {path}\n");
}

/// Re-execute the failing launch(es) a replay file describes — either a
/// single `ReplayBundle` JSON or a stream report carrying a `replay`
/// array — against the canonical streaming chain, and assert each one
/// reproduces exactly the diagnostic code it recorded. Exits non-zero
/// on any mismatch, so CI can gate on bit-deterministic replay.
fn print_replay(path: &str) {
    use hipacc_filters::gaussian::gaussian_operator;
    use hipacc_filters::laplacian::laplacian_operator;
    use hipacc_filters::sobel::sobel_operator;
    use hipacc_image::BoundaryMode;
    use hipacc_profile::json::{self, Value};
    use hipacc_runtime::{replay, ReplayBundle, Stream};

    let text = std::fs::read_to_string(path).expect("read replay file");
    let doc = json::parse(&text).expect("parse replay file");
    let bundles: Vec<ReplayBundle> = match doc
        .as_object()
        .and_then(|o| o.get("replay"))
        .and_then(Value::as_array)
    {
        Some(arr) => arr
            .iter()
            .map(|v| ReplayBundle::from_value(v).expect("bundle in stream report"))
            .collect(),
        None => vec![ReplayBundle::from_value(&doc).expect("replay bundle")],
    };
    if bundles.is_empty() {
        println!("no replay bundles in {path}: nothing failed, nothing to reproduce\n");
        return;
    }
    // The canonical chain of the streaming examples; the bundle's stage
    // names are validated against it by `replay`.
    let m = BoundaryMode::Clamp;
    let chain = Stream::new("replay", Target::cuda(tesla_c2050()))
        .stage("gauss5", gaussian_operator(5, 1.1, m))
        .stage("sobel", sobel_operator(true, m))
        .stage("laplace", laplacian_operator(m));
    let target = Target::cuda(tesla_c2050());
    let mut mismatches = 0u32;
    for b in &bundles {
        match replay(b, chain.stages(), &target) {
            Ok(code) if code == b.expected_code => {
                println!(
                    "replayed frame {} at `{}` (rung `{}`, attempt {}): reproduced {code}",
                    b.seq, b.stage, b.rung, b.attempt
                );
            }
            Ok(code) => {
                eprintln!(
                    "replayed frame {} at `{}`: got {code}, bundle expected {}",
                    b.seq, b.stage, b.expected_code
                );
                mismatches += 1;
            }
            Err(e) => {
                eprintln!("replay of frame {} at `{}` failed: {e}", b.seq, b.stage);
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} bundle(s) did not reproduce their recorded code");
        std::process::exit(1);
    }
    println!(
        "ok: {} replay bundle(s) reproduced their diagnostic codes\n",
        bundles.len()
    );
}

/// Describe one diagnostic code from the stable registry, or the whole
/// registry for `all`. Unknown codes list the valid ones and exit 2.
fn print_explain(code: &str) {
    use hipacc_core::{diagnostic_registry, explain};

    let render = |info: &hipacc_core::CodeInfo| {
        println!("{}  [{}]", info.code, info.origin);
        println!("  {}", info.summary);
        println!("  {}\n", info.advice);
    };
    if code.eq_ignore_ascii_case("all") {
        for info in diagnostic_registry() {
            render(info);
        }
        return;
    }
    match explain(code) {
        Some(info) => render(info),
        None => {
            let known: Vec<&str> = diagnostic_registry().iter().map(|c| c.code).collect();
            eprintln!(
                "unknown diagnostic code {code:?}; known codes: {}",
                known.join(" ")
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut did_anything = false;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                for n in 2..=9 {
                    print_table(n);
                }
                print_figure(3);
                print_figure(4);
                print_loc();
                print_ablations();
                did_anything = true;
            }
            "--table" => {
                i += 1;
                let n: u32 = args[i].parse().expect("table number");
                print_table(n);
                did_anything = true;
            }
            "--figure" => {
                i += 1;
                let n: u32 = args[i].parse().expect("figure number");
                print_figure(n);
                did_anything = true;
            }
            "--loc" => {
                print_loc();
                did_anything = true;
            }
            "--ablation" => {
                print_ablations();
                did_anything = true;
            }
            "--csv" => {
                // Write every model table as CSV into a directory.
                i += 1;
                let dir = std::path::PathBuf::from(&args[i]);
                std::fs::create_dir_all(&dir).expect("create csv dir");
                let targets = Target::evaluation_targets();
                for n in 2u32..=7 {
                    let model = bilateral_table(&targets[(n - 2) as usize], n);
                    std::fs::write(dir.join(format!("table{n}.csv")), render_csv(&model))
                        .expect("write csv");
                }
                for (n, dev) in [(8u32, tesla_c2050()), (9, quadro_fx_5800())] {
                    for size in [3u32, 5] {
                        let model = gaussian_table(&Target::cuda(dev.clone()), size, n);
                        std::fs::write(
                            dir.join(format!("table{n}_{size}x{size}.csv")),
                            render_csv(&model),
                        )
                        .expect("write csv");
                    }
                }
                println!("wrote CSVs to {}", dir.display());
                did_anything = true;
            }
            "--profile" => {
                // Optional trace path; the next flag is not consumed.
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "target/reproduce_profile.json".to_string(),
                };
                print_profile(&path);
                did_anything = true;
            }
            "--bench-json" => {
                i += 1;
                print_bench_json(&args[i]);
                did_anything = true;
            }
            "--explain" => {
                i += 1;
                print_explain(args.get(i).map(String::as_str).unwrap_or("all"));
                did_anything = true;
            }
            "--replay" => {
                i += 1;
                print_replay(&args[i]);
                did_anything = true;
            }
            "--inject" => {
                i += 1;
                let seed: u64 = args[i].parse().expect("injection seed");
                print_inject(seed);
                did_anything = true;
            }
            "--raw" => {
                // Raw model tables without paper comparison.
                i += 1;
                let n: u32 = args[i].parse().expect("table number");
                let targets = Target::evaluation_targets();
                if (2..=7).contains(&n) {
                    let model = bilateral_table(&targets[(n - 2) as usize], n);
                    print!("{}", render_text(&model));
                }
                did_anything = true;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !did_anything {
        eprintln!("usage: reproduce [--all] [--table N] [--figure N] [--loc] [--ablation] [--csv DIR] [--raw N] [--profile [TRACE]] [--inject SEED] [--bench-json PATH] [--explain CODE] [--replay PATH]");
        std::process::exit(2);
    }
}
