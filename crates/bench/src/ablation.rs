//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Each ablation switches one compiler feature off (or on) and reports the
//! modelled effect at the paper's scale — quantifying what each piece of
//! the paper's design is worth.

use crate::tables::{IMAGE, SIGMA_D, SIGMA_R, TABLE_CONFIG};
use hipacc_core::{Operator, PipelineOptions, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device::{radeon_hd_5870, radeon_hd_6970, tesla_c2050};
use hipacc_image::BoundaryMode;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// What was toggled.
    pub name: String,
    /// Baseline time (feature as shipped).
    pub baseline_ms: f64,
    /// Time with the feature toggled.
    pub ablated_ms: f64,
}

impl Ablation {
    /// `ablated / baseline` — above 1 means the feature helps.
    pub fn factor(&self) -> f64 {
        self.ablated_ms / self.baseline_ms
    }
}

fn time_of(op: &Operator, target: &Target) -> f64 {
    let compiled = op
        .compile(target, IMAGE, IMAGE)
        .expect("ablation kernel compiles");
    op.estimate(&compiled, target).total_ms
}

/// Region specialization: the paper's nine-region scheme vs naive
/// boundary handling in every thread (`generic_boundary`).
pub fn ablate_region_specialization() -> Ablation {
    let target = Target::cuda(tesla_c2050());
    let with = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Mirror).with_options(
        PipelineOptions {
            force_config: Some(TABLE_CONFIG),
            ..PipelineOptions::default()
        },
    );
    let without = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Mirror).with_options(
        PipelineOptions {
            force_config: Some(TABLE_CONFIG),
            generic_boundary: true,
            ..PipelineOptions::default()
        },
    );
    Ablation {
        name: "9-region boundary specialization (vs per-access handling)".into(),
        baseline_ms: time_of(&with, &target),
        ablated_ms: time_of(&without, &target),
    }
}

/// Constant-memory masks vs recomputing weights per pixel.
pub fn ablate_constant_masks() -> Ablation {
    let target = Target::cuda(tesla_c2050());
    let with = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp).with_options(
        PipelineOptions {
            force_config: Some(TABLE_CONFIG),
            ..PipelineOptions::default()
        },
    );
    let without = bilateral_operator(SIGMA_D, SIGMA_R, false, BoundaryMode::Clamp).with_options(
        PipelineOptions {
            force_config: Some(TABLE_CONFIG),
            ..PipelineOptions::default()
        },
    );
    Ablation {
        name: "constant-memory filter masks (vs inline recomputation)".into(),
        baseline_ms: time_of(&with, &target),
        ablated_ms: time_of(&without, &target),
    }
}

/// Algorithm-2 configuration selection vs a fixed naive 16x16 block.
pub fn ablate_config_heuristic() -> Ablation {
    let target = Target::cuda(tesla_c2050());
    let auto = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp);
    let fixed = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp).with_options(
        PipelineOptions {
            force_config: Some((32, 1)),
            ..PipelineOptions::default()
        },
    );
    Ablation {
        name: "Algorithm-2 configuration heuristic (vs fixed 32x1)".into(),
        baseline_ms: time_of(&auto, &target),
        ablated_ms: time_of(&fixed, &target),
    }
}

/// Section-VIII vectorization on the AMD VLIW parts.
pub fn ablate_vectorization() -> Vec<Ablation> {
    let mut out = Vec::new();
    for device in [radeon_hd_5870(), radeon_hd_6970()] {
        let target = Target::opencl(device.clone());
        let scalar = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp);
        let vectorized =
            bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp).vectorized(4);
        out.push(Ablation {
            name: format!("float4 vectorization on {} (SVIII outlook)", device.name),
            baseline_ms: time_of(&vectorized, &target),
            ablated_ms: time_of(&scalar, &target),
        });
    }
    out
}

/// The paper's note that Sobel shares the Gaussian's implementation and
/// performance: modelled times of both 3x3 kernels must agree closely.
pub fn sobel_equals_gaussian() -> (f64, f64) {
    let target = Target::cuda(tesla_c2050());
    let gauss = gaussian_operator(3, 0.8, BoundaryMode::Clamp);
    let sobel = Operator::new(hipacc_filters::sobel::sobel_kernel(true)).boundary(
        "Input",
        BoundaryMode::Clamp,
        3,
        3,
    );
    (time_of(&gauss, &target), time_of(&sobel, &target))
}

/// All ablations in report order.
pub fn all_ablations() -> Vec<Ablation> {
    let mut rows = vec![
        ablate_region_specialization(),
        ablate_constant_masks(),
        ablate_config_heuristic(),
    ];
    rows.extend(ablate_vectorization());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_feature_helps() {
        for a in all_ablations() {
            assert!(
                a.factor() > 1.0,
                "{}: ablated {:.1} <= baseline {:.1}",
                a.name,
                a.ablated_ms,
                a.baseline_ms
            );
        }
    }

    #[test]
    fn constant_masks_worth_about_a_third() {
        // Paper: 285 -> 181 ms on the Tesla (factor ~1.57).
        let a = ablate_constant_masks();
        assert!(
            a.factor() > 1.3 && a.factor() < 1.9,
            "factor {}",
            a.factor()
        );
    }

    #[test]
    fn vectorization_gains_are_significant_on_amd() {
        for a in ablate_vectorization() {
            assert!(a.factor() > 1.5, "{}: factor {}", a.name, a.factor());
        }
    }

    #[test]
    fn sobel_performs_like_gaussian() {
        // "the Sobel filter uses the same implementation and has the same
        // performance" (SVI-A3).
        let (g, s) = sobel_equals_gaussian();
        assert!((g - s).abs() / g < 0.15, "gaussian {g:.2} vs sobel {s:.2}");
    }
}
