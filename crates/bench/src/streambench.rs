//! Streaming-throughput benchmark: a 3-stage operator chain over a
//! multi-frame sequence, pipelined with the shared worker pool and
//! kernel cache, against the sequential per-frame baseline that
//! compiles fresh on every launch (the pre-streaming behaviour).
//!
//! Before any timing, the streamed outputs are asserted **bit-identical**
//! per frame to the sequential baseline — throughput that computes
//! something else does not count. The speedup comes from two effects the
//! streaming runtime adds: steady-state frames skip the compile+verify
//! phases entirely (cache amortization), and stage launches overlap
//! across the pipeline.

use hipacc_core::{Engine, Target};
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::laplacian::laplacian_operator;
use hipacc_filters::sobel::sobel_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_runtime::{Stream, StreamConfig};
use std::fmt::Write as _;

/// Square frame edge of the streaming cell (smaller than the per-engine
/// cells: the cell isolates pipeline overheads, not pixel throughput).
pub const SIZE: u32 = 16;

/// Frames per timed run.
pub const FRAMES: usize = 16;

/// Worker threads of the shared pool.
pub const WORKERS: usize = 4;

/// The streaming cell of `BENCH_engine.json`.
#[derive(Clone, Debug)]
pub struct StreamingBench {
    /// Frame edge (frames are `size`×`size`).
    pub size: u32,
    /// Frames per run.
    pub frames: usize,
    /// Stage names of the chain.
    pub stages: Vec<String>,
    /// Worker threads of the shared pool.
    pub workers: usize,
    /// Engine every launch ran on.
    pub engine: &'static str,
    /// Wall time of the sequential per-frame baseline (fresh compile
    /// every launch), in nanoseconds.
    pub sequential_ns: f64,
    /// Wall time of the streaming run (shared cache + pipeline), ns.
    pub streaming_ns: f64,
    /// Baseline frames per second.
    pub sequential_fps: f64,
    /// Streaming frames per second.
    pub streaming_fps: f64,
    /// `streaming_fps / sequential_fps`.
    pub speedup: f64,
    /// Streaming cache hit rate (steady state ⇒ close to 1).
    pub cache_hit_rate: f64,
    /// Whether every streamed frame matched the baseline bit for bit
    /// (asserted, so always `true` in a report that exists).
    pub bit_identical: bool,
}

/// The frame sequence: a drifting vessel phantom.
fn frames() -> Vec<Image<f32>> {
    (0..FRAMES)
        .map(|i| {
            let mut img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
            for (j, px) in img.raw_mut().iter_mut().enumerate() {
                *px += ((i * 11 + j) % 17) as f32 * 1e-3;
            }
            img
        })
        .collect()
}

/// The representative 3-stage chain (smooth → edge → sharpen).
fn chain(name: &str, share_cache: bool) -> Stream {
    let m = BoundaryMode::Clamp;
    Stream::new(name, Target::cuda(tesla_c2050()))
        .stage("gauss5", gaussian_operator(5, 1.1, m))
        .stage("sobel", sobel_operator(true, m))
        .stage("laplace", laplacian_operator(m))
        .with_config(StreamConfig {
            workers: Some(WORKERS),
            engine: Some(Engine::Simd),
            share_cache,
            ..StreamConfig::default()
        })
}

/// Run the streaming cell: sequential fresh-compile baseline, then the
/// pipelined run, bit-identity asserted per frame before any number is
/// reported.
pub fn run() -> StreamingBench {
    let input = frames();

    // Baseline: frames one at a time, every launch compiling fresh —
    // the cost model of per-frame `Operator::execute` before streaming.
    let sequential = chain("baseline", false)
        .run_sequential(input.clone())
        .expect("sequential baseline");
    assert_eq!(sequential.report.frames_out, FRAMES);

    // Streaming: same chain, shared cache, pipelined stages.
    let stream = chain("streaming", true);
    let streamed = stream.run(input).expect("streaming run");
    assert_eq!(streamed.report.frames_out, FRAMES);

    for (s, r) in streamed.outputs.iter().zip(&sequential.outputs) {
        assert_eq!(
            s.image.max_abs_diff(&r.image),
            0.0,
            "frame {}: streaming output diverged from the sequential baseline",
            s.seq
        );
    }

    let sequential_ns = (sequential.report.wall_us as f64) * 1e3;
    let streaming_ns = (streamed.report.wall_us as f64) * 1e3;
    StreamingBench {
        size: SIZE,
        frames: FRAMES,
        stages: streamed.report.stages.clone(),
        workers: WORKERS,
        engine: Engine::Simd.label(),
        sequential_ns,
        streaming_ns,
        sequential_fps: sequential.report.frames_per_sec,
        streaming_fps: streamed.report.frames_per_sec,
        speedup: streamed.report.frames_per_sec / sequential.report.frames_per_sec,
        cache_hit_rate: streamed.report.cache_hit_rate,
        bit_identical: true,
    }
}

impl StreamingBench {
    /// The `"streaming"` member of `BENCH_engine.json` (hand-rolled;
    /// every emitted string is a known identifier).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self.stages.iter().map(|s| format!("\"{s}\"")).collect();
        let mut out = String::from("{");
        let _ = write!(out, "\"size\":{}", self.size);
        let _ = write!(out, ",\"frames\":{}", self.frames);
        let _ = write!(out, ",\"stages\":[{}]", stages.join(","));
        let _ = write!(out, ",\"workers\":{}", self.workers);
        let _ = write!(out, ",\"engine\":\"{}\"", self.engine);
        let _ = write!(out, ",\"sequential_ns\":{:.1}", self.sequential_ns);
        let _ = write!(out, ",\"streaming_ns\":{:.1}", self.streaming_ns);
        let _ = write!(out, ",\"sequential_fps\":{:.2}", self.sequential_fps);
        let _ = write!(out, ",\"streaming_fps\":{:.2}", self.streaming_fps);
        let _ = write!(out, ",\"speedup\":{:.3}", self.speedup);
        let _ = write!(out, ",\"cache_hit_rate\":{:.3}", self.cache_hit_rate);
        let _ = write!(out, ",\"bit_identical\":{}", self.bit_identical);
        out.push('}');
        out
    }

    /// Human-readable one-cell summary.
    pub fn render_text(&self) -> String {
        format!(
            "streaming {0} frames {1}x{1} through [{2}] at {3} workers ({4}):\n  \
             sequential {5:.3} ms ({6:.1} frames/s), streaming {7:.3} ms ({8:.1} frames/s), \
             speedup {9:.2}x, cache hit rate {10:.2}\n",
            self.frames,
            self.size,
            self.stages.join(" -> "),
            self.workers,
            self.engine,
            self.sequential_ns / 1e6,
            self.sequential_fps,
            self.streaming_ns / 1e6,
            self.streaming_fps,
            self.speedup,
            self.cache_hit_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_cell_reports_and_round_trips() {
        let cell = run();
        assert!(cell.bit_identical);
        assert_eq!(cell.frames, FRAMES);
        assert_eq!(cell.stages.len(), 3);
        assert!(cell.speedup > 0.0);
        assert!(cell.cache_hit_rate > 0.8, "steady state must hit the cache");

        let doc = hipacc_profile::json::parse(&cell.to_json()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["frames"].as_number(), Some(FRAMES as f64));
        assert_eq!(obj["workers"].as_number(), Some(WORKERS as f64));
        assert!(obj["speedup"].as_number().unwrap() > 0.0);
        assert!(matches!(
            obj["bit_identical"],
            hipacc_profile::json::Value::Bool(true)
        ));

        let text = cell.render_text();
        assert!(text.contains("speedup"), "{text}");
        assert!(text.contains("gauss5 -> sobel -> laplace"), "{text}");
    }
}
