//! Fusion-throughput benchmark: a streaming 3-stage operator chain with
//! producer–consumer kernel fusion on, against the identical chain with
//! fusion off.
//!
//! The chain is fusion's sweet spot — one stencil producer feeding point
//! consumers (smooth → detail-attenuate → window/level, a typical
//! pre-display pipeline): the point stages add **zero** cumulative halo,
//! so the fused kernel does no redundant staging work and the two saved
//! launches (with their per-launch supervision, spec building, and
//! intermediate frame round trips) are pure profit.
//!
//! Before any timing, the fused outputs are asserted **bit-identical**
//! per frame to the unfused run — a fused kernel that computes something
//! else does not count.

use hipacc_core::{Engine, Operator, Target};
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_filters::pyramid::attenuate_kernel;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_ir::{KernelBuilder, ScalarType};
use hipacc_runtime::{Stream, StreamConfig};
use std::fmt::Write as _;

/// Square frame edge of the fusion cell. Small on purpose: fusion's
/// advantage is per-launch overhead, which small frames expose.
pub const SIZE: u32 = 16;

/// Frames per timed run.
pub const FRAMES: usize = 16;

/// Worker threads of the shared pool.
pub const WORKERS: usize = 4;

/// The fusion cell of `BENCH_engine.json`.
#[derive(Clone, Debug)]
pub struct FusionBench {
    /// Frame edge (frames are `size`×`size`).
    pub size: u32,
    /// Frames per run.
    pub frames: usize,
    /// Stage names of the unfused chain.
    pub stages: Vec<String>,
    /// Stage names after fusion planning (e.g. `gauss5+attenuate+window`).
    pub fused_stages: Vec<String>,
    /// Worker threads of the shared pool.
    pub workers: usize,
    /// Engine every launch ran on.
    pub engine: &'static str,
    /// Wall time of the unfused streaming run, in nanoseconds.
    pub unfused_ns: f64,
    /// Wall time of the fused streaming run, in nanoseconds.
    pub fused_ns: f64,
    /// Unfused frames per second.
    pub unfused_fps: f64,
    /// Fused frames per second.
    pub fused_fps: f64,
    /// `fused_fps / unfused_fps`.
    pub speedup: f64,
    /// Whether every fused frame matched the unfused run bit for bit
    /// (asserted, so always `true` in a report that exists).
    pub bit_identical: bool,
}

/// The frame sequence: a drifting vessel phantom.
fn frames() -> Vec<Image<f32>> {
    (0..FRAMES)
        .map(|i| {
            let mut img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
            for (j, px) in img.raw_mut().iter_mut().enumerate() {
                *px += ((i * 11 + j) % 17) as f32 * 1e-3;
            }
            img
        })
        .collect()
}

/// The window/level point operator of the pre-display step: a linear
/// contrast mapping `(v - level) / window + 0.5`.
fn window_level_kernel() -> hipacc_ir::KernelDef {
    let mut b = KernelBuilder::new("WindowLevel", ScalarType::F32);
    let input = b.accessor("Input", ScalarType::F32);
    let window = b.param("window", ScalarType::F32);
    let level = b.param("level", ScalarType::F32);
    let v = b.let_("v", ScalarType::F32, b.read_center(&input));
    b.output((v.get() - level.get()) / window.get() + hipacc_ir::Expr::float(0.5));
    b.finish()
}

/// The representative 3-stage chain (smooth → detail-attenuate →
/// window/level), with the fusion planner on or off.
fn chain(name: &str, fuse: bool) -> Stream {
    let m = BoundaryMode::Clamp;
    Stream::new(name, Target::cuda(tesla_c2050()))
        .stage("gauss5", gaussian_operator(5, 1.1, m))
        .stage(
            "attenuate",
            Operator::new(attenuate_kernel()).param_float("threshold", 0.05),
        )
        .stage(
            "window",
            Operator::new(window_level_kernel())
                .param_float("window", 0.8)
                .param_float("level", 0.3),
        )
        .with_config(StreamConfig {
            workers: Some(WORKERS),
            engine: Some(Engine::Simd),
            share_cache: true,
            fuse,
            ..StreamConfig::default()
        })
}

/// Run the fusion cell: unfused streaming baseline, then the fused run,
/// bit-identity asserted per frame before any number is reported.
///
/// Both pipelines are warmed with one frame first so every timed launch
/// is a cache hit: the cell isolates the steady-state launch cost —
/// fusion's actual claim — rather than one-off compile time, whose
/// amortization is [`crate::streambench`]'s story.
pub fn run() -> FusionBench {
    let input = frames();

    let unfused_stream = chain("unfused", false);
    let fused_stream = chain("fused", true);
    for s in [&unfused_stream, &fused_stream] {
        s.run(input[..1].to_vec()).expect("warmup");
    }

    let unfused = unfused_stream.run(input.clone()).expect("unfused run");
    assert_eq!(unfused.report.frames_out, FRAMES);

    let fused = fused_stream.run(input).expect("fused run");
    assert_eq!(fused.report.frames_out, FRAMES);
    assert!(
        fused.report.fusion.iter().any(|d| d.fused),
        "the fusion planner must fuse the benchmark chain"
    );

    for (f, r) in fused.outputs.iter().zip(&unfused.outputs) {
        assert_eq!(
            f.image.max_abs_diff(&r.image),
            0.0,
            "frame {}: fused output diverged from the unfused chain",
            f.seq
        );
    }

    FusionBench {
        size: SIZE,
        frames: FRAMES,
        stages: unfused.report.stages.clone(),
        fused_stages: fused.report.stages.clone(),
        workers: WORKERS,
        engine: Engine::Simd.label(),
        unfused_ns: (unfused.report.wall_us as f64) * 1e3,
        fused_ns: (fused.report.wall_us as f64) * 1e3,
        unfused_fps: unfused.report.frames_per_sec,
        fused_fps: fused.report.frames_per_sec,
        speedup: fused.report.frames_per_sec / unfused.report.frames_per_sec,
        bit_identical: true,
    }
}

impl FusionBench {
    /// The `"fusion"` member of `BENCH_engine.json` (hand-rolled; every
    /// emitted string is a known identifier).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self.stages.iter().map(|s| format!("\"{s}\"")).collect();
        let fused: Vec<String> = self
            .fused_stages
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect();
        let mut out = String::from("{");
        let _ = write!(out, "\"size\":{}", self.size);
        let _ = write!(out, ",\"frames\":{}", self.frames);
        let _ = write!(out, ",\"stages\":[{}]", stages.join(","));
        let _ = write!(out, ",\"fused_stages\":[{}]", fused.join(","));
        let _ = write!(out, ",\"workers\":{}", self.workers);
        let _ = write!(out, ",\"engine\":\"{}\"", self.engine);
        let _ = write!(out, ",\"unfused_ns\":{:.1}", self.unfused_ns);
        let _ = write!(out, ",\"fused_ns\":{:.1}", self.fused_ns);
        let _ = write!(out, ",\"unfused_fps\":{:.2}", self.unfused_fps);
        let _ = write!(out, ",\"fused_fps\":{:.2}", self.fused_fps);
        let _ = write!(out, ",\"speedup\":{:.3}", self.speedup);
        let _ = write!(out, ",\"bit_identical\":{}", self.bit_identical);
        out.push('}');
        out
    }

    /// Human-readable one-cell summary.
    pub fn render_text(&self) -> String {
        format!(
            "fusing [{0}] into [{1}] over {2} frames {3}x{3} ({4}):\n  \
             unfused {5:.3} ms ({6:.1} frames/s), fused {7:.3} ms ({8:.1} frames/s), \
             speedup {9:.2}x\n",
            self.stages.join(" -> "),
            self.fused_stages.join(", "),
            self.frames,
            self.size,
            self.engine,
            self.unfused_ns / 1e6,
            self.unfused_fps,
            self.fused_ns / 1e6,
            self.fused_fps,
            self.speedup,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_cell_reports_and_round_trips() {
        let cell = run();
        assert!(cell.bit_identical);
        assert_eq!(cell.frames, FRAMES);
        assert_eq!(cell.stages.len(), 3);
        assert_eq!(cell.fused_stages, vec!["gauss5+attenuate+window"]);
        assert!(cell.speedup > 0.0);

        let doc = hipacc_profile::json::parse(&cell.to_json()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["frames"].as_number(), Some(FRAMES as f64));
        assert_eq!(obj["fused_stages"].as_array().unwrap().len(), 1);
        assert!(obj["speedup"].as_number().unwrap() > 0.0);
        assert!(matches!(
            obj["bit_identical"],
            hipacc_profile::json::Value::Bool(true)
        ));

        let text = cell.render_text();
        assert!(text.contains("speedup"), "{text}");
        assert!(text.contains("gauss5 -> attenuate -> window"), "{text}");
        assert!(text.contains("gauss5+attenuate+window"), "{text}");
    }
}
