//! Figures 3 and 4, and the §VI-C lines-of-code metric.

use crate::tables::{IMAGE, SIGMA_D, SIGMA_R, TABLE_CONFIG};
use hipacc_codegen::regions::RegionGrid;
use hipacc_core::{PipelineOptions, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_hwmodel::LaunchConfig;
use hipacc_image::BoundaryMode;

/// One point of the Figure-4 exploration: a configuration, its tiling and
/// its modelled execution time.
#[derive(Clone, Debug)]
pub struct ExplorationPoint {
    /// Block width.
    pub bx: u32,
    /// Block height.
    pub by: u32,
    /// Total threads (the figure's x axis).
    pub threads: u32,
    /// Modelled time in ms (the figure's y axis).
    pub time_ms: f64,
    /// Occupancy at this configuration.
    pub occupancy: f64,
}

/// Result of the configuration-space exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// All valid configurations with their times.
    pub points: Vec<ExplorationPoint>,
    /// The configuration Algorithm 2 selects.
    pub heuristic_choice: LaunchConfig,
    /// Time of the heuristic's choice.
    pub heuristic_time_ms: f64,
    /// The true optimum over the sweep.
    pub optimum: ExplorationPoint,
}

/// Reproduce Figure 4: sweep every valid configuration of the bilateral
/// filter (13×13, 4096², Tesla C2050, CUDA) and record modelled times.
pub fn figure4() -> Exploration {
    let target = Target::cuda(tesla_c2050());
    let base = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp);

    // The heuristic's own choice (no forced config).
    let heuristic = base.compile(&target, IMAGE, IMAGE).expect("compile");
    let heuristic_choice = heuristic.config;
    let heuristic_time_ms = base.estimate(&heuristic, &target).total_ms;

    // Sweep all valid configurations.
    let compiler = hipacc_codegen::Compiler::new();
    let spec = base.compile_spec(&target, IMAGE, IMAGE);
    let configs = compiler
        .explore_configurations(&base.def, &spec)
        .expect("exploration");
    let mut points = Vec::new();
    for cfg in configs {
        let op = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp).with_options(
            PipelineOptions {
                force_config: Some((cfg.bx, cfg.by)),
                ..PipelineOptions::default()
            },
        );
        if let Ok(compiled) = op.compile(&target, IMAGE, IMAGE) {
            let occ = compiled.occupancy.map(|o| o.occupancy).unwrap_or(0.0);
            let t = op.estimate(&compiled, &target);
            points.push(ExplorationPoint {
                bx: cfg.bx,
                by: cfg.by,
                threads: cfg.threads(),
                time_ms: t.total_ms,
                occupancy: occ,
            });
        }
    }
    let optimum = points
        .iter()
        .cloned()
        .min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap())
        .expect("nonempty sweep");
    Exploration {
        points,
        heuristic_choice,
        heuristic_time_ms,
        optimum,
    }
}

/// Reproduce Figure 3: the block-to-region assignment for the bilateral
/// window on a small grid, rendered as an ASCII map of region labels.
pub fn figure3(width: u32, height: u32, cfg: (u32, u32)) -> Vec<String> {
    let grid = RegionGrid::compute(
        width,
        height,
        2 * SIGMA_D,
        2 * SIGMA_D,
        LaunchConfig {
            bx: cfg.0,
            by: cfg.1,
        },
    );
    let mut out = Vec::new();
    for by in 0..grid.grid_y {
        let mut row = String::new();
        for bx in 0..grid.grid_x {
            let r = grid.region_of(bx, by);
            let c = match r {
                hipacc_codegen::Region::TopLeft => "TL",
                hipacc_codegen::Region::Top => "T ",
                hipacc_codegen::Region::TopRight => "TR",
                hipacc_codegen::Region::Left => "L ",
                hipacc_codegen::Region::Interior => ". ",
                hipacc_codegen::Region::Right => "R ",
                hipacc_codegen::Region::BottomLeft => "BL",
                hipacc_codegen::Region::Bottom => "B ",
                hipacc_codegen::Region::BottomRight => "BR",
            };
            row.push_str(c);
            row.push(' ');
        }
        out.push(row.trim_end().to_string());
    }
    out
}

/// §VI-C: DSL lines vs generated CUDA lines for the bilateral kernel.
pub fn loc_metric() -> (usize, usize) {
    let target = Target::cuda(tesla_c2050());
    let op = bilateral_operator(SIGMA_D, SIGMA_R, true, BoundaryMode::Clamp).with_options(
        PipelineOptions {
            force_config: Some(TABLE_CONFIG),
            ..PipelineOptions::default()
        },
    );
    let compiled = op.compile(&target, IMAGE, IMAGE).expect("compile");
    let dsl = hipacc_filters::bilateral::bilateral_masked_kernel(SIGMA_D).dsl_loc();
    (dsl, compiled.generated_loc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_small_grid_has_all_regions() {
        // 8x8 blocks of 32x6 over 256x48 pixels, halo 6.
        let rows = figure3(256, 48, (32, 6));
        let text = rows.join("\n");
        for label in ["TL", "TR", "BL", "BR", "T ", "B ", "L ", "R ", ". "] {
            assert!(
                text.contains(label.trim_end()),
                "missing {label} in\n{text}"
            );
        }
        // First row starts with the top-left corner.
        assert!(rows[0].starts_with("TL"));
    }

    #[test]
    fn loc_amplification_is_an_order_of_magnitude() {
        let (dsl, generated) = loc_metric();
        // Paper: 16 DSL lines -> 317 generated lines. Our shapes differ,
        // but the amplification must be large.
        assert!(dsl < 40, "DSL too long: {dsl}");
        assert!(
            generated > dsl * 8,
            "amplification too small: {dsl} -> {generated}"
        );
    }

    #[test]
    #[ignore = "full sweep is slow in debug builds; run with --release"]
    fn figure4_heuristic_is_near_optimal() {
        let e = figure4();
        assert!(e.points.len() > 50);
        assert!(
            e.heuristic_time_ms <= e.optimum.time_ms * 1.10,
            "heuristic {} vs optimum {}",
            e.heuristic_time_ms,
            e.optimum.time_ms
        );
    }
}
