//! Table-cell model.

use std::fmt;

/// One cell of an evaluation table.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Cell {
    /// Modelled execution time in milliseconds.
    Time(f64),
    /// The implementation crashes (the paper's "crash" entries: reads of
    /// unallocated memory on Tesla CUDA, RapidMind's Repeat on Fermi).
    Crash,
    /// The combination does not exist ("n/a": no hardware support for the
    /// mode, or the framework lacks the feature).
    NotAvailable,
}

impl Cell {
    /// The time if present.
    pub fn time(&self) -> Option<f64> {
        match self {
            Cell::Time(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Time(t) => write!(f, "{t:.2}"),
            Cell::Crash => write!(f, "crash"),
            Cell::NotAvailable => write!(f, "n/a"),
        }
    }
}

/// A rendered table: header, column labels, rows of labelled cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption (e.g. "Table II: …").
    pub title: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Rows: label plus one cell per column.
    pub rows: Vec<(String, Vec<Cell>)>,
}

impl Table {
    /// Look up a cell by row and column label.
    pub fn cell(&self, row: &str, col: &str) -> Option<Cell> {
        let ci = self.columns.iter().position(|c| c == col)?;
        self.rows
            .iter()
            .find(|(r, _)| r == row)
            .and_then(|(_, cells)| cells.get(ci).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_display() {
        assert_eq!(Cell::Time(302.27).to_string(), "302.27");
        assert_eq!(Cell::Crash.to_string(), "crash");
        assert_eq!(Cell::NotAvailable.to_string(), "n/a");
        assert_eq!(Cell::Time(1.5).time(), Some(1.5));
        assert_eq!(Cell::Crash.time(), None);
    }

    #[test]
    fn table_lookup() {
        let t = Table {
            title: "t".into(),
            columns: vec!["A".into(), "B".into()],
            rows: vec![("r".into(), vec![Cell::Time(1.0), Cell::Crash])],
        };
        assert_eq!(t.cell("r", "B"), Some(Cell::Crash));
        assert_eq!(t.cell("r", "C"), None);
        assert_eq!(t.cell("x", "A"), None);
    }
}
