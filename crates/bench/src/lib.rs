//! # hipacc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! * [`cells`] — the cell model: a table entry is a modelled time, a
//!   "crash" or an "n/a", mirroring the paper's typography.
//! * [`tables`] — generators for Tables II–IX.
//! * [`figures`] — Figure 3 (region assignment) and Figure 4
//!   (configuration-space exploration), plus the §VI-C lines-of-code
//!   metric.
//! * [`paper`] — the paper's published numbers, for side-by-side
//!   comparison in EXPERIMENTS.md.
//! * [`render`] — plain-text and Markdown rendering.
//! * [`ablation`] — what each design choice is worth (region
//!   specialization, constant masks, the heuristic, vectorization).
//! * [`enginebench`] — per-engine frame times (tree-walk, bytecode,
//!   simd) with the `BENCH_engine.json` export the CI bench-smoke job
//!   gates on.
//! * [`fusionbench`] — fused vs unfused streaming throughput of the
//!   3-stage chain, the cell the CI fusion-smoke job gates on.
//!
//! The `reproduce` binary drives everything:
//! `cargo run -p hipacc-bench --bin reproduce -- --all`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod cells;
pub mod enginebench;
pub mod figures;
pub mod fusionbench;
pub mod paper;
pub mod render;
pub mod streambench;
pub mod tables;
