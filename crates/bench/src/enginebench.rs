//! Cross-engine execution benchmark with a machine-readable export.
//!
//! Times one frame per engine (tree-walk, bytecode, simd) on the
//! representative local-operator cells of the evaluation — 3×3 and 5×5
//! Gaussian, the 13×13 bilateral filter, and an interior-only 5×5
//! Gaussian ROI that exercises the uniform-branch fast path — and
//! renders the result as text or as the `BENCH_engine.json` document the
//! CI bench-smoke job gates on.
//!
//! The device kernel is compiled from the DSL once outside the timed
//! region, so the numbers isolate launch + execution: exactly the part
//! the bytecode and simd engines restructure. Before any timing, every
//! engine's output and [`hipacc_sim::ExecStats`] are asserted
//! bit-identical to the tree-walk reference, so a cell can never get
//! faster by computing something else.
//!
//! This module uses plain [`std::time::Instant`] medians rather than the
//! criterion stand-in because the stand-in is a dev-dependency of the
//! bench crate and this module backs the `reproduce --bench-json` flag
//! of the regular binary.

use hipacc_core::pipeline::launch_spec;
use hipacc_core::{Engine, Operator, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::gaussian_operator;
use hipacc_hwmodel::device::tesla_c2050;
use hipacc_image::{phantom, BoundaryMode, Image};
use hipacc_sim::run_on_image_with;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Square image edge used by every cell.
pub const SIZE: u32 = 128;

/// Default number of timed frames per engine (the median is reported).
pub const DEFAULT_SAMPLES: usize = 9;

/// The three engines, in the order they appear in every report.
pub const ENGINES: [Engine; 3] = [Engine::TreeWalk, Engine::Bytecode, Engine::Simd];

/// The cell whose simd-vs-bytecode speedup the CI bench-smoke job gates
/// on: an interior-only ROI where every warp takes the uniform in-bounds
/// branch, so the simd engine has no divergence to hide behind. The CI
/// opt-smoke job additionally gates this cell at `opt_level` 1 vs 0.
pub const GATE_CELL: &str = "gaussian5x5_interior";

/// The optimizer level under benchmark: `HIPACC_OPT_LEVEL` (0 or 1),
/// defaulting to the pipeline default of 1. Invalid values fall back to
/// the default rather than failing a benchmark run.
pub fn opt_level_from_env() -> u8 {
    std::env::var("HIPACC_OPT_LEVEL")
        .ok()
        .and_then(|v| v.trim().parse::<u8>().ok())
        .map(|v| v.min(1))
        .unwrap_or(1)
}

/// Median frame time per engine for one benchmark cell.
#[derive(Clone, Debug)]
pub struct CellTiming {
    /// Cell name (e.g. `gaussian5x5`).
    pub name: &'static str,
    /// `(engine label, median ns per frame)` in [`ENGINES`] order.
    pub engines: Vec<(&'static str, f64)>,
}

impl CellTiming {
    /// Median ns/frame for one engine label.
    pub fn ns(&self, engine: &str) -> Option<f64> {
        self.engines
            .iter()
            .find(|(e, _)| *e == engine)
            .map(|(_, ns)| *ns)
    }

    /// How many times faster `num` runs than `den` on this cell.
    pub fn speedup(&self, num: &str, den: &str) -> Option<f64> {
        Some(self.ns(den)? / self.ns(num)?)
    }
}

/// A full engine-benchmark run over every cell.
#[derive(Clone, Debug)]
pub struct EngineBench {
    /// Image edge (images are `size`×`size`).
    pub size: u32,
    /// Lanes per warp in the simd engine.
    pub warp: usize,
    /// Timed frames per engine per cell.
    pub samples: usize,
    /// Optimizer level the kernels were compiled at (0 or 1).
    pub opt_level: u8,
    /// Per-cell timings.
    pub cells: Vec<CellTiming>,
    /// Streaming-throughput cell (3-stage chain, pipelined vs
    /// sequential per-frame). Populated by [`EngineBench::with_streaming`];
    /// absent in the quick per-engine runs.
    pub streaming: Option<crate::streambench::StreamingBench>,
    /// Fusion-throughput cell (fused vs unfused 3-stage chain).
    /// Populated by [`EngineBench::with_fusion`]; absent in the quick
    /// per-engine runs.
    pub fusion: Option<crate::fusionbench::FusionBench>,
}

/// The benchmark cells: representative local operators from the paper's
/// evaluation plus the interior-only CI gate cell, compiled at
/// `opt_level`.
fn cells(opt_level: u8) -> Vec<(&'static str, Operator)> {
    let mut cells = vec![
        (
            "gaussian3x3",
            gaussian_operator(3, 1.0, BoundaryMode::Clamp),
        ),
        (
            "gaussian5x5",
            gaussian_operator(5, 1.0, BoundaryMode::Clamp),
        ),
        (
            "bilateral13x13",
            bilateral_operator(3, 5, true, BoundaryMode::Clamp),
        ),
        (
            GATE_CELL,
            gaussian_operator(5, 1.0, BoundaryMode::Clamp).with_roi(8, 8, SIZE - 16, SIZE - 16),
        ),
    ];
    for (_, op) in &mut cells {
        op.options.opt_level = opt_level;
    }
    cells
}

/// Median wall-clock nanoseconds of `samples` runs of `f`.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Time one cell on all three engines, asserting cross-engine agreement
/// (bit-identical output and [`hipacc_sim::ExecStats`]) first.
fn time_cell(name: &'static str, op: &Operator, img: &Image<f32>, samples: usize) -> CellTiming {
    let target = Target::cuda(tesla_c2050());
    let compiled = op.compile(&target, img.width(), img.height()).unwrap();
    let spec = launch_spec(&compiled, &[("Input", img)], &op.params, &op.mask_uploads);

    let reference = run_on_image_with(&compiled.device_kernel, &spec, Engine::TreeWalk).unwrap();
    for engine in [Engine::Bytecode, Engine::Simd] {
        let run = run_on_image_with(&compiled.device_kernel, &spec, engine).unwrap();
        assert_eq!(
            reference.stats,
            run.stats,
            "{name}: {} stats diverge from tree-walk",
            engine.label()
        );
        assert_eq!(
            reference.output.max_abs_diff(&run.output),
            0.0,
            "{name}: {} output diverges from tree-walk",
            engine.label()
        );
    }

    let engines = ENGINES
        .iter()
        .map(|&engine| {
            let ns = median_ns(samples, || {
                black_box(run_on_image_with(&compiled.device_kernel, &spec, engine).unwrap());
            });
            (engine.label(), ns)
        })
        .collect();
    CellTiming { name, engines }
}

/// Run every cell with `samples` timed frames per engine at the
/// optimizer level from `HIPACC_OPT_LEVEL` (default 1).
pub fn run(samples: usize) -> EngineBench {
    run_at(samples, opt_level_from_env())
}

/// Run every cell with `samples` timed frames per engine, compiling the
/// kernels at an explicit optimizer level.
pub fn run_at(samples: usize, opt_level: u8) -> EngineBench {
    let img = phantom::vessel_tree(SIZE, SIZE, &phantom::VesselParams::default());
    let cells = cells(opt_level)
        .iter()
        .map(|(name, op)| time_cell(name, op, &img, samples))
        .collect();
    EngineBench {
        size: SIZE,
        warp: hipacc_sim::simd::WARP,
        samples,
        opt_level,
        cells,
        streaming: None,
        fusion: None,
    }
}

impl EngineBench {
    /// Look up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&CellTiming> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Run the streaming-throughput cell and attach it to the report
    /// (see [`crate::streambench`]).
    pub fn with_streaming(mut self) -> Self {
        self.streaming = Some(crate::streambench::run());
        self
    }

    /// Run the fusion-throughput cell and attach it to the report (see
    /// [`crate::fusionbench`]).
    pub fn with_fusion(mut self) -> Self {
        self.fusion = Some(crate::fusionbench::run());
        self
    }

    /// The `BENCH_engine.json` document: sizes, warp width and per-cell
    /// ns/frame for every engine. Hand-rolled — every emitted string is
    /// a known identifier with nothing to escape.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"size\":{},\"warp\":{},\"samples\":{},\"opt_level\":{},\"cells\":[",
            self.size, self.warp, self.samples, self.opt_level
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"engines\":{{", cell.name);
            for (j, (engine, ns)) in cell.engines.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{engine}\":{ns:.1}");
            }
            out.push_str("}}");
        }
        out.push(']');
        if let Some(streaming) = &self.streaming {
            let _ = write!(out, ",\"streaming\":{}", streaming.to_json());
        }
        if let Some(fusion) = &self.fusion {
            let _ = write!(out, ",\"fusion\":{}", fusion.to_json());
        }
        out.push('}');
        out
    }

    /// Human-readable table with simd-over-bytecode speedups.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "engine frame times, {0}x{0}, median of {1} (warp width {2}, opt {3}):\n",
            self.size, self.samples, self.warp, self.opt_level
        );
        let _ = writeln!(
            out,
            "  {:<22} {:>12} {:>12} {:>12} {:>14}",
            "cell", "tree-walk", "bytecode", "simd", "simd/bytecode"
        );
        for cell in &self.cells {
            let ms = |e: &str| cell.ns(e).unwrap_or(f64::NAN) / 1e6;
            let _ = writeln!(
                out,
                "  {:<22} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>13.2}x",
                cell.name,
                ms("tree-walk"),
                ms("bytecode"),
                ms("simd"),
                cell.speedup("simd", "bytecode").unwrap_or(f64::NAN)
            );
        }
        if let Some(streaming) = &self.streaming {
            out.push_str(&streaming.render_text());
        }
        if let Some(fusion) = &self.fusion {
            out.push_str(&fusion.render_text());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_cell_and_engine() {
        let bench = run_at(1, 1);
        assert_eq!(bench.size, SIZE);
        assert_eq!(bench.warp, hipacc_sim::simd::WARP);
        assert_eq!(bench.opt_level, 1);
        assert_eq!(bench.cells.len(), 4);
        assert!(bench.cell(GATE_CELL).is_some());
        for cell in &bench.cells {
            assert_eq!(cell.engines.len(), ENGINES.len());
            for (_, ns) in &cell.engines {
                assert!(*ns > 0.0, "{}: non-positive time", cell.name);
            }
            assert!(cell.speedup("simd", "bytecode").unwrap() > 0.0);
        }
    }

    #[test]
    fn json_round_trips_through_the_bundled_parser() {
        let bench = run_at(1, 0);
        let doc = hipacc_profile::json::parse(&bench.to_json()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["size"].as_number(), Some(SIZE as f64));
        assert_eq!(obj["warp"].as_number(), Some(hipacc_sim::simd::WARP as f64));
        assert_eq!(obj["opt_level"].as_number(), Some(0.0));
        let cells = obj["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 4);
        for cell in cells {
            let engines = cell.as_object().unwrap()["engines"].as_object().unwrap();
            for engine in ["tree-walk", "bytecode", "simd"] {
                assert!(engines[engine].as_number().unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn streaming_cell_attaches_to_the_json_report() {
        let bench = run_at(1, 1).with_streaming();
        let streaming = bench.streaming.as_ref().expect("cell attached");
        assert!(streaming.bit_identical);
        let doc = hipacc_profile::json::parse(&bench.to_json()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["cells"].as_array().unwrap().len(), 4);
        let s = obj["streaming"].as_object().unwrap();
        assert!(s["speedup"].as_number().unwrap() > 0.0);
        assert!(bench.render_text().contains("streaming"));
    }

    #[test]
    fn fusion_cell_attaches_to_the_json_report() {
        let bench = run_at(1, 1).with_fusion();
        let fusion = bench.fusion.as_ref().expect("cell attached");
        assert!(fusion.bit_identical);
        let doc = hipacc_profile::json::parse(&bench.to_json()).expect("valid JSON");
        let obj = doc.as_object().unwrap();
        let f = obj["fusion"].as_object().unwrap();
        assert!(f["speedup"].as_number().unwrap() > 0.0);
        assert!(bench.render_text().contains("fusing"));
    }

    #[test]
    fn text_report_names_every_engine() {
        let bench = run_at(1, 1);
        let text = bench.render_text();
        for needle in [
            "tree-walk",
            "bytecode",
            "simd",
            "gaussian5x5_interior",
            "opt 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
