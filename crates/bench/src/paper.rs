//! The paper's published numbers, transcribed from Tables II–IX and
//! Figure 4, for the paper-vs-model comparison in EXPERIMENTS.md.
//!
//! `None` encodes "crash" or "n/a" cells.

/// One paper table: row label → five (Tables II–VII) or four (VIII–IX)
/// column values in ms.
pub struct PaperTable {
    /// Table number (2..=9).
    pub number: u32,
    /// Caption.
    pub title: &'static str,
    /// Column labels.
    pub columns: &'static [&'static str],
    /// Rows.
    pub rows: &'static [(&'static str, &'static [Option<f64>])],
}

/// Table II: bilateral, Tesla C2050, CUDA.
pub const TABLE2: PaperTable = PaperTable {
    number: 2,
    title: "Bilateral, Tesla C2050, CUDA",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[None, Some(302.27), Some(363.96), Some(321.81), Some(568.46)],
        ),
        (
            "  +Tex",
            &[
                Some(260.03),
                Some(285.61),
                Some(362.70),
                Some(310.61),
                Some(520.25),
            ],
        ),
        (
            "  +2DTex",
            &[Some(272.39), Some(272.40), Some(300.56), None, None],
        ),
        (
            "  +Mask",
            &[None, Some(214.51), Some(281.89), Some(225.88), Some(481.76)],
        ),
        (
            "  +Mask+Tex",
            &[
                Some(170.79),
                Some(192.46),
                Some(259.26),
                Some(205.29),
                Some(425.13),
            ],
        ),
        (
            "  +Mask+2DTex",
            &[Some(181.19), Some(181.19), Some(203.13), None, None],
        ),
        (
            "Generated",
            &[None, Some(285.29), Some(298.29), Some(289.22), Some(291.26)],
        ),
        (
            "  +Tex",
            &[
                Some(276.76),
                Some(265.36),
                Some(285.57),
                Some(278.04),
                Some(268.01),
            ],
        ),
        (
            "  +Mask",
            &[None, Some(181.45), Some(200.66), Some(193.16), Some(197.23)],
        ),
        (
            "  +Mask+Tex",
            &[
                Some(172.60),
                Some(182.80),
                Some(180.38),
                Some(173.59),
                Some(175.52),
            ],
        ),
        (
            "RapidMind",
            &[Some(430.95), Some(489.94), None, None, Some(539.69)],
        ),
        (
            "  +Tex",
            &[Some(456.35), Some(514.63), None, None, Some(518.49)],
        ),
    ],
};

/// Table III: bilateral, Tesla C2050, OpenCL.
pub const TABLE3: PaperTable = PaperTable {
    number: 3,
    title: "Bilateral, Tesla C2050, OpenCL",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[
                Some(449.86),
                Some(485.60),
                Some(552.83),
                Some(504.39),
                Some(505.11),
            ],
        ),
        (
            "  +Img",
            &[
                Some(465.48),
                Some(487.80),
                Some(557.88),
                Some(501.18),
                Some(508.28),
            ],
        ),
        (
            "  +ImgBH",
            &[Some(452.15), Some(452.39), Some(464.07), None, Some(452.24)],
        ),
        (
            "  +Mask",
            &[
                Some(215.23),
                Some(250.67),
                Some(331.11),
                Some(261.05),
                Some(267.62),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(228.29),
                Some(251.51),
                Some(322.61),
                Some(264.54),
                Some(288.08),
            ],
        ),
        (
            "  +Mask+ImgBH",
            &[Some(214.68), Some(227.74), Some(215.07), None, Some(215.07)],
        ),
        (
            "Generated",
            &[
                Some(453.78),
                Some(466.49),
                Some(474.86),
                Some(455.59),
                Some(467.05),
            ],
        ),
        (
            "  +Img",
            &[
                Some(463.62),
                Some(466.61),
                Some(472.67),
                Some(468.43),
                Some(466.62),
            ],
        ),
        (
            "  +Mask",
            &[
                Some(217.95),
                Some(215.61),
                Some(222.78),
                Some(220.27),
                Some(220.16),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(219.49),
                Some(219.64),
                Some(238.81),
                Some(220.28),
                Some(232.57),
            ],
        ),
    ],
};

/// Table IV: bilateral, Quadro FX 5800, CUDA.
pub const TABLE4: PaperTable = PaperTable {
    number: 4,
    title: "Bilateral, Quadro FX 5800, CUDA",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[
                Some(319.67),
                Some(349.32),
                Some(394.96),
                Some(393.00),
                Some(779.68),
            ],
        ),
        (
            "  +Tex",
            &[
                Some(310.22),
                Some(336.46),
                Some(369.74),
                Some(378.47),
                Some(590.18),
            ],
        ),
        (
            "  +2DTex",
            &[Some(330.50), Some(330.49), Some(369.06), None, None],
        ),
        (
            "  +Mask",
            &[
                Some(224.56),
                Some(321.55),
                Some(323.50),
                Some(321.46),
                Some(778.48),
            ],
        ),
        (
            "  +Mask+Tex",
            &[
                Some(199.11),
                Some(237.60),
                Some(271.45),
                Some(278.89),
                Some(497.75),
            ],
        ),
        (
            "  +Mask+2DTex",
            &[Some(214.53), Some(215.53), Some(348.92), None, None],
        ),
        (
            "Generated",
            &[
                Some(321.24),
                Some(331.36),
                Some(404.81),
                Some(332.17),
                Some(436.77),
            ],
        ),
        (
            "  +Tex",
            &[
                Some(312.71),
                Some(313.74),
                Some(356.52),
                Some(316.08),
                Some(383.19),
            ],
        ),
        (
            "  +Mask",
            &[
                Some(225.58),
                Some(227.65),
                Some(281.82),
                Some(228.18),
                Some(290.78),
            ],
        ),
        (
            "  +Mask+Tex",
            &[
                Some(200.55),
                Some(204.45),
                Some(218.22),
                Some(204.53),
                Some(246.96),
            ],
        ),
        (
            "RapidMind",
            &[
                Some(737.69),
                Some(862.86),
                Some(2352.34),
                None,
                Some(989.55),
            ],
        ),
        (
            "  +Tex",
            &[
                Some(679.52),
                Some(734.48),
                Some(2226.33),
                None,
                Some(805.62),
            ],
        ),
    ],
};

/// Table V: bilateral, Quadro FX 5800, OpenCL.
pub const TABLE5: PaperTable = PaperTable {
    number: 5,
    title: "Bilateral, Quadro FX 5800, OpenCL",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[
                Some(439.55),
                Some(504.79),
                Some(537.04),
                Some(528.47),
                Some(770.34),
            ],
        ),
        (
            "  +Img",
            &[
                Some(509.95),
                Some(529.39),
                Some(560.77),
                Some(550.43),
                Some(732.55),
            ],
        ),
        (
            "  +ImgBH",
            &[Some(509.82), Some(509.33), Some(509.38), None, Some(509.65)],
        ),
        (
            "  +Mask",
            &[
                Some(355.70),
                Some(455.69),
                Some(458.90),
                Some(452.71),
                Some(775.83),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(468.94),
                Some(466.67),
                Some(467.19),
                Some(464.62),
                Some(708.93),
            ],
        ),
        (
            "  +Mask+ImgBH",
            &[Some(468.00), Some(470.04), Some(468.80), None, Some(470.46)],
        ),
        (
            "Generated",
            &[
                Some(446.24),
                Some(449.67),
                Some(514.89),
                Some(453.68),
                Some(460.68),
            ],
        ),
        (
            "  +Img",
            &[
                Some(511.38),
                Some(512.50),
                Some(553.23),
                Some(511.78),
                Some(654.08),
            ],
        ),
        (
            "  +Mask",
            &[
                Some(354.93),
                Some(357.77),
                Some(407.01),
                Some(357.72),
                Some(384.30),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(466.26),
                Some(465.70),
                Some(522.53),
                Some(461.56),
                Some(539.77),
            ],
        ),
    ],
};

/// Table VI: bilateral, Radeon HD 5870, OpenCL.
pub const TABLE6: PaperTable = PaperTable {
    number: 6,
    title: "Bilateral, Radeon HD 5870, OpenCL",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[
                Some(334.96),
                Some(408.36),
                Some(404.83),
                Some(419.59),
                Some(440.64),
            ],
        ),
        (
            "  +Img",
            &[
                Some(353.93),
                Some(385.23),
                Some(405.81),
                Some(396.45),
                Some(484.25),
            ],
        ),
        (
            "  +ImgBH",
            &[Some(353.93), Some(353.91), Some(353.96), None, Some(353.95)],
        ),
        (
            "  +Mask",
            &[
                Some(311.85),
                Some(397.40),
                Some(434.36),
                Some(408.32),
                Some(402.59),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(341.23),
                Some(373.93),
                Some(400.71),
                Some(375.48),
                Some(444.36),
            ],
        ),
        (
            "  +Mask+ImgBH",
            &[Some(341.25), Some(341.24), Some(341.24), None, Some(341.27)],
        ),
        (
            "Generated",
            &[
                Some(342.67),
                Some(354.49),
                Some(472.20),
                Some(355.57),
                Some(351.83),
            ],
        ),
        (
            "  +Img",
            &[
                Some(372.14),
                Some(376.91),
                Some(482.28),
                Some(382.71),
                Some(446.98),
            ],
        ),
        (
            "  +Mask",
            &[
                Some(326.22),
                Some(357.96),
                Some(487.53),
                Some(359.72),
                Some(348.77),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(350.56),
                Some(364.34),
                Some(481.76),
                Some(364.39),
                Some(428.22),
            ],
        ),
    ],
};

/// Table VII: bilateral, Radeon HD 6970, OpenCL.
pub const TABLE7: PaperTable = PaperTable {
    number: 7,
    title: "Bilateral, Radeon HD 6970, OpenCL",
    columns: &["Undef.", "Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "Manual",
            &[
                Some(286.29),
                Some(337.13),
                Some(375.11),
                Some(346.18),
                Some(381.76),
            ],
        ),
        (
            "  +Img",
            &[
                Some(286.38),
                Some(319.20),
                Some(364.59),
                Some(328.12),
                Some(435.16),
            ],
        ),
        (
            "  +ImgBH",
            &[Some(286.44), Some(286.44), Some(286.43), None, Some(286.46)],
        ),
        (
            "  +Mask",
            &[
                Some(265.57),
                Some(332.41),
                Some(387.81),
                Some(340.59),
                Some(349.37),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(268.26),
                Some(310.84),
                Some(349.31),
                Some(311.42),
                Some(387.73),
            ],
        ),
        (
            "  +Mask+ImgBH",
            &[Some(268.20), Some(268.23), Some(268.20), None, Some(268.24)],
        ),
        (
            "Generated",
            &[
                Some(291.30),
                Some(309.52),
                Some(470.90),
                Some(322.69),
                Some(321.19),
            ],
        ),
        (
            "  +Img",
            &[
                Some(303.36),
                Some(298.50),
                Some(465.30),
                Some(305.38),
                Some(438.74),
            ],
        ),
        (
            "  +Mask",
            &[
                Some(289.33),
                Some(296.20),
                Some(467.76),
                Some(332.91),
                Some(314.05),
            ],
        ),
        (
            "  +Mask+Img",
            &[
                Some(279.66),
                Some(291.49),
                Some(474.60),
                Some(291.58),
                Some(414.31),
            ],
        ),
    ],
};

/// Table VIII (Tesla C2050), Gaussian 3×3 section.
pub const TABLE8_3X3: PaperTable = PaperTable {
    number: 8,
    title: "Gaussian 3x3, Tesla C2050",
    columns: &["Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "OpenCV: PPT=8",
            &[Some(5.10), Some(6.36), Some(8.09), Some(6.75)],
        ),
        (
            "OpenCV: PPT=1",
            &[Some(9.44), Some(11.85), Some(15.97), Some(12.36)],
        ),
        (
            "CUDA(Gen)",
            &[Some(7.00), Some(7.53), Some(7.21), Some(7.10)],
        ),
        (
            "CUDA(+Tex)",
            &[Some(7.00), Some(7.44), Some(7.17), Some(7.13)],
        ),
        (
            "CUDA(+Smem)",
            &[Some(7.73), Some(8.09), Some(8.02), Some(8.00)],
        ),
        (
            "OpenCL(Gen)",
            &[Some(9.26), Some(9.70), Some(9.40), Some(9.33)],
        ),
        (
            "OpenCL(+Img)",
            &[Some(13.41), Some(13.62), Some(13.33), Some(13.16)],
        ),
        (
            "OpenCL(+Lmem)",
            &[Some(11.29), Some(11.46), Some(11.12), Some(11.13)],
        ),
    ],
};

/// Table VIII (Tesla C2050), Gaussian 5×5 section.
pub const TABLE8_5X5: PaperTable = PaperTable {
    number: 8,
    title: "Gaussian 5x5, Tesla C2050",
    columns: &["Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "OpenCV: PPT=8",
            &[Some(5.11), Some(6.36), Some(8.10), Some(6.76)],
        ),
        (
            "OpenCV: PPT=1",
            &[Some(9.45), Some(11.88), Some(15.99), Some(12.37)],
        ),
        (
            "CUDA(Gen)",
            &[Some(8.84), Some(9.86), Some(9.47), Some(9.45)],
        ),
        (
            "CUDA(+Tex)",
            &[Some(8.94), Some(9.72), Some(9.35), Some(9.47)],
        ),
        (
            "CUDA(+Smem)",
            &[Some(9.38), Some(9.59), Some(9.44), Some(9.55)],
        ),
        (
            "OpenCL(Gen)",
            &[Some(10.88), Some(11.82), Some(11.13), Some(10.44)],
        ),
        (
            "OpenCL(+Img)",
            &[Some(14.96), Some(15.87), Some(15.17), Some(15.12)],
        ),
        (
            "OpenCL(+Lmem)",
            &[Some(13.24), Some(13.72), Some(13.35), Some(13.22)],
        ),
    ],
};

/// Table IX (Quadro FX 5800), Gaussian 3×3 section.
pub const TABLE9_3X3: PaperTable = PaperTable {
    number: 9,
    title: "Gaussian 3x3, Quadro FX 5800",
    columns: &["Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "OpenCV: PPT=8",
            &[Some(4.86), Some(5.82), Some(10.46), Some(6.22)],
        ),
        (
            "OpenCV: PPT=1",
            &[Some(7.63), Some(9.22), Some(20.98), Some(9.79)],
        ),
        (
            "CUDA(Gen)",
            &[Some(8.60), Some(8.63), Some(8.64), Some(8.67)],
        ),
        (
            "CUDA(+Tex)",
            &[Some(8.55), Some(8.58), Some(8.60), Some(8.63)],
        ),
        (
            "CUDA(+Smem)",
            &[Some(11.83), Some(11.83), Some(11.84), Some(11.90)],
        ),
        (
            "OpenCL(Gen)",
            &[Some(13.58), Some(13.47), Some(13.10), Some(13.46)],
        ),
        (
            "OpenCL(+Img)",
            &[Some(15.42), Some(15.47), Some(15.06), Some(15.24)],
        ),
        (
            "OpenCL(+Lmem)",
            &[Some(17.84), Some(17.86), Some(17.91), Some(18.35)],
        ),
    ],
};

/// Table IX (Quadro FX 5800), Gaussian 5×5 section.
pub const TABLE9_5X5: PaperTable = PaperTable {
    number: 9,
    title: "Gaussian 5x5, Quadro FX 5800",
    columns: &["Clamp", "Repeat", "Mirror", "Const."],
    rows: &[
        (
            "OpenCV: PPT=8",
            &[Some(4.90), Some(5.87), Some(10.45), Some(6.22)],
        ),
        (
            "OpenCV: PPT=1",
            &[Some(7.64), Some(9.22), Some(20.98), Some(9.79)],
        ),
        (
            "CUDA(Gen)",
            &[Some(9.88), Some(9.95), Some(9.95), Some(10.12)],
        ),
        (
            "CUDA(+Tex)",
            &[Some(9.91), Some(9.97), Some(9.98), Some(10.20)],
        ),
        (
            "CUDA(+Smem)",
            &[Some(14.36), Some(14.36), Some(14.37), Some(14.43)],
        ),
        (
            "OpenCL(Gen)",
            &[Some(16.14), Some(16.26), Some(16.18), Some(16.60)],
        ),
        (
            "OpenCL(+Img)",
            &[Some(18.38), Some(18.44), Some(18.33), Some(18.65)],
        ),
        (
            "OpenCL(+Lmem)",
            &[Some(23.61), Some(23.62), Some(23.62), Some(24.13)],
        ),
    ],
};

/// Figure 4's reported optimum: 32×6 at 167.94 ms; the worst shown
/// configuration (32 threads) took ~425 ms.
pub const FIG4_OPTIMUM: (u32, u32, f64) = (32, 6, 167.94);

/// §VI-C: 16 DSL lines became 317 generated CUDA lines.
pub const LOC_METRIC: (usize, usize) = (16, 317);

/// All bilateral paper tables in order.
pub fn bilateral_tables() -> [&'static PaperTable; 6] {
    [&TABLE2, &TABLE3, &TABLE4, &TABLE5, &TABLE6, &TABLE7]
}

/// All Gaussian paper tables (device, size, table).
pub fn gaussian_tables() -> [(&'static str, u32, &'static PaperTable); 4] {
    [
        ("Tesla C2050", 3, &TABLE8_3X3),
        ("Tesla C2050", 5, &TABLE8_5X5),
        ("Quadro FX 5800", 3, &TABLE9_3X3),
        ("Quadro FX 5800", 5, &TABLE9_5X5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_rectangular() {
        for t in bilateral_tables() {
            for (label, row) in t.rows {
                assert_eq!(row.len(), t.columns.len(), "table {} row {label}", t.number);
            }
        }
        for (_, _, t) in gaussian_tables() {
            for (label, row) in t.rows {
                assert_eq!(row.len(), t.columns.len(), "table {} row {label}", t.number);
            }
        }
    }

    #[test]
    fn key_anchor_cells_present() {
        // The calibration anchors quoted in EXPERIMENTS.md.
        assert_eq!(TABLE2.rows[9].0, "  +Mask+Tex");
        assert_eq!(TABLE2.rows[9].1[1], Some(182.80)); // Clamp
        assert_eq!(TABLE4.rows[9].1[1], Some(204.45));
        assert_eq!(TABLE6.rows[8].1[1], Some(357.96));
        assert_eq!(TABLE7.rows[8].1[1], Some(296.20));
    }
}
