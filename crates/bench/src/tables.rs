//! Generators for Tables II–IX.
//!
//! All bilateral tables use the paper's setup: 4096×4096 pixels, filter
//! window 13×13 (σd = 3, σr = 5), kernel configuration 128×1 for all
//! kernels. The Gaussian tables use the framework's automatic kernel
//! configuration, as the paper states for its own implementations.
//!
//! Times come from the analytical timing model; the functional simulator
//! validates the same kernels bit-for-bit on smaller images in the test
//! suites and integration tests.

use crate::cells::{Cell, Table};
use hipacc_baselines::manual::{manual_bilateral, ManualVariant, TexVariant};
use hipacc_baselines::opencv::OpencvSeparable;
use hipacc_baselines::rapidmind::{
    rapidmind_bilateral, with_geometry, RapidMindOutcome, RAPIDMIND_CONFIG,
};
use hipacc_core::{Operator, PipelineOptions, Target};
use hipacc_filters::bilateral::bilateral_operator;
use hipacc_filters::gaussian::{default_sigma, gaussian_operator};
use hipacc_hwmodel::{Architecture, Backend};
use hipacc_image::BoundaryMode;

/// Evaluation image edge length.
pub const IMAGE: u32 = 4096;
/// Geometric spread of the bilateral filter (window 13×13).
pub const SIGMA_D: u32 = 3;
/// Photometric spread.
pub const SIGMA_R: u32 = 5;
/// The pinned configuration of Tables II–VII.
pub const TABLE_CONFIG: (u32, u32) = (128, 1);

/// The boundary-mode columns of Tables II–VII, in table order.
pub fn bilateral_columns() -> Vec<(String, BoundaryMode)> {
    BoundaryMode::all()
        .iter()
        .map(|m| (short_mode(m), *m))
        .collect()
}

fn short_mode(m: &BoundaryMode) -> String {
    match m {
        BoundaryMode::Undefined => "Undef.".into(),
        BoundaryMode::Constant(_) => "Const.".into(),
        other => other.name().to_string(),
    }
}

/// The paper's crash rule: on the Tesla (Fermi) CUDA path, implementations
/// that read unallocated memory (Undefined handling through plain global
/// pointers) crash; texture-path reads are clamped by the hardware.
fn crashes(mode: BoundaryMode, target: &Target, reads_global: bool) -> bool {
    mode == BoundaryMode::Undefined
        && target.backend == Backend::Cuda
        && target.device.arch == Architecture::Fermi
        && reads_global
}

/// Estimate one operator cell (compile + analytical model); compile errors
/// surface as "n/a" cells.
fn estimate_cell(op: &Operator, target: &Target, mode: BoundaryMode, reads_global: bool) -> Cell {
    if crashes(mode, target, reads_global) {
        return Cell::Crash;
    }
    match op.compile(target, IMAGE, IMAGE) {
        Ok(compiled) => Cell::Time(op.estimate(&compiled, target).total_ms),
        Err(_) => Cell::NotAvailable,
    }
}

/// A generated-code row variant.
#[derive(Copy, Clone, Debug)]
struct GenVariant {
    tex: bool,
    mask: bool,
}

fn generated_row(v: GenVariant, mode: BoundaryMode, target: &Target) -> Cell {
    let op = bilateral_operator(SIGMA_D, SIGMA_R, v.mask, mode).with_options(PipelineOptions {
        variant: if v.tex {
            hipacc_codegen::MemVariant::Texture
        } else {
            hipacc_codegen::MemVariant::Global
        },
        force_config: Some(TABLE_CONFIG),
        ..PipelineOptions::default()
    });
    estimate_cell(&op, target, mode, !v.tex)
}

fn manual_row(v: ManualVariant, mode: BoundaryMode, target: &Target) -> Cell {
    let op = manual_bilateral(SIGMA_D, SIGMA_R, v, mode, TABLE_CONFIG);
    estimate_cell(&op, target, mode, v.tex == TexVariant::None)
}

fn rapidmind_row(tex: bool, mode: BoundaryMode, target: &Target) -> Cell {
    match rapidmind_bilateral(SIGMA_D, SIGMA_R, mode, target.device.arch, tex) {
        Err(RapidMindOutcome::Crash) => Cell::Crash,
        Err(_) => Cell::NotAvailable,
        Ok(op) => {
            let op = with_geometry(op, IMAGE, IMAGE);
            // RapidMind's fixed work-group must be valid on the device.
            let _ = RAPIDMIND_CONFIG;
            estimate_cell(&op, target, mode, !tex)
        }
    }
}

/// Generate the bilateral table for one target (Tables II–VII).
pub fn bilateral_table(target: &Target, table_no: u32) -> Table {
    let columns = bilateral_columns();
    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();
    let opencl = target.backend == Backend::OpenCl;

    // Manual rows (no-mask first, like the paper).
    let manual_variants = [
        ManualVariant {
            tex: TexVariant::None,
            mask: false,
        },
        ManualVariant {
            tex: TexVariant::Linear,
            mask: false,
        },
        ManualVariant {
            tex: TexVariant::Hw2D,
            mask: false,
        },
        ManualVariant {
            tex: TexVariant::None,
            mask: true,
        },
        ManualVariant {
            tex: TexVariant::Linear,
            mask: true,
        },
        ManualVariant {
            tex: TexVariant::Hw2D,
            mask: true,
        },
    ];
    for v in manual_variants {
        let label = if v == manual_variants[0] {
            "Manual".to_string()
        } else {
            format!("  {}", v.label(opencl))
        };
        let cells = columns
            .iter()
            .map(|(_, m)| manual_row(v, *m, target))
            .collect();
        rows.push((label, cells));
    }

    // Generated rows.
    let gen_variants = [
        (
            GenVariant {
                tex: false,
                mask: false,
            },
            "Generated",
        ),
        (
            GenVariant {
                tex: true,
                mask: false,
            },
            if opencl { "  +Img" } else { "  +Tex" },
        ),
        (
            GenVariant {
                tex: false,
                mask: true,
            },
            "  +Mask",
        ),
        (
            GenVariant {
                tex: true,
                mask: true,
            },
            if opencl { "  +Mask+Img" } else { "  +Mask+Tex" },
        ),
    ];
    for (v, label) in gen_variants {
        let cells = columns
            .iter()
            .map(|(_, m)| generated_row(v, *m, target))
            .collect();
        rows.push((label.to_string(), cells));
    }

    // RapidMind rows exist only in the CUDA tables (Tables II and IV).
    if target.backend == Backend::Cuda {
        for (tex, label) in [(false, "RapidMind"), (true, "  +Tex")] {
            let cells = columns
                .iter()
                .map(|(_, m)| rapidmind_row(tex, *m, target))
                .collect();
            rows.push((label.to_string(), cells));
        }
    }

    Table {
        title: format!(
            "Table {}: Bilateral filter on {} ({}), {}x{} pixels, 13x13 window (sigma_d = 3), config 128x1 [times in ms]",
            roman(table_no),
            target.device.name,
            target.backend.name(),
            IMAGE,
            IMAGE
        ),
        columns: columns.into_iter().map(|(l, _)| l).collect(),
        rows,
    }
}

/// The Gaussian-table boundary columns (no Undefined column).
pub fn gaussian_columns() -> Vec<(String, BoundaryMode)> {
    vec![
        ("Clamp".into(), BoundaryMode::Clamp),
        ("Repeat".into(), BoundaryMode::Repeat),
        ("Mirror".into(), BoundaryMode::Mirror),
        ("Const.".into(), BoundaryMode::Constant(0.0)),
    ]
}

fn gaussian_gen_cell(
    size: u32,
    mode: BoundaryMode,
    target: &Target,
    variant: hipacc_codegen::MemVariant,
) -> Cell {
    let op = gaussian_operator(size, default_sigma(size), mode).with_options(PipelineOptions {
        variant,
        ..PipelineOptions::default()
    });
    // Automatic configuration (the paper: "automatic kernel configuration
    // as determined by our framework").
    match op.compile(target, IMAGE, IMAGE) {
        Ok(compiled) => Cell::Time(op.estimate(&compiled, target).total_ms),
        Err(_) => Cell::NotAvailable,
    }
}

/// Generate one Gaussian table section (Tables VIII/IX, one window size).
pub fn gaussian_table(device_target: &Target, size: u32, table_no: u32) -> Table {
    use hipacc_codegen::MemVariant as MV;
    let columns = gaussian_columns();
    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();

    // OpenCV rows (CUDA backend, as in the paper).
    for (ppt, label) in [(8u32, "OpenCV: PPT=8"), (1, "OpenCV: PPT=1")] {
        let cells = columns
            .iter()
            .map(|(_, m)| {
                let cv = OpencvSeparable {
                    size,
                    sigma: default_sigma(size),
                    ppt,
                    mode: *m,
                };
                Cell::Time(cv.estimate(device_target, IMAGE, IMAGE).total_ms)
            })
            .collect();
        rows.push((label.to_string(), cells));
    }

    // Our generated rows, CUDA then OpenCL.
    let cuda = Target::cuda(device_target.device.clone());
    let ocl = Target::opencl(device_target.device.clone());
    let variants: [(MV, &str); 3] = [
        (MV::Global, "Gen"),
        (MV::Texture, "+Tex"),
        (MV::Scratchpad, "+Smem"),
    ];
    for (backend_target, backend_label, img_label, smem_label) in [
        (&cuda, "CUDA", "+Tex", "+Smem"),
        (&ocl, "OpenCL", "+Img", "+Lmem"),
    ] {
        for (mv, label) in variants {
            let label = match label {
                "Gen" => format!("{backend_label}(Gen)"),
                "+Tex" => format!("{backend_label}({img_label})"),
                _ => format!("{backend_label}({smem_label})"),
            };
            let cells = columns
                .iter()
                .map(|(_, m)| gaussian_gen_cell(size, *m, backend_target, mv))
                .collect();
            rows.push((label, cells));
        }
    }

    Table {
        title: format!(
            "Table {}: Gaussian {}x{} on {}, {}x{} pixels [times in ms]",
            roman(table_no),
            size,
            size,
            device_target.device.name,
            IMAGE,
            IMAGE
        ),
        columns: columns.into_iter().map(|(l, _)| l).collect(),
        rows,
    }
}

fn roman(n: u32) -> &'static str {
    match n {
        2 => "II",
        3 => "III",
        4 => "IV",
        5 => "V",
        6 => "VI",
        7 => "VII",
        8 => "VIII",
        9 => "IX",
        _ => "?",
    }
}

/// All six bilateral tables in paper order.
pub fn all_bilateral_tables() -> Vec<Table> {
    Target::evaluation_targets()
        .into_iter()
        .zip(2u32..)
        .map(|(t, n)| bilateral_table(&t, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device::tesla_c2050;

    #[test]
    fn table2_shape_and_crash_cells() {
        let t = bilateral_table(&Target::cuda(tesla_c2050()), 2);
        assert_eq!(t.columns.len(), 5);
        assert_eq!(t.rows.len(), 12); // 6 manual + 4 generated + 2 RapidMind
                                      // Tesla CUDA: global-path Undefined crashes …
        assert_eq!(t.cell("Manual", "Undef."), Some(Cell::Crash));
        assert_eq!(t.cell("  +Mask", "Undef."), Some(Cell::Crash));
        // … but texture paths survive.
        assert!(t.cell("  +Tex", "Undef.").unwrap().time().is_some());
        // 2D textures have no Mirror/Const hardware modes on CUDA.
        assert_eq!(t.cell("  +2DTex", "Mirror"), Some(Cell::NotAvailable));
        assert_eq!(t.cell("  +2DTex", "Const."), Some(Cell::NotAvailable));
        // RapidMind: Repeat crashes on Fermi, Mirror is n/a.
        assert_eq!(t.cell("RapidMind", "Repeat"), Some(Cell::Crash));
        assert_eq!(t.cell("RapidMind", "Mirror"), Some(Cell::NotAvailable));
        assert!(t.cell("RapidMind", "Clamp").unwrap().time().is_some());
    }

    #[test]
    fn generated_times_are_mode_insensitive() {
        // The paper's headline property: generated code has (nearly)
        // constant performance across boundary modes.
        let t = bilateral_table(&Target::cuda(tesla_c2050()), 2);
        // Row 9 is the *generated* +Mask+Tex (rows 0-5 are manual, which
        // share labels with the generated section, as in the paper).
        assert_eq!(t.rows[9].0, "  +Mask+Tex");
        let times: Vec<f64> = t.rows[9].1[1..5].iter().filter_map(|x| x.time()).collect();
        assert_eq!(times.len(), 4);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.10, "generated times vary too much: {times:?}");
    }

    #[test]
    fn mask_rows_beat_no_mask_rows() {
        let t = bilateral_table(&Target::cuda(tesla_c2050()), 2);
        let gen = t.cell("Generated", "Clamp").unwrap().time().unwrap();
        let gen_mask = t.cell("  +Mask", "Clamp").unwrap().time();
        // "  +Mask" row label collides between manual and generated rows;
        // use row order instead: generated +Mask is row index 8.
        let gen_mask = t.rows[8].1[1].time().or(gen_mask).unwrap();
        assert!(
            gen_mask < gen,
            "constant-memory masks must pay off: {gen_mask} vs {gen}"
        );
    }
}
