//! Plain-text and Markdown rendering of tables and comparisons.

use crate::cells::{Cell, Table};
use crate::paper::PaperTable;

/// Render a table as aligned plain text.
pub fn render_text(t: &Table) -> String {
    let mut out = String::new();
    out.push_str(&t.title);
    out.push('\n');
    let label_w = t
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let col_w = 10usize;
    out.push_str(&format!("{:label_w$}", ""));
    for c in &t.columns {
        out.push_str(&format!(" {c:>col_w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + (col_w + 1) * t.columns.len()));
    out.push('\n');
    for (label, cells) in &t.rows {
        out.push_str(&format!("{label:label_w$}"));
        for c in cells {
            out.push_str(&format!(" {:>col_w$}", c.to_string()));
        }
        out.push('\n');
    }
    out
}

/// Render a side-by-side model-vs-paper comparison: each cell shows
/// `model (paper)` and the per-cell ratio is summarized below.
pub fn render_comparison(model: &Table, paper: &PaperTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}  [model vs paper]\n", model.title));
    let label_w = model
        .rows
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let col_w = 20usize;
    out.push_str(&format!("{:label_w$}", ""));
    for c in &model.columns {
        out.push_str(&format!(" {c:>col_w$}"));
    }
    out.push('\n');

    let mut ratios: Vec<f64> = Vec::new();
    let mut agree = 0usize;
    let mut total_special = 0usize;
    for (ri, (label, cells)) in model.rows.iter().enumerate() {
        out.push_str(&format!("{label:label_w$}"));
        let paper_row = paper.rows.get(ri).map(|(_, r)| *r);
        for (ci, cell) in cells.iter().enumerate() {
            let p = paper_row.and_then(|r| r.get(ci).copied()).flatten();
            let s = match (cell, p) {
                (Cell::Time(m), Some(pv)) => {
                    ratios.push(m / pv);
                    format!("{m:.1} ({pv:.1})")
                }
                (Cell::Time(m), None) => format!("{m:.1} (—)"),
                (special, None) => {
                    total_special += 1;
                    agree += 1;
                    format!("{special} ({special})")
                }
                (special, Some(pv)) => {
                    total_special += 1;
                    format!("{special} ({pv:.1})")
                }
            };
            out.push_str(&format!(" {s:>col_w$}"));
        }
        out.push('\n');
    }
    if !ratios.is_empty() {
        let gm = geometric_mean(&ratios);
        let (lo, hi) = (
            ratios.iter().cloned().fold(f64::INFINITY, f64::min),
            ratios.iter().cloned().fold(0.0f64, f64::max),
        );
        out.push_str(&format!(
            "model/paper ratio: geo-mean {gm:.2}, range [{lo:.2}, {hi:.2}] over {} cells",
            ratios.len()
        ));
        if total_special > 0 {
            out.push_str(&format!(
                "; crash/n-a cells matching: {agree}/{total_special}"
            ));
        }
        out.push('\n');
    }
    out
}

/// Render a table as CSV (crash/n-a cells become empty fields with a
/// status column convention: `value` or the literal `crash`/`n/a`).
pub fn render_csv(t: &Table) -> String {
    let mut out = String::new();
    out.push_str("row");
    for c in &t.columns {
        out.push(',');
        out.push_str(c);
    }
    out.push('\n');
    for (label, cells) in &t.rows {
        out.push_str(label.trim());
        for c in cells {
            out.push(',');
            out.push_str(&c.to_string());
        }
        out.push('\n');
    }
    out
}

/// Geometric mean.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Spearman rank correlation between two equally long samples — the
/// "shape" metric EXPERIMENTS.md reports: do cells rank the same way in
/// the model as in the paper?
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da.sqrt() * db.sqrt())
}

/// Collect the paired (model, paper) time vectors of a comparison.
pub fn paired_times(model: &Table, paper: &PaperTable) -> (Vec<f64>, Vec<f64>) {
    let mut m = Vec::new();
    let mut p = Vec::new();
    for (ri, (_, cells)) in model.rows.iter().enumerate() {
        let paper_row = match paper.rows.get(ri) {
            Some((_, r)) => r,
            None => continue,
        };
        for (ci, cell) in cells.iter().enumerate() {
            if let (Some(mv), Some(Some(pv))) = (cell.time(), paper_row.get(ci)) {
                m.push(mv);
                p.push(*pv);
            }
        }
    }
    (m, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_all_cells() {
        let t = Table {
            title: "Demo".into(),
            columns: vec!["A".into(), "B".into()],
            rows: vec![
                ("row1".into(), vec![Cell::Time(1.5), Cell::Crash]),
                ("row2".into(), vec![Cell::NotAvailable, Cell::Time(20.0)]),
            ],
        };
        let s = render_text(&t);
        assert!(s.contains("Demo"));
        assert!(s.contains("1.50"));
        assert!(s.contains("crash"));
        assert!(s.contains("n/a"));
        assert!(s.contains("20.00"));
    }

    #[test]
    fn csv_rendering_is_rectangular() {
        let t = Table {
            title: "Demo".into(),
            columns: vec!["A".into(), "B".into()],
            rows: vec![
                ("  row1".into(), vec![Cell::Time(1.5), Cell::Crash]),
                ("row2".into(), vec![Cell::NotAvailable, Cell::Time(20.0)]),
            ],
        };
        let csv = render_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "row,A,B");
        assert_eq!(lines[1], "row1,1.50,crash");
        assert_eq!(lines[2], "row2,n/a,20.00");
    }

    #[test]
    fn spearman_detects_perfect_and_inverse_order() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ones_is_one() {
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
    }
}
