//! The interval lattice shared by the bounds verifier ([`crate::bounds`])
//! and the range oracle that drives the IR optimizer ([`crate::range`]).
//!
//! Values are (possibly empty) inclusive integer intervals clamped to
//! `[-BOUND, BOUND]`; arithmetic uses the standard four-corner transfer
//! functions with saturation, so it never overflows and "unknown" stays
//! representable as the top element.

/// Absolute magnitude cap: intervals are clamped to `[-BOUND, BOUND]`, so
/// arithmetic never overflows and "unknown" is representable.
pub const BOUND: i64 = 1 << 40;

/// A (possibly empty) inclusive integer interval.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Ival {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound (`hi < lo` means the empty interval).
    pub hi: i64,
}

fn sat(v: i128) -> i64 {
    v.clamp(-(BOUND as i128), BOUND as i128) as i64
}

// The arithmetic methods intentionally shadow the `std::ops` names:
// interval arithmetic is partial (empty intervals, widening to top), so
// operator sugar would suggest a precision these transfer functions do
// not have.
#[allow(clippy::should_implement_trait)]
impl Ival {
    /// Interval `[lo, hi]`, clamped to the representable range.
    pub fn new(lo: i64, hi: i64) -> Ival {
        Ival {
            lo: lo.clamp(-BOUND, BOUND),
            hi: hi.clamp(-BOUND, BOUND),
        }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Ival {
        Ival::new(v, v)
    }

    /// The unknown-value interval `[-BOUND, BOUND]`.
    pub fn top() -> Ival {
        Ival {
            lo: -BOUND,
            hi: BOUND,
        }
    }

    /// The empty interval (unreachable value).
    pub fn empty() -> Ival {
        Ival { lo: 1, hi: 0 }
    }

    /// Whether no value is contained.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether every contained value lies within `[lo, hi]`.
    pub fn within(self, lo: i64, hi: i64) -> bool {
        self.is_empty() || (self.lo >= lo && self.hi <= hi)
    }

    fn lift2(self, rhs: Ival, f: impl Fn(i128, i128) -> i128) -> Ival {
        if self.is_empty() || rhs.is_empty() {
            return Ival::empty();
        }
        let c = [
            f(self.lo as i128, rhs.lo as i128),
            f(self.lo as i128, rhs.hi as i128),
            f(self.hi as i128, rhs.lo as i128),
            f(self.hi as i128, rhs.hi as i128),
        ];
        Ival {
            lo: sat(*c.iter().min().unwrap()),
            hi: sat(*c.iter().max().unwrap()),
        }
    }

    /// Interval addition.
    pub fn add(self, rhs: Ival) -> Ival {
        self.lift2(rhs, |a, b| a + b)
    }

    /// Interval subtraction.
    pub fn sub(self, rhs: Ival) -> Ival {
        self.lift2(rhs, |a, b| a - b)
    }

    /// Interval multiplication.
    pub fn mul(self, rhs: Ival) -> Ival {
        self.lift2(rhs, |a, b| a * b)
    }

    /// Interval negation.
    pub fn neg(self) -> Ival {
        if self.is_empty() {
            return self;
        }
        Ival::new(-self.hi, -self.lo)
    }

    /// Truncated (C) division. Sound only bounds are produced when the
    /// divisor may be zero or change sign: the result widens to top.
    pub fn div(self, rhs: Ival) -> Ival {
        if self.is_empty() || rhs.is_empty() {
            return Ival::empty();
        }
        if rhs.lo > 0 || rhs.hi < 0 {
            // Truncated division is monotone in the dividend for a
            // fixed-sign divisor; the four corners bound the result.
            self.lift2(rhs, |a, b| a / b)
        } else {
            Ival::top()
        }
    }

    /// Truncated (C) remainder: for a constant positive divisor `r` the
    /// result lies in `[-(r-1), r-1]`, tightened by the dividend's sign.
    pub fn rem(self, rhs: Ival) -> Ival {
        if self.is_empty() || rhs.is_empty() {
            return Ival::empty();
        }
        if rhs.lo == rhs.hi && rhs.lo > 0 {
            let r = rhs.lo;
            let lo = if self.lo >= 0 { 0 } else { -(r - 1) };
            let hi = if self.hi <= 0 { 0 } else { r - 1 };
            // A non-negative dividend smaller than r is unchanged.
            if self.lo >= 0 {
                return Ival::new(0, self.hi.min(r - 1));
            }
            Ival::new(lo, hi)
        } else {
            Ival::top()
        }
    }

    /// Pointwise minimum (the `min()` math call).
    pub fn min_(self, rhs: Ival) -> Ival {
        self.lift2(rhs, |a, b| a.min(b))
    }

    /// Pointwise maximum (the `max()` math call).
    pub fn max_(self, rhs: Ival) -> Ival {
        self.lift2(rhs, |a, b| a.max(b))
    }

    /// Absolute value.
    pub fn abs(self) -> Ival {
        if self.is_empty() {
            return self;
        }
        if self.lo >= 0 {
            self
        } else if self.hi <= 0 {
            self.neg()
        } else {
            Ival::new(0, (-self.lo).max(self.hi))
        }
    }

    /// Union hull (lattice join).
    pub fn join(self, rhs: Ival) -> Ival {
        if self.is_empty() {
            return rhs;
        }
        if rhs.is_empty() {
            return self;
        }
        Ival {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// Intersection (lattice meet); may be empty.
    pub fn meet(self, rhs: Ival) -> Ival {
        Ival {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.min(rhs.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arithmetic_basics() {
        let a = Ival::new(1, 3);
        let b = Ival::new(-2, 2);
        assert_eq!(a.add(b), Ival::new(-1, 5));
        assert_eq!(a.sub(b), Ival::new(-1, 5));
        assert_eq!(a.mul(b), Ival::new(-6, 6));
        assert_eq!(a.neg(), Ival::new(-3, -1));
        assert_eq!(Ival::new(0, 10).rem(Ival::point(4)), Ival::new(0, 3));
        assert_eq!(Ival::new(0, 2).rem(Ival::point(4)), Ival::new(0, 2));
        assert_eq!(Ival::new(-5, 5).div(Ival::point(2)), Ival::new(-2, 2));
        assert!(Ival::new(-5, 5).div(Ival::new(-1, 1)) == Ival::top());
        assert_eq!(a.join(b), Ival::new(-2, 3));
        assert_eq!(a.meet(b), Ival::new(1, 2));
        assert!(Ival::new(3, 1).is_empty());
        assert!(Ival::empty().add(a).is_empty());
        assert!(Ival::empty().within(0, 0));
        assert!(Ival::new(0, 4).within(0, 4));
        assert!(!Ival::new(0, 5).within(0, 4));
        assert_eq!(Ival::new(-3, 2).abs(), Ival::new(0, 3));
        assert_eq!(Ival::new(-3, -1).abs(), Ival::new(1, 3));
        assert_eq!(a.min_(b), Ival::new(-2, 2));
        assert_eq!(a.max_(b), Ival::new(1, 3));
    }
}
