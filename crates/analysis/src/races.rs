//! Shared-memory race detection over barrier-delimited intervals.
//!
//! Within one barrier interval ("phase"), two accesses to the same
//! scratchpad cell race when they come from different threads and at
//! least one is a write (GKLEE-style barrier-interval semantics). The
//! pass splits the kernel body at its top-level barriers, collects every
//! shared access site symbolically — inlining local definitions so each
//! site's row/column become closed expressions over `threadIdx`,
//! loop variables and kernel scalars — and then evaluates each site
//! *concretely for every thread of one representative block* (the same
//! lane-evaluation trick the simulator's bank-conflict model uses). Two
//! distinct threads landing on one flat address raise [A0201]
//! (write/write) or [A0202] (read/write).
//!
//! The analysis is exact for the address expressions the lowering emits
//! (affine in `threadIdx` with unrolled staging steps) and best-effort
//! beyond that: a site whose address does not fold to a constant for a
//! lane is skipped, guards that do not fold are assumed taken, and a
//! global evaluation budget caps pathological block shapes. Barriers
//! nested under control flow do *not* split phases (the divergence pass
//! rejects the thread-dependent ones); merging their intervals can only
//! over-approximate, never miss, a race within the shipped kernels.
//!
//! [A0201]: crate::diag#diagnostic-code-space
//! [A0202]: crate::diag#diagnostic-code-space

use crate::diag::Diagnostic;
use crate::VerifyInput;
use hipacc_ir::fold::eval_const;
use hipacc_ir::{Builtin, Const, Expr, LValue, Stmt, UnOp};
use std::collections::{BTreeSet, HashMap};

/// Total (site x lane x loop-combination) evaluation budget.
const MAX_EVALS: u64 = 1 << 20;

/// One symbolic shared-memory access site.
struct Site {
    buf: String,
    y: Expr,
    x: Expr,
    write: bool,
    /// Path conditions (already substituted); a lane where any folds to
    /// `false` does not execute the access.
    guards: Vec<Expr>,
    /// Enclosing loops as `(var, from, to)`, outermost first.
    loops: Vec<(String, Expr, Expr)>,
    /// Barrier interval the site belongs to.
    phase: usize,
}

struct Collector {
    sites: Vec<Site>,
    guards: Vec<Expr>,
    loops: Vec<(String, Expr, Expr)>,
    phase: usize,
}

fn subst(e: &Expr, defs: &HashMap<String, Option<Expr>>) -> Expr {
    e.clone().rewrite(&mut |n| {
        if let Expr::Var(v) = &n {
            if let Some(Some(d)) = defs.get(v) {
                return d.clone();
            }
        }
        n
    })
}

fn not(e: Expr) -> Expr {
    Expr::Unary(UnOp::Not, Box::new(e))
}

impl Collector {
    fn harvest_reads(&mut self, e: &Expr) {
        let mut found = Vec::new();
        e.visit(&mut |n| {
            if let Expr::SharedLoad { buf, y, x } = n {
                found.push((buf.clone(), (**y).clone(), (**x).clone()));
            }
        });
        for (buf, y, x) in found {
            self.sites.push(Site {
                buf,
                y,
                x,
                write: false,
                guards: self.guards.clone(),
                loops: self.loops.clone(),
                phase: self.phase,
            });
        }
    }

    fn poison_assigned(stmts: &[Stmt], defs: &mut HashMap<String, Option<Expr>>) {
        Stmt::visit_all(stmts, &mut |s| {
            if let Stmt::Assign {
                target: LValue::Var(v),
                ..
            } = s
            {
                defs.insert(v.clone(), None);
            }
        });
    }

    /// Walk one statement list; returns whether it unconditionally returns.
    fn collect(
        &mut self,
        stmts: &[Stmt],
        defs: &mut HashMap<String, Option<Expr>>,
        top_level: bool,
    ) -> bool {
        let guard_depth = self.guards.len();
        for s in stmts {
            match s {
                Stmt::Barrier => {
                    if top_level {
                        self.phase += 1;
                    }
                }
                Stmt::Decl { name, init, .. } => {
                    let init_s = init.as_ref().map(|e| subst(e, defs));
                    if let Some(e) = &init_s {
                        self.harvest_reads(e);
                    }
                    defs.insert(name.clone(), init_s);
                }
                Stmt::Assign {
                    target: LValue::Var(v),
                    value,
                } => {
                    let value_s = subst(value, defs);
                    self.harvest_reads(&value_s);
                    defs.insert(v.clone(), None);
                }
                Stmt::GlobalStore { idx, value, .. } => {
                    self.harvest_reads(&subst(idx, defs));
                    self.harvest_reads(&subst(value, defs));
                }
                Stmt::SharedStore { buf, y, x, value } => {
                    let (y_s, x_s) = (subst(y, defs), subst(x, defs));
                    self.harvest_reads(&subst(value, defs));
                    self.harvest_reads(&y_s);
                    self.harvest_reads(&x_s);
                    self.sites.push(Site {
                        buf: buf.clone(),
                        y: y_s,
                        x: x_s,
                        write: true,
                        guards: self.guards.clone(),
                        loops: self.loops.clone(),
                        phase: self.phase,
                    });
                }
                Stmt::If { cond, then, els } => {
                    let cond_s = subst(cond, defs);
                    self.harvest_reads(&cond_s);
                    let mut then_defs = defs.clone();
                    self.guards.push(cond_s.clone());
                    let t_term = self.collect(then, &mut then_defs, false);
                    self.guards.pop();
                    let mut els_defs = defs.clone();
                    self.guards.push(not(cond_s.clone()));
                    let e_term = self.collect(els, &mut els_defs, false);
                    self.guards.pop();
                    Self::poison_assigned(then, defs);
                    Self::poison_assigned(els, defs);
                    match (t_term, e_term) {
                        (true, true) => {
                            self.guards.truncate(guard_depth);
                            return true;
                        }
                        // One branch returned: the rest of this list only
                        // runs on lanes that took the other branch.
                        (true, false) => self.guards.push(not(cond_s)),
                        (false, true) => self.guards.push(cond_s),
                        (false, false) => {}
                    }
                }
                Stmt::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    let from_s = subst(from, defs);
                    let to_s = subst(to, defs);
                    self.harvest_reads(&from_s);
                    self.harvest_reads(&to_s);
                    let mut body_defs = defs.clone();
                    Self::poison_assigned(body, &mut body_defs);
                    self.loops.push((var.clone(), from_s, to_s));
                    self.collect(body, &mut body_defs, false);
                    self.loops.pop();
                    Self::poison_assigned(body, defs);
                }
                Stmt::Output(e) => self.harvest_reads(&subst(e, defs)),
                Stmt::Return => {
                    self.guards.truncate(guard_depth);
                    return true;
                }
                Stmt::Comment(_) => {}
            }
        }
        self.guards.truncate(guard_depth);
        false
    }
}

fn bind_builtins(e: &Expr, tx: i64, ty: i64, block: (u32, u32), grid: (u32, u32)) -> Expr {
    e.clone().rewrite(&mut |n| match n {
        Expr::Builtin(b) => Expr::ImmInt(match b {
            Builtin::ThreadIdxX => tx,
            Builtin::ThreadIdxY => ty,
            // Representative block: shared addressing in lowered kernels
            // never involves the block index.
            Builtin::BlockIdxX | Builtin::BlockIdxY => 0,
            Builtin::BlockDimX => block.0 as i64,
            Builtin::BlockDimY => block.1 as i64,
            Builtin::GridDimX => grid.0 as i64,
            Builtin::GridDimY => grid.1 as i64,
        }),
        other => other,
    })
}

/// Enumerate loop-variable assignments depth-first. `complete` is
/// cleared when any part of the space was skipped (non-constant bound,
/// budget exhausted), so callers that must *over*-approximate can tell.
fn for_each_combo(
    loops: &[(String, Expr, Expr)],
    env: &mut HashMap<String, Const>,
    budget: &mut u64,
    complete: &mut bool,
    f: &mut impl FnMut(&mut HashMap<String, Const>, &mut u64),
) {
    let Some((var, from, to)) = loops.first() else {
        if *budget > 0 {
            *budget -= 1;
            f(env, budget);
        } else {
            *complete = false;
        }
        return;
    };
    let (Some(Const::Int(lo)), Some(Const::Int(hi))) = (eval_const(from, env), eval_const(to, env))
    else {
        *complete = false;
        return; // non-constant loop bound: skip this site
    };
    for v in lo..=hi {
        if *budget == 0 {
            *complete = false;
            return;
        }
        env.insert(var.clone(), Const::Int(v));
        for_each_combo(&loops[1..], env, budget, complete, f);
    }
    env.remove(var);
}

/// Run the race pass: evaluate every shared access site for every thread
/// of a representative block and look for colliding flat addresses.
pub fn check_shared_races(input: &VerifyInput<'_>) -> Vec<Diagnostic> {
    if input.kernel.shared.is_empty() {
        return Vec::new();
    }
    let mut col = Collector {
        sites: Vec::new(),
        guards: Vec::new(),
        loops: Vec::new(),
        phase: 0,
    };
    let mut defs = HashMap::new();
    col.collect(&input.kernel.body, &mut defs, true);
    let phases = col.phase + 1;

    let cols_of: HashMap<&str, i64> = input
        .kernel
        .shared
        .iter()
        .map(|s| (s.name.as_str(), s.cols as i64))
        .collect();
    let scalar_env: HashMap<String, Const> = input
        .scalars
        .iter()
        .map(|(k, &v)| (k.clone(), Const::Int(v)))
        .collect();

    let (bx, by) = (input.block.0 as i64, input.block.1 as i64);
    let mut budget = MAX_EVALS;
    let mut diags = Vec::new();
    for phase in 0..phases {
        let phase_sites: Vec<&Site> = col.sites.iter().filter(|s| s.phase == phase).collect();
        if !phase_sites.iter().any(|s| s.write) {
            continue; // reads alone cannot race
        }
        // (buf, flat address) -> set of linear thread ids.
        let mut writers: HashMap<(String, i64), BTreeSet<i64>> = HashMap::new();
        let mut readers: HashMap<(String, i64), BTreeSet<i64>> = HashMap::new();
        for site in &phase_sites {
            let Some(&cols) = cols_of.get(site.buf.as_str()) else {
                continue;
            };
            for ty in 0..by {
                for tx in 0..bx {
                    let tid = ty * bx + tx;
                    let bind = |e: &Expr| bind_builtins(e, tx, ty, input.block, input.grid);
                    let y_e = bind(&site.y);
                    let x_e = bind(&site.x);
                    let guards: Vec<Expr> = site.guards.iter().map(&bind).collect();
                    let loops: Vec<(String, Expr, Expr)> = site
                        .loops
                        .iter()
                        .map(|(v, f, t)| (v.clone(), bind(f), bind(t)))
                        .collect();
                    let mut env = scalar_env.clone();
                    // The race check may under-approximate (skipped lanes
                    // only lose reports), so completeness is not tracked.
                    let mut _complete = true;
                    for_each_combo(
                        &loops,
                        &mut env,
                        &mut budget,
                        &mut _complete,
                        &mut |env, _| {
                            // A guard folding to false disables the lane; one
                            // that does not fold is conservatively taken.
                            if guards
                                .iter()
                                .any(|g| matches!(eval_const(g, env), Some(Const::Bool(false))))
                            {
                                return;
                            }
                            let (Some(Const::Int(y)), Some(Const::Int(x))) =
                                (eval_const(&y_e, env), eval_const(&x_e, env))
                            else {
                                return; // address does not fold: skip lane
                            };
                            let key = (site.buf.clone(), y * cols + x);
                            if site.write {
                                writers.entry(key).or_default().insert(tid);
                            } else {
                                readers.entry(key).or_default().insert(tid);
                            }
                        },
                    );
                }
            }
        }
        // Write/write collisions.
        let mut ww_seen = BTreeSet::new();
        for ((buf, addr), tids) in &writers {
            if tids.len() >= 2 && ww_seen.insert(buf.clone()) {
                let mut it = tids.iter();
                let (a, b) = (it.next().unwrap(), it.next().unwrap());
                let cols = cols_of[buf.as_str()];
                diags.push(Diagnostic::error(
                    "A0201",
                    &input.kernel.name,
                    format!(
                        "shared write/write race on `{buf}` in barrier interval {phase}: \
                         threads {a} and {b} both write [{}][{}]",
                        addr / cols,
                        addr % cols
                    ),
                ));
            }
        }
        // Read/write collisions between distinct threads.
        let mut rw_seen = BTreeSet::new();
        for ((buf, addr), rtids) in &readers {
            let Some(wtids) = writers.get(&(buf.clone(), *addr)) else {
                continue;
            };
            let pair = rtids
                .iter()
                .find_map(|r| wtids.iter().find(|w| *w != r).map(|w| (*r, *w)));
            if let Some((r, w)) = pair {
                if rw_seen.insert(buf.clone()) {
                    let cols = cols_of[buf.as_str()];
                    diags.push(Diagnostic::error(
                        "A0202",
                        &input.kernel.name,
                        format!(
                            "shared read/write race on `{buf}` in barrier interval {phase}: \
                             thread {r} reads [{y}][{x}] while thread {w} writes it",
                            y = addr / cols,
                            x = addr % cols
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Concrete memory footprint of one barrier interval, keyed by
/// `(buffer, flat address) -> thread ids`. `ok` means every shared
/// access site in the phase folded for every lane — only then is the
/// footprint a trustworthy *over*-approximation.
struct Foot {
    ok: bool,
    sw: HashMap<(String, i64), BTreeSet<i64>>,
    sr: HashMap<(String, i64), BTreeSet<i64>>,
    /// Whether the phase contains any global-memory store.
    global: bool,
}

impl Foot {
    fn new() -> Foot {
        Foot {
            ok: true,
            sw: HashMap::new(),
            sr: HashMap::new(),
            global: false,
        }
    }

    fn shared_empty(&self) -> bool {
        self.sw.is_empty() && self.sr.is_empty()
    }

    fn absorb(&mut self, other: Foot) {
        self.ok &= other.ok;
        self.global |= other.global;
        for (k, tids) in other.sw {
            self.sw.entry(k).or_default().extend(tids);
        }
        for (k, tids) in other.sr {
            self.sr.entry(k).or_default().extend(tids);
        }
    }
}

/// Whether merging footprints `a` and `b` into one barrier interval can
/// introduce a cross-thread conflict.
fn merge_conflicts(a: &Foot, b: &Foot) -> bool {
    // Two phases that both store to global memory must stay ordered:
    // the store journal arbitrates same-cell writes by phase first, so
    // merging could flip which write lands last.
    if a.global && b.global {
        return true;
    }
    // A phase with no shared accesses merges freely.
    if (a.ok && a.shared_empty()) || (b.ok && b.shared_empty()) {
        return false;
    }
    if !a.ok || !b.ok {
        return true; // unknown footprint: conservatively conflicting
    }
    let cross = |x: &HashMap<(String, i64), BTreeSet<i64>>,
                 y: &HashMap<(String, i64), BTreeSet<i64>>| {
        x.iter().any(|(k, ta)| {
            y.get(k).is_some_and(|tb| {
                // distinct threads touch one cell
                ta.union(tb).count() >= 2
            })
        })
    };
    cross(&a.sw, &b.sw) || cross(&a.sw, &b.sr) || cross(&a.sr, &b.sw)
}

/// Per-phase "contains a global store" flags, split at top-level
/// barriers exactly like the site collector.
fn phase_global_stores(body: &[Stmt]) -> Vec<bool> {
    let mut flags = vec![false];
    for s in body {
        if matches!(s, Stmt::Barrier) {
            flags.push(false);
            continue;
        }
        let mut has = false;
        Stmt::visit_all(std::slice::from_ref(s), &mut |n| {
            if matches!(n, Stmt::GlobalStore { .. } | Stmt::Output(_)) {
                has = true;
            }
        });
        if has {
            *flags.last_mut().unwrap() = true;
        }
    }
    flags
}

/// Identify provably dead top-level barriers, returned as 0-based
/// ordinals among the body's top-level `Stmt::Barrier`s.
///
/// A barrier is dead when the two race phases it separates could run as
/// one phase without changing any memory outcome: their concrete
/// shared-memory footprints (evaluated per thread of a representative
/// block, like [`check_shared_races`]) touch no common cell from two
/// distinct threads, and at most one side stores to global memory (the
/// store journal orders same-cell writes by phase). Any lane or site
/// that fails to evaluate makes its phase's footprint unknown and
/// pins every barrier adjacent to it — the polarity is flipped from the
/// race *checker*, which may under-approximate because skipped lanes
/// only cost reports. Removed barriers merge, so a chain is only
/// removed while the accumulated interval stays conflict-free.
pub fn removable_barriers(input: &VerifyInput<'_>) -> Vec<usize> {
    let nbar = input
        .kernel
        .body
        .iter()
        .filter(|s| matches!(s, Stmt::Barrier))
        .count();
    if nbar == 0 {
        return Vec::new();
    }

    let mut col = Collector {
        sites: Vec::new(),
        guards: Vec::new(),
        loops: Vec::new(),
        phase: 0,
    };
    let mut defs = HashMap::new();
    col.collect(&input.kernel.body, &mut defs, true);
    if col.phase != nbar {
        // A top-level `return` cut collection short; barriers past it
        // were not analyzed. Keep everything.
        return Vec::new();
    }

    let cols_of: HashMap<&str, i64> = input
        .kernel
        .shared
        .iter()
        .map(|s| (s.name.as_str(), s.cols as i64))
        .collect();
    let scalar_env: HashMap<String, Const> = input
        .scalars
        .iter()
        .map(|(k, &v)| (k.clone(), Const::Int(v)))
        .collect();
    let (bx, by) = (input.block.0 as i64, input.block.1 as i64);

    let mut feet: Vec<Foot> = (0..=nbar).map(|_| Foot::new()).collect();
    for (foot, has_global) in feet.iter_mut().zip(phase_global_stores(&input.kernel.body)) {
        foot.global = has_global;
    }

    let mut budget = MAX_EVALS;
    for site in &col.sites {
        let foot = &mut feet[site.phase];
        let Some(&cols) = cols_of.get(site.buf.as_str()) else {
            foot.ok = false;
            continue;
        };
        for ty in 0..by {
            for tx in 0..bx {
                let tid = ty * bx + tx;
                let bind = |e: &Expr| bind_builtins(e, tx, ty, input.block, input.grid);
                let y_e = bind(&site.y);
                let x_e = bind(&site.x);
                let guards: Vec<Expr> = site.guards.iter().map(&bind).collect();
                let loops: Vec<(String, Expr, Expr)> = site
                    .loops
                    .iter()
                    .map(|(v, f, t)| (v.clone(), bind(f), bind(t)))
                    .collect();
                let mut env = scalar_env.clone();
                let mut complete = true;
                let mut ok = true;
                let (sw, sr) = (&mut foot.sw, &mut foot.sr);
                for_each_combo(
                    &loops,
                    &mut env,
                    &mut budget,
                    &mut complete,
                    &mut |env, _| {
                        // A guard folding to false disables the lane; one
                        // that does not fold is *included* — for removal the
                        // footprint must over-approximate.
                        if guards
                            .iter()
                            .any(|g| matches!(eval_const(g, env), Some(Const::Bool(false))))
                        {
                            return;
                        }
                        let (Some(Const::Int(y)), Some(Const::Int(x))) =
                            (eval_const(&y_e, env), eval_const(&x_e, env))
                        else {
                            ok = false; // unknown address: footprint unknown
                            return;
                        };
                        let key = (site.buf.clone(), y * cols + x);
                        if site.write {
                            sw.entry(key).or_default().insert(tid);
                        } else {
                            sr.entry(key).or_default().insert(tid);
                        }
                    },
                );
                if !ok || !complete {
                    foot.ok = false;
                }
            }
        }
    }
    if budget == 0 {
        return Vec::new();
    }

    // Greedy left-to-right merge: each removed barrier folds its right
    // phase into the accumulated interval.
    let mut dead = Vec::new();
    let mut iter = feet.into_iter();
    let mut acc = iter.next().unwrap();
    for (i, next) in iter.enumerate() {
        if merge_conflicts(&acc, &next) {
            acc = next;
        } else {
            dead.push(i);
            acc.absorb(next);
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device as devices;
    use hipacc_ir::kernel::{DeviceKernelDef, SharedDecl};
    use hipacc_ir::ScalarType;

    fn tid() -> Expr {
        Expr::Builtin(Builtin::ThreadIdxX)
    }

    fn kernel(body: Vec<Stmt>) -> DeviceKernelDef {
        DeviceKernelDef {
            name: "k".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![SharedDecl {
                name: "tile".into(),
                ty: ScalarType::F32,
                rows: 2,
                cols: 33,
            }],
            body,
        }
    }

    fn store(y: Expr, x: Expr) -> Stmt {
        Stmt::SharedStore {
            buf: "tile".into(),
            y,
            x,
            value: Expr::float(1.0),
        }
    }

    fn load(y: Expr, x: Expr) -> Stmt {
        Stmt::Decl {
            name: "v".into(),
            ty: ScalarType::F32,
            init: Some(Expr::SharedLoad {
                buf: "tile".into(),
                y: Box::new(y),
                x: Box::new(x),
            }),
        }
    }

    fn check(body: Vec<Stmt>) -> Vec<Diagnostic> {
        let k = kernel(body);
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (16, 1), (4, 1));
        check_shared_races(&inp)
    }

    #[test]
    fn distinct_lanes_do_not_race() {
        let d = check(vec![
            store(Expr::int(0), tid()),
            Stmt::Barrier,
            load(Expr::int(0), tid() + Expr::int(1)),
        ]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn colliding_writes_are_a0201() {
        // tid/2 maps threads 0 and 1 to the same cell.
        let d = check(vec![store(Expr::int(0), tid() / Expr::int(2))]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0201");
    }

    #[test]
    fn unsynchronized_neighbor_read_is_a0202() {
        let d = check(vec![
            store(Expr::int(0), tid()),
            load(Expr::int(0), tid() + Expr::int(1)),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0202");
    }

    #[test]
    fn same_thread_read_after_write_is_fine() {
        let d = check(vec![store(Expr::int(0), tid()), load(Expr::int(0), tid())]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn guards_split_the_lanes() {
        // Each lane writes a distinct cell, chosen by a branch.
        let d = check(vec![Stmt::If {
            cond: tid().lt(Expr::int(8)),
            then: vec![store(Expr::int(0), tid())],
            els: vec![store(Expr::int(1), tid())],
        }]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn staging_loop_with_stride_is_clean_and_without_is_not() {
        // for s in 0..=1 { tile[0][tid + s*16] } covers 32 distinct cells.
        let strided = check(vec![Stmt::For {
            var: "s".into(),
            from: Expr::int(0),
            to: Expr::int(1),
            body: vec![store(Expr::int(0), tid() + Expr::var("s") * Expr::int(16))],
        }]);
        assert!(strided.is_empty(), "unexpected: {strided:?}");
        // Without the stride every iteration rewrites the same cells from
        // the same thread — still one thread per cell, so to provoke the
        // race collapse the thread index instead.
        let collapsed = check(vec![Stmt::For {
            var: "s".into(),
            from: Expr::int(0),
            to: Expr::int(1),
            body: vec![store(Expr::int(0), Expr::var("s"))],
        }]);
        assert_eq!(collapsed[0].code, "A0201");
    }

    #[test]
    fn inlined_definitions_reach_the_address() {
        // lx = tid + 3; tile[0][lx] — needs the Decl substitution.
        let d = check(vec![
            Stmt::Decl {
                name: "lx".into(),
                ty: ScalarType::I32,
                init: Some(tid() + Expr::int(3)),
            },
            store(Expr::int(0), Expr::var("lx")),
        ]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    fn removable(body: Vec<Stmt>) -> Vec<usize> {
        let k = kernel(body);
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (16, 1), (4, 1));
        removable_barriers(&inp)
    }

    #[test]
    fn disjoint_phase_footprints_free_the_barrier() {
        // Row 0 vs row 1: no cell is shared across the barrier.
        let d = removable(vec![
            store(Expr::int(0), tid()),
            Stmt::Barrier,
            store(Expr::int(1), tid()),
        ]);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn cross_thread_reuse_pins_the_barrier() {
        // Classic staging: the read pulls a neighbour's cell.
        let d = removable(vec![
            store(Expr::int(0), tid()),
            Stmt::Barrier,
            load(Expr::int(0), tid() + Expr::int(1)),
        ]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn same_thread_reuse_frees_the_barrier() {
        // Every thread reads back exactly its own cell.
        let d = removable(vec![
            store(Expr::int(0), tid()),
            Stmt::Barrier,
            load(Expr::int(0), tid()),
        ]);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn empty_phase_frees_trailing_barrier() {
        let d = removable(vec![store(Expr::int(0), tid()), Stmt::Barrier]);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn global_stores_on_both_sides_pin_the_barrier() {
        let gstore = |v: i64| Stmt::GlobalStore {
            buf: "out".into(),
            idx: tid(),
            value: Expr::float(v as f32),
        };
        let d = removable(vec![gstore(1), Stmt::Barrier, gstore(2)]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn merged_chain_rechecks_accumulated_footprint() {
        // Barrier 0 separates disjoint rows and is removed; barrier 1's
        // right side reads row 0 from a neighbour, conflicting with the
        // *accumulated* interval, so it stays.
        let d = removable(vec![
            store(Expr::int(0), tid()),
            Stmt::Barrier,
            store(Expr::int(1), tid()),
            Stmt::Barrier,
            load(Expr::int(0), tid() + Expr::int(1)),
        ]);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn unknown_address_pins_adjacent_barriers() {
        // `_mystery` never folds: the footprint is unknown.
        let d = removable(vec![
            store(Expr::int(0), Expr::var("_mystery")),
            Stmt::Barrier,
            store(Expr::int(1), tid()),
        ]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn kernels_without_shared_memory_are_skipped() {
        let k = DeviceKernelDef {
            name: "k".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body: vec![store(Expr::int(0), Expr::int(0))],
        };
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (16, 1), (1, 1));
        assert!(check_shared_races(&inp).is_empty());
    }
}
