//! Fusion legality: when may a chain of operators become one kernel?
//!
//! The IR composer (`hipacc_ir::fuse`) checks that stage *bodies* are
//! structurally composable; this module decides the semantic half. A
//! chain is fusable iff every consumer's reads of its producer's output
//! are expressible as a widened halo of the fused kernel:
//!
//! * **Linear pipeline** (`F0103`) — every stage reads exactly one input
//!   accessor, so the chain is producer → consumer with no side inputs.
//! * **Handoff boundary modes** (`F0102`) — an interior stage may read
//!   its producer with `Clamp`, `Mirror` or `Constant` handling: those
//!   adjusted coordinates stay within the producer's staging tile (the
//!   tile always reaches the nearest image edge it pokes past, and
//!   clamp/mirror land within the stencil reach of an edge). `Repeat`
//!   wraps to the *opposite* side of the image — arbitrarily far from
//!   the tile — and `Undefined` makes the handoff value unspecified, so
//!   both reject fusion. The *first* stage reads a real global image and
//!   may use any mode.
//! * **Compatible ROIs** (`F0101`) — all stages must iterate the same
//!   space; and a partial ROI is only fusable when no consumer has a
//!   stencil (a producer computes nothing outside its ROI, so a consumer
//!   halo would read pixels the unfused chain left untouched).
//! * **Kernel shape** (`F0104`) — bounded stencil windows and scalar
//!   (non-vectorized) stages only.
//!
//! Rejections are reported as error-severity [`Diagnostic`]s with the
//! stable `F01xx` codes so runtimes can record *why* a chain stayed
//! unfused; `F0105` (resource overflow at compile time, fall back
//! per-stage) is emitted by the runtime layer, not here.

use crate::diag::Diagnostic;
use hipacc_image::BoundaryMode;
use hipacc_ir::access::analyze;
use hipacc_ir::KernelDef;
use std::collections::HashMap;

/// The fusion-relevant shape of one pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageShape {
    /// Stage (kernel) name, used in diagnostics.
    pub name: String,
    /// Number of input accessors the kernel declares.
    pub accessor_count: usize,
    /// Boundary mode of the stage's reads of its input.
    pub boundary: BoundaryMode,
    /// Iteration-space ROI `(off_x, off_y, w, h)`, when restricted.
    pub roi: Option<(u32, u32, u32, u32)>,
    /// Stencil half-window on the input — the larger of the inferred
    /// read window and the declared boundary window.
    pub halo: (u32, u32),
    /// Whether the read window could not be bounded statically.
    pub unbounded: bool,
    /// Pixels per work-item the stage was configured with.
    pub vectorize: u32,
}

impl StageShape {
    /// Derive a shape from a DSL kernel plus the access metadata the
    /// framework carries outside the kernel body (boundary mode and
    /// declared half-window, ROI, vectorization width).
    pub fn of(
        def: &KernelDef,
        boundary: BoundaryMode,
        declared_half: (u32, u32),
        roi: Option<(u32, u32, u32, u32)>,
        vectorize: u32,
    ) -> Self {
        let info = analyze(def, &HashMap::new());
        let first = def.accessors.first().map(|a| a.name.clone());
        let (halo, unbounded) = match first.and_then(|n| info.inputs.get(&n).cloned()) {
            None => ((0, 0), false),
            Some(p) => match p.window() {
                Some((w, h)) if !p.unbounded => (
                    ((w / 2).max(declared_half.0), (h / 2).max(declared_half.1)),
                    false,
                ),
                _ => (declared_half, true),
            },
        };
        StageShape {
            name: def.name.clone(),
            accessor_count: def.accessors.len(),
            boundary,
            roi,
            halo,
            unbounded,
            vectorize: vectorize.max(1),
        }
    }
}

/// Check a chain of stages (producer first) for fusion legality.
///
/// Returns one error-severity diagnostic per violated rule, in chain
/// order; an empty result means the chain is legal to fuse. Chains
/// shorter than two stages are trivially "legal" (there is nothing to
/// fuse) and return no findings.
pub fn check_fusion(stages: &[StageShape]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if stages.len() < 2 {
        return diags;
    }

    for s in stages {
        if s.accessor_count != 1 {
            diags.push(Diagnostic::error(
                "F0103",
                s.name.clone(),
                format!(
                    "stage reads {} input accessors; only linear single-input chains fuse",
                    s.accessor_count
                ),
            ));
        }
        if s.unbounded {
            diags.push(Diagnostic::error(
                "F0104",
                s.name.clone(),
                "stage's read window is not statically bounded",
            ));
        }
        if s.vectorize > 1 {
            diags.push(Diagnostic::error(
                "F0104",
                s.name.clone(),
                format!(
                    "stage is vectorized ({} pixels per work-item); fused kernels are scalar",
                    s.vectorize
                ),
            ));
        }
    }

    // Handoff boundary modes: stages after the first read a staged
    // intermediate, not a real image. Point consumers (halo 0) never
    // read off their own pixel, so the handoff mode is never exercised
    // and any mode is legal.
    for s in &stages[1..] {
        if s.halo == (0, 0) {
            continue;
        }
        match s.boundary {
            BoundaryMode::Repeat => diags.push(Diagnostic::error(
                "F0102",
                s.name.clone(),
                "Repeat boundary handling wraps across the image and escapes the staging tile",
            )),
            BoundaryMode::Undefined => diags.push(Diagnostic::error(
                "F0102",
                s.name.clone(),
                "Undefined boundary handling leaves fused handoff values unspecified",
            )),
            BoundaryMode::Clamp | BoundaryMode::Mirror | BoundaryMode::Constant(_) => {}
        }
    }

    // ROIs: identical across the chain, and no stencil consumer when the
    // chain iterates a sub-rectangle.
    let roi0 = stages[0].roi;
    for s in &stages[1..] {
        if s.roi != roi0 {
            diags.push(Diagnostic::error(
                "F0101",
                s.name.clone(),
                format!("stage ROI {:?} differs from the chain's {:?}", s.roi, roi0),
            ));
        }
    }
    if roi0.is_some() && diags.is_empty() {
        for s in &stages[1..] {
            if s.halo != (0, 0) {
                diags.push(Diagnostic::error(
                    "F0101",
                    s.name.clone(),
                    "stage has a stencil halo but the chain iterates a partial ROI; \
                     the unfused producer computes nothing outside the ROI",
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(name: &str, mode: BoundaryMode, halo: (u32, u32)) -> StageShape {
        StageShape {
            name: name.into(),
            accessor_count: 1,
            boundary: mode,
            roi: None,
            halo,
            unbounded: false,
            vectorize: 1,
        }
    }

    #[test]
    fn clean_chain_is_legal() {
        let chain = [
            shape("gauss", BoundaryMode::Undefined, (2, 2)), // first stage: any mode
            shape("sobel", BoundaryMode::Clamp, (1, 1)),
            shape("laplace", BoundaryMode::Mirror, (1, 1)),
        ];
        assert!(check_fusion(&chain).is_empty());
    }

    #[test]
    fn repeat_and_undefined_handoffs_reject() {
        for mode in [BoundaryMode::Repeat, BoundaryMode::Undefined] {
            let chain = [
                shape("a", BoundaryMode::Clamp, (1, 1)),
                shape("b", mode, (1, 1)),
            ];
            let d = check_fusion(&chain);
            assert_eq!(d.len(), 1, "{mode:?}");
            assert_eq!(d[0].code, "F0102");
        }
    }

    #[test]
    fn point_consumers_fuse_under_any_handoff_mode() {
        // A halo-0 consumer never reads off its own pixel, so even the
        // modes that are illegal for stencil handoffs are fine.
        for mode in [BoundaryMode::Repeat, BoundaryMode::Undefined] {
            let chain = [
                shape("a", BoundaryMode::Clamp, (2, 2)),
                shape("pt", mode, (0, 0)),
            ];
            assert!(check_fusion(&chain).is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn roi_mismatch_rejects() {
        let mut a = shape("a", BoundaryMode::Clamp, (1, 1));
        let b = shape("b", BoundaryMode::Clamp, (1, 1));
        a.roi = Some((0, 0, 64, 64));
        let d = check_fusion(&[a, b]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "F0101");
    }

    #[test]
    fn partial_roi_with_stencil_consumer_rejects() {
        let mut a = shape("a", BoundaryMode::Clamp, (1, 1));
        let mut b = shape("b", BoundaryMode::Clamp, (1, 1));
        a.roi = Some((4, 4, 32, 32));
        b.roi = Some((4, 4, 32, 32));
        let d = check_fusion(&[a, b]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "F0101");

        // …but a point consumer over the same ROI is fine.
        let mut c = shape("c", BoundaryMode::Clamp, (0, 0));
        c.roi = Some((4, 4, 32, 32));
        let mut a2 = shape("a", BoundaryMode::Clamp, (1, 1));
        a2.roi = Some((4, 4, 32, 32));
        assert!(check_fusion(&[a2, c]).is_empty());
    }

    #[test]
    fn non_linear_and_vectorized_reject() {
        let mut a = shape("a", BoundaryMode::Clamp, (1, 1));
        a.accessor_count = 2;
        let d = check_fusion(&[a, shape("b", BoundaryMode::Clamp, (0, 0))]);
        assert_eq!(d[0].code, "F0103");

        let mut v = shape("v", BoundaryMode::Clamp, (1, 1));
        v.vectorize = 4;
        let d = check_fusion(&[shape("a", BoundaryMode::Clamp, (1, 1)), v]);
        assert_eq!(d[0].code, "F0104");
    }
}
