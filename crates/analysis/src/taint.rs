//! Barrier-divergence checking via a thread-dependence taint lattice.
//!
//! GPU barriers (`__syncthreads` / `barrier(CLK_LOCAL_MEM_FENCE)`) are
//! only well-defined when *every* thread of a block reaches them. The
//! lowering therefore emits the single staging barrier at the top level,
//! before the iteration-space guard. This pass proves that property for
//! arbitrary device kernels, GPUVerify-style:
//!
//! 1. A taint fixpoint over the CFG (via [`crate::dataflow`]) computes
//!    the set of variables whose values are *thread-dependent* — seeded
//!    from the `threadIdx.x/y` builtins and closed over assignments.
//!    (`blockIdx`/`blockDim`/`gridDim` are uniform across a block and do
//!    not taint: the nine-region dispatch branches on `blockIdx` and is
//!    perfectly convergent.)
//! 2. A structural walk rejects every barrier that sits under a branch
//!    or loop whose condition is tainted ([A0101]), and every barrier
//!    reachable after a `return` that only *some* threads may have taken
//!    ([A0102]).
//!
//! [A0101]: crate::diag#diagnostic-code-space
//! [A0102]: crate::diag#diagnostic-code-space

use crate::dataflow::forward_fixpoint;
use crate::diag::Diagnostic;
use hipacc_ir::cfg::Cfg;
use hipacc_ir::kernel::DeviceKernelDef;
use hipacc_ir::{Builtin, Expr, Stmt};
use std::collections::BTreeSet;

/// Whether an expression's value can differ between threads of a block,
/// given the set of thread-dependent variables.
pub fn expr_thread_dependent(e: &Expr, tainted: &BTreeSet<String>) -> bool {
    let mut dep = false;
    e.visit(&mut |n| match n {
        Expr::Builtin(Builtin::ThreadIdxX | Builtin::ThreadIdxY) => dep = true,
        Expr::Var(v) if tainted.contains(v) => dep = true,
        // Loads may read data written per-thread; treat shared loads as
        // thread-dependent (their index usually is anyway).
        Expr::SharedLoad { .. } => dep = true,
        _ => {}
    });
    dep
}

/// The taint fixpoint: variables whose values are thread-dependent
/// anywhere in the kernel (may-analysis over all CFG paths).
pub fn thread_dependent_vars(body: &[Stmt]) -> BTreeSet<String> {
    let cfg = Cfg::build(body);
    let transfer = |block: &hipacc_ir::cfg::Block, inp: &BTreeSet<String>| {
        let mut out = inp.clone();
        // Iterate locally to a fixpoint so chains like `a = tid; b = a`
        // inside one block resolve in a single transfer application.
        loop {
            let before = out.len();
            for s in &block.stmts {
                match s {
                    Stmt::Decl {
                        name,
                        init: Some(e),
                        ..
                    } if expr_thread_dependent(e, &out) => {
                        out.insert(name.clone());
                    }
                    Stmt::Assign { target, value } if expr_thread_dependent(value, &out) => {
                        let hipacc_ir::LValue::Var(name) = target;
                        out.insert(name.clone());
                    }
                    _ => {}
                }
            }
            if out.len() == before {
                break;
            }
        }
        out
    };
    let states = forward_fixpoint(&cfg, BTreeSet::new(), BTreeSet::new(), transfer);
    // The union over all blocks is the may-tainted set of the kernel.
    let mut all = BTreeSet::new();
    for (i, s) in states.iter().enumerate() {
        all.extend(transfer(&cfg.blocks[i], s));
    }
    all
}

/// Check every barrier in the kernel for divergence (A0101/A0102).
pub fn check_barrier_divergence(kernel: &DeviceKernelDef) -> Vec<Diagnostic> {
    let tainted = thread_dependent_vars(&kernel.body);
    let mut diags = Vec::new();
    let mut may_have_returned = false;
    walk(
        &kernel.body,
        false,
        &tainted,
        &mut may_have_returned,
        &kernel.name,
        &mut diags,
    );
    diags
}

fn walk(
    stmts: &[Stmt],
    divergent: bool,
    tainted: &BTreeSet<String>,
    may_have_returned: &mut bool,
    kernel: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for s in stmts {
        match s {
            Stmt::Barrier => {
                if divergent {
                    diags.push(Diagnostic::error(
                        "A0101",
                        kernel,
                        "barrier under thread-dependent control flow: threads of a block \
                         may disagree on reaching it",
                    ));
                } else if *may_have_returned {
                    diags.push(Diagnostic::error(
                        "A0102",
                        kernel,
                        "barrier reachable after a thread-dependent early return: exited \
                         threads never arrive",
                    ));
                }
            }
            Stmt::If { cond, then, els } => {
                let div = divergent || expr_thread_dependent(cond, tainted);
                walk(then, div, tainted, may_have_returned, kernel, diags);
                walk(els, div, tainted, may_have_returned, kernel, diags);
            }
            Stmt::For { from, to, body, .. } => {
                let div = divergent
                    || expr_thread_dependent(from, tainted)
                    || expr_thread_dependent(to, tainted);
                walk(body, div, tainted, may_have_returned, kernel, diags);
            }
            Stmt::Return if divergent => {
                *may_have_returned = true;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::kernel::DeviceKernelDef;
    use hipacc_ir::ScalarType;

    fn kernel(body: Vec<Stmt>) -> DeviceKernelDef {
        DeviceKernelDef {
            name: "k".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body,
        }
    }

    fn tid() -> Expr {
        Expr::Builtin(Builtin::ThreadIdxX)
    }

    #[test]
    fn taint_propagates_through_assignments() {
        let body = vec![
            Stmt::Decl {
                name: "gid".into(),
                ty: ScalarType::I32,
                init: Some(tid() + Expr::int(1)),
            },
            Stmt::Decl {
                name: "twice".into(),
                ty: ScalarType::I32,
                init: Some(Expr::var("gid") * Expr::int(2)),
            },
            Stmt::Decl {
                name: "uniform".into(),
                ty: ScalarType::I32,
                init: Some(Expr::Builtin(Builtin::BlockIdxX)),
            },
        ];
        let t = thread_dependent_vars(&body);
        assert!(t.contains("gid") && t.contains("twice"));
        assert!(!t.contains("uniform"), "blockIdx is uniform per block");
    }

    #[test]
    fn top_level_barrier_is_clean() {
        let k = kernel(vec![
            Stmt::Barrier,
            Stmt::If {
                cond: tid().ge(Expr::int(8)),
                then: vec![Stmt::Return],
                els: vec![],
            },
        ]);
        assert!(check_barrier_divergence(&k).is_empty());
    }

    #[test]
    fn barrier_in_thread_dependent_branch_is_a0101() {
        let k = kernel(vec![Stmt::If {
            cond: tid().lt(Expr::int(8)),
            then: vec![Stmt::Barrier],
            els: vec![],
        }]);
        let d = check_barrier_divergence(&k);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0101");
        assert!(d[0].is_error());
    }

    #[test]
    fn barrier_under_derived_taint_is_a0101() {
        // gid = blockIdx*blockDim + threadIdx; if (gid < 8) barrier;
        let k = kernel(vec![
            Stmt::Decl {
                name: "gid".into(),
                ty: ScalarType::I32,
                init: Some(
                    Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX) + tid(),
                ),
            },
            Stmt::If {
                cond: Expr::var("gid").lt(Expr::int(8)),
                then: vec![Stmt::Barrier],
                els: vec![],
            },
        ]);
        assert_eq!(check_barrier_divergence(&k)[0].code, "A0101");
    }

    #[test]
    fn barrier_after_divergent_return_is_a0102() {
        let k = kernel(vec![
            Stmt::If {
                cond: tid().ge(Expr::int(8)),
                then: vec![Stmt::Return],
                els: vec![],
            },
            Stmt::Barrier,
        ]);
        let d = check_barrier_divergence(&k);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0102");
    }

    #[test]
    fn barrier_in_uniform_branch_is_clean() {
        // Region dispatch: branching on blockIdx is convergent.
        let k = kernel(vec![Stmt::If {
            cond: Expr::Builtin(Builtin::BlockIdxX).lt(Expr::int(1)),
            then: vec![Stmt::Barrier],
            els: vec![Stmt::Barrier],
        }]);
        assert!(check_barrier_divergence(&k).is_empty());
    }

    #[test]
    fn barrier_in_thread_dependent_loop_is_a0101() {
        let k = kernel(vec![Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: tid(),
            body: vec![Stmt::Barrier],
        }]);
        assert_eq!(check_barrier_divergence(&k)[0].code, "A0101");
    }
}
