//! Bounds analysis: interval arithmetic proving every memory access of a
//! device kernel in range.
//!
//! For each boundary-region seed (a rectangle of block indices — the nine
//! specialized regions of the paper's boundary handling, Section IV-B),
//! the pass evaluates the kernel body over integer intervals:
//!
//! * `threadIdx.x/y` range over `[0, blockDim-1]`, `blockIdx.x/y` over the
//!   seed rectangle, and the geometry scalars (`width`, `is_offset_x`, …)
//!   are points supplied by the compiler.
//! * Branch conditions are *refined* into the taken branch: after
//!   `if (gid_x >= is_offset_x + is_width) return;` the fall-through path
//!   knows `gid_x < is_offset_x + is_width`. Refinement applies to
//!   variables, builtins, and — via an override list keyed on structural
//!   expression equality — arbitrary index expressions (the unrolled
//!   staging guards compare the same `tid + step*bs` expression that later
//!   indexes the tile).
//! * `min`/`max` chains (clamping), `Select` chains (mirror/repeat and
//!   constant-mode in-bounds tests, evaluated with per-branch refinement)
//!   and loops (loop variable spans `[from.lo, to.hi]`; variables assigned
//!   in the body widen to top) are all interpreted conservatively.
//!
//! Every `GlobalLoad`/`GlobalStore`/`TexFetch` index not provably inside
//! the buffer raises [A0301] (a warning when the access sits on a buffer
//! whose boundary mode is `Undefined` — the paper's intentional "crash"
//! cells — and an error otherwise), shared-memory accesses outside the
//! declared tile raise [A0302], and constant-memory accesses outside the
//! mask raise [A0303].
//!
//! [A0301]: crate::diag#diagnostic-code-space
//! [A0302]: crate::diag#diagnostic-code-space
//! [A0303]: crate::diag#diagnostic-code-space

use crate::diag::Diagnostic;
use crate::interval::BOUND;
use crate::{RegionSeed, VerifyInput};
use hipacc_ir::{Builtin, Expr, MathFn, Stmt, TexCoords, UnOp};
use std::collections::{HashMap, HashSet};

pub use crate::interval::Ival;

/// The abstract store: variable intervals plus the eight builtins.
#[derive(Clone)]
struct Env {
    vars: HashMap<String, Ival>,
    builtins: [Ival; 8],
}

fn bidx(b: Builtin) -> usize {
    match b {
        Builtin::ThreadIdxX => 0,
        Builtin::ThreadIdxY => 1,
        Builtin::BlockIdxX => 2,
        Builtin::BlockIdxY => 3,
        Builtin::BlockDimX => 4,
        Builtin::BlockDimY => 5,
        Builtin::GridDimX => 6,
        Builtin::GridDimY => 7,
    }
}

/// Refinements for non-variable expressions, keyed on structural equality
/// (the staging guards compare the exact index expression used later).
type Overrides = Vec<(Expr, Ival)>;

struct Ctx<'a> {
    input: &'a VerifyInput<'a>,
    label: Option<&'a str>,
    diags: Vec<Diagnostic>,
    reported: HashSet<(&'static str, String)>,
}

impl Ctx<'_> {
    fn report(&mut self, code: &'static str, buf: &str, error: bool, message: String) {
        if !self.reported.insert((code, buf.to_string())) {
            return;
        }
        let mut d = if error {
            Diagnostic::error(code, &self.input.kernel.name, message)
        } else {
            Diagnostic::warning(code, &self.input.kernel.name, message)
        };
        if let Some(l) = self.label {
            d = d.with_region(l);
        }
        self.diags.push(d);
    }

    fn check_linear(&mut self, buf: &str, idx: Ival, write: bool) {
        let Some(&len) = self.input.buffer_len.get(buf) else {
            return; // size unknown: nothing to prove against
        };
        if idx.within(0, len - 1) {
            return;
        }
        let error = !self.input.oob_allowed.contains(buf);
        let what = if write { "store to" } else { "load from" };
        self.report(
            "A0301",
            buf,
            error,
            format!(
                "{what} `{buf}` not provably in bounds: index range [{}, {}] vs {len} elements{}",
                idx.lo,
                idx.hi,
                if error {
                    ""
                } else {
                    " (Undefined boundary mode)"
                }
            ),
        );
    }

    fn check_tex_xy(&mut self, buf: &str, x: Ival, y: Ival) {
        if self.input.hw_bounded.contains(buf) {
            return; // the texture unit's address mode handles any coordinate
        }
        let Some(&(w, h)) = self.input.buffer_dims.get(buf) else {
            return;
        };
        if x.within(0, w - 1) && y.within(0, h - 1) {
            return;
        }
        let error = !self.input.oob_allowed.contains(buf);
        self.report(
            "A0301",
            buf,
            error,
            format!(
                "texture fetch from `{buf}` not provably in bounds: x in [{}, {}], y in [{}, {}] vs {w}x{h}",
                x.lo, x.hi, y.lo, y.hi
            ),
        );
    }

    fn check_shared(&mut self, buf: &str, y: Ival, x: Ival, write: bool) {
        let Some(decl) = self.input.kernel.shared.iter().find(|s| s.name == buf) else {
            return;
        };
        let (rows, cols) = (decl.rows as i64, decl.cols as i64);
        if y.within(0, rows - 1) && x.within(0, cols - 1) {
            return;
        }
        let what = if write { "store to" } else { "load from" };
        self.report(
            "A0302",
            buf,
            true,
            format!(
                "shared-memory {what} `{buf}` not provably in bounds: row [{}, {}], col [{}, {}] vs {rows}x{cols} tile",
                y.lo, y.hi, x.lo, x.hi
            ),
        );
    }

    fn check_const(&mut self, buf: &str, idx: Ival) {
        let Some(decl) = self
            .input
            .kernel
            .const_buffers
            .iter()
            .find(|c| c.name == buf)
        else {
            return;
        };
        let len = decl.width as i64 * decl.height as i64;
        if idx.within(0, len - 1) {
            return;
        }
        self.report(
            "A0303",
            buf,
            true,
            format!(
                "constant-memory load from `{buf}` not provably in bounds: index [{}, {}] vs {len} coefficients",
                idx.lo, idx.hi
            ),
        );
    }
}

fn mentions_var(e: &Expr, name: &str) -> bool {
    let mut m = false;
    e.visit(&mut |n| {
        if let Expr::Var(v) = n {
            if v == name {
                m = true;
            }
        }
    });
    m
}

/// Evaluate an expression to an interval, running memory checks on every
/// load encountered, then tighten with any matching override.
fn eval(e: &Expr, env: &Env, ov: &Overrides, ctx: &mut Ctx<'_>) -> Ival {
    let mut r = eval_raw(e, env, ov, ctx);
    for (pat, iv) in ov {
        if pat == e {
            r = r.meet(*iv);
        }
    }
    r
}

fn eval_raw(e: &Expr, env: &Env, ov: &Overrides, ctx: &mut Ctx<'_>) -> Ival {
    use hipacc_ir::BinOp::*;
    match e {
        Expr::ImmInt(v) => Ival::point(*v),
        Expr::ImmFloat(_) | Expr::ImmBool(_) => Ival::top(),
        Expr::Var(v) => env.vars.get(v).copied().unwrap_or_else(Ival::top),
        Expr::Builtin(b) => env.builtins[bidx(*b)],
        Expr::Unary(UnOp::Neg, a) => eval(a, env, ov, ctx).neg(),
        Expr::Unary(UnOp::Not, a) => {
            eval(a, env, ov, ctx);
            Ival::new(0, 1)
        }
        Expr::Binary(op, a, b) => {
            let ia = eval(a, env, ov, ctx);
            let ib = eval(b, env, ov, ctx);
            match op {
                Add => ia.add(ib),
                Sub => ia.sub(ib),
                Mul => ia.mul(ib),
                Div => ia.div(ib),
                Rem => ia.rem(ib),
                // Comparisons/logic produce 0/1; their refinement value
                // comes from `truth`/`refine`, not from here.
                Eq | Ne | Lt | Le | Gt | Ge | And | Or => Ival::new(0, 1),
            }
        }
        Expr::Call(f, args) => {
            let vals: Vec<Ival> = args.iter().map(|a| eval(a, env, ov, ctx)).collect();
            match f {
                MathFn::Min => vals[0].min_(vals[1]),
                MathFn::Max => vals[0].max_(vals[1]),
                MathFn::Abs => vals[0].abs(),
                _ => Ival::top(),
            }
        }
        Expr::Cast(_, a) => eval(a, env, ov, ctx),
        Expr::Select(c, a, b) => {
            // Evaluate each branch under the refined condition, so the
            // Constant-mode pattern `in_bounds ? IN[idx] : k` only checks
            // `idx` where the guard holds.
            match truth(c, env, ov, ctx) {
                Some(true) => branch_eval(c, true, a, env, ov, ctx),
                Some(false) => branch_eval(c, false, b, env, ov, ctx),
                None => {
                    let ta = branch_eval(c, true, a, env, ov, ctx);
                    let tb = branch_eval(c, false, b, env, ov, ctx);
                    ta.join(tb)
                }
            }
        }
        Expr::GlobalLoad { buf, idx } => {
            let iv = eval(idx, env, ov, ctx);
            if !iv.is_empty() {
                ctx.check_linear(buf, iv, false);
            }
            Ival::top()
        }
        Expr::TexFetch { buf, coords } => {
            match coords {
                TexCoords::Linear(idx) => {
                    let iv = eval(idx, env, ov, ctx);
                    if !iv.is_empty() {
                        ctx.check_linear(buf, iv, false);
                    }
                }
                TexCoords::Xy(x, y) => {
                    let ix = eval(x, env, ov, ctx);
                    let iy = eval(y, env, ov, ctx);
                    if !ix.is_empty() && !iy.is_empty() {
                        ctx.check_tex_xy(buf, ix, iy);
                    }
                }
            }
            Ival::top()
        }
        Expr::ConstLoad { buf, idx } => {
            let iv = eval(idx, env, ov, ctx);
            if !iv.is_empty() {
                ctx.check_const(buf, iv);
            }
            Ival::top()
        }
        Expr::SharedLoad { buf, y, x } => {
            let iy = eval(y, env, ov, ctx);
            let ix = eval(x, env, ov, ctx);
            if !iy.is_empty() && !ix.is_empty() {
                ctx.check_shared(buf, iy, ix, false);
            }
            Ival::top()
        }
        // DSL-level nodes never reach the verifier (it runs on lowered
        // device kernels), but evaluate conservatively anyway.
        Expr::InputAt { .. } | Expr::MaskAt { .. } | Expr::OutputX | Expr::OutputY => Ival::top(),
    }
}

fn branch_eval(
    cond: &Expr,
    want: bool,
    value: &Expr,
    env: &Env,
    ov: &Overrides,
    ctx: &mut Ctx<'_>,
) -> Ival {
    let mut e2 = env.clone();
    let mut o2 = ov.clone();
    if refine(cond, want, &mut e2, &mut o2, ctx) {
        eval(value, &e2, &o2, ctx)
    } else {
        Ival::empty()
    }
}

/// Decide a condition where the intervals separate.
fn truth(cond: &Expr, env: &Env, ov: &Overrides, ctx: &mut Ctx<'_>) -> Option<bool> {
    use hipacc_ir::BinOp::*;
    match cond {
        Expr::ImmBool(b) => Some(*b),
        Expr::Unary(UnOp::Not, a) => truth(a, env, ov, ctx).map(|b| !b),
        Expr::Binary(And, a, b) => match (truth(a, env, ov, ctx), truth(b, env, ov, ctx)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Binary(Or, a, b) => match (truth(a, env, ov, ctx), truth(b, env, ov, ctx)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expr::Binary(op @ (Eq | Ne | Lt | Le | Gt | Ge), a, b) => {
            let ia = eval(a, env, ov, ctx);
            let ib = eval(b, env, ov, ctx);
            if ia.is_empty() || ib.is_empty() {
                return None;
            }
            match op {
                Lt => cmp_truth(ia, ib, 1),
                Le => cmp_truth(ia, ib, 0),
                Gt => cmp_truth(ib, ia, 1),
                Ge => cmp_truth(ib, ia, 0),
                Eq => {
                    if ia.lo == ia.hi && ia == ib {
                        Some(true)
                    } else if ia.meet(ib).is_empty() {
                        Some(false)
                    } else {
                        None
                    }
                }
                Ne => {
                    if ia.meet(ib).is_empty() {
                        Some(true)
                    } else if ia.lo == ia.hi && ia == ib {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// `a < b` when `strict = 1`, `a <= b` when `strict = 0`.
///
/// The false side negates the comparison, which *flips* the strictness:
/// `a <= b` is false only when `a > b` everywhere (`a.lo >= b.hi + 1`),
/// and `a < b` is false when `a >= b` everywhere (`a.lo >= b.hi`).
fn cmp_truth(a: Ival, b: Ival, strict: i64) -> Option<bool> {
    if a.hi + strict <= b.lo {
        Some(true)
    } else if a.lo >= b.hi + 1 - strict {
        Some(false)
    } else {
        None
    }
}

/// Constrain `e` to lie within `iv`; returns `false` if that is infeasible
/// (the branch is dead).
fn constrain(e: &Expr, iv: Ival, env: &mut Env, ov: &mut Overrides, ctx: &mut Ctx<'_>) -> bool {
    let cur = eval(e, env, ov, ctx);
    let new = cur.meet(iv);
    match e {
        Expr::Var(v) => {
            env.vars.insert(v.clone(), new);
        }
        Expr::Builtin(b) => env.builtins[bidx(*b)] = new,
        Expr::ImmInt(_) => {} // a literal is already as tight as it gets
        _ => ov.push((e.clone(), new)),
    }
    !new.is_empty()
}

/// Propagate a condition's truth value into the environment.
fn refine(cond: &Expr, want: bool, env: &mut Env, ov: &mut Overrides, ctx: &mut Ctx<'_>) -> bool {
    use hipacc_ir::BinOp::*;
    match cond {
        Expr::Unary(UnOp::Not, a) => refine(a, !want, env, ov, ctx),
        Expr::Binary(And, a, b) if want => {
            refine(a, true, env, ov, ctx) && refine(b, true, env, ov, ctx)
        }
        Expr::Binary(Or, a, b) if !want => {
            refine(a, false, env, ov, ctx) && refine(b, false, env, ov, ctx)
        }
        Expr::Binary(op @ (Lt | Le | Gt | Ge | Eq), a, b) => {
            // Normalize to `a REL b` with `REL` one of `<=`, `<`, `==`.
            let (lhs, rhs, strict) = match (op, want) {
                (Lt, true) => (&**a, &**b, 1),  // a <  b
                (Lt, false) => (&**b, &**a, 0), // b <= a
                (Le, true) => (&**a, &**b, 0),  // a <= b
                (Le, false) => (&**b, &**a, 1), // b <  a
                (Gt, true) => (&**b, &**a, 1),  // b <  a
                (Gt, false) => (&**a, &**b, 0), // a <= b
                (Ge, true) => (&**b, &**a, 0),  // b <= a
                (Ge, false) => (&**a, &**b, 1), // a <  b
                (Eq, true) => {
                    let ia = eval(a, env, ov, ctx);
                    let ib = eval(b, env, ov, ctx);
                    return constrain(a, ib, env, ov, ctx) && constrain(b, ia, env, ov, ctx);
                }
                _ => return true, // Eq-false / Ne: no interval refinement
            };
            let il = eval(lhs, env, ov, ctx);
            let ir = eval(rhs, env, ov, ctx);
            if il.is_empty() || ir.is_empty() {
                return false;
            }
            // lhs <= rhs.hi - strict, rhs >= lhs.lo + strict.
            constrain(lhs, Ival::new(-BOUND, ir.hi - strict), env, ov, ctx)
                && constrain(rhs, Ival::new(il.lo + strict, BOUND), env, ov, ctx)
        }
        _ => true, // opaque condition (boolean var, float compare, …)
    }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut vars = HashMap::new();
    for (k, va) in &a.vars {
        if let Some(vb) = b.vars.get(k) {
            vars.insert(k.clone(), va.join(*vb));
        }
    }
    let mut builtins = [Ival::top(); 8];
    for (i, slot) in builtins.iter_mut().enumerate() {
        *slot = a.builtins[i].join(b.builtins[i]);
    }
    Env { vars, builtins }
}

fn join_ov(a: &Overrides, b: &Overrides) -> Overrides {
    a.iter()
        .filter_map(|(p, ia)| {
            b.iter()
                .find(|(q, _)| q == p)
                .map(|(_, ib)| (p.clone(), ia.join(*ib)))
        })
        .collect()
}

fn kill_var(name: &str, ov: &mut Overrides) {
    ov.retain(|(p, _)| !mentions_var(p, name));
}

fn assigned_vars(stmts: &[Stmt], out: &mut HashSet<String>) {
    Stmt::visit_all(stmts, &mut |s| {
        if let Stmt::Assign {
            target: hipacc_ir::LValue::Var(v),
            ..
        } = s
        {
            out.insert(v.clone());
        }
    });
}

/// Walk a statement list; returns whether execution definitely terminates
/// (reaches `Return` on every live path).
fn walk(stmts: &[Stmt], env: &mut Env, ov: &mut Overrides, ctx: &mut Ctx<'_>) -> bool {
    for s in stmts {
        match s {
            Stmt::Decl { name, init, .. } => {
                let iv = init
                    .as_ref()
                    .map(|e| eval(e, env, ov, ctx))
                    .unwrap_or_else(Ival::top);
                kill_var(name, ov);
                env.vars.insert(name.clone(), iv);
            }
            Stmt::Assign {
                target: hipacc_ir::LValue::Var(name),
                value,
            } => {
                let iv = eval(value, env, ov, ctx);
                kill_var(name, ov);
                env.vars.insert(name.clone(), iv);
            }
            Stmt::If { cond, then, els } => match truth(cond, env, ov, ctx) {
                Some(true) => {
                    if refine(cond, true, env, ov, ctx) && walk(then, env, ov, ctx) {
                        return true;
                    }
                }
                Some(false) => {
                    if refine(cond, false, env, ov, ctx) && walk(els, env, ov, ctx) {
                        return true;
                    }
                }
                None => {
                    let mut te = env.clone();
                    let mut to = ov.clone();
                    // An infeasible branch counts as terminated: nothing
                    // flows out of it.
                    let t_term = if refine(cond, true, &mut te, &mut to, ctx) {
                        walk(then, &mut te, &mut to, ctx)
                    } else {
                        true
                    };
                    let mut ee = env.clone();
                    let mut eo = ov.clone();
                    let e_term = if refine(cond, false, &mut ee, &mut eo, ctx) {
                        walk(els, &mut ee, &mut eo, ctx)
                    } else {
                        true
                    };
                    match (t_term, e_term) {
                        (true, true) => return true,
                        // Guard-return: only the other branch falls through,
                        // carrying its refinement forward.
                        (true, false) => {
                            *env = ee;
                            *ov = eo;
                        }
                        (false, true) => {
                            *env = te;
                            *ov = to;
                        }
                        (false, false) => {
                            *env = join_env(&te, &ee);
                            *ov = join_ov(&to, &eo);
                        }
                    }
                }
            },
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let f = eval(from, env, ov, ctx);
                let t = eval(to, env, ov, ctx);
                if f.is_empty() || t.is_empty() || f.lo > t.hi {
                    continue; // provably zero iterations
                }
                let mut assigned = HashSet::new();
                assigned_vars(body, &mut assigned);
                // Single sound pass: loop-carried variables are top, the
                // loop variable spans every iteration at once.
                let mut be = env.clone();
                let mut bo = ov.clone();
                for a in &assigned {
                    be.vars.insert(a.clone(), Ival::top());
                    kill_var(a, &mut bo);
                }
                kill_var(var, &mut bo);
                be.vars.insert(var.clone(), Ival::new(f.lo, t.hi));
                walk(body, &mut be, &mut bo, ctx);
                for a in &assigned {
                    env.vars.insert(a.clone(), Ival::top());
                    kill_var(a, ov);
                }
                kill_var(var, ov);
                env.vars.remove(var);
            }
            Stmt::Return => return true,
            Stmt::GlobalStore { buf, idx, value } => {
                let iv = eval(idx, env, ov, ctx);
                eval(value, env, ov, ctx);
                if !iv.is_empty() {
                    ctx.check_linear(buf, iv, true);
                }
            }
            Stmt::SharedStore { buf, y, x, value } => {
                let iy = eval(y, env, ov, ctx);
                let ix = eval(x, env, ov, ctx);
                eval(value, env, ov, ctx);
                if !iy.is_empty() && !ix.is_empty() {
                    ctx.check_shared(buf, iy, ix, true);
                }
            }
            Stmt::Output(e) => {
                eval(e, env, ov, ctx);
            }
            Stmt::Barrier | Stmt::Comment(_) => {}
        }
    }
    false
}

fn seed_env(input: &VerifyInput<'_>, seed: &RegionSeed) -> Env {
    let (bx, by) = (input.block.0 as i64, input.block.1 as i64);
    let (gx, gy) = (input.grid.0 as i64, input.grid.1 as i64);
    let mut builtins = [Ival::top(); 8];
    builtins[bidx(Builtin::ThreadIdxX)] = Ival::new(0, bx - 1);
    builtins[bidx(Builtin::ThreadIdxY)] = Ival::new(0, by - 1);
    builtins[bidx(Builtin::BlockIdxX)] = Ival::new(seed.bx.0, seed.bx.1);
    builtins[bidx(Builtin::BlockIdxY)] = Ival::new(seed.by.0, seed.by.1);
    builtins[bidx(Builtin::BlockDimX)] = Ival::point(bx);
    builtins[bidx(Builtin::BlockDimY)] = Ival::point(by);
    builtins[bidx(Builtin::GridDimX)] = Ival::point(gx);
    builtins[bidx(Builtin::GridDimY)] = Ival::point(gy);
    let vars = input
        .scalars
        .iter()
        .map(|(k, &v)| (k.clone(), Ival::point(v)))
        .collect();
    Env { vars, builtins }
}

/// Run the bounds pass over every region seed of the input.
pub fn check_bounds(input: &VerifyInput<'_>) -> Vec<Diagnostic> {
    let default_regions;
    let regions: &[RegionSeed] = if input.regions.is_empty() {
        default_regions = vec![RegionSeed {
            label: None,
            bx: (0, input.grid.0 as i64 - 1),
            by: (0, input.grid.1 as i64 - 1),
        }];
        &default_regions
    } else {
        &input.regions
    };
    let mut diags = Vec::new();
    for seed in regions {
        let mut ctx = Ctx {
            input,
            label: seed.label.as_deref(),
            diags: Vec::new(),
            reported: HashSet::new(),
        };
        let mut env = seed_env(input, seed);
        let mut ov = Vec::new();
        walk(&input.kernel.body, &mut env, &mut ov, &mut ctx);
        diags.extend(ctx.diags);
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VerifyInput;
    use hipacc_hwmodel::device as devices;
    use hipacc_ir::kernel::{
        AddressMode, BufferAccess, BufferParam, DeviceKernelDef, MemorySpace, SharedDecl,
    };
    use hipacc_ir::ScalarType;

    fn gid() -> Expr {
        // blockIdx.x * blockDim.x + threadIdx.x
        Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)
            + Expr::Builtin(Builtin::ThreadIdxX)
    }

    fn buf(name: &str, access: BufferAccess) -> BufferParam {
        BufferParam {
            name: name.into(),
            ty: ScalarType::F32,
            access,
            space: MemorySpace::Global,
            address_mode: AddressMode::None,
        }
    }

    fn kernel(body: Vec<Stmt>, shared: Vec<SharedDecl>) -> DeviceKernelDef {
        DeviceKernelDef {
            name: "k".into(),
            buffers: vec![
                buf("IN", BufferAccess::ReadOnly),
                buf("OUT", BufferAccess::WriteOnly),
            ],
            scalars: vec![],
            const_buffers: vec![],
            shared,
            body,
        }
    }

    /// 64 elements, 4 blocks of 16x1 threads.
    fn input<'a>(k: &'a DeviceKernelDef, dev: &'a hipacc_hwmodel::DeviceModel) -> VerifyInput<'a> {
        let mut v = VerifyInput::new(k, dev, (16, 1), (4, 1));
        v.buffer_len.insert("IN".into(), 64);
        v.buffer_len.insert("OUT".into(), 64);
        v
    }

    #[test]
    fn clamped_load_is_in_bounds() {
        // OUT[gid] = IN[min(max(gid + 1, 0), 63)] with an iteration-space
        // guard: the clamp proves the load, the guard proves the store.
        let dev = devices::tesla_c2050();
        let load = Expr::GlobalLoad {
            buf: "IN".into(),
            idx: Box::new(Expr::min(
                Expr::max(Expr::var("g") + Expr::int(1), Expr::int(0)),
                Expr::int(63),
            )),
        };
        let k = kernel(
            vec![
                Stmt::Decl {
                    name: "g".into(),
                    ty: ScalarType::I32,
                    init: Some(gid()),
                },
                Stmt::If {
                    cond: Expr::var("g").ge(Expr::int(64)),
                    then: vec![Stmt::Return],
                    els: vec![],
                },
                Stmt::GlobalStore {
                    buf: "OUT".into(),
                    idx: Expr::var("g"),
                    value: load,
                },
            ],
            vec![],
        );
        let d = check_bounds(&input(&k, &dev));
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn unclamped_load_is_flagged() {
        let dev = devices::tesla_c2050();
        let k = kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::GlobalLoad {
                    buf: "IN".into(),
                    idx: Box::new(gid() + Expr::int(1)),
                },
            }],
            vec![],
        );
        let d = check_bounds(&input(&k, &dev));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0301");
        assert!(d[0].is_error());
    }

    #[test]
    fn undefined_mode_downgrades_to_warning() {
        let dev = devices::tesla_c2050();
        let k = kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::GlobalLoad {
                    buf: "IN".into(),
                    idx: Box::new(gid() + Expr::int(1)),
                },
            }],
            vec![],
        );
        let mut inp = input(&k, &dev);
        inp.oob_allowed.insert("IN".into());
        let d = check_bounds(&inp);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0301");
        assert!(!d[0].is_error());
    }

    #[test]
    fn guard_return_refines_fall_through() {
        // Without the guard, OUT[gid] for gid in [0, 63] on a 60-element
        // buffer would be flagged; the guard proves it.
        let dev = devices::tesla_c2050();
        let store = Stmt::GlobalStore {
            buf: "OUT".into(),
            idx: gid(),
            value: Expr::float(0.0),
        };
        let guarded = kernel(
            vec![
                Stmt::If {
                    cond: gid().ge(Expr::int(60)),
                    then: vec![Stmt::Return],
                    els: vec![],
                },
                store.clone(),
            ],
            vec![],
        );
        let unguarded = kernel(vec![store], vec![]);
        let mut inp = input(&guarded, &dev);
        inp.buffer_len.insert("OUT".into(), 60);
        assert!(check_bounds(&inp).is_empty());
        let mut inp = input(&unguarded, &dev);
        inp.buffer_len.insert("OUT".into(), 60);
        assert_eq!(check_bounds(&inp)[0].code, "A0301");
    }

    #[test]
    fn shared_tile_overrun_is_a0302() {
        let dev = devices::tesla_c2050();
        let k = kernel(
            vec![Stmt::SharedStore {
                buf: "tile".into(),
                y: Expr::int(0),
                x: Expr::Builtin(Builtin::ThreadIdxX) * Expr::int(2),
                value: Expr::float(0.0),
            }],
            vec![SharedDecl {
                name: "tile".into(),
                ty: ScalarType::F32,
                rows: 1,
                cols: 17,
            }],
        );
        let d = check_bounds(&input(&k, &dev));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0302");
    }

    #[test]
    fn select_guard_proves_conditional_load() {
        // Constant boundary mode: (0 <= g && g < 64) ? IN[g] : 0.0
        let dev = devices::tesla_c2050();
        let g = gid() - Expr::int(8); // may be negative
        let cond = Expr::int(0).le(g.clone()).and(g.clone().lt(Expr::int(64)));
        let k = kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: Expr::int(0),
                value: Expr::select(
                    cond,
                    Expr::GlobalLoad {
                        buf: "IN".into(),
                        idx: Box::new(g),
                    },
                    Expr::float(0.0),
                ),
            }],
            vec![],
        );
        let d = check_bounds(&input(&k, &dev));
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn loop_bounds_feed_the_index_interval() {
        let dev = devices::tesla_c2050();
        let k = kernel(
            vec![Stmt::For {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(2),
                body: vec![Stmt::GlobalStore {
                    buf: "OUT".into(),
                    idx: Expr::var("i"),
                    value: Expr::GlobalLoad {
                        buf: "IN".into(),
                        idx: Box::new(Expr::var("i")),
                    },
                }],
            }],
            vec![],
        );
        let mut inp = input(&k, &dev);
        inp.buffer_len.insert("IN".into(), 3);
        inp.buffer_len.insert("OUT".into(), 3);
        assert!(check_bounds(&inp).is_empty());
        let mut inp = input(&k, &dev);
        inp.buffer_len.insert("IN".into(), 2);
        inp.buffer_len.insert("OUT".into(), 2);
        let d = check_bounds(&inp);
        assert_eq!(d.len(), 2, "both the load and the store overrun: {d:?}");
    }

    #[test]
    fn region_seeds_carry_their_label() {
        let dev = devices::tesla_c2050();
        let k = kernel(
            vec![Stmt::GlobalStore {
                buf: "OUT".into(),
                idx: gid(),
                value: Expr::float(0.0),
            }],
            vec![],
        );
        let mut inp = input(&k, &dev);
        inp.buffer_len.insert("OUT".into(), 16);
        inp.regions = vec![
            RegionSeed {
                label: Some("L_BH".into()),
                bx: (0, 0),
                by: (0, 0),
            },
            RegionSeed {
                label: Some("R_BH".into()),
                bx: (3, 3),
                by: (0, 0),
            },
        ];
        let d = check_bounds(&inp);
        // Only the right-hand region overruns the 16-element buffer.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].region.as_deref(), Some("R_BH"));
    }
}
