//! Resource-limit checks against the abstract device model.
//!
//! The paper's compiler consults its architecture model to reject invalid
//! kernel configurations before ever invoking the vendor toolchain
//! (Section V). This pass re-checks the final lowered kernel:
//!
//! * scratchpad bytes — including the `+1` bank-conflict pad column —
//!   against the per-SM shared memory ([A0401]),
//! * the register estimate against the per-thread architectural limit
//!   ([A0402], warning — the toolchain spills rather than fails),
//! * filter-mask bytes placed in constant memory against the 64 KiB
//!   constant budget ([A0403]),
//! * the block shape against the device's thread limits ([A0404]).
//!
//! [A0401]: crate::diag#diagnostic-code-space
//! [A0402]: crate::diag#diagnostic-code-space
//! [A0403]: crate::diag#diagnostic-code-space
//! [A0404]: crate::diag#diagnostic-code-space

use crate::diag::Diagnostic;
use crate::VerifyInput;

/// Run the resource-limit checks.
pub fn check_limits(input: &VerifyInput<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dev = input.device;
    let kernel = input.kernel;

    let shared_bytes = kernel.shared_bytes();
    if shared_bytes > dev.shared_mem_per_sm {
        diags.push(Diagnostic::error(
            "A0401",
            &kernel.name,
            format!(
                "scratchpad tiles need {shared_bytes} B but {} has {} B of shared memory per SM",
                dev.name, dev.shared_mem_per_sm
            ),
        ));
    }

    // Exceeding the per-thread register file is legal — the toolchain
    // spills to local memory — but costs enough bandwidth to be worth a
    // warning (the paper's heuristic avoids such configurations).
    if input.registers_per_thread > dev.max_registers_per_thread {
        diags.push(Diagnostic::warning(
            "A0402",
            &kernel.name,
            format!(
                "estimated {} registers per thread exceed the {} architectural limit of {} \
                 (spill to local memory expected)",
                input.registers_per_thread, dev.name, dev.max_registers_per_thread
            ),
        ));
    }

    let const_bytes: u64 = kernel
        .const_buffers
        .iter()
        .map(|c| c.width as u64 * c.height as u64 * 4)
        .sum();
    if const_bytes > dev.const_mem_bytes as u64 {
        diags.push(Diagnostic::error(
            "A0403",
            &kernel.name,
            format!(
                "filter masks need {const_bytes} B of constant memory but {} provides {} B",
                dev.name, dev.const_mem_bytes
            ),
        ));
    }

    let threads = input.block.0 * input.block.1;
    if threads > dev.max_threads_per_block {
        diags.push(Diagnostic::error(
            "A0404",
            &kernel.name,
            format!(
                "block shape {}x{} ({threads} threads) exceeds the {} limit of {} threads per block",
                input.block.0, input.block.1, dev.name, dev.max_threads_per_block
            ),
        ));
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device as devices;
    use hipacc_ir::kernel::{ConstBufferDecl, DeviceKernelDef, SharedDecl};
    use hipacc_ir::ScalarType;

    fn kernel(shared: Vec<SharedDecl>, const_buffers: Vec<ConstBufferDecl>) -> DeviceKernelDef {
        DeviceKernelDef {
            name: "k".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers,
            shared,
            body: vec![],
        }
    }

    #[test]
    fn within_budget_is_clean() {
        let k = kernel(
            vec![SharedDecl {
                name: "tile".into(),
                ty: ScalarType::F32,
                rows: 20,
                cols: 37,
            }],
            vec![ConstBufferDecl {
                name: "_cmask".into(),
                width: 5,
                height: 5,
                data: None,
            }],
        );
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (32, 4), (10, 10));
        assert!(check_limits(&inp).is_empty());
    }

    #[test]
    fn oversized_tile_is_a0401() {
        let k = kernel(
            vec![SharedDecl {
                name: "tile".into(),
                ty: ScalarType::F32,
                rows: 200,
                cols: 200,
            }],
            vec![],
        );
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (32, 4), (10, 10));
        let d = check_limits(&inp);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "A0401");
    }

    #[test]
    fn register_pressure_is_a0402() {
        let k = kernel(vec![], vec![]);
        let dev = devices::tesla_c2050();
        let mut inp = crate::VerifyInput::new(&k, &dev, (32, 4), (10, 10));
        inp.registers_per_thread = dev.max_registers_per_thread + 1;
        let d = check_limits(&inp);
        assert_eq!(d[0].code, "A0402");
        // Spilling is legal: a warning, not a compile failure.
        assert!(!d[0].is_error());
    }

    #[test]
    fn oversized_mask_is_a0403() {
        // 129x129 f32 coefficients = 66564 B > 64 KiB.
        let k = kernel(
            vec![],
            vec![ConstBufferDecl {
                name: "_cmask".into(),
                width: 129,
                height: 129,
                data: None,
            }],
        );
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (32, 4), (10, 10));
        assert_eq!(check_limits(&inp)[0].code, "A0403");
    }

    #[test]
    fn oversized_block_is_a0404() {
        let k = kernel(vec![], vec![]);
        let dev = devices::tesla_c2050();
        let inp = crate::VerifyInput::new(&k, &dev, (64, 32), (10, 10));
        assert_eq!(check_limits(&inp)[0].code, "A0404");
    }
}
