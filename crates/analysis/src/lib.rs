//! # hipacc-analysis
//!
//! Static kernel verifier for the generated device kernels.
//!
//! The paper's compiler trusts its lowering: the staging code, boundary
//! clamps and region dispatch are emitted from templates and assumed
//! correct. This crate removes that assumption. It runs four
//! GPUVerify/GKLEE-style analyses over the *final lowered* device kernel
//! — the same IR the CUDA/OpenCL emitters print and the simulator
//! executes — and reports findings as structured
//! [`Diagnostic`]s:
//!
//! 1. **Barrier divergence** ([`taint`]) — a taint lattice seeded from
//!    the thread-index builtins, run to fixpoint over the CFG with the
//!    [`dataflow`] framework, rejects barriers under thread-dependent
//!    control flow.
//! 2. **Shared-memory races** ([`races`]) — barrier-delimited intervals,
//!    evaluated concretely per lane of a representative block.
//! 3. **Bounds** ([`bounds`]) — interval arithmetic with branch
//!    refinement proves every global/texture/shared/constant access in
//!    range for each of the nine boundary-region block rectangles.
//! 4. **Resource limits** ([`limits`]) — scratchpad (including the +1
//!    pad column), registers, constant-mask bytes and block shape
//!    against the abstract device model.
//!
//! The compiler (`hipacc-codegen`) builds a [`VerifyInput`] for every
//! compiled kernel and calls [`verify`]; error-severity findings fail
//! compilation, warnings ride along on the compile output.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod dataflow;
pub mod diag;
pub mod fusion;
pub mod interval;
pub mod limits;
pub mod races;
pub mod range;
pub mod taint;
pub mod uniformity;

pub use diag::{has_errors, Diagnostic, Severity};
pub use interval::Ival;

use hipacc_hwmodel::DeviceModel;
use hipacc_ir::kernel::DeviceKernelDef;
use std::collections::{HashMap, HashSet};

/// A rectangle of block indices to verify under one boundary-region
/// specialization (inclusive bounds). The nine regions of the paper's
/// boundary handling each map to one seed; a kernel without region
/// specialization gets a single full-grid seed.
#[derive(Clone, Debug)]
pub struct RegionSeed {
    /// Region label for diagnostics (`TL_BH`, `NO_BH`, …), if any.
    pub label: Option<String>,
    /// Inclusive `blockIdx.x` range of the region.
    pub bx: (i64, i64),
    /// Inclusive `blockIdx.y` range of the region.
    pub by: (i64, i64),
}

/// Everything the verifier needs to know about one compiled kernel: the
/// lowered IR, the launch geometry, and the facts the compiler knows but
/// the IR does not spell out (buffer sizes, scalar bindings, which
/// buffers tolerate out-of-bounds access).
pub struct VerifyInput<'a> {
    /// The lowered device kernel to verify.
    pub kernel: &'a DeviceKernelDef,
    /// Target device model (resource limits).
    pub device: &'a DeviceModel,
    /// Launch block shape `(x, y)`.
    pub block: (u32, u32),
    /// Launch grid shape `(x, y)` in blocks.
    pub grid: (u32, u32),
    /// Known integer values of scalar parameters (`width`, `is_offset_x`,
    /// constant-propagated bindings, …).
    pub scalars: HashMap<String, i64>,
    /// Element count of each linearly indexed buffer.
    pub buffer_len: HashMap<String, i64>,
    /// `(width, height)` of each 2-D-fetched buffer.
    pub buffer_dims: HashMap<String, (i64, i64)>,
    /// Buffers whose boundary mode is `Undefined`: out-of-bounds access
    /// is the programmer's declared intent (the paper's "crash" cells),
    /// so bounds findings degrade to warnings.
    pub oob_allowed: HashSet<String>,
    /// Buffers bound with a hardware texture address mode: any coordinate
    /// is valid by construction.
    pub hw_bounded: HashSet<String>,
    /// Boundary-region block rectangles; empty means one full-grid seed.
    pub regions: Vec<RegionSeed>,
    /// Register estimate per thread (from the resource estimator).
    pub registers_per_thread: u32,
}

impl<'a> VerifyInput<'a> {
    /// A minimal input: geometry only, everything else empty (no buffer
    /// sizes means no bounds obligations, zero registers never exceeds a
    /// limit). The compiler fills in the rest.
    pub fn new(
        kernel: &'a DeviceKernelDef,
        device: &'a DeviceModel,
        block: (u32, u32),
        grid: (u32, u32),
    ) -> Self {
        VerifyInput {
            kernel,
            device,
            block,
            grid,
            scalars: HashMap::new(),
            buffer_len: HashMap::new(),
            buffer_dims: HashMap::new(),
            oob_allowed: HashSet::new(),
            hw_bounded: HashSet::new(),
            regions: Vec::new(),
            registers_per_thread: 0,
        }
    }
}

/// Run all four verifier passes and collect their findings
/// (errors and warnings, in pass order).
pub fn verify(input: &VerifyInput<'_>) -> Vec<Diagnostic> {
    verify_with_sink(input, &mut hipacc_profile::NullSink)
}

/// [`verify`] with one timed span per analysis pass recorded into `sink`
/// (category `"verify"`). With a disabled sink — [`NullSink`] is what
/// [`verify`] passes — no clocks are read at all.
///
/// [`NullSink`]: hipacc_profile::NullSink
pub fn verify_with_sink(
    input: &VerifyInput<'_>,
    sink: &mut dyn hipacc_profile::ProfileSink,
) -> Vec<Diagnostic> {
    use hipacc_profile::timed;
    let mut diags = timed(sink, "verify:taint", "verify", || {
        taint::check_barrier_divergence(input.kernel)
    });
    diags.extend(timed(sink, "verify:races", "verify", || {
        races::check_shared_races(input)
    }));
    diags.extend(timed(sink, "verify:limits", "verify", || {
        limits::check_limits(input)
    }));
    diags.extend(timed(sink, "verify:bounds", "verify", || {
        bounds::check_bounds(input)
    }));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_hwmodel::device as devices;
    use hipacc_ir::{Builtin, Expr, ScalarType, Stmt};

    #[test]
    fn verify_aggregates_passes() {
        // One kernel with a divergent barrier AND an unprovable store.
        let k = DeviceKernelDef {
            name: "bad".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body: vec![
                Stmt::If {
                    cond: Expr::Builtin(Builtin::ThreadIdxX).lt(Expr::int(8)),
                    then: vec![Stmt::Barrier],
                    els: vec![],
                },
                Stmt::Decl {
                    name: "g".into(),
                    ty: ScalarType::I32,
                    init: Some(Expr::Builtin(Builtin::ThreadIdxX)),
                },
                Stmt::GlobalStore {
                    buf: "OUT".into(),
                    idx: Expr::var("g"),
                    value: Expr::float(0.0),
                },
            ],
        };
        let dev = devices::tesla_c2050();
        let mut inp = VerifyInput::new(&k, &dev, (16, 1), (1, 1));
        inp.buffer_len.insert("OUT".into(), 8);
        let d = verify(&inp);
        let codes: Vec<&str> = d.iter().map(|x| x.code).collect();
        assert!(codes.contains(&"A0101"), "{codes:?}");
        assert!(codes.contains(&"A0301"), "{codes:?}");
        assert!(has_errors(&d));
    }
}
