//! Value-range analysis: the interval machinery of the bounds verifier
//! ([`crate::bounds`]) packaged as a *transforming* oracle for the IR
//! optimizer (`hipacc_ir::opt`).
//!
//! [`RangeState`] carries the same abstract store the bounds walker
//! uses — variable intervals, the eight launch builtins, and an
//! override list refining arbitrary expressions by structural equality —
//! over the shared lattice [`Ival`](crate::interval::Ival). The
//! difference is the client: the verifier only *reports* with its
//! facts, so imprecision is at worst a spurious diagnostic; the
//! optimizer *rewrites* with them, so every answer must model the
//! engines' runtime semantics exactly. That obligation is enforced
//! here, not in the passes:
//!
//! * [`range`](RangeState::range)/[`truth`](RangeState::truth) answer
//!   only for provably *integer-valued* expressions. Integer-ness is
//!   tracked dynamically: a declaration coerces its initializer to the
//!   declared type, but an assignment does not, so a variable keeps its
//!   integer kind only while every reaching definition preserves it.
//!   Scalar parameters take the kind of their declared type (the
//!   operator driver binds matching constants).
//! * Comparison decisions additionally require both operand intervals
//!   to lie strictly inside `±2^24`: the engines compare through `f32`,
//!   which is exact only for integers of that magnitude (this also
//!   keeps the lattice's `±2^40` saturation clamp from leaking into a
//!   decision).
//! * `abs` is refused integer-ness even on integer input — the engines'
//!   math-function evaluator widens it to `Float`.
//!
//! Everything else — branch refinement, guard-return joins, loop-body
//! havoc — mirrors `bounds.rs` and is driven by the optimizer's shared
//! walker through the [`Oracle`] trait.
//!
//! [`Oracle`]: hipacc_ir::opt::Oracle

use crate::interval::{Ival, BOUND};
use crate::uniformity::Uniformity;
use hipacc_ir::kernel::DeviceKernelDef;
use hipacc_ir::opt::Oracle;
use hipacc_ir::{BinOp, Builtin, Expr, MathFn, ScalarType, UnOp};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Largest magnitude for which every integer is exactly representable
/// as `f32` — the engines compare through `as_f32`, so interval-based
/// comparison decisions are only trustworthy strictly inside this.
const F32_EXACT: i64 = 1 << 24;

fn bidx(b: Builtin) -> usize {
    match b {
        Builtin::ThreadIdxX => 0,
        Builtin::ThreadIdxY => 1,
        Builtin::BlockIdxX => 2,
        Builtin::BlockIdxY => 3,
        Builtin::BlockDimX => 4,
        Builtin::BlockDimY => 5,
        Builtin::GridDimX => 6,
        Builtin::GridDimY => 7,
    }
}

fn mentions_var(e: &Expr, name: &str) -> bool {
    let mut m = false;
    e.visit(&mut |n| {
        if let Expr::Var(v) = n {
            if v == name {
                m = true;
            }
        }
    });
    m
}

/// Whether both interval endpoints are strictly inside the f32-exact
/// integer range (and therefore also strictly inside the saturation
/// clamp), making a comparison decision on them trustworthy.
fn exact(iv: Ival) -> bool {
    iv.lo > -F32_EXACT && iv.hi < F32_EXACT
}

/// The value-range oracle: an abstract store over the interval lattice,
/// threaded through a kernel body by the optimizer's walker.
#[derive(Clone)]
pub struct RangeState {
    builtins: [Ival; 8],
    vars: HashMap<String, Ival>,
    /// Whether a variable is currently known integer-valued.
    ints: HashMap<String, bool>,
    /// Structural-equality refinements for non-variable expressions.
    ov: Vec<(Expr, Ival)>,
    varying: Arc<BTreeSet<String>>,
}

impl RangeState {
    /// Seed the oracle for one kernel launch: thread indices span the
    /// block, block indices span the *full* grid (unlike the verifier,
    /// the optimizer transforms one body shared by every region), and
    /// known scalar bindings become points. The uniformity fixpoint is
    /// computed here once per pass run.
    pub fn new(
        kernel: &DeviceKernelDef,
        block: (u32, u32),
        grid: (u32, u32),
        scalars: &HashMap<String, i64>,
    ) -> RangeState {
        let (bx, by) = (block.0 as i64, block.1 as i64);
        let (gx, gy) = (grid.0 as i64, grid.1 as i64);
        let mut builtins = [Ival::top(); 8];
        builtins[bidx(Builtin::ThreadIdxX)] = Ival::new(0, bx - 1);
        builtins[bidx(Builtin::ThreadIdxY)] = Ival::new(0, by - 1);
        builtins[bidx(Builtin::BlockIdxX)] = Ival::new(0, gx - 1);
        builtins[bidx(Builtin::BlockIdxY)] = Ival::new(0, gy - 1);
        builtins[bidx(Builtin::BlockDimX)] = Ival::point(bx);
        builtins[bidx(Builtin::BlockDimY)] = Ival::point(by);
        builtins[bidx(Builtin::GridDimX)] = Ival::point(gx);
        builtins[bidx(Builtin::GridDimY)] = Ival::point(gy);
        let vars = scalars
            .iter()
            .map(|(k, &v)| (k.clone(), Ival::point(v)))
            .collect();
        let ints = kernel
            .scalars
            .iter()
            .map(|p| (p.name.clone(), p.ty.is_integer()))
            .collect();
        RangeState {
            builtins,
            vars,
            ints,
            ov: Vec::new(),
            varying: Arc::new(Uniformity::of_body(&kernel.body).into_varying()),
        }
    }

    /// Whether `e` provably produces an integer `Const` at runtime.
    fn is_int(&self, e: &Expr) -> bool {
        match e {
            Expr::ImmInt(_) | Expr::Builtin(_) => true,
            Expr::ImmFloat(_) | Expr::ImmBool(_) => false,
            Expr::Var(v) => self.ints.get(v).copied().unwrap_or(false),
            Expr::Unary(UnOp::Neg, a) => self.is_int(a),
            Expr::Unary(UnOp::Not, _) => false,
            Expr::Binary(op, a, b) => !op.is_comparison() && self.is_int(a) && self.is_int(b),
            // Integer min/max stay integer; every other math call —
            // including abs — evaluates to Float in the engines.
            Expr::Call(MathFn::Min | MathFn::Max, args) => args.iter().all(|a| self.is_int(a)),
            Expr::Call(_, _) => false,
            Expr::Cast(ty, _) => ty.is_integer(),
            Expr::Select(_, a, b) => self.is_int(a) && self.is_int(b),
            _ => false, // loads, DSL nodes
        }
    }

    fn eval(&self, e: &Expr) -> Ival {
        let mut r = self.eval_raw(e);
        for (pat, iv) in &self.ov {
            if pat == e {
                r = r.meet(*iv);
            }
        }
        r
    }

    fn eval_raw(&self, e: &Expr) -> Ival {
        use BinOp::*;
        match e {
            Expr::ImmInt(v) => Ival::point(*v),
            Expr::ImmFloat(_) | Expr::ImmBool(_) => Ival::top(),
            Expr::Var(v) => self.vars.get(v).copied().unwrap_or_else(Ival::top),
            Expr::Builtin(b) => self.builtins[bidx(*b)],
            Expr::Unary(UnOp::Neg, a) => self.eval(a).neg(),
            Expr::Unary(UnOp::Not, _) => Ival::new(0, 1),
            Expr::Binary(op, a, b) => {
                let ia = self.eval(a);
                let ib = self.eval(b);
                match op {
                    Add => ia.add(ib),
                    Sub => ia.sub(ib),
                    Mul => ia.mul(ib),
                    Div => ia.div(ib),
                    Rem => ia.rem(ib),
                    Eq | Ne | Lt | Le | Gt | Ge | And | Or => Ival::new(0, 1),
                }
            }
            Expr::Call(f, args) => {
                let vals: Vec<Ival> = args.iter().map(|a| self.eval(a)).collect();
                match f {
                    MathFn::Min => vals[0].min_(vals[1]),
                    MathFn::Max => vals[0].max_(vals[1]),
                    MathFn::Abs => vals[0].abs(),
                    _ => Ival::top(),
                }
            }
            Expr::Cast(ty, a) => {
                let iv = self.eval(a);
                match ty {
                    ScalarType::I32 | ScalarType::U32 => iv,
                    // f32 rounds integers above 2^24: only narrow
                    // intervals survive the cast exactly.
                    ScalarType::F32 => {
                        if exact(iv) {
                            iv
                        } else {
                            Ival::top()
                        }
                    }
                    ScalarType::Bool => Ival::new(0, 1),
                }
            }
            Expr::Select(c, a, b) => match self.truth(c) {
                Some(true) => self.branch_eval(c, true, a),
                Some(false) => self.branch_eval(c, false, b),
                None => {
                    let ta = self.branch_eval(c, true, a);
                    let tb = self.branch_eval(c, false, b);
                    ta.join(tb)
                }
            },
            // Loads and DSL-level nodes: unknown value.
            _ => Ival::top(),
        }
    }

    fn branch_eval(&self, cond: &Expr, want: bool, value: &Expr) -> Ival {
        let mut s2 = self.clone();
        if s2.refine_inner(cond, want) {
            s2.eval(value)
        } else {
            Ival::empty()
        }
    }

    /// Decide a boolean condition where the facts separate it. Only
    /// integer-valued comparisons strictly inside the f32-exact range
    /// are decided; everything else answers `None`.
    pub fn truth(&self, cond: &Expr) -> Option<bool> {
        use BinOp::*;
        match cond {
            Expr::ImmBool(b) => Some(*b),
            Expr::Unary(UnOp::Not, a) => self.truth(a).map(|b| !b),
            Expr::Binary(And, a, b) => match (self.truth(a), self.truth(b)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Expr::Binary(Or, a, b) => match (self.truth(a), self.truth(b)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Expr::Binary(op @ (Eq | Ne | Lt | Le | Gt | Ge), a, b) => {
                if !self.is_int(a) || !self.is_int(b) {
                    return None;
                }
                let ia = self.eval(a);
                let ib = self.eval(b);
                if ia.is_empty() || ib.is_empty() || !exact(ia) || !exact(ib) {
                    return None;
                }
                match op {
                    Lt => cmp_truth(ia, ib, 1),
                    Le => cmp_truth(ia, ib, 0),
                    Gt => cmp_truth(ib, ia, 1),
                    Ge => cmp_truth(ib, ia, 0),
                    Eq => {
                        if ia.lo == ia.hi && ia == ib {
                            Some(true)
                        } else if ia.meet(ib).is_empty() {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    Ne => {
                        if ia.meet(ib).is_empty() {
                            Some(true)
                        } else if ia.lo == ia.hi && ia == ib {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Inclusive value range of an integer-valued expression; `None`
    /// when non-integer, unreachable, or touching the saturation clamp
    /// (a clamped endpoint may hide larger true values).
    pub fn range(&self, e: &Expr) -> Option<(i64, i64)> {
        if !self.is_int(e) {
            return None;
        }
        let iv = self.eval(e);
        if iv.is_empty() || iv.lo <= -BOUND || iv.hi >= BOUND {
            return None;
        }
        Some((iv.lo, iv.hi))
    }

    fn constrain(&mut self, e: &Expr, iv: Ival) -> bool {
        let cur = self.eval(e);
        let new = cur.meet(iv);
        match e {
            Expr::Var(v) => {
                self.vars.insert(v.clone(), new);
            }
            Expr::Builtin(b) => self.builtins[bidx(*b)] = new,
            Expr::ImmInt(_) => {}
            _ => self.ov.push((e.clone(), new)),
        }
        !new.is_empty()
    }

    fn refine_inner(&mut self, cond: &Expr, want: bool) -> bool {
        use BinOp::*;
        match cond {
            Expr::Unary(UnOp::Not, a) => self.refine_inner(a, !want),
            Expr::Binary(And, a, b) if want => {
                self.refine_inner(a, true) && self.refine_inner(b, true)
            }
            Expr::Binary(Or, a, b) if !want => {
                self.refine_inner(a, false) && self.refine_inner(b, false)
            }
            Expr::Binary(op @ (Lt | Le | Gt | Ge | Eq), a, b) => {
                // Refinement records *facts*; a fact from an f32-fuzzy
                // or non-integer comparison would poison later answers.
                if !self.is_int(a) || !self.is_int(b) {
                    return true;
                }
                let (lhs, rhs, strict): (&Expr, &Expr, i64) = match (op, want) {
                    (Lt, true) => (a, b, 1),
                    (Lt, false) => (b, a, 0),
                    (Le, true) => (a, b, 0),
                    (Le, false) => (b, a, 1),
                    (Gt, true) => (b, a, 1),
                    (Gt, false) => (a, b, 0),
                    (Ge, true) => (b, a, 0),
                    (Ge, false) => (a, b, 1),
                    (Eq, true) => {
                        let ia = self.eval(a);
                        let ib = self.eval(b);
                        if !exact(ia) || !exact(ib) {
                            return true;
                        }
                        return self.constrain(a, ib) && self.constrain(b, ia);
                    }
                    _ => return true, // Eq-false / Ne: no refinement
                };
                let il = self.eval(lhs);
                let ir = self.eval(rhs);
                if il.is_empty() || ir.is_empty() {
                    return false;
                }
                if !exact(il) || !exact(ir) {
                    return true;
                }
                self.constrain(lhs, Ival::new(-BOUND, ir.hi - strict))
                    && self.constrain(rhs, Ival::new(il.lo + strict, BOUND))
            }
            _ => true, // opaque (boolean var, float compare, …)
        }
    }

    fn kill(&mut self, name: &str) {
        self.ov.retain(|(p, _)| !mentions_var(p, name));
    }
}

/// `a < b` when `strict = 1`, `a <= b` when `strict = 0`.
///
/// The false side negates the comparison, which *flips* the strictness:
/// `a <= b` is false only when `a > b` everywhere (`a.lo >= b.hi + 1`),
/// and `a < b` is false when `a >= b` everywhere (`a.lo >= b.hi`).
fn cmp_truth(a: Ival, b: Ival, strict: i64) -> Option<bool> {
    if a.hi + strict <= b.lo {
        Some(true)
    } else if a.lo >= b.hi + 1 - strict {
        Some(false)
    } else {
        None
    }
}

impl Oracle for RangeState {
    fn range(&self, e: &Expr) -> Option<(i64, i64)> {
        RangeState::range(self, e)
    }

    fn truth(&self, e: &Expr) -> Option<bool> {
        RangeState::truth(self, e)
    }

    fn is_uniform(&self, e: &Expr) -> bool {
        !crate::taint::expr_thread_dependent(e, &self.varying)
    }

    fn decl(&mut self, name: &str, ty: ScalarType, init: Option<&Expr>) {
        self.kill(name);
        let iv = init.map(|e| self.eval(e)).unwrap_or_else(Ival::top);
        // The declaration coerces: an integer type truncates toward
        // zero, which stays inside any integer interval containing the
        // value; Bool lands in [0, 1].
        let iv = if ty == ScalarType::Bool {
            Ival::new(0, 1)
        } else {
            iv
        };
        self.vars.insert(name.to_string(), iv);
        self.ints.insert(name.to_string(), ty.is_integer());
    }

    fn assign(&mut self, name: &str, value: &Expr) {
        // No coercion on assignment: both interval and integer kind
        // come from the assigned value.
        let iv = self.eval(value);
        let int = self.is_int(value);
        self.kill(name);
        self.vars.insert(name.to_string(), iv);
        self.ints.insert(name.to_string(), int);
    }

    fn refine(&mut self, cond: &Expr, want: bool) -> bool {
        self.refine_inner(cond, want)
    }

    fn join(&mut self, other: &Self) {
        let mut vars = HashMap::new();
        for (k, va) in &self.vars {
            if let Some(vb) = other.vars.get(k) {
                vars.insert(k.clone(), va.join(*vb));
            }
        }
        self.vars = vars;
        for i in 0..8 {
            self.builtins[i] = self.builtins[i].join(other.builtins[i]);
        }
        let mut ints = HashMap::new();
        for (k, a) in &self.ints {
            if other.ints.get(k) == Some(a) {
                ints.insert(k.clone(), *a);
            }
        }
        self.ints = ints;
        self.ov = self
            .ov
            .iter()
            .filter_map(|(p, ia)| {
                other
                    .ov
                    .iter()
                    .find(|(q, _)| q == p)
                    .map(|(_, ib)| (p.clone(), ia.join(*ib)))
            })
            .collect();
    }

    fn havoc(&mut self, name: &str) {
        self.kill(name);
        self.vars.insert(name.to_string(), Ival::top());
        self.ints.remove(name);
    }

    fn bind_loop(&mut self, var: &str, from: &Expr, to: &Expr) {
        let f = self.eval(from);
        let t = self.eval(to);
        self.kill(var);
        let iv = if f.is_empty() || t.is_empty() {
            Ival::top()
        } else {
            Ival::new(f.lo, t.hi)
        };
        self.vars.insert(var.to_string(), iv);
        self.ints.insert(var.to_string(), true);
    }

    fn drop_var(&mut self, name: &str) {
        self.kill(name);
        self.vars.remove(name);
        self.ints.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::kernel::DeviceKernelDef;
    use hipacc_ir::ParamDecl;

    fn state(scalars: &[(&str, i64)]) -> RangeState {
        let k = DeviceKernelDef {
            name: "t".into(),
            buffers: vec![],
            scalars: scalars
                .iter()
                .map(|(n, _)| ParamDecl {
                    name: (*n).into(),
                    ty: ScalarType::I32,
                })
                .collect(),
            const_buffers: vec![],
            shared: vec![],
            body: vec![],
        };
        let map = scalars
            .iter()
            .map(|(n, v)| ((*n).to_string(), *v))
            .collect();
        RangeState::new(&k, (16, 4), (8, 8), &map)
    }

    #[test]
    fn builtins_and_scalars_seed_ranges() {
        let s = state(&[("width", 128)]);
        let tid = Expr::Builtin(Builtin::ThreadIdxX);
        assert_eq!(s.range(&tid), Some((0, 15)));
        assert_eq!(s.range(&Expr::var("width")), Some((128, 128)));
        let gid = Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)
            + Expr::Builtin(Builtin::ThreadIdxX);
        assert_eq!(s.range(&gid), Some((0, 127)));
        assert_eq!(s.truth(&gid.lt(Expr::var("width"))), Some(true));
    }

    #[test]
    fn non_integer_expressions_are_refused() {
        let mut s = state(&[]);
        // Float literal, abs (always Float), unknown variable.
        assert_eq!(s.range(&Expr::float(3.0)), None);
        assert_eq!(
            s.range(&Expr::call1(
                MathFn::Abs,
                Expr::Builtin(Builtin::ThreadIdxX)
            )),
            None
        );
        assert_eq!(s.range(&Expr::var("mystery")), None);
        assert_eq!(s.truth(&Expr::float(1.0).lt(Expr::float(2.0))), None);
        // A declaration coerces to I32 — integer afterwards…
        s.decl("x", ScalarType::I32, Some(&Expr::int(5)));
        assert_eq!(s.range(&Expr::var("x")), Some((5, 5)));
        // …but a float assignment revokes integer-ness (no coercion).
        s.assign("x", &Expr::float(1.5));
        assert_eq!(s.range(&Expr::var("x")), None);
    }

    #[test]
    fn refinement_narrows_and_detects_dead_branches() {
        let mut s = state(&[("n", 100)]);
        s.decl(
            "g",
            ScalarType::I32,
            Some(
                &(Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)
                    + Expr::Builtin(Builtin::ThreadIdxX)),
            ),
        );
        assert_eq!(s.range(&Expr::var("g")), Some((0, 127)));
        // After `if (g >= n) return;` fall-through: g < 100.
        assert!(s.refine(&Expr::var("g").ge(Expr::var("n")), false));
        assert_eq!(s.range(&Expr::var("g")), Some((0, 99)));
        // Now `g >= 100` is provably false.
        assert_eq!(s.truth(&Expr::var("g").ge(Expr::int(100))), Some(false));
        // And refining it true is infeasible.
        let mut dead = s.clone();
        assert!(!dead.refine(&Expr::var("g").ge(Expr::int(100)), true));
    }

    #[test]
    fn f32_exact_gate_blocks_large_comparisons() {
        let mut s = state(&[]);
        s.decl("big", ScalarType::I32, Some(&Expr::int((1 << 24) + 1)));
        s.decl("near", ScalarType::I32, Some(&Expr::int(1 << 24)));
        // Intervals separate, but the engines compare via f32 where
        // 2^24 + 1 == 2^24 — refuse the decision.
        assert_eq!(s.truth(&Expr::var("big").eq_(Expr::var("near"))), None);
        // Small values still decide.
        s.decl("a", ScalarType::I32, Some(&Expr::int(3)));
        assert_eq!(s.truth(&Expr::var("a").lt(Expr::int(4))), Some(true));
    }

    #[test]
    fn min_max_clamp_ranges() {
        let s = state(&[]);
        let tid = Expr::Builtin(Builtin::ThreadIdxX); // [0, 15]
        let clamped = Expr::min(Expr::max(tid, Expr::int(2)), Expr::int(9));
        assert_eq!(s.range(&clamped), Some((2, 9)));
    }

    #[test]
    fn uniformity_is_wired_through() {
        use hipacc_ir::{LValue, Stmt};
        let k = DeviceKernelDef {
            name: "t".into(),
            buffers: vec![],
            scalars: vec![],
            const_buffers: vec![],
            shared: vec![],
            body: vec![
                Stmt::Decl {
                    name: "tid".into(),
                    ty: ScalarType::I32,
                    init: Some(Expr::Builtin(Builtin::ThreadIdxX)),
                },
                Stmt::Assign {
                    target: LValue::Var("tid".into()),
                    value: Expr::var("tid") + Expr::int(1),
                },
            ],
        };
        let s = RangeState::new(&k, (16, 1), (1, 1), &HashMap::new());
        assert!(!s.is_uniform(&Expr::var("tid")));
        assert!(s.is_uniform(&Expr::Builtin(Builtin::BlockIdxX)));
    }
}
