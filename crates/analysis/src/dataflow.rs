//! A small forward dataflow framework over the device-IR CFG.
//!
//! The verifier's analyses are expressed as monotone transfer functions
//! over a join-semilattice; [`forward_fixpoint`] runs the classic
//! worklist algorithm to a fixpoint and returns the entry state of every
//! block. The framework is deliberately tiny — the kernels this compiler
//! generates have a few dozen blocks — but it is a genuine fixpoint
//! engine: loops (`Stmt::For` back edges) converge through repeated
//! joins, exactly like the read/write analysis traversal of Section IV-A.

use hipacc_ir::cfg::{Block, Cfg};
use std::collections::VecDeque;

/// A join-semilattice element.
pub trait Lattice: Clone {
    /// Join `other` into `self`; returns whether `self` changed. Joins
    /// must be monotone (never lose information) for the worklist to
    /// terminate.
    fn join(&mut self, other: &Self) -> bool;
}

/// The powerset lattice over names (used by the taint analysis).
impl Lattice for std::collections::BTreeSet<String> {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.len();
        self.extend(other.iter().cloned());
        self.len() != before
    }
}

/// Run a forward dataflow analysis to fixpoint.
///
/// `entry` seeds block 0; every other block starts from `bottom`.
/// `transfer` maps a block's entry state to its exit state and must be
/// monotone. Returns the fixpoint *entry* state of every block
/// (unreachable blocks keep `bottom`).
pub fn forward_fixpoint<L: Lattice>(
    cfg: &Cfg,
    entry: L,
    bottom: L,
    mut transfer: impl FnMut(&Block, &L) -> L,
) -> Vec<L> {
    let n = cfg.blocks.len();
    let mut states = vec![bottom; n];
    states[0] = entry;
    // Seed every block, not just the entry: a transfer applied to the
    // bottom state can still produce a non-bottom exit state that must
    // reach the successors.
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = transfer(&cfg.blocks[b], &states[b]);
        for &s in &cfg.blocks[b].succs {
            if states[s].join(&out) && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::{Expr, ScalarType, Stmt};
    use std::collections::BTreeSet;

    fn decl(name: &str, init: Expr) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty: ScalarType::I32,
            init: Some(init),
        }
    }

    /// Transfer: a declared variable becomes "defined"; the set of defined
    /// names flows forward.
    fn defined_names(block: &Block, inp: &BTreeSet<String>) -> BTreeSet<String> {
        let mut out = inp.clone();
        for s in &block.stmts {
            if let Stmt::Decl { name, .. } = s {
                out.insert(name.clone());
            }
        }
        out
    }

    #[test]
    fn straight_line_accumulates() {
        let cfg = hipacc_ir::cfg::Cfg::build(&[decl("a", Expr::int(0)), decl("b", Expr::int(1))]);
        let states = forward_fixpoint(&cfg, BTreeSet::new(), BTreeSet::new(), defined_names);
        // The exit block's entry state has seen both declarations.
        assert!(states[cfg.exit].contains("a") && states[cfg.exit].contains("b"));
    }

    #[test]
    fn branches_join_at_the_merge_point() {
        let cfg = hipacc_ir::cfg::Cfg::build(&[Stmt::If {
            cond: Expr::var("c").lt(Expr::int(0)),
            then: vec![decl("t", Expr::int(0))],
            els: vec![decl("e", Expr::int(0))],
        }]);
        let states = forward_fixpoint(&cfg, BTreeSet::new(), BTreeSet::new(), defined_names);
        // Join of both branches reaches the exit.
        assert!(states[cfg.exit].contains("t") && states[cfg.exit].contains("e"));
    }

    #[test]
    fn loops_reach_a_fixpoint() {
        let cfg = hipacc_ir::cfg::Cfg::build(&[Stmt::For {
            var: "i".into(),
            from: Expr::int(0),
            to: Expr::int(3),
            body: vec![decl("inner", Expr::int(0))],
        }]);
        let states = forward_fixpoint(&cfg, BTreeSet::new(), BTreeSet::new(), defined_names);
        assert!(states[cfg.exit].contains("inner"));
    }
}
