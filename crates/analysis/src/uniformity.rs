//! Uniformity analysis: which values are block-uniform vs thread-varying.
//!
//! This generalizes the taint pass ([`crate::taint`]) from a
//! barrier-divergence *checker* into a reusable analysis result the IR
//! optimizer consumes. The underlying lattice is the same — a value is
//! *thread-varying* if it (transitively) depends on `threadIdx.x/y` or
//! on shared memory (written per-thread), and *block-uniform* otherwise
//! (`blockIdx`, `blockDim`, `gridDim`, scalar parameters, literals) —
//! computed to fixpoint over the CFG so loop-carried taint converges.
//!
//! The optimizer uses it in two directions:
//!
//! * branch flattening (`ir::opt::flatten_branches`) fires only on
//!   thread-*varying* conditions — uniform branches already execute
//!   converged on the SIMD engine;
//! * block-uniform expressions are safe loop-hoisting anchors and, via
//!   `RangeState::is_uniform`, feed the [`Oracle`] the passes query.
//!
//! [`Oracle`]: hipacc_ir::opt::Oracle

use crate::taint;
use hipacc_ir::{Expr, Stmt};
use std::collections::BTreeSet;

/// The analysis result: the set of thread-varying variables of one
/// kernel body, with uniformity queries for arbitrary expressions.
#[derive(Clone, Debug)]
pub struct Uniformity {
    varying: BTreeSet<String>,
}

impl Uniformity {
    /// Analyze a (device-level) kernel body: CFG taint fixpoint seeded
    /// from the thread-index builtins and shared-memory loads.
    pub fn of_body(body: &[Stmt]) -> Uniformity {
        Uniformity {
            varying: taint::thread_dependent_vars(body),
        }
    }

    /// Whether `e` evaluates to the same value on every thread of a
    /// block. `false` is the conservative answer: the flow-insensitive
    /// variable set may over-approximate varying.
    pub fn is_uniform(&self, e: &Expr) -> bool {
        !taint::expr_thread_dependent(e, &self.varying)
    }

    /// The thread-varying variable set (flow-insensitive fixpoint).
    pub fn varying(&self) -> &BTreeSet<String> {
        &self.varying
    }

    /// Consume the analysis, yielding the varying set.
    pub fn into_varying(self) -> BTreeSet<String> {
        self.varying
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipacc_ir::{Builtin, Expr, LValue, ScalarType, Stmt};

    #[test]
    fn classifies_uniform_and_varying() {
        let body = vec![
            Stmt::Decl {
                name: "tid".into(),
                ty: ScalarType::I32,
                init: Some(Expr::Builtin(Builtin::ThreadIdxX)),
            },
            Stmt::Decl {
                name: "base".into(),
                ty: ScalarType::I32,
                init: Some(Expr::Builtin(Builtin::BlockIdxX) * Expr::Builtin(Builtin::BlockDimX)),
            },
            // Loop-carried taint: u starts uniform, becomes varying.
            Stmt::Decl {
                name: "u".into(),
                ty: ScalarType::I32,
                init: Some(Expr::int(0)),
            },
            Stmt::For {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(3),
                body: vec![Stmt::Assign {
                    target: LValue::Var("u".into()),
                    value: Expr::var("u") + Expr::var("tid"),
                }],
            },
        ];
        let uni = Uniformity::of_body(&body);
        assert!(uni.is_uniform(&Expr::var("base")));
        assert!(uni.is_uniform(&(Expr::var("base") + Expr::int(7))));
        assert!(!uni.is_uniform(&Expr::var("tid")));
        assert!(!uni.is_uniform(&Expr::var("u")));
        assert!(!uni.is_uniform(&Expr::Builtin(Builtin::ThreadIdxX)));
        assert!(uni.is_uniform(&Expr::Builtin(Builtin::BlockIdxX)));
        assert!(uni.varying().contains("tid"));
    }
}
