//! Structured diagnostics.
//!
//! Every finding of the kernel verifier — and of the generated-source
//! linter in `hipacc-codegen` — is a [`Diagnostic`]: a stable code, a
//! severity, the kernel (and, when applicable, the boundary region and
//! source-line span) it refers to, and a rendered message. Errors fail
//! compilation; warnings ride along on the compile output.
//!
//! # Diagnostic code space
//!
//! | Code  | Pass                | Meaning |
//! |-------|---------------------|---------|
//! | A0101 | barrier divergence  | barrier under thread-dependent control flow |
//! | A0102 | barrier divergence  | barrier reachable after a thread-dependent early return |
//! | A0201 | shared-memory races | write/write race in one barrier interval |
//! | A0202 | shared-memory races | read/write race in one barrier interval |
//! | A0301 | bounds              | global/texture access not provably in bounds |
//! | A0302 | bounds              | shared-memory access not provably in bounds |
//! | A0303 | bounds              | constant-memory access not provably in bounds |
//! | A0401 | resource limits     | shared memory exceeds the device budget |
//! | A0402 | resource limits     | register estimate exceeds the per-thread limit |
//! | A0403 | resource limits     | constant-mask bytes exceed constant memory |
//! | A0404 | resource limits     | block shape exceeds the device thread limits |
//! | A0501 | source lint         | unbalanced delimiters in generated source |
//! | A0502 | source lint         | undeclared identifier in generated source |

use std::fmt;

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Surfaced on the compile output; compilation succeeds.
    Warning,
    /// Compilation fails.
    Error,
}

impl Severity {
    /// Lower-case label used when rendering ("error"/"warning").
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from a verifier pass or the source linter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Stable diagnostic code (`A0101`, …); see the module docs.
    pub code: &'static str,
    /// Severity: errors fail compilation, warnings ride along.
    pub severity: Severity,
    /// Name of the kernel the finding refers to.
    pub kernel: String,
    /// Boundary-region label (`TL_BH`, `NO_BH`, …) when the finding is
    /// specific to one of the nine specialized regions.
    pub region: Option<String>,
    /// 1-based line span in the generated source, when known (lint
    /// findings carry one; IR-level findings do not).
    pub lines: Option<(u32, u32)>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Create an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        kernel: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            kernel: kernel.into(),
            region: None,
            lines: None,
            message: message.into(),
        }
    }

    /// Create a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        kernel: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, kernel, message)
        }
    }

    /// Attach a boundary-region label.
    pub fn with_region(mut self, region: impl Into<String>) -> Self {
        self.region = Some(region.into());
        self
    }

    /// Attach a 1-based source-line span.
    pub fn with_lines(mut self, first: u32, last: u32) -> Self {
        self.lines = Some((first, last));
        self
    }

    /// Whether this finding fails compilation.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The rendered single-line form, identical to `Display`.
    pub fn rendered(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] kernel `{}`",
            self.severity.label(),
            self.code,
            self.kernel
        )?;
        if let Some(r) = &self.region {
            write!(f, " ({r})")?;
        }
        if let Some((a, b)) = self.lines {
            if a == b {
                write!(f, " line {a}")?;
            } else {
                write!(f, " lines {a}-{b}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// Whether any diagnostic in the slice is error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_includes_code_kernel_region_and_lines() {
        let d = Diagnostic::error("A0101", "blur_kernel", "barrier diverges")
            .with_region("TL_BH")
            .with_lines(3, 3);
        assert_eq!(
            d.to_string(),
            "error[A0101] kernel `blur_kernel` (TL_BH) line 3: barrier diverges"
        );
        let w = Diagnostic::warning("A0301", "k", "may read out of bounds").with_lines(2, 5);
        assert_eq!(
            w.to_string(),
            "warning[A0301] kernel `k` lines 2-5: may read out of bounds"
        );
    }

    #[test]
    fn severity_queries() {
        let e = Diagnostic::error("A0401", "k", "too much shared memory");
        let w = Diagnostic::warning("A0301", "k", "maybe oob");
        assert!(e.is_error() && !w.is_error());
        assert!(has_errors(&[w.clone(), e]));
        assert!(!has_errors(&[w]));
        assert!(!has_errors(&[]));
    }
}
